"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs (which build a wheel) fail; this file lets
``pip install -e . --no-build-isolation`` fall back to
``setup.py develop``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
