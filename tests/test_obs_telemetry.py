"""Integration tests for the telemetry facade on a simulated machine."""

import json

import pytest

from repro.apps.wc import wc
from repro.hsm.migration import MigrationDaemon
from repro.machine import Machine
from repro.obs import Telemetry
from repro.sim.units import MB, PAGE_SIZE


def _machine(seed=321, cache_pages=256):
    machine = Machine.unix_utilities(cache_pages=cache_pages, seed=seed)
    machine.boot()
    return machine


def _wc_run(machine, path="/mnt/ext2/data/f.txt", use_sleds=True):
    with machine.kernel.process() as run:
        wc(machine.kernel, path, use_sleds=use_sleds)
    return run


@pytest.fixture
def telemetry_machine():
    machine = _machine()
    machine.ext2.create_text_file("data/f.txt", MB // 2, seed=7)
    telemetry = Telemetry()
    machine.kernel.attach_telemetry(telemetry)
    return machine, telemetry


class TestZeroCost:
    def test_virtual_times_bit_identical_with_telemetry(self):
        """The acceptance bar: telemetry never perturbs simulated time."""
        plain = _machine()
        plain.ext2.create_text_file("data/f.txt", MB // 2, seed=7)
        observed = _machine()
        observed.ext2.create_text_file("data/f.txt", MB // 2, seed=7)
        observed.kernel.attach_telemetry(Telemetry())

        cold_plain = _wc_run(plain)
        cold_observed = _wc_run(observed)
        warm_plain = _wc_run(plain)
        warm_observed = _wc_run(observed)

        assert cold_observed.elapsed == cold_plain.elapsed
        assert warm_observed.elapsed == warm_plain.elapsed
        assert cold_observed.hard_faults == cold_plain.hard_faults
        assert warm_observed.by_category == warm_plain.by_category

    def test_detach_restores_plain_machine(self, telemetry_machine):
        machine, telemetry = telemetry_machine
        machine.kernel.detach_telemetry()
        assert machine.kernel.telemetry is None
        assert machine.kernel.page_cache.observer is None
        spans_before = len(telemetry.spans)
        _wc_run(machine)
        assert len(telemetry.spans) == spans_before


class TestAccuracy:
    def test_warm_wc_reports_per_class_error(self, telemetry_machine):
        """Warm-cache wc: accuracy summary has disk and memory classes."""
        machine, telemetry = telemetry_machine
        _wc_run(machine)          # cold: faults from disk
        _wc_run(machine)          # warm: hits settle as memory class
        report = telemetry.accuracy.report()
        assert report.by_class["disk"].samples > 0
        assert report.by_class["memory"].samples > 0
        assert report.by_class["memory"].mean_abs_error < 1e-6
        text = report.render()
        assert "disk" in text and "memory" in text
        assert "mean_abs_err" in text

    def test_without_sleds_no_predictions(self, telemetry_machine):
        machine, telemetry = telemetry_machine
        _wc_run(machine, use_sleds=False)
        assert telemetry.accuracy.report().by_class == {}


class TestSpans:
    def test_syscall_fault_device_nesting(self, telemetry_machine):
        machine, telemetry = telemetry_machine
        _wc_run(machine)
        spans = telemetry.spans
        faults = spans.spans("fault")
        devices = spans.spans("device")
        assert faults and devices
        by_id = {s.id: s for s in spans.spans()}
        for fault in faults:
            parent = by_id[fault.parent_id]
            assert parent.kind == "syscall"
            assert parent.start <= fault.start <= fault.end <= parent.end
        fault_ids = {f.id for f in faults}
        assert any(d.parent_id in fault_ids for d in devices)
        for dev in devices:
            parent = by_id[dev.parent_id]
            assert parent.start <= dev.start
            assert dev.end <= parent.end + 1e-12

    def test_chrome_trace_is_valid_and_nested(self, telemetry_machine):
        machine, telemetry = telemetry_machine
        _wc_run(machine)
        doc = telemetry.chrome_trace()
        blob = json.dumps(doc)
        assert json.loads(blob) == doc
        events = doc["traceEvents"]
        assert all(e["ph"] == "X" for e in events)
        assert all(e["dur"] >= 0 for e in events)
        starts = [e["ts"] for e in events]
        assert starts == sorted(starts)
        cats = {e["cat"] for e in events}
        assert {"syscall", "fault", "device"} <= cats

    def test_fault_spans_carry_latency_breakdown(self, telemetry_machine):
        """Every closed fault span names its queue wait and per-component
        seconds, and the breakdown matches the lifecycle record's."""
        machine, telemetry = telemetry_machine
        _wc_run(machine)
        faults = telemetry.spans.spans("fault")
        assert faults
        by_key = {(r.inode, r.page): r
                  for r in telemetry.lifecycle.records}
        checked = 0
        for span in faults:
            attrs = dict(span.attrs)
            assert "queue_wait" in attrs and "components" in attrs
            rec = by_key.get((attrs["inode"], attrs["page"]))
            if rec is None:
                continue
            checked += 1
            assert attrs["queue_wait"] == rec.queue_wait
            assert attrs["components"] == dict(rec.components)
        assert checked > 0
        # and the breakdown survives into the Chrome trace args
        events = telemetry.chrome_trace()["traceEvents"]
        fault_events = [e for e in events if e["cat"] == "fault"]
        assert all("components" in e["args"] for e in fault_events)

    def test_merged_fault_spans_carry_provenance(self):
        from repro.block.merge import BlockConfig
        from repro.sim.tasks import EventScheduler, Task

        machine = _machine()
        machine.ext2.create_text_file("data/f.txt", 32 * PAGE_SIZE, seed=7)
        telemetry = Telemetry()
        machine.kernel.attach_telemetry(telemetry)
        engine = machine.kernel.attach_engine(
            block=BlockConfig(merge=True, plug=True))
        kernel = machine.kernel

        def reader(start):
            fd = kernel.open("/mnt/ext2/data/f.txt")
            for chunk in range(start, 16, 2):
                yield from kernel.pread_async(
                    fd, chunk * 2 * PAGE_SIZE, 2 * PAGE_SIZE)
            kernel.close(fd)

        tasks = [Task(f"r{i}", reader(i)) for i in range(2)]
        EventScheduler(kernel, tasks, engine=engine).run()
        merged_spans = [s for s in telemetry.spans.spans("fault")
                        if "merged_from" in dict(s.attrs)]
        assert merged_spans, "merge workload produced no coalesced faults"
        merged_recs = {(r.inode, tuple(map(tuple, r.merged_from)))
                       for r in telemetry.lifecycle.records
                       if r.merged_from}
        for span in merged_spans:
            attrs = dict(span.attrs)
            members = tuple(tuple(m) for m in attrs["merged_from"])
            assert len(members) >= 2
            assert (attrs["inode"], members) in merged_recs

    def test_legacy_tracer_bridge(self):
        from repro.sim.trace import Tracer
        machine = _machine()
        machine.ext2.create_text_file("data/f.txt", 8 * PAGE_SIZE, seed=7)
        tracer = Tracer()
        machine.kernel.attach_telemetry(Telemetry(tracer=tracer))
        _wc_run(machine)
        assert tracer.first("syscall", "open") is not None
        assert tracer.events(kind="fault")


class TestMetrics:
    def test_cache_metrics_match_kernel_counters(self, telemetry_machine):
        machine, telemetry = telemetry_machine
        run = _wc_run(machine)
        counters = machine.kernel.counters
        hits = telemetry.cache_hits.labels(policy="lru").value
        misses = telemetry.cache_misses.labels(policy="lru").value
        assert hits == counters.cache_hits
        assert misses == counters.cache_misses
        assert run.hit_ratio == pytest.approx(hits / (hits + misses))

    def test_syscall_and_fault_families(self, telemetry_machine):
        machine, telemetry = telemetry_machine
        _wc_run(machine)
        assert telemetry.syscalls.labels(name="read").value > 0
        assert telemetry.syscalls.labels(name="open").value == 1
        fault_hist = telemetry.fault_latency.labels(device="disk")
        assert fault_hist.count == machine.kernel.counters.hard_faults
        assert fault_hist.sum > 0

    def test_readahead_issued_and_used(self, telemetry_machine):
        machine, telemetry = telemetry_machine
        _wc_run(machine)
        issued = telemetry.readahead_issued.labels().value
        used = telemetry.readahead_used.labels().value
        assert issued > 0
        assert 0 < used <= issued

    def test_eviction_metrics(self):
        machine = _machine(cache_pages=8)
        machine.ext2.create_text_file("data/f.txt", 32 * PAGE_SIZE, seed=7)
        telemetry = Telemetry()
        machine.kernel.attach_telemetry(telemetry)
        _wc_run(machine)
        evictions = telemetry.cache_evictions.labels(
            policy="lru", forced="false").value
        assert evictions > 0
        assert evictions == machine.kernel.counters.evictions

    def test_queue_depth_on_writeback(self, telemetry_machine):
        machine, telemetry = telemetry_machine
        k = machine.kernel
        fd = k.open("/mnt/ext2/out.txt", "w")
        k.write(fd, b"\0" * (4 * PAGE_SIZE))
        k.fsync(fd)
        k.close(fd)
        # contiguous dirty pages coalesce, so depth counts requests, not pages
        hist = telemetry.queue_depth.labels(device="ext2-disk")
        assert hist.count >= 1
        assert hist.sum >= 1

    def test_nfs_metadata_ops_exported(self, telemetry_machine):
        machine, telemetry = telemetry_machine
        machine.nfs.create_text_file("pub/r.txt", PAGE_SIZE, seed=1)
        machine.kernel.stat("/mnt/nfs/pub/r.txt")
        telemetry.snapshot()
        gauge = telemetry.remote_metadata_ops.labels(fs="nfs")
        assert gauge.value >= 1
        hist = telemetry.metadata_latency.labels(fs="nfs")
        assert hist.count >= 1

    def test_sleds_requests_counted(self, telemetry_machine):
        machine, telemetry = telemetry_machine
        _wc_run(machine)
        assert telemetry.sleds_requests.labels().value >= 1
        assert telemetry.sleds_vector_sleds.labels().count >= 1

    def test_prometheus_export_scrapes(self, telemetry_machine):
        machine, telemetry = telemetry_machine
        _wc_run(machine)
        text = telemetry.render_prometheus()
        assert 'repro_syscalls_total{name="read"}' in text
        assert 'repro_faults_total{device="disk"}' in text
        assert 'repro_virtual_time_seconds{category="total"}' in text
        assert text == telemetry.render_prometheus()  # deterministic

    def test_to_dict_round_trips(self, telemetry_machine):
        machine, telemetry = telemetry_machine
        _wc_run(machine)
        dump = telemetry.to_dict()
        assert json.loads(json.dumps(dump)) == dump
        assert dump["spans"]["recorded"] == len(telemetry.spans)
        assert dump["accuracy"]["classes"]


class TestHsmAndMigration:
    def test_migration_metrics(self):
        machine = Machine.hsm(cache_pages=256, stage_pages=512, seed=99)
        machine.boot()
        telemetry = Telemetry()
        machine.kernel.attach_telemetry(telemetry)
        inode = machine.hsmfs.create_tape_file("cold.dat", 4 * PAGE_SIZE,
                                               "VOL000")
        daemon = MigrationDaemon(machine.hsmfs, cold_after=0.0,
                                 telemetry=telemetry)
        daemon.stage_out(inode)
        assert telemetry.migrated_files.labels().value == 1
        assert telemetry.migration_seconds.labels().count == 1

    def test_hsm_devices_observed(self):
        machine = Machine.hsm(cache_pages=256, stage_pages=512, seed=99)
        machine.boot()
        telemetry = Telemetry()
        machine.kernel.attach_telemetry(telemetry)
        machine.hsmfs.create_tape_file("f.dat", 4 * PAGE_SIZE, "VOL000")
        with machine.kernel.process():
            fd = machine.kernel.open("/mnt/hsm/f.dat")
            machine.kernel.read(fd, PAGE_SIZE)
            machine.kernel.close(fd)
        devices = {labels["device"]
                   for labels, _ in telemetry.device_access.children()}
        assert "hsm-stage-disk" in devices


class TestAttachment:
    def test_double_attach_rejected(self, telemetry_machine):
        machine, telemetry = telemetry_machine
        with pytest.raises(ValueError):
            telemetry.attach(machine.kernel)

    def test_detach_is_idempotent(self, telemetry_machine):
        machine, telemetry = telemetry_machine
        machine.kernel.detach_telemetry()
        machine.kernel.detach_telemetry()
        assert machine.kernel.telemetry is None
