"""Tests for the block-layer merge/plug stage (repro.block.merge).

Two load-bearing properties:

* **overlay** — with merging and plugging disabled (the default
  ``BlockConfig``), the engine is bit-identical to one built with no
  block config at all, across every filesystem personality; and that
  no-config path is itself the pre-block engine, so the chain pins the
  whole feature off the regression anchors;
* **conservation** — with merging on, the same pages arrive (fault
  counts and bytes unchanged) in strictly fewer device requests, the
  lifecycle breakdown still closes exactly, and a mid-batch device error
  fails every member of the merged request rather than wedging the queue.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.merge import (
    DEFAULT_MERGE_POLICIES,
    BlockConfig,
    MergeClassPolicy,
)
from repro.machine import Machine
from repro.obs import Telemetry
from repro.sim.errors import IoSimError
from repro.sim.tasks import EventScheduler, Task
from repro.sim.units import KB, MB, MSEC, PAGE_SIZE

PROFILES = ("ext2", "cdrom", "nfs", "hsm")

MERGE_ALL = BlockConfig(merge=True, plug=True)


def _setup(profile: str, seed: int, pages: int):
    if profile == "hsm":
        machine = Machine.hsm(cache_pages=256, stage_pages=512,
                              seed=9000 + seed)
        machine.boot()
        machine.hsmfs.create_tape_file("f", pages * PAGE_SIZE, "VOL000")
        return machine, "/mnt/hsm/f"
    machine = Machine.unix_utilities(cache_pages=256, seed=9000 + seed)
    machine.boot()
    fs = {"ext2": machine.ext2, "cdrom": machine.cdrom,
          "nfs": machine.nfs}[profile]
    fs.create_text_file("f", pages * PAGE_SIZE, seed=seed)
    return machine, f"/mnt/{profile}/f"


def _interleaved_readers(kernel, path, pages, readers=2, chunk_pages=2):
    """Tasks that stride chunk-sized preads across one file — adjacent
    chunks land on different tasks, the coalescer's favourite shape."""
    nchunks = max(1, pages // chunk_pages)

    def reader(start):
        fd = kernel.open(path)
        for chunk in range(start, nchunks, readers):
            yield from kernel.pread_async(
                fd, chunk * chunk_pages * PAGE_SIZE, chunk_pages * PAGE_SIZE)
        kernel.close(fd)

    return [Task(f"r{i}", reader(i)) for i in range(readers)]


def _fingerprint(machine, stats):
    kernel = machine.kernel
    counters = kernel.counters
    return (
        kernel.clock.now,
        counters.hard_faults, counters.pages_read, counters.cache_hits,
        counters.readahead_pages, counters.evictions,
        tuple(sorted(
            (name, s.virtual_time, s.wait_time, s.hard_faults, s.io_waits,
             s.finished_at)
            for name, s in stats.items())),
    )


def _run(profile, seed, pages, block):
    machine, path = _setup(profile, seed, pages)
    kernel = machine.kernel
    engine = kernel.attach_engine(block=block)
    tasks = _interleaved_readers(kernel, path, pages)
    stats = EventScheduler(kernel, tasks, engine=engine).run()
    return machine, stats, engine


class TestDisabledBitIdentity:
    """An all-off BlockConfig must change nothing at all."""

    @pytest.mark.parametrize("profile", PROFILES)
    def test_fixed_workload(self, profile):
        plain, plain_stats, _ = _run(profile, 7, 32, None)
        off, off_stats, engine = _run(profile, 7, 32, BlockConfig())
        assert _fingerprint(off, off_stats) == _fingerprint(plain, plain_stats)
        assert engine.plugs() == []  # the plug stage was never even built

    @pytest.mark.parametrize("profile", PROFILES)
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 50), pages=st.integers(2, 40))
    def test_property(self, profile, seed, pages):
        plain, plain_stats, _ = _run(profile, seed, pages, None)
        off, off_stats, _ = _run(profile, seed, pages, BlockConfig())
        assert _fingerprint(off, off_stats) == _fingerprint(plain, plain_stats)

    def test_active_flag(self):
        assert not BlockConfig().active
        assert BlockConfig(merge=True).active
        assert BlockConfig(plug=True).active
        assert MERGE_ALL.active


class TestEnabledDeterminism:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_two_runs_identical(self, profile):
        a, a_stats, _ = _run(profile, 11, 32, MERGE_ALL)
        b, b_stats, _ = _run(profile, 11, 32, MERGE_ALL)
        assert _fingerprint(a, a_stats) == _fingerprint(b, b_stats)


class TestCoalescing:
    def test_fewer_requests_same_pages(self):
        plain, plain_stats, _ = _run("ext2", 3, 64, None)
        merged, merged_stats, engine = _run("ext2", 3, 64, MERGE_ALL)
        p_disk = plain.ext2.device
        m_disk = merged.ext2.device
        # same pages faulted in, same bytes moved off the platter...
        assert (merged.kernel.counters.hard_faults
                == plain.kernel.counters.hard_faults)
        assert m_disk.stats.bytes_read == p_disk.stats.bytes_read
        # ...in strictly fewer device requests, and the batch finishes
        # sooner because overhead+positioning amortise across the union
        assert m_disk.stats.reads < p_disk.stats.reads
        assert merged.kernel.clock.now < plain.kernel.clock.now
        plug = engine.plugs()[0]
        assert plug.merged_requests == p_disk.stats.reads - m_disk.stats.reads
        assert plug.depth == 0  # nothing left plugged at exit

    def test_merge_only_mode_unplugs_on_schedule(self):
        """merge=True, plug=False batches only what arrives in one
        scheduler slice — the zero-length window still coalesces the
        concurrent readers' adjacent requests."""
        merged, _, engine = _run("ext2", 3, 64,
                                 BlockConfig(merge=True))
        plain, _, _ = _run("ext2", 3, 64, None)
        assert (merged.ext2.device.stats.reads
                < plain.ext2.device.stats.reads)
        # no timed window: the only plugged time is clock motion within
        # the scheduler slice (other tasks' CPU), never a timer delay
        plug = engine.plugs()[0]
        assert plug.merged_requests > 0

    def test_memory_class_never_merges(self):
        config = MERGE_ALL
        policy = config.policy_for(type("M", (), {"time_category": "memory"})())
        assert policy.max_bytes == 0  # the no-merge sentinel
        disk_policy = config.policy_for(
            type("D", (), {"time_category": "disk"})())
        assert disk_policy == DEFAULT_MERGE_POLICIES["disk"]

    def test_policy_bounds_are_per_class(self):
        assert DEFAULT_MERGE_POLICIES["disk"].max_bytes == 512 * KB
        assert DEFAULT_MERGE_POLICIES["disk"].max_gap_pages == 0
        assert DEFAULT_MERGE_POLICIES["tape"].max_gap_pages > \
            DEFAULT_MERGE_POLICIES["cdrom"].max_gap_pages > 0

    def test_hsm_runs_stay_singletons(self):
        """HsmFs overrides read_pages (staging state machine), so its
        clusters must not be multi-merged — but they still flow through
        the plug stage unharmed."""
        plain, plain_stats, _ = _run("hsm", 5, 24, None)
        merged, merged_stats, engine = _run("hsm", 5, 24, MERGE_ALL)
        assert (merged.kernel.counters.hard_faults
                == plain.kernel.counters.hard_faults)
        for plug in engine.plugs():
            assert plug.merged_requests == 0


class TestMergedLifecycle:
    def _traced_run(self, block):
        machine, path = _setup("ext2", 13, 48)
        kernel = machine.kernel
        telemetry = Telemetry()
        kernel.attach_telemetry(telemetry)
        engine = kernel.attach_engine(block=block)
        tasks = _interleaved_readers(kernel, path, 48, readers=3)
        EventScheduler(kernel, tasks, engine=engine).run()
        return machine, telemetry

    def test_merged_records_close_exactly(self):
        machine, telemetry = self._traced_run(MERGE_ALL)
        records = list(telemetry.lifecycle.records)
        merged = [rec for rec in records if rec.merged_from]
        assert merged, "workload produced no merged requests"
        for rec in records:
            total = math.fsum([rec.queue_wait]
                              + [s for _, s in rec.components])
            assert total == rec.latency  # exact closure survives merging
        for rec in merged:
            members = rec.merged_from
            assert len(members) >= 2
            lo = min(page for _, page, _ in members)
            hi = max(page + cluster for _, page, cluster in members)
            assert rec.page == lo and rec.cluster == hi - lo
            assert rec.nbytes == sum(c for _, _, c in members) * PAGE_SIZE

    def test_secondaries_do_not_duplicate_records(self):
        """One lifecycle record per device request: merged groups record
        the union once, not once per member."""
        machine, telemetry = self._traced_run(MERGE_ALL)
        assert (len(telemetry.lifecycle)
                == machine.ext2.device.stats.reads)

    def test_unmerged_records_have_no_provenance(self):
        _, telemetry = self._traced_run(BlockConfig())
        assert all(rec.merged_from == () for rec in
                   telemetry.lifecycle.records)


class TestMergedFailure:
    def test_mid_union_defect_fails_every_member(self):
        machine, path = _setup("ext2", 17, 16)
        kernel = machine.kernel
        engine = kernel.attach_engine(block=MERGE_ALL)
        fd = kernel.open(path)
        addr = kernel._fd(fd).inode.extent_map.addr_of(4)
        machine.ext2.device.mark_bad_range(addr, PAGE_SIZE)

        outcomes = {}

        def reader(name, page):
            try:
                yield from kernel.pread_async(
                    fd, page * PAGE_SIZE, 2 * PAGE_SIZE)
            except IoSimError:
                outcomes[name] = "eio"
            else:
                outcomes[name] = "ok"

        tasks = [Task(f"r{i}", reader(f"r{i}", page))
                 for i, page in enumerate((2, 4, 6))]
        EventScheduler(kernel, tasks, engine=engine).run()
        # pages 2..8 coalesce into one union covering the defect at
        # page 4 -> the whole merged request fails, every waiter sees EIO
        assert outcomes == {"r0": "eio", "r1": "eio", "r2": "eio"}
        # the queue is not wedged: a clean read afterwards succeeds
        assert len(kernel.pread(fd, 10 * PAGE_SIZE, PAGE_SIZE)) == PAGE_SIZE
        kernel.close(fd)


class TestPlugThresholds:
    def _plugged_machine(self, **overrides):
        machine, path = _setup("ext2", 19, 64)
        kernel = machine.kernel
        config = BlockConfig(merge=True, plug=True, **overrides)
        engine = kernel.attach_engine(block=config)
        return machine, path, kernel, engine

    def test_depth_threshold_flushes_early(self):
        machine, path, kernel, engine = self._plugged_machine(
            plug_max_requests=2, plug_window=50 * MSEC)
        tasks = _interleaved_readers(kernel, path, 64, readers=4)
        EventScheduler(kernel, tasks, engine=engine).run()
        plug = engine.plugs()[0]
        assert plug.flushes > 0
        # a 2-deep plug can never have waited anywhere near the window
        assert plug.plug_wait_total < 50 * MSEC * plug.flushes

    def test_byte_threshold_flushes_early(self):
        machine, path, kernel, engine = self._plugged_machine(
            plug_max_bytes=4 * PAGE_SIZE, plug_window=50 * MSEC)
        tasks = _interleaved_readers(kernel, path, 64, readers=4)
        EventScheduler(kernel, tasks, engine=engine).run()
        assert engine.plugs()[0].flushes > 0

    def test_plug_wait_is_bounded_by_window(self):
        machine, path, kernel, engine = self._plugged_machine(
            plug_window=0.5 * MSEC)
        telemetry = Telemetry()
        kernel.attach_telemetry(telemetry)
        tasks = _interleaved_readers(kernel, path, 64, readers=3)
        EventScheduler(kernel, tasks, engine=engine).run()
        # plug latency shows up as queue wait in the closed breakdown,
        # never exceeding the window per request
        plug = engine.plugs()[0]
        assert plug.plug_wait_total >= 0.0
        for rec in telemetry.lifecycle.records:
            assert rec.queue_wait >= 0.0


class TestSubmitSpans:
    """Device-level unit tests for the merged scatter-list primitive."""

    def _disk(self, seed=1):
        import numpy as np

        from repro.devices.disk import DiskDevice
        return DiskDevice(rng=np.random.default_rng(seed))

    def test_single_span_is_submit(self):
        a, b = self._disk(), self._disk()
        one = a.submit_spans([(0, 4 * PAGE_SIZE)])
        two = b.submit(0, 4 * PAGE_SIZE, is_write=False)
        assert one == two
        assert a.stats.reads == b.stats.reads == 1
        assert a.busy_until == b.busy_until

    def test_merged_cheaper_than_separate(self):
        merged, separate = self._disk(), self._disk()
        spans = [(0, 2 * PAGE_SIZE), (8 * PAGE_SIZE, 2 * PAGE_SIZE),
                 (20 * PAGE_SIZE, 2 * PAGE_SIZE)]
        one = merged.submit_spans(spans)
        apart = sum(separate.read(addr, nbytes) for addr, nbytes in spans)
        # per-request overhead charged once instead of three times
        assert one.duration < apart
        assert merged.stats.reads == 1 and separate.stats.reads == 3
        assert one.nbytes == 6 * PAGE_SIZE

    def test_overhead_component_charged_once(self):
        disk = self._disk()
        disk.submit_spans([(0, PAGE_SIZE), (4 * PAGE_SIZE, PAGE_SIZE)])
        solo = self._disk()
        solo.read(0, PAGE_SIZE)
        # one controller overhead for the merged pair == one solo read's
        assert disk.component_totals["overhead"] == pytest.approx(
            solo.component_totals["overhead"])

    def test_cdrom_gap_read_through(self):
        import numpy as np

        from repro.devices.cdrom import CdromDevice
        drive = CdromDevice(rng=np.random.default_rng(3))
        gap = drive._gap_read_through_bytes
        assert gap > 0
        completion = drive.submit_spans(
            [(0, PAGE_SIZE), (PAGE_SIZE + gap, PAGE_SIZE)])
        # gap bytes are transferred (charged) but never delivered
        assert completion.nbytes == 2 * PAGE_SIZE
        assert drive.stats.bytes_read == 2 * PAGE_SIZE

    def test_empty_spans_rejected(self):
        with pytest.raises(ValueError):
            self._disk().submit_spans([])

    def test_bad_range_in_any_span_fails(self):
        disk = self._disk()
        disk.mark_bad_range(8 * PAGE_SIZE, PAGE_SIZE)
        with pytest.raises(IoSimError):
            disk.submit_spans([(0, PAGE_SIZE), (8 * PAGE_SIZE, PAGE_SIZE)])

    def test_injected_failure_consumed_once(self):
        disk = self._disk()
        disk.inject_failures(1)
        with pytest.raises(IoSimError):
            disk.submit_spans([(0, PAGE_SIZE), (4 * PAGE_SIZE, PAGE_SIZE)])
        # the merged request consumed the single injected failure
        disk.submit_spans([(0, PAGE_SIZE), (4 * PAGE_SIZE, PAGE_SIZE)])

    def test_nfs_single_rpc(self):
        import numpy as np

        from repro.devices.network import NfsDevice
        merged = NfsDevice(rng=np.random.default_rng(5))
        separate = NfsDevice(rng=np.random.default_rng(5))
        spans = [(0, 4 * PAGE_SIZE), (16 * PAGE_SIZE, 4 * PAGE_SIZE)]
        one = merged.submit_spans(spans)
        apart = sum(separate.read(addr, nbytes) for addr, nbytes in spans)
        assert one.duration < apart  # one round-trip, not two


class TestConfigValidation:
    def test_frozen(self):
        config = BlockConfig()
        with pytest.raises(AttributeError):
            config.merge = True

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            MergeClassPolicy(max_bytes=-1)
        with pytest.raises(ValueError):
            MergeClassPolicy(max_bytes=1 * MB, max_gap_pages=-1)
