"""Tests for the FSLEDS_FILL / FSLEDS_GET ioctls."""

import pytest

from repro.core.sled import SledVector
from repro.kernel.ioctl import FSLEDS_FILL, FSLEDS_GET, UnknownIoctlError
from repro.machine import Machine
from repro.sim.errors import InvalidArgumentError
from repro.sim.units import MB, PAGE_SIZE


def _machine():
    machine = Machine.unix_utilities(cache_pages=128, seed=11)
    return machine


class TestFsledsFill:
    def test_fill_installs_levels(self):
        machine = _machine()
        machine.kernel.ioctl(-1, FSLEDS_FILL,
                             {"memory": (1e-7, 50 * MB),
                              "ext2": (0.018, 9 * MB)})
        assert "ext2" in machine.kernel.sleds_table
        assert machine.kernel.sleds_table.memory.bandwidth == 50 * MB

    def test_fill_requires_dict(self):
        with pytest.raises(InvalidArgumentError):
            _machine().kernel.ioctl(-1, FSLEDS_FILL, "nope")

    def test_boot_fills_every_mounted_level(self):
        machine = _machine()
        entries = machine.boot()
        for key in entries:
            assert key in machine.kernel.sleds_table


class TestFsledsGet:
    def test_get_returns_validated_vector(self):
        machine = _machine()
        machine.boot()
        machine.ext2.create_text_file("f.txt", 300_000, seed=2)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f.txt")
        vector = k.ioctl(fd, FSLEDS_GET)
        assert isinstance(vector, SledVector)
        assert vector.file_size == 300_000
        k.close(fd)

    def test_get_without_boot_fails(self):
        machine = _machine()  # no boot: sleds table empty
        machine.ext2.create_text_file("f.txt", PAGE_SIZE, seed=2)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f.txt")
        with pytest.raises(KeyError):
            k.ioctl(fd, FSLEDS_GET)

    def test_get_reflects_cache_state(self):
        machine = _machine()
        machine.boot()
        machine.ext2.create_text_file("f.txt", 64 * PAGE_SIZE, seed=2)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f.txt")
        cold = k.get_sleds(fd)
        k.warm_file("/mnt/ext2/f.txt")
        warm = k.get_sleds(fd)
        memory_latency = k.sleds_table.memory.latency
        assert all(s.latency > memory_latency for s in cold)
        assert all(s.latency == memory_latency for s in warm)
        k.close(fd)

    def test_get_on_closed_fd(self):
        from repro.sim.errors import BadFileDescriptorError
        machine = _machine()
        machine.boot()
        with pytest.raises(BadFileDescriptorError):
            machine.kernel.ioctl(77, FSLEDS_GET)

    def test_get_does_not_perturb_cache(self):
        machine = _machine()
        machine.boot()
        machine.ext2.create_text_file("f.txt", 64 * PAGE_SIZE, seed=2)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f.txt")
        hits_before = k.page_cache.stats.hits
        misses_before = k.page_cache.stats.misses
        fd = k.open("/mnt/ext2/f.txt")
        k.get_sleds(fd)
        k.close(fd)
        assert k.page_cache.stats.hits == hits_before
        assert k.page_cache.stats.misses == misses_before

    def test_unknown_ioctl(self):
        machine = _machine()
        with pytest.raises(UnknownIoctlError):
            machine.kernel.ioctl(-1, 0x9999)

    def test_empty_file_vector(self):
        machine = _machine()
        machine.boot()
        k = machine.kernel
        fd = k.open("/mnt/ext2/empty.txt", "w")
        vector = k.get_sleds(fd)
        assert len(vector) == 0
        assert vector.file_size == 0
        k.close(fd)
