"""Tests for the FSLEDS_FILL / FSLEDS_GET ioctls."""

import pytest

from repro.core.sled import SledVector
from repro.kernel.ioctl import FSLEDS_FILL, FSLEDS_GET, UnknownIoctlError
from repro.machine import Machine
from repro.sim.errors import InvalidArgumentError
from repro.sim.units import MB, PAGE_SIZE


def _machine():
    machine = Machine.unix_utilities(cache_pages=128, seed=11)
    return machine


class TestFsledsFill:
    def test_fill_installs_levels(self):
        machine = _machine()
        machine.kernel.ioctl(-1, FSLEDS_FILL,
                             {"memory": (1e-7, 50 * MB),
                              "ext2": (0.018, 9 * MB)})
        assert "ext2" in machine.kernel.sleds_table
        assert machine.kernel.sleds_table.memory.bandwidth == 50 * MB

    def test_fill_requires_dict(self):
        with pytest.raises(InvalidArgumentError):
            _machine().kernel.ioctl(-1, FSLEDS_FILL, "nope")

    def test_boot_fills_every_mounted_level(self):
        machine = _machine()
        entries = machine.boot()
        for key in entries:
            assert key in machine.kernel.sleds_table


class TestFsledsGet:
    def test_get_returns_validated_vector(self):
        machine = _machine()
        machine.boot()
        machine.ext2.create_text_file("f.txt", 300_000, seed=2)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f.txt")
        vector = k.ioctl(fd, FSLEDS_GET)
        assert isinstance(vector, SledVector)
        assert vector.file_size == 300_000
        k.close(fd)

    def test_get_without_boot_fails(self):
        machine = _machine()  # no boot: sleds table empty
        machine.ext2.create_text_file("f.txt", PAGE_SIZE, seed=2)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f.txt")
        with pytest.raises(KeyError):
            k.ioctl(fd, FSLEDS_GET)

    def test_get_reflects_cache_state(self):
        machine = _machine()
        machine.boot()
        machine.ext2.create_text_file("f.txt", 64 * PAGE_SIZE, seed=2)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f.txt")
        cold = k.get_sleds(fd)
        k.warm_file("/mnt/ext2/f.txt")
        warm = k.get_sleds(fd)
        memory_latency = k.sleds_table.memory.latency
        assert all(s.latency > memory_latency for s in cold)
        assert all(s.latency == memory_latency for s in warm)
        k.close(fd)

    def test_get_on_closed_fd(self):
        from repro.sim.errors import BadFileDescriptorError
        machine = _machine()
        machine.boot()
        with pytest.raises(BadFileDescriptorError):
            machine.kernel.ioctl(77, FSLEDS_GET)

    def test_get_does_not_perturb_cache(self):
        machine = _machine()
        machine.boot()
        machine.ext2.create_text_file("f.txt", 64 * PAGE_SIZE, seed=2)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f.txt")
        hits_before = k.page_cache.stats.hits
        misses_before = k.page_cache.stats.misses
        fd = k.open("/mnt/ext2/f.txt")
        k.get_sleds(fd)
        k.close(fd)
        assert k.page_cache.stats.hits == hits_before
        assert k.page_cache.stats.misses == misses_before

    def test_unknown_ioctl(self):
        machine = _machine()
        with pytest.raises(UnknownIoctlError):
            machine.kernel.ioctl(-1, 0x9999)

    def test_empty_file_vector(self):
        machine = _machine()
        machine.boot()
        k = machine.kernel
        fd = k.open("/mnt/ext2/empty.txt", "w")
        vector = k.get_sleds(fd)
        assert len(vector) == 0
        assert vector.file_size == 0
        k.close(fd)


class TestSledsStampCache:
    """FSLEDS_GET answers from the generation-stamped cache while nothing
    the builder reads has moved — and *never* after something has."""

    def _open(self, pages=64):
        machine = _machine()
        machine.boot()
        machine.ext2.create_text_file("f.txt", pages * PAGE_SIZE, seed=2)
        fd = machine.kernel.open("/mnt/ext2/f.txt", "r+")
        return machine, fd

    def test_repeat_get_is_cache_hit_and_identical(self):
        machine, fd = self._open()
        k = machine.kernel
        first = k.get_sleds(fd)
        builds = k.counters.sleds_builds
        second = k.get_sleds(fd)
        assert second == first
        assert k.counters.sleds_builds == builds
        assert k.counters.sleds_cache_hits >= 1

    def test_repeat_get_charges_flat_cpu(self):
        """The cached refetch must not pay the O(npages) walk charge."""
        machine, fd = self._open(pages=256)
        k = machine.kernel
        k.get_sleds(fd)
        snap = k.clock.snapshot()
        k.get_sleds(fd)
        refetch_cpu = k.clock.elapsed_by_category(snap).get("cpu", 0.0)
        # syscall overhead + flat stamp-compare cost, nowhere near 256 pages
        assert refetch_cpu < k.syscall_overhead + 10 * 0.2e-6

    def test_read_faulting_pages_invalidates(self):
        machine, fd = self._open()
        k = machine.kernel
        cold = k.get_sleds(fd)
        k.pread(fd, 0, 8 * PAGE_SIZE)  # pages became resident
        warm = k.get_sleds(fd)
        assert warm != cold
        assert warm.sled_at(0).latency == k.sleds_table.memory.latency

    def test_write_extending_file_invalidates(self):
        machine, fd = self._open(pages=4)
        k = machine.kernel
        before = k.get_sleds(fd)
        k.lseek(fd, 0, 2)
        k.write(fd, b"y" * (2 * PAGE_SIZE))
        after = k.get_sleds(fd)
        assert after.file_size == before.file_size + 2 * PAGE_SIZE

    def test_invalidate_inode_invalidates(self):
        machine, fd = self._open()
        k = machine.kernel
        k.warm_file("/mnt/ext2/f.txt")
        warm = k.get_sleds(fd)
        inode_id = k.stat("/mnt/ext2/f.txt").inode_id
        k.page_cache.invalidate_inode(inode_id)
        cold = k.get_sleds(fd)
        assert cold != warm
        assert cold.sled_at(0).latency > k.sleds_table.memory.latency

    def test_refill_invalidates(self):
        """Re-running the boot script installs new rows; a vector built
        against the old ones must not survive."""
        machine, fd = self._open()
        k = machine.kernel
        old = k.get_sleds(fd)
        k.ioctl(-1, FSLEDS_FILL, {"ext2": (0.5, MB)})
        new = k.get_sleds(fd)
        assert new != old
        assert new.sled_at(0).latency == 0.5

    def test_truncate_via_reopen_invalidates(self):
        machine, fd = self._open(pages=4)
        k = machine.kernel
        k.get_sleds(fd)
        wfd = k.open("/mnt/ext2/f.txt", "w")  # O_TRUNC
        assert k.get_sleds(wfd).file_size == 0
        k.close(wfd)

    def test_hsm_migration_invalidates(self):
        from repro.machine import Machine
        machine = Machine.hsm(cache_pages=128, seed=5)
        machine.boot()
        fs = machine.hsmfs
        inode = fs.create_tape_file("cold.dat", 16 * PAGE_SIZE, "VOL000")
        k = machine.kernel
        fd = k.open("/mnt/hsm/cold.dat")
        k.pread(fd, 0, 8 * PAGE_SIZE)  # stages pages onto the hsm disk
        k.sync()
        staged = k.get_sleds(fd)
        fs.migrate_to_tape(inode)
        migrated = k.get_sleds(fd)
        assert migrated != staged
        assert fs.staged_count(inode) == 0

    def test_stamp_read_is_free(self):
        machine, fd = self._open()
        k = machine.kernel
        k.get_sleds(fd)
        now = k.clock.now
        syscalls = k.counters.syscalls
        stamp = k.sleds_stamp(fd)
        assert k.clock.now == now
        assert k.counters.syscalls == syscalls
        assert stamp == k.sleds_stamp(fd)

    def test_pick_refresh_skipped_on_unchanged_stamp(self):
        from repro.core.pick import (
            sleds_pick_finish,
            sleds_pick_init,
            sleds_pick_next_read,
        )
        machine, fd = self._open(pages=32)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f.txt")  # fully cached: stamp goes quiet
        sleds_pick_init(k, fd, 4 * PAGE_SIZE, refresh_every=2)
        skips_before = k.counters.sleds_refetch_skips
        while sleds_pick_next_read(k, fd) is not None:
            pass  # cache hits only: no residency change between picks
        sleds_pick_finish(k, fd)
        assert k.counters.sleds_refetch_skips > skips_before

    def test_progress_refetch_skipped_on_unchanged_stamp(self):
        from repro.apps.progress import retrieve_with_progress
        machine, _ = self._open(pages=64)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f.txt")  # second retrieval is all hits
        skips_before = k.counters.sleds_refetch_skips
        report = retrieve_with_progress(k, "/mnt/ext2/f.txt",
                                        bufsize=2 * PAGE_SIZE)
        assert report.samples
        assert k.counters.sleds_refetch_skips > skips_before
