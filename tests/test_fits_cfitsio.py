"""Tests for the cfitsio-like layer over the simulated syscall interface."""

import numpy as np
import pytest

from repro.fits.cfitsio import (
    append_bintable,
    create_image,
    open_image,
    read_bintable,
    read_elements,
)
from repro.fits.format import BinTableHDU, FitsFormatError
from repro.machine import Machine


def _machine():
    machine = Machine.lheasoft(cache_pages=256, seed=101)
    machine.boot()
    return machine


def _image(shape=(32, 64), dtype=np.int16, seed=0):
    rng = np.random.default_rng(seed)
    if np.issubdtype(np.dtype(dtype), np.integer):
        return rng.integers(0, 1000, size=shape).astype(dtype)
    return rng.normal(size=shape).astype(dtype)


class TestImageRoundtrip:
    @pytest.mark.parametrize("dtype", [np.int16, np.int32, np.float32,
                                       np.float64, np.uint8])
    def test_roundtrip_dtypes(self, dtype):
        machine = _machine()
        image = _image(dtype=dtype)
        create_image(machine.kernel, "/mnt/ext2/img.fits", image)
        k = machine.kernel
        fd = k.open("/mnt/ext2/img.fits")
        info = open_image(k, fd, "img.fits")
        assert info.shape == [64, 32]
        back = read_elements(k, fd, info, 0, info.element_count)
        k.close(fd)
        assert np.array_equal(back.reshape(32, 64), image)

    def test_partial_element_reads(self):
        machine = _machine()
        image = _image()
        create_image(machine.kernel, "/mnt/ext2/img.fits", image)
        k = machine.kernel
        fd = k.open("/mnt/ext2/img.fits")
        info = open_image(k, fd, "img.fits")
        flat = image.reshape(-1)
        chunk = read_elements(k, fd, info, 100, 50)
        assert np.array_equal(chunk, flat[100:150])
        k.close(fd)

    def test_out_of_range_elements_rejected(self):
        machine = _machine()
        create_image(machine.kernel, "/mnt/ext2/img.fits", _image())
        k = machine.kernel
        fd = k.open("/mnt/ext2/img.fits")
        info = open_image(k, fd, "img.fits")
        with pytest.raises(FitsFormatError):
            read_elements(k, fd, info, info.element_count - 1, 2)
        k.close(fd)

    def test_non_fits_rejected(self):
        machine = _machine()
        k = machine.kernel
        fd = k.open("/mnt/ext2/junk", "w")
        k.write(fd, b"not a fits file" * 400)
        k.close(fd)
        fd = k.open("/mnt/ext2/junk")
        with pytest.raises(FitsFormatError):
            open_image(k, fd, "junk")
        k.close(fd)

    def test_truncated_header_rejected(self):
        machine = _machine()
        k = machine.kernel
        fd = k.open("/mnt/ext2/tiny", "w")
        k.write(fd, b"SIMPLE")
        k.close(fd)
        fd = k.open("/mnt/ext2/tiny")
        with pytest.raises(FitsFormatError):
            open_image(k, fd, "tiny")
        k.close(fd)


class TestBinTableAppend:
    def test_append_and_read_back(self):
        machine = _machine()
        create_image(machine.kernel, "/mnt/ext2/img.fits", _image())
        counts = np.arange(16, dtype=">i4")
        append_bintable(machine.kernel, "/mnt/ext2/img.fits",
                        BinTableHDU(columns={"COUNTS": counts}))
        table = read_bintable(machine.kernel, "/mnt/ext2/img.fits", 1)
        assert np.array_equal(table.columns["COUNTS"], np.arange(16))

    def test_primary_image_intact_after_append(self):
        machine = _machine()
        image = _image(seed=3)
        create_image(machine.kernel, "/mnt/ext2/img.fits", image)
        append_bintable(machine.kernel, "/mnt/ext2/img.fits",
                        BinTableHDU(columns={"C": np.zeros(4, dtype=">i4")}))
        k = machine.kernel
        fd = k.open("/mnt/ext2/img.fits")
        info = open_image(k, fd, "img.fits")
        back = read_elements(k, fd, info, 0, info.element_count)
        k.close(fd)
        assert np.array_equal(back.reshape(image.shape), image)

    def test_missing_hdu_rejected(self):
        machine = _machine()
        create_image(machine.kernel, "/mnt/ext2/img.fits", _image())
        with pytest.raises(FitsFormatError):
            read_bintable(machine.kernel, "/mnt/ext2/img.fits", 1)


class TestBscaleBzero:
    def test_scaled_reads_return_physical_values(self):
        machine = _machine()
        raw = np.array([[0, 100], [200, 300]], dtype=np.int16)
        create_image(machine.kernel, "/mnt/ext2/sc.fits", raw,
                     bscale=0.5, bzero=10.0)
        k = machine.kernel
        fd = k.open("/mnt/ext2/sc.fits")
        info = open_image(k, fd, "sc.fits")
        assert info.scaled
        physical = read_elements(k, fd, info, 0, 4)
        assert np.allclose(physical, raw.reshape(-1) * 0.5 + 10.0)
        rawback = read_elements(k, fd, info, 0, 4, apply_scaling=False)
        assert np.array_equal(rawback, raw.reshape(-1))
        k.close(fd)

    def test_unscaled_files_untouched(self):
        machine = _machine()
        raw = np.arange(8, dtype=np.int16).reshape(2, 4)
        create_image(machine.kernel, "/mnt/ext2/plain.fits", raw)
        k = machine.kernel
        fd = k.open("/mnt/ext2/plain.fits")
        info = open_image(k, fd, "plain.fits")
        assert not info.scaled
        assert read_elements(k, fd, info, 0, 8).dtype == np.int16
        k.close(fd)

    def test_fimhisto_bins_physical_values(self):
        from repro.lhea.fimhisto import fimhisto
        machine = _machine()
        raw = np.full((16, 16), 100, dtype=np.int16)
        raw[:8] = 0
        create_image(machine.kernel, "/mnt/ext2/sch.fits", raw,
                     bscale=2.0, bzero=1.0)
        result = fimhisto(machine.kernel, "/mnt/ext2/sch.fits",
                          "/mnt/ext2/scho.fits", nbins=4)
        # physical range is [1, 201], not the raw [0, 100]
        assert result.data_min == 1.0
        assert result.data_max == 201.0
        assert result.counts.sum() == raw.size

    def test_fimgbin_preserves_scaling_cards(self):
        from repro.lhea.fimgbin import fimgbin
        machine = _machine()
        rng = np.random.default_rng(1)
        raw = rng.integers(0, 100, size=(16, 16), dtype=np.int16)
        create_image(machine.kernel, "/mnt/ext2/scb.fits", raw,
                     bscale=0.25, bzero=5.0)
        fimgbin(machine.kernel, "/mnt/ext2/scb.fits",
                "/mnt/ext2/scbo.fits", factor=4)
        k = machine.kernel
        fd = k.open("/mnt/ext2/scbo.fits")
        info = open_image(k, fd, "scbo.fits")
        assert info.bscale == 0.25
        assert info.bzero == 5.0
        # physical mean of the output equals the physical mean of the input
        physical = read_elements(k, fd, info, 0, info.element_count)
        expected = raw.astype(float).reshape(8, 2, 8, 2).mean(axis=(1, 3))
        expected_physical = np.rint(expected).astype(np.int16) * 0.25 + 5.0
        assert np.allclose(physical.reshape(8, 8), expected_physical)
        k.close(fd)
