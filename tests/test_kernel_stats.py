"""Tests for per-run accounting: counters, hit ratio, time clamping."""

import pytest

from repro.apps.wc import wc
from repro.kernel.stats import KernelCounters, ProcessRun
from repro.sim.units import PAGE_SIZE


class TestKernelCounters:
    def test_cache_counters_delta(self):
        a = KernelCounters(cache_hits=10, cache_misses=4, evictions=2)
        b = KernelCounters(cache_hits=25, cache_misses=9, evictions=2)
        delta = b.delta(a)
        assert delta.cache_hits == 15
        assert delta.cache_misses == 5
        assert delta.evictions == 0

    def test_kernel_maintains_cache_counters(self, unix_machine):
        k = unix_machine.kernel
        unix_machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1)
        with k.process() as cold:
            wc(k, "/mnt/ext2/f")
        with k.process() as warm:
            wc(k, "/mnt/ext2/f")
        assert cold.counters.cache_misses > 0
        assert warm.counters.cache_misses == 0
        assert warm.counters.cache_hits > 0

    def test_evictions_counted_under_pressure(self, unix_machine):
        k = unix_machine.kernel
        cache_pages = k.page_cache.capacity_pages
        unix_machine.ext2.create_text_file(
            "big", (cache_pages + 32) * PAGE_SIZE, seed=1)
        with k.process() as run:
            wc(k, "/mnt/ext2/big")
        assert run.counters.evictions > 0


class TestProcessRun:
    def test_hit_ratio(self, unix_machine):
        k = unix_machine.kernel
        unix_machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1)
        with k.process() as cold:
            wc(k, "/mnt/ext2/f")
        with k.process() as warm:
            wc(k, "/mnt/ext2/f")
        assert 0.0 < cold.hit_ratio < 1.0
        assert warm.hit_ratio == 1.0

    def test_hit_ratio_no_accesses_is_zero(self):
        run = ProcessRun(counters=KernelCounters())
        assert run.hit_ratio == 0.0

    def test_hit_ratio_requires_finalized_run(self):
        with pytest.raises(AssertionError):
            ProcessRun().hit_ratio

    def test_io_time_clamped_at_zero(self):
        run = ProcessRun(counters=KernelCounters(), elapsed=1.0,
                         by_category={"cpu": 0.8, "memory": 0.3})
        assert run.io_time == 0.0

    def test_io_time_positive_when_io_dominates(self, unix_machine):
        k = unix_machine.kernel
        unix_machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1)
        with k.process() as run:
            wc(k, "/mnt/ext2/f")
        assert run.io_time > 0.0
        assert run.io_time <= run.elapsed
