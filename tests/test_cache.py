"""Unit and property tests for the page cache, policies, and readahead."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.page_cache import PageCache
from repro.cache.policies import (
    ClockPolicy,
    LruPolicy,
    TwoQPolicy,
    make_policy,
)
from repro.cache.readahead import ReadaheadWindow


class TestLruPolicy:
    def test_evicts_least_recent(self):
        lru = LruPolicy()
        for key in "abc":
            lru.on_insert(key)
        lru.on_hit("a")
        assert lru.choose_victim() == "b"

    def test_duplicate_insert_rejected(self):
        lru = LruPolicy()
        lru.on_insert("a")
        with pytest.raises(ValueError):
            lru.on_insert("a")

    def test_remove_forgets(self):
        lru = LruPolicy()
        lru.on_insert("a")
        lru.on_insert("b")
        lru.on_remove("a")
        assert lru.choose_victim() == "b"
        assert len(lru) == 0


class TestClockPolicy:
    def test_second_chance(self):
        clock = ClockPolicy()
        for key in "abc":
            clock.on_insert(key)
        clock.on_hit("a")  # already referenced on insert, stays referenced
        # all referenced: hand clears a, b, c, then evicts a
        assert clock.choose_victim() == "a"

    def test_unreferenced_evicted_first(self):
        clock = ClockPolicy()
        for key in "abc":
            clock.on_insert(key)
        clock.choose_victim()  # clears and eventually pops 'a'
        clock.on_insert("d")
        # b and c had their bits cleared by the sweep; b is at the hand
        assert clock.choose_victim() == "b"


class TestTwoQPolicy:
    def test_scan_does_not_evict_protected(self):
        twoq = TwoQPolicy(a1in_fraction=0.25)
        # promote "hot" into Am via ghost re-insert
        twoq.on_insert("hot")
        victim = twoq.choose_victim()
        assert victim == "hot"  # through A1in into ghost
        twoq.on_insert("hot")  # ghost hit -> Am
        for i in range(12):
            twoq.on_insert(f"scan{i}")
        victims = [twoq.choose_victim() for _ in range(10)]
        assert "hot" not in victims

    def test_bad_fractions_rejected(self):
        with pytest.raises(ValueError):
            TwoQPolicy(a1in_fraction=0.0)
        with pytest.raises(ValueError):
            TwoQPolicy(ghost_fraction=-0.1)


class TestMakePolicy:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LruPolicy), ("clock", ClockPolicy), ("2q", TwoQPolicy),
        ("LRU", LruPolicy),
    ])
    def test_factory(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("fifo")


class TestPageCache:
    def test_capacity_enforced(self):
        cache = PageCache(capacity_pages=2)
        cache.insert((1, 0))
        cache.insert((1, 1))
        evicted = cache.insert((1, 2))
        assert evicted == (1, 0)
        assert len(cache) == 2

    def test_access_hit_and_miss_counters(self):
        cache = PageCache(4)
        assert cache.access((1, 0)) is False
        cache.insert((1, 0))
        assert cache.access((1, 0)) is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_peek_does_not_touch_recency(self):
        cache = PageCache(2)
        cache.insert((1, 0))
        cache.insert((1, 1))
        cache.peek((1, 0))  # must NOT refresh (1,0)
        evicted = cache.insert((1, 2))
        assert evicted == (1, 0)

    def test_access_refreshes_recency(self):
        cache = PageCache(2)
        cache.insert((1, 0))
        cache.insert((1, 1))
        cache.access((1, 0))
        evicted = cache.insert((1, 2))
        assert evicted == (1, 1)

    def test_reinsert_refreshes_without_eviction(self):
        cache = PageCache(2)
        cache.insert((1, 0))
        cache.insert((1, 1))
        assert cache.insert((1, 0)) is None
        assert cache.insert((1, 2)) == (1, 1)

    def test_invalidate(self):
        cache = PageCache(2)
        cache.insert((1, 0))
        assert cache.invalidate((1, 0)) is True
        assert cache.invalidate((1, 0)) is False
        assert (1, 0) not in cache

    def test_invalidate_inode_drops_only_that_inode(self):
        cache = PageCache(8)
        for p in range(3):
            cache.insert((1, p))
            cache.insert((2, p))
        assert cache.invalidate_inode(1) == 3
        assert cache.resident_count(2, 3) == 3
        assert cache.resident_count(1, 3) == 0

    def test_clear(self):
        cache = PageCache(4)
        cache.insert((1, 0))
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_resident_pages_bitmap(self):
        cache = PageCache(4)
        cache.insert((1, 0))
        cache.insert((1, 2))
        assert cache.resident_pages(1, 4) == [True, False, True, False]

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            PageCache(0)

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 20)),
                    min_size=1, max_size=200),
           st.sampled_from(["lru", "clock", "2q"]))
    @settings(max_examples=50, deadline=None)
    def test_capacity_invariant_all_policies(self, accesses, policy):
        cache = PageCache(capacity_pages=5, policy=policy)
        for key in accesses:
            if not cache.access(key):
                cache.insert(key)
            assert len(cache) <= 5
            assert len(cache.policy) == len(cache)

    @given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 15)),
                    min_size=1, max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_resident_set_matches_policy_lru(self, accesses):
        cache = PageCache(capacity_pages=4, policy="lru")
        for key in accesses:
            if not cache.access(key):
                cache.insert(key)
        # every resident page is tracked and peekable
        for inode in range(3):
            for page, resident in enumerate(cache.resident_pages(inode, 16)):
                assert resident == cache.peek((inode, page))


class TestResidencyIndex:
    def test_generation_bumps_on_membership_changes(self):
        cache = PageCache(4)
        assert cache.generation(1) == 0
        cache.insert((1, 0))
        g1 = cache.generation(1)
        assert g1 > 0
        cache.invalidate((1, 0))
        assert cache.generation(1) > g1

    def test_generation_not_bumped_by_recency(self):
        """Hits and re-inserts move recency, not residency: the stamp must
        stay put or cached vectors would never be reused."""
        cache = PageCache(4)
        cache.insert((1, 0))
        g = cache.generation(1)
        cache.access((1, 0))
        cache.insert((1, 0))  # already-resident: refresh only
        cache.peek((1, 0))
        assert cache.generation(1) == g

    def test_generation_isolated_per_inode(self):
        cache = PageCache(8)
        cache.insert((1, 0))
        g2 = cache.generation(2)
        cache.insert((1, 1))
        assert cache.generation(2) == g2

    def test_eviction_bumps_victims_inode(self):
        cache = PageCache(1)
        cache.insert((1, 0))
        g = cache.generation(1)
        cache.insert((2, 0))  # evicts (1, 0)
        assert cache.generation(1) > g

    def test_invalidate_inode_bumps_even_when_empty(self):
        """A truncate of a never-cached file must still move the stamp."""
        cache = PageCache(4)
        g = cache.generation(5)
        assert cache.invalidate_inode(5) == 0
        assert cache.generation(5) > g

    def test_generation_survives_full_eviction(self):
        """Generations never reset to 0 while the cache lives, so a stamp
        taken before an evict-everything episode can't collide with one
        taken after."""
        cache = PageCache(4)
        cache.insert((1, 0))
        g = cache.generation(1)
        cache.clear()
        assert cache.generation(1) > g

    def test_resident_set_tracks_membership(self):
        cache = PageCache(8)
        for p in (0, 3, 5):
            cache.insert((1, p))
        cache.insert((2, 1))
        assert cache.resident_set(1) == {0, 3, 5}
        assert cache.resident_set(2) == {1}
        assert cache.resident_set(9) == frozenset()
        cache.invalidate((1, 3))
        assert cache.resident_set(1) == {0, 5}

    @given(st.lists(st.tuples(
        st.sampled_from(["insert", "access", "invalidate", "inode"]),
        st.integers(0, 2), st.integers(0, 9)), min_size=1, max_size=150),
        st.sampled_from(["lru", "clock", "2q"]))
    @settings(max_examples=50, deadline=None)
    def test_index_mirrors_resident_under_churn(self, ops, policy):
        """The per-inode index is always exactly a partition of the
        resident set, for every policy and operation mix."""
        cache = PageCache(capacity_pages=5, policy=policy)
        for op, inode, page in ops:
            if op == "insert":
                cache.insert((inode, page))
            elif op == "access":
                cache.access((inode, page))
            elif op == "invalidate":
                cache.invalidate((inode, page))
            else:
                cache.invalidate_inode(inode)
            rebuilt = {}
            for key in cache._resident:
                rebuilt.setdefault(key[0], set()).add(key[1])
            indexed = {inode_id: set(cache._index.pages(inode_id))
                       for inode_id in cache._index.inodes()}
            assert rebuilt == indexed


class TestPinnedEvictionRefresh:
    def test_all_pinned_forced_eviction(self):
        """Regression: skipping pinned victims used to re-admit them via
        on_insert + on_hit.  With every page pinned the loop visits each
        victim once, must not corrupt the policy, and ends in a forced
        eviction."""
        cache = PageCache(3, max_pinned_fraction=1.0)
        for p in range(3):
            cache.insert((1, p))
            assert cache.pin((1, p))
        evicted = cache.insert((1, 3))
        assert evicted is not None
        assert cache.stats.forced_pinned_evictions == 1
        assert len(cache) == 3
        assert len(cache.policy) == len(cache)
        assert not cache.is_pinned(evicted)

    @pytest.mark.parametrize("policy", ["lru", "clock", "2q"])
    def test_pinned_skip_keeps_policy_consistent(self, policy):
        cache = PageCache(4, policy=policy, max_pinned_fraction=1.0)
        for p in range(4):
            cache.insert((1, p))
        assert cache.pin((1, 0))
        for p in range(4, 10):
            cache.insert((1, p))
            assert len(cache.policy) == len(cache) == 4
            assert cache.peek((1, 0))  # the pinned page never leaves

    def test_fifo_style_policy_needs_no_duplicate_tolerance(self):
        """A list-backed policy whose on_insert is not idempotent works as
        a pinned-eviction citizen by overriding on_refresh — the dedicated
        hook exists precisely so such policies never see a double-insert."""
        from repro.cache.policies import ReplacementPolicy

        class FifoList(ReplacementPolicy):
            def __init__(self):
                self.queue = []

            def on_insert(self, key):
                self.queue.append(key)  # duplicates if called twice!

            def on_hit(self, key):
                pass

            def on_remove(self, key):
                self.queue.remove(key)

            def choose_victim(self):
                return self.queue.pop(0)

            def on_refresh(self, key):
                self.queue.append(key)  # victim was popped: one append

            def __len__(self):
                return len(self.queue)

        cache = PageCache(3, policy=FifoList(), max_pinned_fraction=1.0)
        for p in range(3):
            cache.insert((1, p))
        assert cache.pin((1, 0))
        for p in range(3, 8):
            cache.insert((1, p))
            assert len(cache.policy.queue) == len(cache) == 3
            assert len(set(cache.policy.queue)) == len(cache.policy.queue)


class TestLinearScanPathology:
    def test_two_pass_lru_gains_nothing(self):
        """The paper's Figure 3: 5-block file through a 3-block cache."""
        cache = PageCache(3)
        faults_pass1 = faults_pass2 = 0
        for block in range(5):
            if not cache.access((1, block)):
                cache.insert((1, block))
                faults_pass1 += 1
        for block in range(5):
            if not cache.access((1, block)):
                cache.insert((1, block))
                faults_pass2 += 1
        assert faults_pass1 == 5
        assert faults_pass2 == 5  # LRU throws the tail out as we go

    def test_cached_first_order_wins(self):
        cache = PageCache(3)
        for block in range(5):
            if not cache.access((1, block)):
                cache.insert((1, block))
        cached = [b for b in range(5) if cache.peek((1, b))]
        uncached = [b for b in range(5) if not cache.peek((1, b))]
        faults = 0
        for block in cached + uncached:
            if not cache.access((1, block)):
                cache.insert((1, block))
                faults += 1
        assert faults == 2  # only the two uncached blocks


class TestReadahead:
    def test_window_grows_on_sequential(self):
        window = ReadaheadWindow(min_pages=4, max_pages=16)
        assert window.advise(0) == 4
        assert window.advise(1) == 8
        assert window.advise(2) == 16
        assert window.advise(3) == 16  # capped

    def test_window_collapses_on_random(self):
        window = ReadaheadWindow(min_pages=4, max_pages=16)
        for page in range(3):
            window.advise(page)
        assert window.advise(100) == 4

    def test_reset(self):
        window = ReadaheadWindow()
        window.advise(0)
        window.advise(1)
        window.reset()
        assert window.window_pages == window.min_pages

    def test_grow_and_collapse_counters(self):
        window = ReadaheadWindow(min_pages=4, max_pages=16)
        for page in range(4):
            window.advise(page)          # two doublings, then capped
        assert window.grows == 2
        window.advise(100)               # random access collapses
        assert window.collapses == 1

    def test_collapse_at_minimum_not_counted(self):
        window = ReadaheadWindow(min_pages=4, max_pages=16)
        window.advise(0)
        window.advise(50)                # window still at min_pages
        assert window.collapses == 0
        assert window.grows == 0

    def test_negative_page_rejected(self):
        with pytest.raises(ValueError):
            ReadaheadWindow().advise(-1)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            ReadaheadWindow(min_pages=8, max_pages=4)
        with pytest.raises(ValueError):
            ReadaheadWindow(min_pages=0, max_pages=4)
