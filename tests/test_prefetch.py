"""Tests for the SLED-driven async prefetcher (repro.sim.prefetch).

The prefetcher is speculation with seatbelts: it must overlap device
service with compute (the win), respect its in-flight byte cap, withdraw
speculation under cache pressure, never surface device errors, and be a
strict no-op on a kernel that never attaches one.
"""

import pytest

from repro.core.pick import (
    sleds_pick_finish,
    sleds_pick_init,
    sleds_pick_next_read,
)
from repro.machine import Machine
from repro.sim.errors import InvalidArgumentError
from repro.sim.prefetch import Prefetcher
from repro.sim.tasks import EventScheduler, Task
from repro.sim.units import MB, PAGE_SIZE


def _machine(cache_pages=4096, pages=256, seed=777):
    machine = Machine.unix_utilities(cache_pages=cache_pages, seed=seed)
    machine.ext2.create_text_file("f", pages * PAGE_SIZE, seed=1)
    machine.boot()
    return machine


def _compute_reader(kernel, path, pages, cpu_per_page=200e-6,
                    prefetch=False, budget=None):
    """Read a file page by page with compute per page — the shape where
    speculation pays: the device works while the task burns CPU."""

    def task():
        fd = kernel.open(path)
        prefetcher = None
        if prefetch:
            prefetcher = Prefetcher(kernel).attach()
            prefetcher.prefetch_fd(fd, budget_bytes=budget)
        for page in range(pages):
            data = yield from kernel.pread_async(
                fd, page * PAGE_SIZE, PAGE_SIZE)
            assert len(data) == PAGE_SIZE
            kernel.charge_cpu(cpu_per_page)
        kernel.close(fd)
        return prefetcher

    return task()


class TestOverlap:
    def test_prefetch_hides_fault_latency(self):
        plain = _machine()
        kernel = plain.kernel
        engine = kernel.attach_engine()
        t = Task("r", _compute_reader(kernel, "/mnt/ext2/f", 256))
        EventScheduler(kernel, [t], engine=engine).run()
        base_time = kernel.clock.now
        base_faults = kernel.counters.hard_faults

        sped = _machine()
        kernel = sped.kernel
        engine = kernel.attach_engine()
        t = Task("r", _compute_reader(kernel, "/mnt/ext2/f", 256,
                                      prefetch=True))
        stats = EventScheduler(kernel, [t], engine=engine).run()
        prefetcher = stats["r"].result
        assert kernel.clock.now < base_time
        assert kernel.counters.hard_faults < base_faults
        assert prefetcher.used_pages > 0
        assert prefetcher.issued_pages >= prefetcher.used_pages
        assert prefetcher.failed_requests == 0

    def test_deterministic(self):
        def once():
            machine = _machine()
            kernel = machine.kernel
            engine = kernel.attach_engine()
            t = Task("r", _compute_reader(kernel, "/mnt/ext2/f", 256,
                                          prefetch=True))
            stats = EventScheduler(kernel, [t], engine=engine).run()
            prefetcher = stats["r"].result
            return (kernel.clock.now, kernel.counters.hard_faults,
                    prefetcher.issued_pages, prefetcher.used_pages,
                    prefetcher.cancelled_requests)

        assert once() == once()


class TestSeatbelts:
    def test_requires_engine(self):
        machine = _machine()
        with pytest.raises(InvalidArgumentError):
            Prefetcher(machine.kernel)  # no engine attached

    def test_validation(self):
        machine = _machine()
        machine.kernel.attach_engine()
        with pytest.raises(InvalidArgumentError):
            Prefetcher(machine.kernel, max_inflight_bytes=0)
        with pytest.raises(InvalidArgumentError):
            Prefetcher(machine.kernel, max_run_pages=0)

    def test_inflight_cap_throttles_submission(self):
        machine = _machine()
        kernel = machine.kernel
        kernel.attach_engine()
        prefetcher = Prefetcher(kernel, max_inflight_bytes=4 * PAGE_SIZE,
                                max_run_pages=2)
        fd = kernel.open("/mnt/ext2/f")
        planned = prefetcher.prefetch_fd(fd)
        assert planned == 256 * PAGE_SIZE
        # only the cap's worth submitted; the rest waits in the plan
        assert prefetcher.inflight_bytes <= 4 * PAGE_SIZE
        assert prefetcher.planned_runs > 0
        kernel.close(fd)

    def test_budget_bounds_planning(self):
        machine = _machine()
        kernel = machine.kernel
        kernel.attach_engine()
        prefetcher = Prefetcher(kernel, max_inflight_bytes=64 * MB)
        fd = kernel.open("/mnt/ext2/f")
        planned = prefetcher.prefetch_fd(fd, budget_bytes=8 * PAGE_SIZE)
        assert planned <= 8 * PAGE_SIZE
        kernel.close(fd)

    def test_resident_pages_not_planned(self):
        machine = _machine()
        kernel = machine.kernel
        fd = kernel.open("/mnt/ext2/f")
        kernel.pread(fd, 0, 32 * PAGE_SIZE)  # fault in the head
        kernel.attach_engine()
        prefetcher = Prefetcher(kernel)
        planned = prefetcher.prefetch_fd(fd)
        assert planned <= (256 - 32) * PAGE_SIZE
        kernel.close(fd)

    def test_cache_pressure_cancels_speculation(self):
        machine = _machine(cache_pages=24, pages=128)
        kernel = machine.kernel
        engine = kernel.attach_engine()
        prefetcher = Prefetcher(kernel, max_inflight_bytes=64 * MB,
                                max_run_pages=4).attach()

        def task():
            fd = kernel.open("/mnt/ext2/f")
            prefetcher.prefetch_fd(fd)
            # a couple of demand reads so the scheduler drives the loop
            # while completions land and fill the tiny cache
            for page in (0, 64):
                yield from kernel.pread_async(fd, page * PAGE_SIZE,
                                              PAGE_SIZE)
            kernel.close(fd)

        EventScheduler(kernel, [Task("r", task())], engine=engine).run()
        engine.loop.run_until_idle()
        assert prefetcher.cancelled_requests > 0
        assert prefetcher.failed_requests == 0
        # withdrawn futures resolved with None, nothing left accounted
        assert prefetcher.inflight_bytes == 0 or prefetcher.planned_runs >= 0

    def test_device_errors_never_surface(self):
        machine = _machine(pages=32)
        kernel = machine.kernel
        engine = kernel.attach_engine()
        prefetcher = Prefetcher(kernel).attach()
        fd = kernel.open("/mnt/ext2/f")
        machine.ext2.device.inject_failures(100)
        prefetcher.prefetch_fd(fd)
        engine.loop.run_until_idle()
        machine.ext2.device.clear_failures()
        assert prefetcher.failed_requests > 0
        # the demand path still works fine afterwards
        assert len(kernel.pread(fd, 0, PAGE_SIZE)) == PAGE_SIZE
        kernel.close(fd)


class TestAccounting:
    def test_note_access_counts_each_page_once(self):
        machine = _machine(pages=64)
        kernel = machine.kernel
        engine = kernel.attach_engine()
        prefetcher = Prefetcher(kernel).attach()
        fd = kernel.open("/mnt/ext2/f")
        prefetcher.prefetch_fd(fd)
        engine.loop.run_until_idle()
        issued_before = prefetcher.issued_pages
        kernel.pread(fd, 0, 16 * PAGE_SIZE)
        assert prefetcher.used_pages == 16
        kernel.pread(fd, 0, 16 * PAGE_SIZE)  # re-reads count once
        assert prefetcher.used_pages == 16
        assert prefetcher.issued_pages == issued_before
        kernel.close(fd)

    def test_detach_restores_plain_kernel(self):
        machine = _machine(pages=16)
        kernel = machine.kernel
        kernel.attach_engine()
        prefetcher = Prefetcher(kernel).attach()
        assert kernel.prefetcher is prefetcher
        prefetcher.detach()
        assert kernel.prefetcher is None


class TestPickFeeding:
    def test_pick_session_feeds_prefetcher(self):
        machine = _machine(pages=64)
        kernel = machine.kernel
        engine = kernel.attach_engine()
        prefetcher = Prefetcher(kernel).attach()
        fd = kernel.open("/mnt/ext2/f")
        sleds_pick_init(kernel, fd, 64 * 1024, prefetcher=prefetcher,
                        prefetch_depth=2)
        assert prefetcher.issued_pages > 0  # init fed the first chunks
        while sleds_pick_next_read(kernel, fd) is not None:
            engine.loop.run_until_idle()
        sleds_pick_finish(kernel, fd)
        kernel.close(fd)

    def test_depth_validation(self):
        machine = _machine(pages=16)
        kernel = machine.kernel
        fd = kernel.open("/mnt/ext2/f")
        with pytest.raises(InvalidArgumentError):
            sleds_pick_init(kernel, fd, 64 * 1024, prefetch_depth=0)
        kernel.close(fd)
