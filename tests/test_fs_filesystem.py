"""Unit tests for the filesystem types (ext2-like, ISO9660-like, NFS-like)."""

import numpy as np
import pytest

from repro.devices.cdrom import CdromDevice
from repro.devices.disk import DiskDevice
from repro.devices.network import NfsDevice
from repro.fs.filesystem import Ext2Like, Iso9660Like, split_path
from repro.fs.nfs import NfsLike
from repro.sim.errors import (
    FileExistsSimError,
    FileNotFoundSimError,
    InvalidArgumentError,
    NotADirectorySimError,
)
from repro.sim.units import MB, PAGE_SIZE


def _ext2():
    return Ext2Like(DiskDevice(rng=np.random.default_rng(1)))


class TestSplitPath:
    def test_basic(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]

    def test_ignores_empty_components(self):
        assert split_path("//a///b/") == ["a", "b"]

    def test_root(self):
        assert split_path("/") == []


class TestNamespace:
    def test_create_and_resolve(self):
        fs = _ext2()
        inode = fs.create_file("dir/sub/file.txt", size=100)
        assert fs.resolve(["dir", "sub", "file.txt"]) is inode

    def test_create_without_dirs_fails(self):
        fs = _ext2()
        with pytest.raises(FileNotFoundSimError):
            fs.create_file("missing/file.txt", 10, create_dirs=False)

    def test_duplicate_create_rejected(self):
        fs = _ext2()
        fs.create_file("a.txt", 10)
        with pytest.raises(FileExistsSimError):
            fs.create_file("a.txt", 10)

    def test_resolve_missing_raises(self):
        with pytest.raises(FileNotFoundSimError):
            _ext2().resolve(["nope"])

    def test_resolve_through_file_raises(self):
        fs = _ext2()
        fs.create_file("a.txt", 10)
        with pytest.raises(NotADirectorySimError):
            fs.resolve(["a.txt", "child"])

    def test_mkdir_idempotent(self):
        fs = _ext2()
        d1 = fs.mkdir("x/y")
        d2 = fs.mkdir("x/y")
        assert d1 is d2

    def test_mkdir_over_file_rejected(self):
        fs = _ext2()
        fs.create_file("x", 1)
        with pytest.raises(FileExistsSimError):
            fs.mkdir("x")

    def test_empty_path_rejected(self):
        with pytest.raises(InvalidArgumentError):
            _ext2().create_file("", 10)

    def test_create_text_file_has_content(self):
        fs = _ext2()
        inode = fs.create_text_file("t.txt", 10_000, seed=3)
        assert len(inode.content.read(0, 100)) == 100


class TestPageIo:
    def test_read_pages_charges_device_time(self):
        fs = _ext2()
        inode = fs.create_file("f", 64 * PAGE_SIZE)
        seconds = fs.read_pages(inode, 0, 64)
        assert seconds > 0
        assert fs.device.stats.reads >= 1

    def test_contiguous_pages_batched_into_one_access(self):
        fs = _ext2()
        inode = fs.create_file("f", 64 * PAGE_SIZE)
        before = fs.device.stats.reads
        fs.read_pages(inode, 0, 64)
        assert fs.device.stats.reads == before + 1

    def test_zero_pages_is_free(self):
        fs = _ext2()
        inode = fs.create_file("f", PAGE_SIZE)
        assert fs.read_pages(inode, 0, 0) == 0.0

    def test_grow_file_extends_layout(self):
        fs = _ext2()
        inode = fs.create_file("f", PAGE_SIZE)
        fs.grow_file(inode, 5 * PAGE_SIZE)
        assert inode.size == 5 * PAGE_SIZE
        assert inode.extent_map.npages == 5

    def test_grow_file_cannot_shrink(self):
        fs = _ext2()
        inode = fs.create_file("f", 2 * PAGE_SIZE)
        with pytest.raises(InvalidArgumentError):
            fs.grow_file(inode, PAGE_SIZE)

    def test_write_pages_charges_time(self):
        fs = _ext2()
        inode = fs.create_file("f", 8 * PAGE_SIZE)
        assert fs.write_pages(inode, 0, 8) > 0


class TestPageEstimate:
    def test_default_estimate_names_the_fs(self):
        fs = _ext2()
        inode = fs.create_file("f", PAGE_SIZE)
        est = fs.page_estimate(inode, 0)
        assert est.device_key == fs.name
        assert est.latency is None and est.bandwidth is None

    def test_device_table_keys_match_estimates(self):
        fs = _ext2()
        inode = fs.create_file("f", PAGE_SIZE)
        key = fs.page_estimate(inode, 0).device_key
        assert key in fs.device_table()


class TestIso9660:
    def test_read_only_flag(self):
        fs = Iso9660Like(CdromDevice(rng=np.random.default_rng(2)))
        assert fs.read_only

    def test_mastering_still_allowed(self):
        fs = Iso9660Like(CdromDevice(rng=np.random.default_rng(2)))
        inode = fs.create_file("disc/file.dat", MB)
        assert inode.size == MB


class TestNfsLike:
    def test_stat_costs_a_round_trip(self):
        fs = NfsLike(NfsDevice(rng=np.random.default_rng(3)))
        device = fs.device
        assert fs.stat_cost() == device.rtt + device.request_overhead

    def test_local_fs_stat_is_free(self):
        assert _ext2().stat_cost() == 0.0
