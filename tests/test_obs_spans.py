"""Tests for the span recorder and Chrome trace export."""

import json

import pytest

from repro.obs.spans import SpanRecorder, chrome_trace
from repro.sim.trace import Tracer


class TestSpanRecorder:
    def test_begin_end_nesting(self):
        rec = SpanRecorder()
        outer = rec.begin("syscall", "read", 0.0)
        inner = rec.begin("fault", "disk", 0.1)
        rec.end(inner, 0.3)
        rec.end(outer, 0.4)
        syscall = rec.spans("syscall")[0]
        fault = rec.spans("fault")[0]
        assert syscall.parent_id is None
        assert fault.parent_id == syscall.id
        assert fault.duration == pytest.approx(0.2)
        assert rec.children_of(syscall) == [fault]

    def test_add_defaults_parent_to_open_span(self):
        rec = SpanRecorder()
        outer = rec.begin("syscall", "read", 0.0)
        dev = rec.add("device", "ext2-disk", 0.1, 0.2, bytes=4096)
        rec.end(outer, 0.3)
        assert dev.parent_id == outer.id
        assert dev.attr("bytes") == 4096
        # explicit parent wins over the stack
        orphan = rec.add("device", "x", 0.4, 0.5, parent_id=None)
        assert orphan.parent_id is None

    def test_end_pops_abandoned_children(self):
        rec = SpanRecorder()
        outer = rec.begin("syscall", "read", 0.0)
        rec.begin("fault", "disk", 0.1)  # never ended
        rec.end(outer, 0.5)
        assert rec.open_depth == 0
        assert rec.current() is None

    def test_ring_buffer_drops_oldest(self):
        rec = SpanRecorder(capacity=2)
        for i in range(4):
            rec.add("syscall", f"s{i}", float(i), float(i) + 0.5)
        assert len(rec) == 2
        assert rec.dropped == 2
        assert [s.name for s in rec.spans()] == ["s2", "s3"]

    def test_bad_capacity_and_backwards_span(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)
        rec = SpanRecorder()
        with pytest.raises(ValueError):
            rec.add("syscall", "read", 1.0, 0.5)

    def test_forwards_to_legacy_tracer(self):
        tracer = Tracer()
        rec = SpanRecorder(tracer=tracer)
        rec.add("fault", "disk", 1.0, 1.25, page=7)
        event = tracer.events(kind="fault")[0]
        assert event.time == 1.0
        assert event.duration == pytest.approx(0.25)
        assert event.attr("page") == 7

    def test_clear(self):
        rec = SpanRecorder(capacity=1)
        rec.add("syscall", "a", 0.0, 1.0)
        rec.add("syscall", "b", 1.0, 2.0)
        rec.clear()
        assert len(rec) == 0
        assert rec.dropped == 0


class TestChromeTrace:
    def _recorder(self):
        rec = SpanRecorder()
        outer = rec.begin("syscall", "read", 0.0)
        rec.add("fault", "disk", 0.0, 0.02, page=3)
        rec.end(outer, 0.025)
        return rec

    def test_structure(self):
        doc = chrome_trace(self._recorder())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert all(e["ph"] == "X" for e in doc["traceEvents"])
        assert json.loads(json.dumps(doc)) == doc

    def test_units_are_microseconds(self):
        doc = chrome_trace(self._recorder())
        fault = next(e for e in doc["traceEvents"] if e["cat"] == "fault")
        assert fault["ts"] == 0.0
        assert fault["dur"] == pytest.approx(20_000.0)

    def test_parent_before_child_on_shared_start(self):
        # Perfetto nests by containment; on a tied start the longer
        # (enclosing) span must sort first.
        doc = chrome_trace(self._recorder())
        names = [e["name"] for e in doc["traceEvents"]]
        assert names.index("read") < names.index("disk")

    def test_explicit_parent_links(self):
        doc = chrome_trace(self._recorder())
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        assert by_name["disk"]["args"]["parent"] == \
            by_name["read"]["args"]["span"]
        assert "parent" not in by_name["read"]["args"]

    def test_accepts_plain_span_list(self):
        rec = self._recorder()
        doc = chrome_trace(rec.spans("fault"))
        assert len(doc["traceEvents"]) == 1
