"""Tests for the latency-forensics layer (repro.obs.forensics).

Load-bearing invariants:

* **blame closure** — every blame vector ``fsum``s to the record's
  latency *exactly*, across filesystem personalities, with the block
  layer on and under the fair elevator (property-tested);
* **reconciliation** — interference-matrix row totals equal the queue
  waits the SLO tracker pooled per tenant;
* **aliasing safety** — exemplars survive the lifecycle tracker's slab
  recycling because they are snapshots, never live records.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.merge import BlockConfig
from repro.block.scheduler import make_scheduler
from repro.machine import Machine
from repro.obs import SloTracker, Telemetry
from repro.obs.forensics import (
    BlameEngine,
    ExemplarReservoir,
    InterferenceMatrix,
    LatencyForensics,
    folded_blame,
    folded_critical_path,
)
from repro.obs.lifecycle import LifecycleRecord, LifecycleTracker, critical_path
from repro.sim.engine import IoEngine
from repro.sim.tasks import EventScheduler, Task
from repro.sim.units import PAGE_SIZE

PROFILES = ("ext2", "cdrom", "nfs", "hsm")

MERGE_ALL = BlockConfig(merge=True, plug=True)

SLO_OBJECTIVES = {"memory": 0.001, "disk": 0.02, "nfs": 0.06,
                  "cdrom": 1.0, "tape": 300.0}


def _setup(profile: str, seed: int, pages: int):
    if profile == "hsm":
        machine = Machine.hsm(cache_pages=256, stage_pages=512,
                              seed=9000 + seed)
        machine.boot()
        machine.hsmfs.create_tape_file("f", pages * PAGE_SIZE, "VOL000")
        return machine, "/mnt/hsm/f"
    machine = Machine.unix_utilities(cache_pages=256, seed=9000 + seed)
    machine.boot()
    fs = {"ext2": machine.ext2, "cdrom": machine.cdrom,
          "nfs": machine.nfs}[profile]
    fs.create_text_file("f", pages * PAGE_SIZE, seed=seed)
    return machine, f"/mnt/{profile}/f"


def _tenant_readers(kernel, path, pages, readers=3, chunk_pages=2):
    nchunks = max(1, pages // chunk_pages)

    def reader(start):
        fd = kernel.open(path)
        for chunk in range(start, nchunks, readers):
            yield from kernel.pread_async(
                fd, chunk * chunk_pages * PAGE_SIZE,
                chunk_pages * PAGE_SIZE)
        kernel.close(fd)

    return [Task(f"r{i}", reader(i), tenant=f"tenant{i}")
            for i in range(readers)]


def _forensic_run(profile, seed, pages, scheduler="clook",
                  block=MERGE_ALL, track_tenants=True):
    machine, path = _setup(profile, seed, pages)
    kernel = machine.kernel
    telemetry = Telemetry()
    telemetry.attach(kernel)
    slo = SloTracker.for_classes(
        SLO_OBJECTIVES, registry=telemetry.registry,
        track_tenants=track_tenants).attach(telemetry)
    engine = kernel.attach_engine(
        engine=IoEngine(kernel, scheduler=make_scheduler(scheduler),
                        block=block))
    forensics = LatencyForensics(kernel, engine).attach(telemetry,
                                                        slo=slo)
    tasks = _tenant_readers(kernel, path, pages)
    EventScheduler(kernel, tasks, engine=engine).run()
    return machine, telemetry, slo, forensics


class TestBlameClosure:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 50), pages=st.integers(4, 40),
           scheduler=st.sampled_from(("clook", "fair", "fair:sstf")))
    def test_blame_fsums_to_latency_exactly(self, seed, pages, scheduler):
        """The acceptance identity: across every personality, with the
        block layer on and under the fair elevator, every blame vector
        closes bit-exactly."""
        for profile in PROFILES:
            _, telemetry, _, forensics = _forensic_run(
                profile, seed, pages, scheduler=scheduler)
            blame_engine = forensics.blame_engine()
            records = list(telemetry.lifecycle.records)
            assert records
            for rec in records:
                blame = blame_engine.blame(rec)
                assert math.fsum(blame.values()) == rec.latency, (
                    f"{profile}/{scheduler}: blame does not close for "
                    f"record {rec.id}")

    def test_blame_closes_without_block_layer(self):
        """Straight-to-elevator submissions (no plug stage) must close
        too — there is just never a plug_hold component."""
        _, telemetry, _, forensics = _forensic_run(
            "ext2", 3, 24, block=None)
        blame_engine = forensics.blame_engine()
        for rec in telemetry.lifecycle.records:
            blame = blame_engine.blame(rec)
            assert math.fsum(blame.values()) == rec.latency
            assert "plug_hold" not in blame

    def test_queue_blame_names_the_aggressor(self):
        """Under contention the decomposition must name other tenants,
        not just lump everything into untracked."""
        _, telemetry, _, forensics = _forensic_run("ext2", 3, 36)
        blame_engine = forensics.blame_engine()
        named = set()
        for rec in telemetry.lifecycle.records:
            for key in blame_engine.blame(rec):
                if key.startswith("queue:tenant:"):
                    named.add(key)
        assert named, "expected cross-tenant queue blame"

    def test_waterfall_spans_are_ordered_and_bounded(self):
        _, telemetry, _, forensics = _forensic_run("ext2", 5, 24)
        blame_engine = forensics.blame_engine()
        rec = max(telemetry.lifecycle.records, key=lambda r: r.latency)
        wf = blame_engine.waterfall(rec)
        assert math.fsum(wf["blame"].values()) == rec.latency
        spans = wf["spans"]
        assert spans[-1]["phase"] == "service"
        for span in spans:
            assert rec.submit_time <= span["t0"] <= span["t1"] \
                <= rec.finish_time


class TestInterferenceMatrix:
    def test_rows_reconcile_with_slo_queue_pools(self):
        """Per-victim row totals (across devices and aggressor columns,
        pseudo columns included) must equal the queue-wait seconds the
        SLO tracker pooled for that tenant."""
        _, telemetry, slo, forensics = _forensic_run("ext2", 7, 36)
        report = forensics.analyze(top=3)
        rows = report.matrix.row_totals()
        pools = slo.tenant_queue_waits()
        assert set(rows) == set(pools)
        for tenant, row_total in rows.items():
            assert row_total == pytest.approx(pools[tenant],
                                              rel=1e-12, abs=1e-15)

    def test_rows_are_exact_fsum_of_record_waits(self):
        _, telemetry, _, forensics = _forensic_run("nfs", 2, 24)
        report = forensics.analyze()
        rows = report.matrix.row_totals()
        by_tenant = {}
        for rec in telemetry.lifecycle.records:
            by_tenant.setdefault(rec.tenant or "-", []).append(
                rec.queue_wait)
        for tenant, waits in by_tenant.items():
            assert rows.get(tenant, 0.0) == pytest.approx(
                math.fsum(waits), rel=1e-12, abs=1e-15)

    def test_imposed_totals_exclude_self(self):
        matrix = InterferenceMatrix()
        rec = _record(tenant="a")
        matrix.add(rec, {"queue:self": 1.0, "queue:tenant:b": 2.0,
                         "transfer": 9.0}, "disk0")
        imposed = matrix.imposed_totals()
        assert imposed == {"b": 2.0}
        assert matrix.cell("disk0", "a", "self") == 1.0
        assert matrix.cell("disk0", "a", "b") == 2.0
        # service components never enter the matrix
        assert matrix.row_totals() == {"a": 3.0}

    def test_render_and_dict_shapes(self):
        _, _, _, forensics = _forensic_run("ext2", 1, 16)
        report = forensics.analyze(top=2)
        text = report.matrix.render()
        assert "victim" in text
        d = report.matrix.to_dict()
        assert set(d) == {"records", "devices", "row_totals",
                          "imposed_totals"}
        assert d["records"] == report.analyzed


def _record(rid=0, latency=0.5, wait=0.1, tenant=None, cls="disk",
            kind="fault"):
    start = 10.0 + wait
    return LifecycleRecord(
        id=rid, kind=kind, task="t", fs="ext2", device_class=cls,
        inode=1, page=0, cluster=2, nbytes=2 * PAGE_SIZE,
        submit_time=10.0, start_time=start,
        finish_time=10.0 + latency,
        components=(("transfer", latency - wait),), tenant=tenant)


class TestExemplarReservoir:
    def test_keeps_worst_per_class_tenant(self):
        reservoir = ExemplarReservoir(top_k=4)
        reservoir.observe(_record(rid=1, latency=0.5, tenant="a"))
        reservoir.observe(_record(rid=2, latency=0.9, tenant="a"))
        reservoir.observe(_record(rid=3, latency=0.7, tenant="a"))
        worst = reservoir.by_key[("disk", "a")]
        assert worst.id == 2
        assert reservoir.seen == 3

    def test_bucket_exemplar_is_freshest(self):
        reservoir = ExemplarReservoir(buckets=(0.1, 1.0, 10.0))
        reservoir.observe(_record(rid=1, latency=0.5))
        reservoir.observe(_record(rid=2, latency=0.6))
        assert reservoir.bucket_of(0.6) == 1.0
        assert reservoir.bucket_exemplar("disk", 1.0).id == 2
        assert reservoir.bucket_exemplar("disk", 0.1) is None
        reservoir.observe(_record(rid=3, latency=50.0))
        assert reservoir.bucket_of(50.0) == math.inf
        assert reservoir.bucket_exemplar("disk", math.inf).id == 3

    def test_top_k_is_bounded_and_sorted(self):
        reservoir = ExemplarReservoir(top_k=3)
        for rid, latency in enumerate((0.2, 0.9, 0.1, 0.7, 0.4)):
            reservoir.observe(_record(rid=rid, latency=latency))
        top = reservoir.top()
        assert [r.id for r in top] == [1, 3, 4]
        assert [r.id for r in reservoir.top(2)] == [1, 3]

    def test_violation_pinning_keeps_worst_per_target(self):
        reservoir = ExemplarReservoir()
        reservoir.pin(_record(rid=1, latency=0.5), ["disk-latency"])
        reservoir.pin(_record(rid=2, latency=0.9),
                      ["disk-latency", "star"])
        reservoir.pin(_record(rid=3, latency=0.7), ["disk-latency"])
        assert reservoir.pinned["disk-latency"].id == 2
        assert reservoir.pinned["star"].id == 2
        assert reservoir.violations == 3

    def test_exemplars_survive_slab_recycling(self):
        """Regression for the aliasing hazard: a record held past the
        tracker's window must not mutate under the holder.  The
        reservoir snapshots, so its exemplars stay frozen while the
        tracker renews the evicted shells in place."""
        tracker = LifecycleTracker(capacity=2)
        reservoir = ExemplarReservoir()
        tracker.observers.append(reservoir.observe)
        live = []
        for rid in range(5):
            live.append(tracker.record(
                kind="fault", task="t", fs="ext2", device_class="disk",
                inode=1, page=rid, cluster=1, nbytes=PAGE_SIZE,
                submit_time=float(rid), start_time=rid + 0.1,
                finish_time=rid + 1.0 - rid * 0.1,
                components={"transfer": 0.9 - rid * 0.2}))
        # the tracker recycled shells: early live references now
        # describe *later* requests (the documented hazard) ...
        assert live[0].page != 0
        # ... but the reservoir's worst-per-key exemplar still shows
        # the request it pinned (rid 0 had the largest latency)
        worst = reservoir.by_key[("disk", None)]
        assert worst.page == 0
        assert worst.submit_time == 0.0
        assert worst.latency == pytest.approx(1.0)

    def test_snapshot_equals_original_fields(self):
        rec = _record(rid=9, latency=0.8, tenant="x")
        snap = rec.snapshot()
        assert snap is not rec
        assert snap.to_dict() == rec.to_dict()


class TestFoldedStacks:
    def test_blame_folding_aggregates_nanoseconds(self):
        rec_a = _record(rid=1, tenant="a")
        rec_b = _record(rid=2, tenant="a")
        lines = folded_blame([
            (rec_a, {"transfer": 0.25, "queue:tenant:b": 0.125}, "d0"),
            (rec_b, {"transfer": 0.5}, "d0"),
        ])
        assert "a;d0;fault;transfer 750000000" in lines
        assert "a;d0;fault;queue:tenant:b 125000000" in lines
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert stack and int(value) > 0

    def test_critical_path_folding_covers_the_makespan(self):
        _, telemetry, _, forensics = _forensic_run("ext2", 4, 24)
        records = list(telemetry.lifecycle.records)
        start = min(r.submit_time for r in records)
        end = max(r.finish_time for r in records)
        report = critical_path(records, start, end)
        lines = folded_critical_path(report)
        assert lines
        total = sum(int(line.rpartition(" ")[2]) for line in lines)
        # folded weights (ns) telescope to the makespan up to rounding
        assert total == pytest.approx((end - start) * 1e9, abs=len(lines))

    def test_analyze_emits_folded_lines(self):
        _, _, _, forensics = _forensic_run("cdrom", 2, 16)
        report = forensics.analyze(top=2)
        assert report.folded
        assert report.to_dict()["folded"] == report.folded


class TestFacade:
    def test_attach_detach_is_reentrant_safe(self):
        machine, _ = _setup("ext2", 0, 8)
        kernel = machine.kernel
        telemetry = Telemetry()
        telemetry.attach(kernel)
        forensics = LatencyForensics(kernel)
        forensics.attach(telemetry)
        with pytest.raises(ValueError):
            forensics.attach(telemetry)
        forensics.detach()
        forensics.detach()  # idempotent
        assert telemetry.lifecycle.observers == []

    def test_analyze_without_telemetry_requires_records(self):
        machine, _ = _setup("ext2", 0, 8)
        forensics = LatencyForensics(machine.kernel)
        with pytest.raises(ValueError):
            forensics.analyze()
        report = forensics.analyze(records=[_record()])
        assert report.analyzed == 1

    def test_report_renders_and_serializes(self):
        _, _, slo, forensics = _forensic_run("hsm", 1, 16)
        report = forensics.analyze(top=2)
        text = report.render()
        assert "latency forensics" in text
        assert "blame:" in text
        d = report.to_dict()
        assert d["analyzed"] == report.analyzed
        assert d["exemplars"]["seen"] == forensics.reservoir.seen
        # HSM staging violates the tight objectives → pinned exemplars
        assert forensics.reservoir.violations > 0
        assert d["exemplars"]["violation_exemplars"]
