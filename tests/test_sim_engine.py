"""Tests for the discrete-event I/O engine (repro.sim.engine).

The load-bearing property: the engine is an *overlay*.  A single task run
under the EventScheduler must be bit-identical — virtual times and fault
counts — to the same workload on the blocking syscall path, across every
filesystem personality (ext2, CD-ROM, NFS, HSM).  Concurrency then adds
overlap without adding nondeterminism.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine
from repro.sim.engine import IoEngine
from repro.sim.errors import InvalidArgumentError, IoSimError
from repro.sim.tasks import (
    EventScheduler,
    Task,
    reader_task_async,
    wc_task,
    wc_task_async,
)
from repro.sim.units import PAGE_SIZE

PROFILES = ("ext2", "cdrom", "nfs", "hsm")


def _setup(profile: str, seed: int, pages: int):
    """A booted machine with one ``pages``-page file on ``profile``'s
    filesystem; returns (machine, path)."""
    if profile == "hsm":
        machine = Machine.hsm(cache_pages=256, stage_pages=512,
                              seed=9000 + seed)
        machine.boot()
        machine.hsmfs.create_tape_file("f", pages * PAGE_SIZE, "VOL000")
        return machine, "/mnt/hsm/f"
    machine = Machine.unix_utilities(cache_pages=256, seed=9000 + seed)
    machine.boot()
    fs = {"ext2": machine.ext2, "cdrom": machine.cdrom,
          "nfs": machine.nfs}[profile]
    fs.create_text_file("f", pages * PAGE_SIZE, seed=seed)
    return machine, f"/mnt/{profile}/f"


def _run_sync(profile, seed, pages, bufsize):
    machine, path = _setup(profile, seed, pages)
    kernel = machine.kernel
    fd = kernel.open(path)
    while kernel.read(fd, bufsize):
        pass
    kernel.close(fd)
    return kernel


def _run_event(profile, seed, pages, bufsize):
    machine, path = _setup(profile, seed, pages)
    kernel = machine.kernel
    task = Task("r", reader_task_async(kernel, path, bufsize=bufsize))
    EventScheduler(kernel, [task]).run()
    return kernel


class TestSoloBitIdentity:
    """A lone task under the engine replays the synchronous path exactly."""

    @pytest.mark.parametrize("profile", PROFILES)
    def test_fixed_workload(self, profile):
        sync = _run_sync(profile, seed=3, pages=24, bufsize=64 * 1024)
        event = _run_event(profile, seed=3, pages=24, bufsize=64 * 1024)
        assert event.clock.now == sync.clock.now
        assert event.counters.hard_faults == sync.counters.hard_faults
        assert event.counters.pages_read == sync.counters.pages_read
        assert event.counters.cache_hits == sync.counters.cache_hits

    @pytest.mark.parametrize("profile", PROFILES)
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 50),
           pages=st.integers(1, 40),
           bufshift=st.integers(12, 17))
    def test_property(self, profile, seed, pages, bufshift):
        bufsize = 1 << bufshift
        sync = _run_sync(profile, seed, pages, bufsize)
        event = _run_event(profile, seed, pages, bufsize)
        assert event.clock.now == sync.clock.now
        assert event.counters.hard_faults == sync.counters.hard_faults
        assert event.counters.pages_read == sync.counters.pages_read

    def test_engine_detached_after_run(self):
        machine, path = _setup("ext2", seed=1, pages=4)
        kernel = machine.kernel
        EventScheduler(kernel, [
            Task("r", reader_task_async(kernel, path))]).run()
        assert kernel.engine is None


class TestConcurrency:
    def _three_device_machine(self, seed=901, pages=48):
        machine = Machine.unix_utilities(cache_pages=1024, seed=seed)
        machine.boot()
        machine.ext2.create_text_file("f", pages * PAGE_SIZE, seed=1)
        machine.cdrom.create_file("g", pages * PAGE_SIZE)
        machine.nfs.create_text_file("h", pages * PAGE_SIZE, seed=3)
        return machine, ["/mnt/ext2/f", "/mnt/cdrom/g", "/mnt/nfs/h"]

    def test_distinct_devices_overlap(self):
        """Readers on independent devices finish in less total virtual
        time than the sum of their solo runs — the engine's raison d'etre."""
        solos = []
        _, paths = self._three_device_machine()
        for i, path in enumerate(paths):
            machine, paths_again = self._three_device_machine()
            kernel = machine.kernel
            start = kernel.clock.now
            EventScheduler(kernel, [
                Task("r", reader_task_async(kernel, paths_again[i]))]).run()
            solos.append(kernel.clock.now - start)

        machine, paths = self._three_device_machine()
        kernel = machine.kernel
        start = kernel.clock.now
        tasks = [Task(f"r{i}", reader_task_async(kernel, path))
                 for i, path in enumerate(paths)]
        EventScheduler(kernel, tasks).run()
        makespan = kernel.clock.now - start
        assert makespan < sum(solos)
        # ...and no faster than the slowest member: no time is invented
        assert makespan >= max(solos)

    def test_concurrent_runs_are_deterministic(self):
        def once():
            machine, paths = self._three_device_machine()
            kernel = machine.kernel
            tasks = [Task(f"r{i}", reader_task_async(kernel, path))
                     for i, path in enumerate(paths)]
            stats = EventScheduler(kernel, tasks).run()
            return (kernel.clock.now,
                    tuple((s.finished_at, s.virtual_time, s.hard_faults,
                           s.wait_time) for s in stats.values()))

        assert once() == once()

    def test_same_device_contention_records_queue_wait(self):
        machine = Machine.unix_utilities(cache_pages=1024, seed=905)
        machine.boot()
        machine.ext2.create_text_file("a", 32 * PAGE_SIZE, seed=1)
        machine.ext2.create_text_file("b", 32 * PAGE_SIZE, seed=2)
        kernel = machine.kernel
        engine = kernel.attach_engine()
        tasks = [Task("a", reader_task_async(kernel, "/mnt/ext2/a")),
                 Task("b", reader_task_async(kernel, "/mnt/ext2/b"))]
        EventScheduler(kernel, tasks).run()
        report = engine.queue_report()
        kernel.detach_engine()
        disk = report["ext2-disk"]
        assert disk["depth_high_water"] >= 2
        assert disk["total_queue_wait_s"] > 0.0
        device = machine.ext2.device
        assert device.stats.queued_requests > 0
        assert device.stats.queue_wait_time == pytest.approx(
            disk["total_queue_wait_s"])

    def test_wc_tasks_return_correct_results(self):
        """Overlapped execution must not change computed answers."""
        machine = Machine.unix_utilities(cache_pages=1024, seed=906)
        machine.boot()
        machine.ext2.create_text_file("a", 16 * PAGE_SIZE, seed=11)
        machine.nfs.create_text_file("b", 16 * PAGE_SIZE, seed=12)
        kernel = machine.kernel
        stats = EventScheduler(kernel, [
            Task("a", wc_task_async(kernel, "/mnt/ext2/a")),
            Task("b", wc_task_async(kernel, "/mnt/nfs/b")),
        ]).run()

        reference = Machine.unix_utilities(cache_pages=1024, seed=906)
        reference.boot()
        reference.ext2.create_text_file("a", 16 * PAGE_SIZE, seed=11)
        reference.nfs.create_text_file("b", 16 * PAGE_SIZE, seed=12)
        rk = reference.kernel
        for name, path in (("a", "/mnt/ext2/a"), ("b", "/mnt/nfs/b")):
            task = Task(name, wc_task(rk, path))
            while task.step(rk):
                pass
            assert stats[name].result == task.stats.result

    def test_io_error_propagates_to_blocked_task(self):
        machine, path = _setup("ext2", seed=5, pages=8)
        kernel = machine.kernel
        machine.ext2.device.inject_failures(1)
        with pytest.raises(IoSimError):
            EventScheduler(kernel, [
                Task("r", reader_task_async(kernel, path))]).run()
        assert kernel.engine is None  # cleanup happened despite the error


class TestEngineLifecycle:
    def test_double_attach_rejected(self):
        machine, _ = _setup("ext2", seed=1, pages=1)
        kernel = machine.kernel
        kernel.attach_engine()
        with pytest.raises(InvalidArgumentError):
            IoEngine(kernel).attach()
        kernel.detach_engine()
        assert kernel.engine is None

    def test_async_path_requires_engine(self):
        machine, path = _setup("ext2", seed=1, pages=2)
        kernel = machine.kernel
        fd = kernel.open(path)
        with pytest.raises(InvalidArgumentError):
            list(kernel.read_async(fd, PAGE_SIZE))

    def test_attach_clamps_stale_busy_horizon(self):
        machine, _ = _setup("ext2", seed=1, pages=1)
        kernel = machine.kernel
        device = machine.ext2.device
        # an off-clock access (lmbench-style probe without reset_state)
        # pushes the busy horizon past the kernel clock
        device.read(0, 1024 * 1024)
        assert device.busy_until > kernel.clock.now
        engine = kernel.attach_engine()
        assert device.busy_until <= kernel.clock.now
        assert engine.queue_delays(machine.ext2, kernel.clock.now) == {}
        kernel.detach_engine()


class TestQueueAwareSleds:
    def _cold_file(self):
        machine = Machine.unix_utilities(cache_pages=256, seed=907)
        machine.boot()
        machine.ext2.create_text_file("f", 16 * PAGE_SIZE, seed=1)
        kernel = machine.kernel
        fd = kernel.open("/mnt/ext2/f")
        return machine, kernel, fd

    def test_busy_device_inflates_sled_latency(self):
        machine, kernel, fd = self._cold_file()
        idle_vector = kernel.get_sleds(fd)
        engine = kernel.attach_engine()
        # park a large request on the disk: the queue is now congested
        engine.submit(machine.ext2.device, 0, 4 * 1024 * 1024,
                      is_write=False)
        before = machine.ext2.device.queue_delay(kernel.clock.now)
        busy_vector = kernel.get_sleds(fd)
        after = machine.ext2.device.queue_delay(kernel.clock.now)
        kernel.detach_engine()
        idle_latency = idle_vector[0].latency
        busy_latency = busy_vector[0].latency
        assert busy_latency > idle_latency
        # the delta is the device's remaining busy horizon, sampled at
        # some instant inside the FSLEDS_GET call (which charges CPU)
        assert after <= busy_latency - idle_latency <= before

    def test_stamp_folds_in_congestion_epoch(self):
        machine, kernel, fd = self._cold_file()
        plain = kernel.sleds_stamp(fd)
        assert len(plain) == 3  # legacy shape without an engine
        engine = kernel.attach_engine()
        stamped = kernel.sleds_stamp(fd)
        assert len(stamped) == 4
        assert stamped[:3] == plain
        engine.submit(machine.ext2.device, 0, PAGE_SIZE, is_write=False)
        assert kernel.sleds_stamp(fd) != stamped
        kernel.detach_engine()
        assert kernel.sleds_stamp(fd) == plain

    def test_congestion_invalidates_sled_cache(self):
        machine, kernel, fd = self._cold_file()
        engine = kernel.attach_engine()
        kernel.get_sleds(fd)
        builds = kernel.counters.sleds_builds
        kernel.get_sleds(fd)  # same stamp: served from cache
        assert kernel.counters.sleds_builds == builds
        engine.submit(machine.ext2.device, 0, PAGE_SIZE, is_write=False)
        kernel.get_sleds(fd)  # congestion moved: must rebuild
        assert kernel.counters.sleds_builds == builds + 1
        kernel.detach_engine()

    def test_sync_path_stamp_and_vector_unaffected(self):
        """Engine-off behaviour is the pre-engine behaviour, exactly."""
        machine, kernel, fd = self._cold_file()
        vector = kernel.get_sleds(fd)
        hits = kernel.counters.sleds_cache_hits
        kernel.get_sleds(fd)
        assert kernel.counters.sleds_cache_hits == hits + 1
        assert kernel.get_sleds(fd) is vector


class TestAsyncWriteback:
    def test_fsync_async_flushes_dirty_pages(self):
        machine = Machine.unix_utilities(cache_pages=256, seed=908)
        machine.boot()
        machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1)
        kernel = machine.kernel

        def writer():
            fd = kernel.open("/mnt/ext2/f", "r+")
            kernel.write(fd, b"x" * (4 * PAGE_SIZE))
            yield from kernel.fsync_async(fd)
            kernel.close(fd)
            return kernel.counters.pages_written

        stats = EventScheduler(kernel, [Task("w", writer())]).run()
        assert stats["w"].result >= 4
        assert not kernel._dirty

    def test_fsync_async_requires_engine(self):
        machine = Machine.unix_utilities(cache_pages=64, seed=909)
        machine.boot()
        machine.ext2.create_text_file("f", PAGE_SIZE, seed=1)
        kernel = machine.kernel
        fd = kernel.open("/mnt/ext2/f", "r+")
        kernel.write(fd, b"y" * 16)
        with pytest.raises(InvalidArgumentError):
            list(kernel.fsync_async(fd))
