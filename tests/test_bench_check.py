"""The benchmark regression gate: JSON flatten/compare + ``check`` CLI."""

from __future__ import annotations

import json

from repro.bench.cli import main as bench_main
from repro.bench.compare import (
    _flatten,
    compare_bench_dirs,
    compare_json_files,
)

PAYLOAD = {
    "benchmark": "demo",
    "rows": [
        {"npages": 1024, "virtual_s": 1.5,
         "wall_clock": {"t_s": 0.010, "speedup": 80.0}},
        {"npages": 4096, "virtual_s": 6.0,
         "wall_clock": {"t_s": 0.041, "speedup": 75.0}},
    ],
    "overlap_ratio": 0.62,
    "description": "strings are ignored",
    "converged": True,
}


def _write(directory, payload, name="BENCH_demo.json"):
    directory.mkdir(exist_ok=True)
    path = directory / name
    path.write_text(json.dumps(payload) + "\n")
    return path


class TestFlatten:

    def test_paths_and_wall_clock_skip(self):
        assert _flatten(PAYLOAD) == {
            "rows[0].npages": 1024.0,
            "rows[0].virtual_s": 1.5,
            "rows[1].npages": 4096.0,
            "rows[1].virtual_s": 6.0,
            "overlap_ratio": 0.62,
        }

    def test_bools_and_strings_are_not_metrics(self):
        assert _flatten({"ok": True, "label": "x", "n": 3}) == {"n": 3.0}


class TestCompareJson:

    def test_identical_is_clean(self, tmp_path):
        old = _write(tmp_path / "old", PAYLOAD)
        new = _write(tmp_path / "new", PAYLOAD)
        assert compare_json_files(old, new).clean

    def test_wall_clock_drift_is_ignored(self, tmp_path):
        noisy = json.loads(json.dumps(PAYLOAD))
        noisy["rows"][0]["wall_clock"]["t_s"] *= 100.0
        noisy["rows"][1]["wall_clock"]["speedup"] /= 50.0
        old = _write(tmp_path / "old", PAYLOAD)
        new = _write(tmp_path / "new", noisy)
        assert compare_json_files(old, new).clean

    def test_regression_beyond_tolerance_drifts(self, tmp_path):
        worse = json.loads(json.dumps(PAYLOAD))
        worse["rows"][1]["virtual_s"] *= 1.30  # 30% > rtol 0.25
        old = _write(tmp_path / "old", PAYLOAD)
        new = _write(tmp_path / "new", worse)
        comparison = compare_json_files(old, new)
        assert not comparison.clean
        (drift,) = comparison.drifts
        assert drift.experiment == "BENCH_demo"
        assert drift.row_key == "rows[1]"
        assert drift.column == "virtual_s"
        assert drift.relative > 0.25

    def test_within_tolerance_passes(self, tmp_path):
        close = json.loads(json.dumps(PAYLOAD))
        close["overlap_ratio"] *= 1.10  # 10% < rtol 0.25
        old = _write(tmp_path / "old", PAYLOAD)
        new = _write(tmp_path / "new", close)
        assert compare_json_files(old, new).clean

    def test_metric_set_change_is_a_shape_change(self, tmp_path):
        reshaped = json.loads(json.dumps(PAYLOAD))
        del reshaped["overlap_ratio"]
        old = _write(tmp_path / "old", PAYLOAD)
        new = _write(tmp_path / "new", reshaped)
        comparison = compare_json_files(old, new)
        assert not comparison.clean
        assert comparison.shape_changes

    def test_dir_compare_flags_missing_results(self, tmp_path):
        _write(tmp_path / "old", PAYLOAD)
        (tmp_path / "new").mkdir()
        comparison = compare_bench_dirs(tmp_path / "old", tmp_path / "new")
        assert comparison.missing == ["BENCH_demo.json"]
        assert not comparison.clean


class TestCheckCli:

    def test_passes_on_committed_baselines(self, tmp_path):
        _write(tmp_path / "old", PAYLOAD)
        _write(tmp_path / "new", PAYLOAD)
        code = bench_main(["check", "--baseline", str(tmp_path / "old"),
                           "--new", str(tmp_path / "new")])
        assert code == 0

    def test_fails_on_injected_regression(self, tmp_path):
        worse = json.loads(json.dumps(PAYLOAD))
        worse["overlap_ratio"] *= 1.30  # injected >=25% regression
        _write(tmp_path / "old", PAYLOAD)
        _write(tmp_path / "new", worse)
        code = bench_main(["check", "--baseline", str(tmp_path / "old"),
                           "--new", str(tmp_path / "new")])
        assert code == 1

    def test_missing_baselines_are_an_error(self, tmp_path):
        (tmp_path / "old").mkdir()
        (tmp_path / "new").mkdir()
        code = bench_main(["check", "--baseline", str(tmp_path / "old"),
                           "--new", str(tmp_path / "new")])
        assert code == 2

    def test_repo_baselines_match_fresh_results(self, tmp_path):
        """The committed BENCH_*.json gate against a regenerated run —
        the end-to-end path CI exercises (virtual time is deterministic,
        so identical payloads modulo wall_clock)."""
        from repro.bench.results import REPO_ROOT
        baselines = sorted(REPO_ROOT.glob("BENCH_*.json"))
        results = REPO_ROOT / "results"
        if not baselines or not results.is_dir():
            import pytest
            pytest.skip("no committed BENCH baselines yet")
        comparison = compare_bench_dirs(REPO_ROOT, results, rtol=0.25)
        assert comparison.summary() and comparison.clean
