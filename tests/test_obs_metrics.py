"""Tests for the deterministic metrics registry."""

import pytest

from repro.obs.metrics import (
    DEPTH_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)


class TestBuckets:
    def test_log_buckets_cover_range(self):
        bounds = log_buckets(lo=1e-7, hi=150.0, factor=2.0)
        assert bounds[0] == 1e-7
        assert bounds[-1] >= 150.0
        assert list(bounds) == sorted(bounds)

    def test_log_buckets_geometric(self):
        bounds = log_buckets(lo=1.0, hi=8.0, factor=2.0)
        assert bounds == (1.0, 2.0, 4.0, 8.0)

    @pytest.mark.parametrize("lo,hi,factor", [
        (0.0, 1.0, 2.0), (1.0, 1.0, 2.0), (1.0, 2.0, 1.0), (-1.0, 1.0, 2.0),
    ])
    def test_bad_spec_rejected(self, lo, hi, factor):
        with pytest.raises(ValueError):
            log_buckets(lo=lo, hi=hi, factor=factor)

    def test_default_buckets_span_memory_to_tape(self):
        assert LATENCY_BUCKETS[0] <= 175e-9   # a memory access fits
        assert LATENCY_BUCKETS[-1] >= 150.0   # a tape exchange fits
        assert DEPTH_BUCKETS[0] == 1.0


class TestSamples:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0

    def test_histogram_observe_and_mean(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 105.0
        assert h.mean == pytest.approx(26.25)
        # slot counts: <=1, <=2, <=4, +Inf
        assert h.counts == [1, 1, 1, 1]

    def test_histogram_boundary_lands_in_its_bucket(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(1.0)      # exactly on a bound -> that bucket, not the next
        assert h.counts == [1, 0, 0]

    def test_histogram_quantile(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 0.5, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 4.0
        assert Histogram().quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_histogram_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))


class TestFamilies:
    def test_labels_create_children(self):
        reg = MetricsRegistry()
        fam = reg.counter("reads_total", "Reads", labels=("device",))
        fam.labels(device="disk").inc()
        fam.labels(device="disk").inc()
        fam.labels(device="nfs").inc(3)
        children = dict((labels["device"], child.value)
                        for labels, child in fam.children())
        assert children == {"disk": 2.0, "nfs": 3.0}

    def test_label_schema_enforced(self):
        reg = MetricsRegistry()
        fam = reg.counter("reads_total", "Reads", labels=("device",))
        with pytest.raises(ValueError):
            fam.labels(dev="disk")
        with pytest.raises(ValueError):
            fam.labels(device="disk", op="read")

    def test_unlabeled_proxy(self):
        reg = MetricsRegistry()
        c = reg.counter("ticks_total", "Ticks")
        c.inc(2)
        assert c.labels().value == 2.0

    def test_proxy_rejected_on_labeled_family(self):
        reg = MetricsRegistry()
        fam = reg.counter("reads_total", "Reads", labels=("device",))
        with pytest.raises(ValueError):
            fam.inc()

    def test_duplicate_name_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "X")
        with pytest.raises(ValueError):
            reg.gauge("x_total", "X again")


class TestRegistrationHygiene:
    def test_identical_reregistration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "X", labels=("device",))
        b = reg.counter("x_total", "X", labels=("device",))
        assert a is b

    def test_mismatched_help_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "X")
        with pytest.raises(ValueError, match="x_total"):
            reg.counter("x_total", "different help")

    def test_mismatched_labels_raise(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "X", labels=("device",))
        with pytest.raises(ValueError):
            reg.counter("x_total", "X", labels=("cls",))

    def test_mismatched_histogram_buckets_raise(self):
        reg = MetricsRegistry()
        reg.histogram("lat_seconds", "L", buckets=(0.1, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("lat_seconds", "L", buckets=(0.5, 1.0))
        # identical buckets are fine
        reg.histogram("lat_seconds", "L", buckets=(0.1, 1.0))


class TestCardinalityCap:
    def test_overflow_routes_to_sink_child(self):
        reg = MetricsRegistry(max_label_cardinality=2)
        fam = reg.counter("reads_total", "Reads", labels=("device",))
        fam.labels(device="a").inc()
        fam.labels(device="b").inc()
        with pytest.warns(RuntimeWarning, match="cardinality"):
            fam.labels(device="c").inc()
        assert fam.overflows == 1
        sink = dict((labels["device"], child.value)
                    for labels, child in fam.children())
        assert sink == {"a": 1.0, "b": 1.0, "_overflow": 1.0}

    def test_warns_once_but_keeps_counting(self):
        import warnings

        reg = MetricsRegistry(max_label_cardinality=1)
        fam = reg.counter("reads_total", "Reads", labels=("device",))
        fam.labels(device="a").inc()
        with pytest.warns(RuntimeWarning):
            fam.labels(device="b").inc()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            fam.labels(device="c").inc()
            fam.labels(device="d").inc()
        assert fam.overflows == 3

    def test_existing_children_unaffected_by_cap(self):
        reg = MetricsRegistry(max_label_cardinality=1)
        fam = reg.counter("reads_total", "Reads", labels=("device",))
        fam.labels(device="a").inc()
        fam.labels(device="a").inc()  # re-use never overflows
        assert fam.overflows == 0

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_label_cardinality=0)


class TestExposition:
    def _registry(self):
        reg = MetricsRegistry(namespace="repro")
        reg.counter("reads_total", "Reads", labels=("device",)) \
            .labels(device="disk").inc(5)
        reg.gauge("depth", "Depth").set(3)
        h = reg.histogram("lat_seconds", "Latency", buckets=(0.01, 0.1, 1.0))
        h.observe(0.05)
        h.observe(0.05)
        h.observe(50.0)
        return reg

    def test_prometheus_text(self):
        text = self._registry().render_prometheus()
        assert "# HELP repro_reads_total Reads" in text
        assert "# TYPE repro_reads_total counter" in text
        assert 'repro_reads_total{device="disk"} 5' in text
        assert "repro_depth 3" in text
        # cumulative buckets plus +Inf
        assert 'repro_lat_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_lat_seconds_count 3" in text

    def test_render_is_deterministic(self):
        assert (self._registry().render_prometheus()
                == self._registry().render_prometheus())

    def test_empty_families_not_rendered(self):
        reg = MetricsRegistry()
        reg.counter("unused_total", "Never touched", labels=("device",))
        assert reg.render_prometheus() == ""
        assert reg.to_dict() == {}

    def test_to_dict_round_trips_json(self):
        import json
        dump = json.dumps(self._registry().to_dict(), sort_keys=True)
        assert "repro_lat_seconds" in dump
        assert json.loads(dump)["repro_depth"]["series"][0]["value"] == 3.0
