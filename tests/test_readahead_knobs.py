"""Readahead window knobs and the pread no-interference guarantee.

Satellite fixes around the block-layer PR: the kernel's minimum readahead
window used to be hardcoded at ``min(4, readahead_max_pages)``; it is now
a constructor knob threaded through the machine profiles.  And the
positional reads (`pread`/`pread_async`) advertise "no offset motion, no
readahead" — a regression test pins that they really never touch the
sequential window heuristic.
"""

import pytest

from repro.kernel.kernel import Kernel
from repro.machine import Machine
from repro.sim.errors import InvalidArgumentError
from repro.sim.tasks import EventScheduler, Task
from repro.sim.units import PAGE_SIZE


def _machine(**kwargs):
    machine = Machine.unix_utilities(cache_pages=512, seed=321, **kwargs)
    machine.ext2.create_text_file("f", 64 * PAGE_SIZE, seed=1)
    return machine


class TestMinPagesKnob:
    def test_default_matches_old_hardcoded_value(self):
        machine = _machine()
        kernel = machine.kernel
        assert kernel.readahead_min_pages == 4
        fd = kernel.open("/mnt/ext2/f")
        assert kernel._fd(fd).readahead.min_pages == 4
        kernel.close(fd)

    def test_knob_reaches_open_files(self):
        machine = _machine(readahead_min_pages=8, readahead_max_pages=32)
        kernel = machine.kernel
        fd = kernel.open("/mnt/ext2/f")
        window = kernel._fd(fd).readahead
        assert window.min_pages == 8
        assert window.max_pages == 32
        assert window.window_pages == 8
        kernel.close(fd)

    def test_min_capped_by_max(self):
        """min_pages above max_pages clamps instead of exploding — the
        old ``min(4, max)`` behaviour, generalised."""
        machine = _machine(readahead_min_pages=16, readahead_max_pages=8)
        kernel = machine.kernel
        fd = kernel.open("/mnt/ext2/f")
        assert kernel._fd(fd).readahead.min_pages == 8
        kernel.close(fd)

    def test_validation(self):
        with pytest.raises(InvalidArgumentError):
            Kernel(readahead_min_pages=0)

    def test_all_profiles_thread_the_knob(self):
        for build in (Machine.unix_utilities, Machine.lheasoft,
                      Machine.hsm):
            machine = build(cache_pages=64, readahead_min_pages=2,
                            readahead_max_pages=8)
            assert machine.kernel.readahead_min_pages == 2
            assert machine.kernel.readahead_max_pages == 8

    def test_bigger_min_fetches_bigger_clusters(self):
        small = _machine(readahead_min_pages=1)
        big = _machine(readahead_min_pages=8)
        for machine in (small, big):
            fd = machine.kernel.open("/mnt/ext2/f")
            machine.kernel.read(fd, PAGE_SIZE)
            machine.kernel.close(fd)
        # a single one-page read faults min_pages' worth on a miss
        assert big.kernel.counters.pages_read > \
            small.kernel.counters.pages_read


class TestPreadWindowIsolation:
    def _grown_file(self):
        """An open file whose window grew via genuinely sequential
        reads."""
        machine = _machine()
        kernel = machine.kernel
        fd = kernel.open("/mnt/ext2/f")
        for _ in range(6):
            kernel.read(fd, 4 * PAGE_SIZE)
        window = kernel._fd(fd).readahead
        assert window.grows > 0
        return machine, kernel, fd, window

    def test_pread_leaves_window_untouched(self):
        machine, kernel, fd, window = self._grown_file()
        before = window.state()
        # a scatter of positional reads, cold and cached, forward and back
        for offset in (40, 1, 62, 7, 40):
            kernel.pread(fd, offset * PAGE_SIZE, PAGE_SIZE)
        assert window.state() == before  # grows/collapses pinned exactly
        kernel.close(fd)

    def test_pread_async_leaves_window_untouched(self):
        machine, kernel, fd, window = self._grown_file()
        before = window.state()
        engine = kernel.attach_engine()

        def task():
            for offset in (40, 1, 62, 7, 40):
                yield from kernel.pread_async(fd, offset * PAGE_SIZE,
                                              PAGE_SIZE)

        EventScheduler(kernel, [Task("p", task())], engine=engine).run()
        assert window.state() == before
        kernel.close(fd)

    def test_pread_async_with_block_layer_leaves_window_untouched(self):
        """The batched fault path (block layer on) honours the same
        contract."""
        from repro.block.merge import BlockConfig

        machine, kernel, fd, window = self._grown_file()
        before = window.state()
        engine = kernel.attach_engine(
            block=BlockConfig(merge=True, plug=True))

        def task():
            for offset in (40, 1, 62, 7, 40):
                yield from kernel.pread_async(fd, offset * PAGE_SIZE,
                                              PAGE_SIZE)

        EventScheduler(kernel, [Task("p", task())], engine=engine).run()
        assert window.state() == before
        kernel.close(fd)

    def test_sequential_read_still_grows_after_pread(self):
        """The heuristic keeps working for the streaming path after
        positional interruptions."""
        machine, kernel, fd, window = self._grown_file()
        grows_before = window.grows
        kernel.pread(fd, 50 * PAGE_SIZE, PAGE_SIZE)
        kernel.read(fd, 4 * PAGE_SIZE)  # continues the sequential stream
        assert window.grows >= grows_before
        kernel.close(fd)

    def test_state_snapshot_shape(self):
        machine = _machine()
        kernel = machine.kernel
        fd = kernel.open("/mnt/ext2/f")
        window = kernel._fd(fd).readahead
        state = window.state()
        assert state == (window.window_pages, None, 0, 0)
        kernel.read(fd, PAGE_SIZE)
        assert window.state()[1] is not None
        kernel.close(fd)
