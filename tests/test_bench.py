"""Tests for the benchmark harness: measurement, workloads, reporting,
LoC accounting, and the CLI plumbing."""

import numpy as np
import pytest

from repro.bench.cli import EXPERIMENTS, build_parser, main
from repro.bench.loc_count import TABLE4_APPS, count_sleds_lines, table4_reports
from repro.bench.measure import Measurement, measure_runs, summarize
from repro.bench.report import ExperimentResult
from repro.bench.workloads import (
    BenchConfig,
    fits_workload,
    make_machine,
    plant_needles,
    text_workload,
)
from repro.sim.units import MB, PAGE_SIZE


class TestSummarize:
    def test_single_value(self):
        m = summarize([2.0])
        assert m.mean == 2.0
        assert m.ci90 == 0.0

    def test_constant_sample(self):
        m = summarize([3.0, 3.0, 3.0])
        assert m.ci90 == 0.0

    def test_ci_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = summarize(rng.normal(10, 1, 5))
        large = summarize(rng.normal(10, 1, 500))
        assert large.ci90 < small.ci90

    def test_known_interval(self):
        # symmetric sample: mean exact, CI from t-distribution
        m = summarize([1.0, 2.0, 3.0])
        assert m.mean == pytest.approx(2.0)
        assert 1.0 < m.ci90 < 2.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestMeasureRuns:
    def test_warm_runs_discarded(self, unix_machine):
        unix_machine.ext2.create_text_file("f", 32 * PAGE_SIZE, seed=1)
        k = unix_machine.kernel
        calls = []

        def run():
            calls.append(1)
            k.warm_file("/mnt/ext2/f")

        stats = measure_runs(k, run, runs=3, warm_runs=1)
        assert len(calls) == 4
        assert stats.time.n == 3

    def test_cache_state_carries_across_runs(self, unix_machine):
        unix_machine.ext2.create_text_file("f", 32 * PAGE_SIZE, seed=1)
        k = unix_machine.kernel
        stats = measure_runs(
            k, lambda: k.warm_file("/mnt/ext2/f"), runs=3)
        # warm run populated the (large enough) cache: zero faults after
        assert stats.faults.mean == 0.0

    def test_bad_counts_rejected(self, unix_machine):
        with pytest.raises(ValueError):
            measure_runs(unix_machine.kernel, lambda: None, runs=0)


class TestBenchConfig:
    def test_scaled_bytes_linear(self):
        config = BenchConfig(scale=16)
        assert config.scaled_bytes(64) == 4 * MB
        assert config.scaled_bytes(64) * 16 == 64 * MB

    def test_scaled_bytes_page_aligned(self):
        config = BenchConfig(scale=7)
        assert config.scaled_bytes(10) % PAGE_SIZE == 0

    def test_to_paper_seconds(self):
        config = BenchConfig(scale=16)
        assert config.to_paper_seconds(2.0) == 32.0

    def test_cache_pages_scales(self):
        assert (BenchConfig(scale=1).cache_pages()
                == 16 * BenchConfig(scale=16).cache_pages())


class TestWorkloads:
    def test_text_workload(self):
        config = BenchConfig(scale=64, runs=2)
        workload = text_workload(config, 32, "/mnt/ext2")
        assert workload.size == config.scaled_bytes(32)
        st = workload.kernel.stat(workload.path)
        assert st.size == workload.size

    def test_make_machine_profiles(self):
        config = BenchConfig(scale=64)
        for profile in ("unix", "lheasoft", "hsm"):
            machine = make_machine(config, profile=profile)
            assert machine.booted
        with pytest.raises(ValueError):
            make_machine(config, profile="vax")

    def test_plant_needles_disjoint(self):
        rng = np.random.default_rng(1)
        config = BenchConfig()
        plants = plant_needles(config, 100_000, 20, rng)
        offsets = sorted(plants)
        assert len(plants) == 20
        for a, b in zip(offsets, offsets[1:]):
            assert b - a >= len(plants[a])

    def test_fits_workload_openable(self):
        from repro.fits.cfitsio import open_image
        config = BenchConfig(scale=64, runs=2)
        workload = fits_workload(config, 16)
        k = workload.kernel
        fd = k.open(workload.path)
        info = open_image(k, fd, workload.path)
        assert info.element_count > 0
        k.close(fd)


class TestReport:
    def test_row_arity_enforced(self):
        result = ExperimentResult("x", "t", columns=["a", "b"])
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_column_extraction(self):
        result = ExperimentResult("x", "t", columns=["a", "b"])
        result.add_row(1, 2)
        result.add_row(3, 4)
        assert result.column("b") == [2, 4]

    def test_text_rendering(self):
        result = ExperimentResult("fig9", "demo", columns=["MB", "faults"],
                                  paper_expectation="rises sharply")
        result.add_row(64, 12345)
        text = result.to_text()
        assert "fig9" in text
        assert "rises sharply" in text
        assert "12345" in text

    def test_csv_rendering(self):
        result = ExperimentResult("x", "t", columns=["a", "b"])
        result.add_row(1, 2.5)
        assert result.to_csv().splitlines() == ["a,b", "1,2.5"]


class TestLocCount:
    def test_counts_sleds_functions(self):
        source = (
            "def plain():\n"
            "    return 1\n"
            "\n"
            "def _wc_sleds(x):\n"
            "    y = x + 1\n"
            "    return y\n"
        )
        total, sleds = count_sleds_lines(source)
        assert total == 5  # the blank line is not code
        assert sleds == 3

    def test_counts_api_references_outside_functions(self):
        source = "from repro.core.pick import sleds_pick_init\nx = 1\n"
        total, sleds = count_sleds_lines(source)
        assert total == 2
        assert sleds == 1

    def test_table4_covers_all_apps(self):
        reports = table4_reports()
        assert {r.application for r in reports} == set(TABLE4_APPS)
        for report in reports:
            assert 0 < report.sleds_lines <= report.total_lines

    def test_grep_most_modified(self):
        """The paper's ordering claim: grep needed the most change."""
        reports = {r.application: r for r in table4_reports()}
        assert reports["grep"].sleds_lines >= reports["wc"].sleds_lines
        assert reports["grep"].sleds_lines >= reports["find"].sleds_lines
        assert reports["grep"].sleds_lines >= reports["gmc"].sleds_lines


class TestCli:
    def test_list_exits_zero(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out

    def test_unknown_experiment(self, capsys):
        assert main(["--run", "fig99"]) == 2

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.runs == 12
        assert args.scale == 16

    def test_run_quick_experiment(self, capsys, tmp_path):
        code = main(["--run", "fig3", "--csv-dir", str(tmp_path)])
        assert code == 0
        assert "fig3" in capsys.readouterr().out
        assert (tmp_path / "fig3.csv").exists()

    def test_every_experiment_is_described(self):
        from repro.bench.cli import DESCRIPTIONS
        assert set(DESCRIPTIONS) == set(EXPERIMENTS)


class TestCliChart:
    def test_chart_flag_renders(self, capsys):
        assert main(["--run", "fig3", "--chart"]) == 0
        out = capsys.readouterr().out
        # fig3 has no numeric series beyond pass/block; the chart path
        # must degrade gracefully rather than crash
        assert "fig3" in out

    def test_chart_with_numeric_experiment(self, capsys):
        assert main(["--run", "table4", "--chart"]) == 0
        assert "table4" in capsys.readouterr().out
