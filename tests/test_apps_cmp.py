"""Tests for the SLEDs-adapted cmp utility."""

import pytest

from repro.apps.cmp import cmp
from repro.machine import Machine
from repro.sim.units import PAGE_SIZE


def _machine(cache_pages=64):
    machine = Machine.unix_utilities(cache_pages=cache_pages, seed=1501)
    machine.boot()
    return machine


def _pair(machine, size, diff_at=None, seed=5):
    machine.ext2.create_text_file("a.txt", size, seed=seed)
    plants = {diff_at: b"~DIFF~"} if diff_at is not None else {}
    machine.ext2.create_text_file("b.txt", size, seed=seed, plants=plants)
    return "/mnt/ext2/a.txt", "/mnt/ext2/b.txt"


class TestCorrectness:
    def test_identical_files_equal(self):
        machine = _machine()
        a, b = _pair(machine, 8 * PAGE_SIZE)
        for use_sleds in (False, True):
            result = cmp(machine.kernel, a, b, use_sleds=use_sleds)
            assert result.equal

    def test_difference_found_both_modes(self):
        machine = _machine()
        a, b = _pair(machine, 8 * PAGE_SIZE, diff_at=20_000)
        for use_sleds in (False, True):
            result = cmp(machine.kernel, a, b, use_sleds=use_sleds)
            assert not result.equal

    def test_global_first_difference(self):
        machine = _machine()
        a, b = _pair(machine, 8 * PAGE_SIZE, diff_at=20_000)
        for use_sleds in (False, True):
            result = cmp(machine.kernel, a, b, use_sleds=use_sleds,
                         stop_at_first=False)
            assert result.first_difference == 20_000

    def test_size_mismatch(self):
        machine = _machine()
        machine.ext2.create_text_file("a.txt", 1000, seed=1)
        machine.ext2.create_text_file("b.txt", 900, seed=1)
        result = cmp(machine.kernel, "/mnt/ext2/a.txt", "/mnt/ext2/b.txt")
        assert not result.equal
        assert result.size_mismatch
        assert result.first_difference == 900

    def test_empty_files_equal(self):
        machine = _machine()
        k = machine.kernel
        for name in ("a", "b"):
            fd = k.open(f"/mnt/ext2/{name}", "w")
            k.close(fd)
        assert cmp(k, "/mnt/ext2/a", "/mnt/ext2/b").equal


class TestSledsEarlyTermination:
    def _scenario(self):
        """Both files' tails (incl. the differing page) fit in cache; a's
        head was evicted by warming b — the interrupted-work state."""
        machine = _machine(cache_pages=96)
        size = 64 * PAGE_SIZE
        diff_at = size - 2 * PAGE_SIZE
        a, b = _pair(machine, size, diff_at=diff_at)
        k = machine.kernel
        k.warm_file(a)   # a fully cached...
        k.warm_file(b)   # ...b evicts a's head; both tails resident
        return k, a, b

    def test_cached_difference_found_without_device_io(self):
        """The grep -q story for cmp: the differing pages of both files
        are cached, so the SLEDs comparison never touches the disk."""
        k, a, b = self._scenario()
        with k.process() as run:
            result = cmp(k, a, b, use_sleds=True)
        assert not result.equal
        assert run.counters.pages_read == 0

    def test_linear_cmp_pays_device_io_for_same_state(self):
        k, a, b = self._scenario()
        with k.process() as run:
            result = cmp(k, a, b)
        assert not result.equal
        # the linear scan re-reads a's evicted head before reaching the
        # cached difference near the tail
        assert run.counters.pages_read > 20
