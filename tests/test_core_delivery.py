"""Unit and property tests for total-delivery-time estimation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delivery import (
    SLEDS_BEST,
    SLEDS_LINEAR,
    estimate_delivery_time,
    sleds_total_delivery_time,
    sleds_total_delivery_time_path,
)
from repro.core.sled import Sled, SledVector
from repro.machine import Machine
from repro.sim.errors import InvalidArgumentError
from repro.sim.units import PAGE_SIZE


def _vector(pieces):
    sleds = []
    offset = 0
    for length, latency, bandwidth in pieces:
        sleds.append(Sled(offset, length, latency, bandwidth))
        offset += length
    return SledVector(sleds, file_size=offset, coalesce=False)


class TestEstimates:
    def test_linear_sums_each_sled(self):
        vector = _vector([(1000, 0.5, 1000), (2000, 0.1, 1000)])
        expected = (0.5 + 1.0) + (0.1 + 2.0)
        assert estimate_delivery_time(vector, SLEDS_LINEAR) == pytest.approx(
            expected)

    def test_best_charges_level_latency_once(self):
        vector = _vector([(1000, 0.5, 1000), (2000, 0.001, 1e6),
                          (3000, 0.5, 1000)])
        expected = (0.5 + 4000 / 1000) + (0.001 + 2000 / 1e6)
        assert estimate_delivery_time(vector, SLEDS_BEST) == pytest.approx(
            expected)

    def test_empty_vector_is_zero(self):
        empty = SledVector([], file_size=0)
        assert estimate_delivery_time(empty, SLEDS_LINEAR) == 0.0
        assert estimate_delivery_time(empty, SLEDS_BEST) == 0.0

    def test_unknown_plan_rejected(self):
        vector = _vector([(1000, 0.5, 1000)])
        with pytest.raises(InvalidArgumentError):
            estimate_delivery_time(vector, "SLEDS_WORST")

    @given(st.lists(st.tuples(st.integers(1, 10_000),
                              st.sampled_from([1e-7, 0.018, 0.13, 0.27]),
                              st.sampled_from([1e6, 9e6, 48e6])),
                    min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_best_never_exceeds_linear(self, pieces):
        vector = _vector(pieces)
        best = estimate_delivery_time(vector, SLEDS_BEST)
        linear = estimate_delivery_time(vector, SLEDS_LINEAR)
        assert best <= linear + 1e-12

    @given(st.lists(st.tuples(st.integers(1, 10_000),
                              st.sampled_from([1e-7, 0.018]),
                              st.sampled_from([1e6, 48e6])),
                    min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_estimates_lower_bounded_by_transfer_time(self, pieces):
        vector = _vector(pieces)
        transfer = sum(length / bw for length, _, bw in pieces)
        assert estimate_delivery_time(vector, SLEDS_BEST) >= transfer - 1e-12


class TestKernelIntegration:
    def test_delivery_time_falls_after_warming(self):
        machine = Machine.unix_utilities(cache_pages=256, seed=41)
        machine.boot()
        machine.ext2.create_text_file("f", 64 * PAGE_SIZE, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        cold = sleds_total_delivery_time(k, fd)
        k.warm_file("/mnt/ext2/f")
        warm = sleds_total_delivery_time(k, fd)
        k.close(fd)
        assert warm < cold / 5

    def test_path_convenience_closes_fd(self):
        machine = Machine.unix_utilities(cache_pages=64, seed=41)
        machine.boot()
        machine.ext2.create_text_file("f", PAGE_SIZE, seed=1)
        t = sleds_total_delivery_time_path(machine.kernel, "/mnt/ext2/f")
        assert t > 0
        # fd table is empty again: opening yields the next fd and closing works
        fd = machine.kernel.open("/mnt/ext2/f")
        machine.kernel.close(fd)


class TestRangeEstimates:
    def _vector(self):
        return _vector([(1000, 0.5, 1000), (2000, 0.001, 1e6),
                        (3000, 0.5, 1000)])

    def test_whole_file_matches_total(self):
        from repro.core.delivery import estimate_range_delivery
        vector = _vector([(1000, 0.5, 1000), (2000, 0.001, 1e6)])
        assert estimate_range_delivery(vector, 0, 3000) == pytest.approx(
            estimate_delivery_time(vector, SLEDS_LINEAR))

    def test_partial_range_intersects_sleds(self):
        from repro.core.delivery import estimate_range_delivery
        vector = _vector([(1000, 0.5, 1000), (2000, 0.001, 1e6)])
        # 500 bytes of the first sled + 100 of the second
        t = estimate_range_delivery(vector, 500, 600)
        assert t == pytest.approx(0.5 + 500 / 1000 + 0.001 + 100 / 1e6)

    def test_range_past_eof_clamped(self):
        from repro.core.delivery import estimate_range_delivery
        vector = _vector([(1000, 0.5, 1000)])
        assert estimate_range_delivery(vector, 900, 10_000) == \
            pytest.approx(0.5 + 100 / 1000)

    def test_empty_range_is_zero(self):
        from repro.core.delivery import estimate_range_delivery
        vector = _vector([(1000, 0.5, 1000)])
        assert estimate_range_delivery(vector, 200, 0) == 0.0

    def test_best_plan_charges_levels_once(self):
        from repro.core.delivery import estimate_range_delivery
        vector = _vector([(1000, 0.5, 1000), (2000, 0.001, 1e6),
                          (3000, 0.5, 1000)])
        best = estimate_range_delivery(vector, 0, 6000, SLEDS_BEST)
        linear = estimate_range_delivery(vector, 0, 6000, SLEDS_LINEAR)
        assert best == pytest.approx(linear - 0.5)  # one fewer 0.5s charge

    def test_negative_range_rejected(self):
        from repro.core.delivery import estimate_range_delivery
        from repro.sim.errors import InvalidArgumentError
        vector = _vector([(1000, 0.5, 1000)])
        with pytest.raises(InvalidArgumentError):
            estimate_range_delivery(vector, -1, 10)
