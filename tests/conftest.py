"""Shared fixtures: small, fast machines with deterministic seeds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import Machine
from repro.sim.units import MB


@pytest.fixture
def unix_machine():
    """Unix-utility profile with a small (1 MB) cache, booted."""
    machine = Machine.unix_utilities(cache_pages=256, seed=123)
    machine.boot()
    return machine


@pytest.fixture
def lhea_machine():
    """LHEASOFT profile with a small cache, booted."""
    machine = Machine.lheasoft(cache_pages=256, seed=124)
    machine.boot()
    return machine


@pytest.fixture
def hsm_machine():
    """HSM profile: tape library + staging disk, booted."""
    machine = Machine.hsm(cache_pages=256, stage_pages=512, seed=125)
    machine.boot()
    return machine


@pytest.fixture
def kernel(unix_machine):
    return unix_machine.kernel


@pytest.fixture
def ext2_file(unix_machine):
    """A 512 KB text file on ext2; returns (machine, path, size)."""
    size = MB // 2
    unix_machine.ext2.create_text_file("data/file.txt", size, seed=7)
    return unix_machine, "/mnt/ext2/data/file.txt", size


@pytest.fixture
def rng():
    return np.random.default_rng(42)
