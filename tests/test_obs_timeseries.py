"""Tests for the virtual-time metric sampler (repro.obs.timeseries)."""

import json

import pytest

from repro.machine import Machine
from repro.obs import Telemetry, TimeSeriesRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import series_key
from repro.sim.units import MB


def _registry():
    reg = MetricsRegistry(namespace="repro")
    reg.counter("reads_total", "Reads", labels=("device",))
    reg.gauge("depth", "Depth")
    reg.histogram("lat_seconds", "Latency", buckets=(0.01, 0.1, 1.0))
    return reg


class TestCadence:
    def test_first_tick_anchors_and_samples(self):
        ts = TimeSeriesRecorder(_registry(), interval=0.01)
        assert ts.tick(5.0) is True
        assert len(ts) == 1
        # within the same period: no second sample
        assert ts.tick(5.004) is False
        assert ts.tick(5.009) is False
        assert ts.tick(5.010) is True
        assert len(ts) == 2

    def test_one_sample_per_crossing_however_large_the_jump(self):
        ts = TimeSeriesRecorder(_registry(), interval=0.01)
        ts.tick(0.0)
        # a 100 s jump (tape mount) produces ONE sample, not 10 000
        assert ts.tick(100.0) is True
        assert len(ts) == 2
        # and the grid stays anchored: next boundary is past 100.0
        assert ts.tick(100.0) is False
        assert ts.tick(100.01) is True

    def test_samples_stamped_with_actual_time(self):
        ts = TimeSeriesRecorder(_registry(), interval=0.01)
        ts.tick(0.0)
        ts.tick(0.0137)
        times = [t for t, _ in ts.samples]
        assert times == [0.0, 0.0137]

    def test_ring_buffer_drops_oldest(self):
        ts = TimeSeriesRecorder(_registry(), interval=1.0, capacity=3)
        for i in range(5):
            ts.sample(float(i))
        assert len(ts) == 3
        assert ts.dropped == 2
        assert [t for t, _ in ts.samples] == [2.0, 3.0, 4.0]

    @pytest.mark.parametrize("kwargs", [
        {"interval": 0.0}, {"interval": -1.0}, {"capacity": 0},
    ])
    def test_bad_spec_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(_registry(), **kwargs)


class TestSampling:
    def test_counter_gauge_histogram_shapes(self):
        reg = _registry()
        reg.get("reads_total").labels(device="disk").inc(5)
        reg.get("depth").set(3)
        reg.get("lat_seconds").observe(0.05)
        ts = TimeSeriesRecorder(reg)
        row = ts.sample(1.0)
        assert row[series_key("reads_total", {"device": "disk"})] == 5.0
        assert row["depth"] == 3.0
        hist = row["lat_seconds"]
        assert hist["count"] == 1 and hist["sum"] == 0.05
        assert hist["p50"] == 0.1  # bucket upper edge

    def test_family_filter(self):
        reg = _registry()
        reg.get("reads_total").labels(device="disk").inc()
        reg.get("depth").set(1)
        ts = TimeSeriesRecorder(reg, families=("depth",))
        row = ts.sample(0.0)
        assert set(row) == {"depth"}
        assert ts.family_names_sampled() == ["depth"]

    def test_series_pivot_per_series_time_axis(self):
        reg = _registry()
        ts = TimeSeriesRecorder(reg)
        reg.get("depth").set(1)
        ts.sample(0.0)
        # a series born later is simply missing earlier timestamps
        reg.get("reads_total").labels(device="disk").inc()
        reg.get("depth").set(2)
        ts.sample(1.0)
        series = ts.series()
        assert series["depth"] == {"t": [0.0, 1.0], "values": [1.0, 2.0]}
        key = series_key("reads_total", {"device": "disk"})
        assert series[key] == {"t": [1.0], "values": [1.0]}

    def test_snapshot_hook_runs_before_each_sample(self):
        reg = _registry()
        calls = []
        ts = TimeSeriesRecorder(reg, snapshot_hook=lambda: calls.append(1))
        ts.sample(0.0)
        ts.sample(1.0)
        assert len(calls) == 2

    def test_to_dict_round_trips_json(self):
        reg = _registry()
        reg.get("depth").set(4)
        ts = TimeSeriesRecorder(reg)
        ts.sample(0.5)
        dump = json.loads(json.dumps(ts.to_dict(), sort_keys=True))
        assert dump["samples"] == 1
        assert dump["families"] == ["depth"]
        assert dump["series"]["depth"]["values"] == [4.0]

    def test_clear(self):
        ts = TimeSeriesRecorder(_registry(), capacity=1)
        ts.sample(0.0)
        ts.sample(1.0)
        ts.clear()
        assert len(ts) == 0 and ts.dropped == 0
        # cadence re-anchors after clear
        assert ts.tick(50.0) is True


class TestOpenMetrics:
    def test_timestamped_lines_and_eof(self):
        reg = _registry()
        reg.get("reads_total").labels(device="disk").inc(2)
        reg.get("depth").set(7)
        ts = TimeSeriesRecorder(reg)
        ts.sample(0.25)
        ts.sample(0.5)
        text = ts.render_openmetrics()
        assert text.endswith("# EOF\n")
        assert "# TYPE repro_reads_total counter" in text
        assert "# TYPE repro_depth gauge" in text
        assert 'repro_reads_total{device="disk"} 2 0.25' in text
        assert "repro_depth 7 0.5" in text

    def test_histograms_flatten_to_quantile_gauges(self):
        reg = _registry()
        reg.get("lat_seconds").observe(0.05)
        ts = TimeSeriesRecorder(reg)
        ts.sample(1.0)
        text = ts.render_openmetrics()
        assert "# TYPE repro_lat_seconds_count gauge" in text
        assert "repro_lat_seconds_p50 0.1 1" in text
        assert "repro_lat_seconds_sum 0.05 1" in text


class TestTelemetryIntegration:
    def test_enable_and_sample_on_real_run(self):
        machine = Machine.unix_utilities(cache_pages=256, seed=123)
        machine.boot()
        machine.ext2.create_text_file("data/f.txt", MB // 2, seed=7)
        telemetry = Telemetry()
        telemetry.attach(machine.kernel)
        series = telemetry.enable_timeseries(interval=0.002)
        from repro.apps.wc import wc
        wc(machine.kernel, "/mnt/ext2/data/f.txt", use_sleds=True)
        series.sample(machine.kernel.clock.now)
        telemetry.detach()
        assert len(series) >= 2
        # the acceptance bar: at least three sampled metric families
        assert len(series.family_names_sampled()) >= 3
        # snapshot hook refreshed point-in-time gauges into the rows
        assert any("virtual_time_seconds" in key
                   for _, row in series.samples for key in row)

    def test_double_enable_rejected(self):
        telemetry = Telemetry()
        telemetry.enable_timeseries()
        with pytest.raises(ValueError):
            telemetry.enable_timeseries()
        telemetry.disable_timeseries()
        assert telemetry.timeseries is None
