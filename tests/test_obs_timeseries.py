"""Tests for the virtual-time metric sampler (repro.obs.timeseries)."""

import json

import pytest

from repro.machine import Machine
from repro.obs import Telemetry, TimeSeriesRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import series_key
from repro.sim.units import MB


def _registry():
    reg = MetricsRegistry(namespace="repro")
    reg.counter("reads_total", "Reads", labels=("device",))
    reg.gauge("depth", "Depth")
    reg.histogram("lat_seconds", "Latency", buckets=(0.01, 0.1, 1.0))
    return reg


class TestCadence:
    def test_first_tick_anchors_and_samples(self):
        ts = TimeSeriesRecorder(_registry(), interval=0.01)
        assert ts.tick(5.0) is True
        assert len(ts) == 1
        # within the same period: no second sample
        assert ts.tick(5.004) is False
        assert ts.tick(5.009) is False
        assert ts.tick(5.010) is True
        assert len(ts) == 2

    def test_one_sample_per_crossing_however_large_the_jump(self):
        ts = TimeSeriesRecorder(_registry(), interval=0.01)
        ts.tick(0.0)
        # a 100 s jump (tape mount) produces ONE sample, not 10 000
        assert ts.tick(100.0) is True
        assert len(ts) == 2
        # and the grid stays anchored: next boundary is past 100.0
        assert ts.tick(100.0) is False
        assert ts.tick(100.01) is True

    def test_samples_stamped_with_actual_time(self):
        ts = TimeSeriesRecorder(_registry(), interval=0.01)
        ts.tick(0.0)
        ts.tick(0.0137)
        times = [t for t, _ in ts.samples]
        assert times == [0.0, 0.0137]

    def test_ring_buffer_drops_oldest(self):
        ts = TimeSeriesRecorder(_registry(), interval=1.0, capacity=3)
        for i in range(5):
            ts.sample(float(i))
        assert len(ts) == 3
        assert ts.dropped == 2
        assert [t for t, _ in ts.samples] == [2.0, 3.0, 4.0]

    @pytest.mark.parametrize("kwargs", [
        {"interval": 0.0}, {"interval": -1.0}, {"capacity": 0},
    ])
    def test_bad_spec_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(_registry(), **kwargs)


class TestSampling:
    def test_counter_gauge_histogram_shapes(self):
        reg = _registry()
        reg.get("reads_total").labels(device="disk").inc(5)
        reg.get("depth").set(3)
        reg.get("lat_seconds").observe(0.05)
        ts = TimeSeriesRecorder(reg)
        row = ts.sample(1.0)
        assert row[series_key("reads_total", {"device": "disk"})] == 5.0
        assert row["depth"] == 3.0
        hist = row["lat_seconds"]
        assert hist["count"] == 1 and hist["sum"] == 0.05
        assert hist["p50"] == 0.1  # bucket upper edge

    def test_family_filter(self):
        reg = _registry()
        reg.get("reads_total").labels(device="disk").inc()
        reg.get("depth").set(1)
        ts = TimeSeriesRecorder(reg, families=("depth",))
        row = ts.sample(0.0)
        assert set(row) == {"depth"}
        assert ts.family_names_sampled() == ["depth"]

    def test_series_pivot_per_series_time_axis(self):
        reg = _registry()
        ts = TimeSeriesRecorder(reg)
        reg.get("depth").set(1)
        ts.sample(0.0)
        # a series born later is simply missing earlier timestamps
        reg.get("reads_total").labels(device="disk").inc()
        reg.get("depth").set(2)
        ts.sample(1.0)
        series = ts.series()
        assert series["depth"] == {"t": [0.0, 1.0], "values": [1.0, 2.0]}
        key = series_key("reads_total", {"device": "disk"})
        assert series[key] == {"t": [1.0], "values": [1.0]}

    def test_snapshot_hook_runs_before_each_sample(self):
        reg = _registry()
        calls = []
        ts = TimeSeriesRecorder(reg, snapshot_hook=lambda: calls.append(1))
        ts.sample(0.0)
        ts.sample(1.0)
        assert len(calls) == 2

    def test_to_dict_round_trips_json(self):
        reg = _registry()
        reg.get("depth").set(4)
        ts = TimeSeriesRecorder(reg)
        ts.sample(0.5)
        dump = json.loads(json.dumps(ts.to_dict(), sort_keys=True))
        assert dump["samples"] == 1
        assert dump["families"] == ["depth"]
        assert dump["series"]["depth"]["values"] == [4.0]

    def test_clear(self):
        ts = TimeSeriesRecorder(_registry(), capacity=1)
        ts.sample(0.0)
        ts.sample(1.0)
        ts.clear()
        assert len(ts) == 0 and ts.dropped == 0
        # cadence re-anchors after clear
        assert ts.tick(50.0) is True


class TestOpenMetrics:
    def test_timestamped_lines_and_eof(self):
        reg = _registry()
        reg.get("reads_total").labels(device="disk").inc(2)
        reg.get("depth").set(7)
        ts = TimeSeriesRecorder(reg)
        ts.sample(0.25)
        ts.sample(0.5)
        text = ts.render_openmetrics()
        assert text.endswith("# EOF\n")
        assert "# TYPE repro_reads_total counter" in text
        assert "# TYPE repro_depth gauge" in text
        assert 'repro_reads_total{device="disk"} 2 0.25' in text
        assert "repro_depth 7 0.5" in text

    def test_histograms_flatten_to_quantile_gauges(self):
        reg = _registry()
        reg.get("lat_seconds").observe(0.05)
        ts = TimeSeriesRecorder(reg)
        ts.sample(1.0)
        text = ts.render_openmetrics()
        assert "# TYPE repro_lat_seconds_count gauge" in text
        assert "repro_lat_seconds_p50 0.1 1" in text
        assert "repro_lat_seconds_sum 0.05 1" in text


class TestOpenMetricsConformance:
    """Spec-hygiene: real histogram bucket series when opted in,
    exemplars only where the spec allows them, families contiguous and
    sorted, exactly one terminating ``# EOF``."""

    def _request_registry(self):
        reg = MetricsRegistry(namespace="repro")
        reg.histogram("lifecycle_request_seconds", "Latency",
                      labels=("cls",), buckets=(0.01, 0.1, 1.0))
        reg.histogram("lifecycle_component_seconds", "Component",
                      labels=("cls", "component"),
                      buckets=(0.01, 0.1, 1.0))
        return reg

    def _reservoir(self):
        from repro.obs.forensics import ExemplarReservoir
        from repro.obs.lifecycle import LifecycleRecord
        from repro.sim.units import PAGE_SIZE
        reservoir = ExemplarReservoir(buckets=(0.01, 0.1, 1.0))
        reservoir.observe(LifecycleRecord(
            id=42, kind="fault", task="t", fs="ext2",
            device_class="disk", inode=1, page=0, cluster=1,
            nbytes=PAGE_SIZE, submit_time=10.0, start_time=10.01,
            finish_time=10.05, components=(("transfer", 0.04),)))
        return reservoir

    def test_sampled_buckets_render_as_real_histograms(self):
        reg = self._request_registry()
        hist = reg.get("lifecycle_request_seconds").labels(cls="disk")
        hist.observe(0.05)
        hist.observe(0.5)
        ts = TimeSeriesRecorder(reg, sample_buckets=True)
        ts.sample(1.0)
        text = ts.render_openmetrics()
        assert "# TYPE repro_lifecycle_request_seconds histogram" in text
        assert ('repro_lifecycle_request_seconds_bucket'
                '{cls="disk",le="0.01"} 0 1') in text
        assert ('repro_lifecycle_request_seconds_bucket'
                '{cls="disk",le="0.1"} 1 1') in text
        assert ('repro_lifecycle_request_seconds_bucket'
                '{cls="disk",le="+Inf"} 2 1') in text
        assert "repro_lifecycle_request_seconds_count" in text
        assert "repro_lifecycle_request_seconds_sum" in text
        # quantile summaries stay flattened gauges
        assert "# TYPE repro_lifecycle_request_seconds_p50 gauge" in text

    def test_exemplars_only_on_request_bucket_lines(self):
        reg = self._request_registry()
        reg.get("lifecycle_request_seconds").labels(
            cls="disk").observe(0.05)
        reg.get("lifecycle_component_seconds").labels(
            cls="disk", component="transfer").observe(0.04)
        ts = TimeSeriesRecorder(reg, sample_buckets=True,
                                exemplars=self._reservoir())
        ts.sample(1.0)
        for line in ts.render_openmetrics().splitlines():
            if " # {" not in line:
                continue
            # exemplars are legal on bucket samples only, and only the
            # request-latency family carries them (a component bucket
            # would get an out-of-range exemplar value)
            assert line.startswith(
                "repro_lifecycle_request_seconds_bucket{"), line
            assert '# {trace_id="42"} 0.05' in line
            assert line.endswith(" 10.05")
        assert sum(" # {" in line
                   for line in ts.render_openmetrics().splitlines()) > 0

    def test_no_exemplars_without_reservoir(self):
        reg = self._request_registry()
        reg.get("lifecycle_request_seconds").labels(
            cls="disk").observe(0.05)
        ts = TimeSeriesRecorder(reg, sample_buckets=True)
        ts.sample(1.0)
        assert " # {" not in ts.render_openmetrics()

    def test_families_contiguous_sorted_single_eof(self):
        reg = _registry()
        reg.get("reads_total").labels(device="disk").inc(2)
        reg.get("depth").set(7)
        reg.get("lat_seconds").observe(0.05)
        ts = TimeSeriesRecorder(reg, sample_buckets=True,
                                exemplars=self._reservoir())
        ts.sample(0.25)
        ts.sample(0.5)
        lines = ts.render_openmetrics().splitlines()
        assert lines[-1] == "# EOF"
        assert sum(line == "# EOF" for line in lines) == 1
        families = []
        current = None
        for line in lines[:-1]:
            if line.startswith("# TYPE "):
                current = line.split()[2]
                families.append(current)
            else:
                assert current is not None
                name = line.split("{", 1)[0].split(" ", 1)[0]
                # every sample line belongs to the family most recently
                # declared — i.e. families are contiguous blocks
                assert name == current or name.startswith(current + "_"), \
                    f"{name} interleaved into family {current}"
        assert families == sorted(families)
        assert len(families) == len(set(families))


class TestTelemetryIntegration:
    def test_enable_and_sample_on_real_run(self):
        machine = Machine.unix_utilities(cache_pages=256, seed=123)
        machine.boot()
        machine.ext2.create_text_file("data/f.txt", MB // 2, seed=7)
        telemetry = Telemetry()
        telemetry.attach(machine.kernel)
        series = telemetry.enable_timeseries(interval=0.002)
        from repro.apps.wc import wc
        wc(machine.kernel, "/mnt/ext2/data/f.txt", use_sleds=True)
        series.sample(machine.kernel.clock.now)
        telemetry.detach()
        assert len(series) >= 2
        # the acceptance bar: at least three sampled metric families
        assert len(series.family_names_sampled()) >= 3
        # snapshot hook refreshed point-in-time gauges into the rows
        assert any("virtual_time_seconds" in key
                   for _, row in series.samples for key in row)

    def test_double_enable_rejected(self):
        telemetry = Telemetry()
        telemetry.enable_timeseries()
        with pytest.raises(ValueError):
            telemetry.enable_timeseries()
        telemetry.disable_timeseries()
        assert telemetry.timeseries is None
