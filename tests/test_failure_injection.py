"""Failure-injection tests: EIO propagation through the whole stack."""

import numpy as np
import pytest

from repro.apps.wc import wc
from repro.devices.disk import DiskDevice
from repro.machine import Machine
from repro.sim.errors import IoSimError
from repro.sim.units import PAGE_SIZE


def _machine():
    machine = Machine.unix_utilities(cache_pages=64, seed=801)
    machine.boot()
    return machine


class TestDeviceLevel:
    def test_injected_failure_raises_once(self):
        disk = DiskDevice(rng=np.random.default_rng(1))
        disk.inject_failures(1)
        with pytest.raises(IoSimError) as excinfo:
            disk.read(0, PAGE_SIZE)
        assert excinfo.value.errno_name == "EIO"
        assert excinfo.value.device == "disk"
        # subsequent access succeeds
        assert disk.read(0, PAGE_SIZE) > 0
        assert disk.stats.errors == 1

    def test_injected_failure_counts(self):
        disk = DiskDevice(rng=np.random.default_rng(1))
        disk.inject_failures(3)
        for _ in range(3):
            with pytest.raises(IoSimError):
                disk.read(0, PAGE_SIZE)
        disk.read(0, PAGE_SIZE)
        assert disk.stats.errors == 3

    def test_bad_range_is_persistent(self):
        disk = DiskDevice(rng=np.random.default_rng(1))
        disk.mark_bad_range(10 * PAGE_SIZE, PAGE_SIZE)
        for _ in range(2):
            with pytest.raises(IoSimError):
                disk.read(10 * PAGE_SIZE, PAGE_SIZE)
        # non-overlapping access is fine
        disk.read(0, PAGE_SIZE)

    def test_overlap_detection(self):
        disk = DiskDevice(rng=np.random.default_rng(1))
        disk.mark_bad_range(10 * PAGE_SIZE, PAGE_SIZE)
        with pytest.raises(IoSimError):
            disk.read(9 * PAGE_SIZE, 2 * PAGE_SIZE)  # straddles the defect

    def test_clear_failures(self):
        disk = DiskDevice(rng=np.random.default_rng(1))
        disk.inject_failures(5)
        disk.mark_bad_range(0, PAGE_SIZE)
        disk.clear_failures()
        disk.read(0, PAGE_SIZE)

    def test_writes_fail_too(self):
        disk = DiskDevice(rng=np.random.default_rng(1))
        disk.inject_failures(1)
        with pytest.raises(IoSimError) as excinfo:
            disk.write(0, PAGE_SIZE)
        assert excinfo.value.is_write

    def test_invalid_injection(self):
        disk = DiskDevice(rng=np.random.default_rng(1))
        with pytest.raises(ValueError):
            disk.inject_failures(-1)
        with pytest.raises(ValueError):
            disk.mark_bad_range(0, 0)


class TestKernelPropagation:
    def test_read_surfaces_eio(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1)
        machine.ext2.device.inject_failures(1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        with pytest.raises(IoSimError):
            k.read(fd, PAGE_SIZE)
        k.close(fd)

    def test_failed_cluster_not_cached(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1)
        machine.ext2.device.inject_failures(1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        with pytest.raises(IoSimError):
            k.read(fd, PAGE_SIZE)
        inode = k.resolve("/mnt/ext2/f")[1]
        assert k.page_cache.resident_count(inode.id, 8) == 0
        # retry after the transient error succeeds and caches
        k.lseek(fd, 0)
        assert len(k.read(fd, PAGE_SIZE)) == PAGE_SIZE
        assert k.page_cache.resident_count(inode.id, 8) > 0
        k.close(fd)

    def test_application_surfaces_eio(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1)
        machine.ext2.device.inject_failures(1)
        with pytest.raises(IoSimError):
            wc(machine.kernel, "/mnt/ext2/f")

    def test_cached_reads_unaffected_by_device_failure(self):
        """The SLEDs story even applies to errors: cached data stays
        readable while the device is failing."""
        machine = _machine()
        machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        machine.ext2.device.inject_failures(100)
        result = wc(k, "/mnt/ext2/f", use_sleds=True)
        assert result.chars == 8 * PAGE_SIZE
        machine.ext2.device.clear_failures()

    def test_writeback_surfaces_eio(self):
        machine = _machine()
        k = machine.kernel
        fd = k.open("/mnt/ext2/out.dat", "w")
        k.write(fd, b"x" * PAGE_SIZE)
        machine.ext2.device.inject_failures(1)
        with pytest.raises(IoSimError):
            k.fsync(fd)
        machine.ext2.device.clear_failures()
        k.close(fd)

    def test_dirty_state_survives_failed_flush(self):
        """A failed writeback keeps the pages dirty; a retry succeeds."""
        machine = _machine()
        k = machine.kernel
        fd = k.open("/mnt/ext2/retry.dat", "w")
        k.write(fd, b"y" * (2 * PAGE_SIZE))
        machine.ext2.device.inject_failures(1)
        with pytest.raises(IoSimError):
            k.fsync(fd)
        machine.ext2.device.clear_failures()
        before = k.counters.pages_written
        k.fsync(fd)  # the retry must actually write the data
        assert k.counters.pages_written == before + 2
        k.close(fd)
