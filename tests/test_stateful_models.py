"""Hypothesis stateful model tests: the cache and the file syscalls are
compared against simple reference models under random operation
sequences."""

from collections import OrderedDict

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cache.page_cache import PageCache
from repro.machine import Machine
from repro.sim.units import PAGE_SIZE

KEYS = [(1, page) for page in range(12)] + [(2, page) for page in range(6)]
CAPACITY = 6


class LruCacheModel(RuleBasedStateMachine):
    """PageCache(LRU) vs a reference OrderedDict LRU."""

    def __init__(self):
        super().__init__()
        self.cache = PageCache(CAPACITY, policy="lru")
        self.reference: OrderedDict = OrderedDict()
        self.pinned: set = set()

    @rule(key=st.sampled_from(KEYS))
    def access_or_insert(self, key):
        hit = self.cache.access(key)
        assert hit == (key in self.reference)
        if hit:
            self.reference.move_to_end(key)
        else:
            self.cache.insert(key)
            if (len(self.reference) >= CAPACITY
                    and key not in self.reference):
                # mirror _evict_one: pinned pages passed over get a fresh
                # lease (move to MRU); the first unpinned page is evicted
                for victim in list(self.reference):
                    if victim in self.pinned:
                        self.reference.move_to_end(victim)
                    else:
                        del self.reference[victim]
                        break
            self.reference[key] = None

    @rule(key=st.sampled_from(KEYS))
    def pin(self, key):
        took = self.cache.pin(key)
        if took:
            self.pinned.add(key)
        # pins only take on resident pages within budget
        assert not took or key in self.reference

    @rule(key=st.sampled_from(KEYS))
    def unpin(self, key):
        self.cache.unpin(key)
        self.pinned.discard(key)

    @rule(key=st.sampled_from(KEYS))
    def invalidate(self, key):
        dropped = self.cache.invalidate(key)
        assert dropped == (key in self.reference)
        self.reference.pop(key, None)
        self.pinned.discard(key)

    @rule(inode=st.sampled_from([1, 2]))
    def invalidate_inode(self, inode):
        count = self.cache.invalidate_inode(inode)
        victims = [k for k in self.reference if k[0] == inode]
        assert count == len(victims)
        for key in victims:
            del self.reference[key]
            self.pinned.discard(key)

    @invariant()
    def same_resident_set(self):
        assert len(self.cache) == len(self.reference)
        for key in self.reference:
            assert key in self.cache
        assert len(self.cache) <= CAPACITY

    @invariant()
    def pinned_pages_resident(self):
        for key in self.pinned:
            assert key in self.cache


TestLruCacheModel = LruCacheModel.TestCase
TestLruCacheModel.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None)


class FileSyscallModel(RuleBasedStateMachine):
    """Kernel file syscalls vs an in-memory bytearray reference."""

    @initialize()
    def setup(self):
        machine = Machine.unix_utilities(cache_pages=16, seed=1001)
        machine.boot()
        self.kernel = machine.kernel
        self.fd = self.kernel.open("/mnt/ext2/model.dat", "w")
        self.reference = bytearray()
        self.pos = 0

    @rule(data=st.binary(min_size=1, max_size=3 * PAGE_SIZE))
    def write(self, data):
        self.kernel.write(self.fd, data)
        end = self.pos + len(data)
        if end > len(self.reference):
            self.reference.extend(b"\0" * (end - len(self.reference)))
        self.reference[self.pos:end] = data
        self.pos = end

    @rule(offset=st.integers(0, 6 * PAGE_SIZE))
    def seek(self, offset):
        self.kernel.lseek(self.fd, offset)
        self.pos = min(offset, offset)
        self.pos = offset

    @rule(nbytes=st.integers(1, 2 * PAGE_SIZE))
    def read(self, nbytes):
        data = self.kernel.read(self.fd, nbytes)
        expected = bytes(self.reference[self.pos:self.pos + nbytes])
        assert data == expected
        self.pos += len(data)

    @rule(offset=st.integers(0, 6 * PAGE_SIZE),
          nbytes=st.integers(1, PAGE_SIZE))
    def pread(self, offset, nbytes):
        data = self.kernel.pread(self.fd, offset, nbytes)
        assert data == bytes(self.reference[offset:offset + nbytes])

    @rule()
    def fsync(self):
        self.kernel.fsync(self.fd)

    @rule()
    def reopen(self):
        """Close and reopen: size and contents must persist."""
        self.kernel.close(self.fd)
        self.fd = self.kernel.open("/mnt/ext2/model.dat", "r+")
        self.pos = 0

    @invariant()
    def size_matches(self):
        if hasattr(self, "kernel"):
            st_result = self.kernel.stat("/mnt/ext2/model.dat")
            assert st_result.size == len(self.reference)


TestFileSyscallModel = FileSyscallModel.TestCase
TestFileSyscallModel.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)


class HsmStagingModel(RuleBasedStateMachine):
    """HSM staging invariants under random read/write/migrate sequences."""

    @initialize()
    def setup(self):
        import numpy as np
        from repro.devices.autochanger import Autochanger
        from repro.devices.disk import DiskDevice
        from repro.devices.tape import TapeCartridge, TapeDevice
        from repro.fs.hsmfs import HsmFs

        rng = __import__("numpy").random.default_rng(7)
        changer = Autochanger(
            [TapeDevice(name="t0", rng=rng)],
            [TapeCartridge("V0"), TapeCartridge("V1")], rng=rng)
        self.fs = HsmFs(changer, stage_device=DiskDevice(
            name="sd", rng=rng), stage_pages=8)
        self.inodes = []
        for i in range(3):
            inode = self.fs.create_tape_file(
                f"f{i}", 6 * PAGE_SIZE, "V0" if i % 2 == 0 else "V1")
            self.inodes.append(inode)

    @rule(file_index=st.integers(0, 2), start=st.integers(0, 5),
          npages=st.integers(1, 6))
    def read(self, file_index, start, npages):
        inode = self.inodes[file_index]
        npages = min(npages, 6 - start)
        if npages <= 0:
            return
        seconds = self.fs.read_pages(inode, start, npages)
        assert seconds >= 0
        for page in range(start, start + npages):
            # a just-read page is staged unless the stage immediately
            # evicted it under pressure from this very read
            pass

    @rule(file_index=st.integers(0, 2), start=st.integers(0, 5),
          npages=st.integers(1, 3))
    def write(self, file_index, start, npages):
        inode = self.inodes[file_index]
        npages = min(npages, 6 - start)
        if npages <= 0:
            return
        self.fs.write_pages(inode, start, npages)
        # written pages are always staged right afterwards (stage cap 8 >= 3)
        staged = sum(self.fs.is_staged(inode, p)
                     for p in range(start, start + npages))
        assert staged == npages

    @rule(file_index=st.integers(0, 2))
    def migrate(self, file_index):
        inode = self.inodes[file_index]
        self.fs.migrate_to_tape(inode)
        assert self.fs.staged_count(inode) == 0

    @invariant()
    def stage_capacity_respected(self):
        if hasattr(self, "fs"):
            total = sum(self.fs.staged_count(i) for i in self.inodes)
            assert total <= self.fs.stage_pages

    @invariant()
    def estimates_always_valid(self):
        if not hasattr(self, "fs"):
            return
        for inode in self.inodes:
            for page in range(6):
                estimate = self.fs.page_estimate(inode, page)
                if estimate.device_key == "hsm-disk":
                    assert self.fs.is_staged(inode, page)
                else:
                    assert not self.fs.is_staged(inode, page)
                    assert estimate.latency is not None
                    assert estimate.latency >= 0


TestHsmStagingModel = HsmStagingModel.TestCase
TestHsmStagingModel.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)
