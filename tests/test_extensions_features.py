"""Tests for the future-work extensions: mmap path, page pinning,
zone-aware SLEDs, and client/server SLEDs over NFS."""

import numpy as np
import pytest

from repro.apps.grep import grep
from repro.apps.wc import wc
from repro.core.pick import (
    sleds_pick_finish,
    sleds_pick_init,
    sleds_pick_next_read,
)
from repro.devices.disk import DiskDevice
from repro.devices.network import SERVER_BLOCK, NfsDevice
from repro.fs.filesystem import Ext2Like
from repro.fs.nfs import NfsLike
from repro.kernel.kernel import Kernel
from repro.machine import Machine
from repro.sim.errors import InvalidArgumentError
from repro.sim.rng import RngStreams
from repro.sim.units import KB, MB, PAGE_SIZE

NEEDLE = b"XNEEDLEX"


def _machine(cache_pages=64):
    machine = Machine.unix_utilities(cache_pages=cache_pages, seed=301)
    machine.boot()
    return machine


class TestMmap:
    def test_mmap_reads_same_bytes_as_pread(self, ext2_file):
        machine, path, _ = ext2_file
        k = machine.kernel
        fd = k.open(path)
        region = k.mmap(fd)
        assert region.read(5000, 200) == k.pread(fd, 5000, 200)
        k.close(fd)

    def test_mmap_faults_pages_like_read(self, ext2_file):
        machine, path, size = ext2_file
        k = machine.kernel
        fd = k.open(path)
        region = k.mmap(fd)
        with k.process() as run:
            region.read(0, size)
        assert run.counters.pages_read == size // PAGE_SIZE
        k.close(fd)

    def test_mmap_cheaper_than_read_on_cached_data(self, ext2_file):
        machine, path, size = ext2_file
        k = machine.kernel
        k.warm_file(path)
        fd = k.open(path)
        with k.process() as via_read:
            pos = 0
            while pos < size:
                pos += len(k.pread(fd, pos, 64 * KB))
        region = k.mmap(fd)
        with k.process() as via_mmap:
            pos = 0
            while pos < size:
                pos += len(region.read(pos, 64 * KB))
        k.close(fd)
        assert via_mmap.elapsed < via_read.elapsed

    def test_mmap_size_and_bounds(self, ext2_file):
        machine, path, size = ext2_file
        k = machine.kernel
        fd = k.open(path)
        region = k.mmap(fd)
        assert region.size == size
        assert region.read(size - 10, 100) == k.pread(fd, size - 10, 10)
        assert region.read(size + 5, 10) == b""
        with pytest.raises(InvalidArgumentError):
            region.read(-1, 10)
        k.close(fd)

    def test_wc_via_mmap_same_counts(self):
        machine = _machine(cache_pages=32)
        machine.ext2.create_text_file("f", 64 * PAGE_SIZE, seed=1)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        plain = wc(k, "/mnt/ext2/f")
        mapped = wc(k, "/mnt/ext2/f", use_sleds=True, via_mmap=True)
        assert (plain.lines, plain.words, plain.chars) == \
            (mapped.lines, mapped.words, mapped.chars)

    def test_grep_via_mmap_same_matches_and_cheaper(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 32 * PAGE_SIZE, seed=2,
                                      plants={50_000: NEEDLE})
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        with k.process() as read_run:
            via_read = grep(k, "/mnt/ext2/f", NEEDLE, use_sleds=True)
        with k.process() as mmap_run:
            via_mmap = grep(k, "/mnt/ext2/f", NEEDLE, use_sleds=True,
                            via_mmap=True)
        assert [(m.offset, m.line_number) for m in via_read.matches] == \
            [(m.offset, m.line_number) for m in via_mmap.matches]
        assert mmap_run.elapsed < read_run.elapsed


class TestPinning:
    def test_pin_requires_residency(self):
        machine = _machine()
        cache = machine.kernel.page_cache
        assert cache.pin((1, 0)) is False
        cache.insert((1, 0))
        assert cache.pin((1, 0)) is True
        assert cache.is_pinned((1, 0))

    def test_pinned_page_survives_eviction_pressure(self):
        from repro.cache.page_cache import PageCache
        cache = PageCache(4)
        cache.insert((1, 0))
        cache.pin((1, 0))
        for page in range(1, 10):
            cache.insert((1, page))
        assert (1, 0) in cache
        assert cache.stats.forced_pinned_evictions == 0

    def test_unpin_restores_evictability(self):
        from repro.cache.page_cache import PageCache
        cache = PageCache(2)
        cache.insert((1, 0))
        cache.pin((1, 0))
        cache.unpin((1, 0))
        cache.insert((1, 1))
        cache.insert((1, 2))
        assert (1, 0) not in cache

    def test_pin_budget_enforced(self):
        from repro.cache.page_cache import PageCache
        cache = PageCache(10, max_pinned_fraction=0.5)
        for page in range(10):
            cache.insert((1, page))
        pins = sum(cache.pin((1, page)) for page in range(10))
        assert pins == 5

    def test_forced_eviction_when_all_pinned(self):
        from repro.cache.page_cache import PageCache
        cache = PageCache(2, max_pinned_fraction=1.0)
        cache.insert((1, 0))
        cache.insert((1, 1))
        cache.pin((1, 0))
        cache.pin((1, 1))
        cache.insert((1, 2))
        assert cache.stats.forced_pinned_evictions == 1
        assert len(cache) == 2

    def test_invalidate_drops_pin(self):
        from repro.cache.page_cache import PageCache
        cache = PageCache(4)
        cache.insert((1, 0))
        cache.pin((1, 0))
        cache.invalidate((1, 0))
        assert cache.pinned_count == 0

    def test_pick_session_pins_and_releases(self):
        machine = _machine(cache_pages=32)
        machine.ext2.create_text_file("f", 64 * PAGE_SIZE, seed=3)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        fd = k.open("/mnt/ext2/f")
        sleds_pick_init(k, fd, PAGE_SIZE, pin_cached=True)
        assert k.page_cache.pinned_count > 0
        sleds_pick_finish(k, fd)
        assert k.page_cache.pinned_count == 0
        k.close(fd)

    def test_pins_release_as_chunks_are_consumed(self):
        machine = _machine(cache_pages=32)
        machine.ext2.create_text_file("f", 64 * PAGE_SIZE, seed=3)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        fd = k.open("/mnt/ext2/f")
        sleds_pick_init(k, fd, PAGE_SIZE, pin_cached=True)
        initial = k.page_cache.pinned_count
        for _ in range(5):
            sleds_pick_next_read(k, fd)
        assert k.page_cache.pinned_count < initial
        sleds_pick_finish(k, fd)
        k.close(fd)

    def test_pinned_session_still_exactly_once(self):
        machine = _machine(cache_pages=32)
        size = 64 * PAGE_SIZE - 55
        machine.ext2.create_text_file("f", size, seed=3)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        fd = k.open("/mnt/ext2/f")
        sleds_pick_init(k, fd, 3 * PAGE_SIZE, pin_cached=True)
        chunks = []
        while (advice := sleds_pick_next_read(k, fd)) is not None:
            chunks.append(advice)
        sleds_pick_finish(k, fd)
        pos = 0
        for offset, length in sorted(chunks):
            assert offset == pos
            pos += length
        assert pos == size


class TestZoneAwareSleds:
    def _fs(self, zone_aware):
        rng = RngStreams(55)
        return Ext2Like(DiskDevice(name="zd", rng=rng.stream("zd")),
                        zone_aware=zone_aware)

    def test_zone_index_and_range(self):
        disk = DiskDevice(rng=np.random.default_rng(1))
        assert disk.zone_index(0) == 0
        assert disk.zone_index(disk.capacity - 1) == len(disk.zones) - 1
        for i in range(len(disk.zones)):
            start, end = disk.zone_range(i)
            assert start < end
            assert disk.zone_index(start) == i
        with pytest.raises(ValueError):
            disk.zone_range(len(disk.zones))

    def test_page_estimate_names_zone(self):
        fs = self._fs(zone_aware=True)
        inode = fs.create_file("f", 4 * PAGE_SIZE)
        est = fs.page_estimate(inode, 0)
        assert est.device_key == "ext2:z0"

    def test_zone_unaware_single_key(self):
        fs = self._fs(zone_aware=False)
        assert list(fs.device_table()) == ["ext2"]

    def test_characterization_jobs_cover_zones(self):
        fs = self._fs(zone_aware=True)
        jobs = fs.characterization_jobs()
        assert len(jobs) == len(fs._disk().zones)
        for key, (device, start, end) in jobs.items():
            assert start < end <= device.capacity

    def test_boot_measures_zone_gradient(self):
        rng = RngStreams(56)
        kernel = Kernel(cache_pages=64, rng=rng)
        machine = Machine(kernel=kernel)
        machine.mount("/", Ext2Like(DiskDevice(
            name="root", rng=rng.stream("root")), name="rootfs"))
        machine.mount("/mnt/ext2", self._fs(zone_aware=True))
        entries = machine.boot()
        bw = [entries[f"ext2:z{i}"][1] for i in range(3)]
        assert bw[0] > bw[1] > bw[2]  # outer zones faster

    def test_delivery_estimate_tracks_zone(self):
        from repro.core.delivery import sleds_total_delivery_time_path
        rng = RngStreams(57)
        disk = DiskDevice(name="zd", rng=rng.stream("zd"))
        kernel = Kernel(cache_pages=64, rng=rng)
        machine = Machine(kernel=kernel)
        machine.mount("/", Ext2Like(DiskDevice(
            name="root", rng=rng.stream("root")), name="rootfs"))
        fs = Ext2Like(disk, zone_aware=True)
        machine.mount("/mnt/ext2", fs)
        machine.boot()
        fs.create_text_file("outer.txt", MB, seed=1)
        fs._alloc.cursor = disk.zone_range(2)[0]
        fs.create_text_file("inner.txt", MB, seed=2)
        outer = sleds_total_delivery_time_path(kernel, "/mnt/ext2/outer.txt")
        inner = sleds_total_delivery_time_path(kernel, "/mnt/ext2/inner.txt")
        assert inner > outer  # inner zone is slower, estimate knows


class TestServerSleds:
    def test_server_cache_hit_cheaper_than_miss(self):
        device = NfsDevice(server_cache_bytes=8 * MB,
                           rng=np.random.default_rng(1))
        addr = 512 * MB
        device.warm_server_cache(addr, SERVER_BLOCK)
        hit = device.read(addr, SERVER_BLOCK)
        device.reset_state()
        miss = device.read(1024 * MB, SERVER_BLOCK)
        assert hit < miss

    def test_server_cache_lru(self):
        device = NfsDevice(server_cache_bytes=2 * SERVER_BLOCK,
                           rng=np.random.default_rng(1))
        device.warm_server_cache(0, SERVER_BLOCK)
        device.warm_server_cache(10 * SERVER_BLOCK, SERVER_BLOCK)
        device.warm_server_cache(20 * SERVER_BLOCK, SERVER_BLOCK)
        assert not device.server_cached(0, SERVER_BLOCK)
        assert device.server_cached(20 * SERVER_BLOCK, SERVER_BLOCK)

    def test_disabled_cache_reports_cold(self):
        device = NfsDevice(rng=np.random.default_rng(1))
        device.warm_server_cache(0, SERVER_BLOCK)
        assert not device.server_cached(0, SERVER_BLOCK)

    def test_page_estimate_reports_warm_level(self):
        rng = RngStreams(58)
        device = NfsDevice(server_cache_bytes=8 * MB,
                           rng=rng.stream("nfs"))
        fs = NfsLike(device, server_sleds=True)
        inode = fs.create_text_file("f.txt", 8 * PAGE_SIZE, seed=1)
        assert fs.page_estimate(inode, 0).device_key == "nfs"
        base = inode.extent_map.addr_of(0)
        device.warm_server_cache(base, 8 * PAGE_SIZE)
        assert fs.page_estimate(inode, 0).device_key == "nfs-warm"

    def test_static_levels_declared_only_when_enabled(self):
        device = NfsDevice(server_cache_bytes=8 * MB,
                           rng=np.random.default_rng(2))
        assert NfsLike(device).static_levels() == {}
        warm = NfsLike(device, server_sleds=True).static_levels()
        assert "nfs-warm" in warm
        latency, bandwidth = warm["nfs-warm"]
        assert latency < device.spec.latency
        assert bandwidth == device.link_bandwidth


class TestNewExperiments:
    def test_extD_zone_accuracy(self):
        from repro.bench.ablations import run_extD
        from repro.bench.workloads import BenchConfig
        result = run_extD(BenchConfig(scale=64, runs=2, noise=0.0))
        errors = {(row[0], row[1]): row[4] for row in result.rows}
        # per-zone entries must improve the inner-zone estimate
        assert errors[("per-zone", "inner")] < errors[("per-device", "inner")]

    def test_extE_server_sleds(self):
        from repro.bench.ablations import run_extE
        from repro.bench.workloads import BenchConfig
        result = run_extE(BenchConfig(scale=64, runs=2, noise=0.0),
                          paper_mb=64, trials=4)
        times = dict(zip(result.column("mode"),
                         result.column("time s (paper-eq)")))
        assert times["server SLEDs"] < times["client-only SLEDs"]

    def test_abl_mmap_recovers_overhead(self):
        from repro.bench.ablations import run_abl_mmap
        from repro.bench.workloads import BenchConfig
        result = run_abl_mmap(BenchConfig(scale=64, runs=2, noise=0.0),
                              sizes_mb=(24,))
        row = result.rows[0]
        plain, via_read, via_mmap = row[1], row[2], row[3]
        assert via_mmap < via_read  # mmap cheaper than read()-based SLEDs

    def test_abl_pin_reduces_device_traffic(self):
        from repro.bench.ablations import run_abl_pin
        from repro.bench.workloads import BenchConfig
        result = run_abl_pin(BenchConfig(scale=64, runs=3, noise=0.0),
                             paper_mb=64)
        pages = dict(zip(result.column("pinning"),
                         result.column("device pages")))
        assert pages["pinned"] < pages["unpinned"]
