"""Property test: every MachineConfig backend combination is bit-identical.

The PR-7 fast-path rewrite (calendar-queue event loop, interval-run /
bitmap residency indexes, slab-recycled completions) must not move a
single virtual-time result.  The same workload — concurrent striding
readers with merge + plug, SLED vectors requested mid-stream, then a
synchronous re-read pass — runs under the pre-PR reference backends
(``sets`` + ``heap``), the tuned defaults (``runs`` + ``bucket``), and
the numpy bitmap backend, across all four filesystem personalities
(ext2, cdrom, nfs, hsm).  The fingerprint covers the clock, its
per-category charges, the fault counters, and every per-task stat.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.merge import BlockConfig
from repro.machine import Machine, MachineConfig
from repro.sim.tasks import EventScheduler, Task
from repro.sim.units import PAGE_SIZE

PROFILES = ("ext2", "cdrom", "nfs", "hsm")

CONFIGS = (
    MachineConfig(residency="sets", event_loop="heap"),    # pre-PR-7
    MachineConfig(residency="runs", event_loop="bucket"),  # tuned default
    MachineConfig(residency="bitmap", event_loop="bucket"),
)

MERGE_ALL = BlockConfig(merge=True, plug=True)


def _setup(profile: str, seed: int, pages: int, config: MachineConfig):
    if profile == "hsm":
        machine = Machine.hsm(cache_pages=256, stage_pages=512,
                              seed=9000 + seed, config=config)
        machine.boot()
        machine.hsmfs.create_tape_file("f", pages * PAGE_SIZE, "VOL000")
        return machine, "/mnt/hsm/f"
    machine = Machine.unix_utilities(cache_pages=256, seed=9000 + seed,
                                     config=config)
    machine.boot()
    fs = {"ext2": machine.ext2, "cdrom": machine.cdrom,
          "nfs": machine.nfs}[profile]
    fs.create_text_file("f", pages * PAGE_SIZE, seed=seed)
    return machine, f"/mnt/{profile}/f"


def _striding_readers(kernel, path, pages, readers=2, chunk_pages=2):
    nchunks = max(1, pages // chunk_pages)

    def reader(start):
        fd = kernel.open(path)
        for chunk in range(start, nchunks, readers):
            kernel.get_sleds(fd)  # SLED build hits the residency index
            yield from kernel.pread_async(
                fd, chunk * chunk_pages * PAGE_SIZE, chunk_pages * PAGE_SIZE)
        kernel.close(fd)

    return [Task(f"r{i}", reader(i)) for i in range(readers)]


def _fingerprint(machine, stats):
    kernel = machine.kernel
    counters = kernel.counters
    return (
        kernel.clock.now,
        tuple(sorted(kernel.clock.categories().items())),
        counters.hard_faults, counters.pages_read, counters.cache_hits,
        counters.readahead_pages, counters.evictions,
        tuple(sorted(
            (name, s.virtual_time, s.wait_time, s.hard_faults, s.io_waits,
             s.finished_at)
            for name, s in stats.items())),
    )


def _run(profile: str, seed: int, pages: int, config: MachineConfig):
    machine, path = _setup(profile, seed, pages, config)
    kernel = machine.kernel
    assert kernel.page_cache.residency_kind == config.residency
    engine = kernel.attach_engine(block=MERGE_ALL)
    assert engine.loop.kind == config.event_loop
    tasks = _striding_readers(kernel, path, pages)
    stats = EventScheduler(kernel, tasks, engine=engine).run()
    # synchronous warm re-read: hits, plus the sync fault path for any
    # pages the striding pass already evicted
    fd = kernel.open(path)
    kernel.pread(fd, 0, pages * PAGE_SIZE)
    vector = kernel.get_sleds(fd)
    kernel.close(fd)
    return _fingerprint(machine, stats), tuple(
        (sled.offset, sled.length, sled.latency, sled.bandwidth)
        for sled in vector)


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(0, 50), pages=st.integers(2, 40))
def test_backend_configs_are_bit_identical(seed, pages):
    for profile in PROFILES:
        reference = _run(profile, seed, pages, CONFIGS[0])
        for config in CONFIGS[1:]:
            candidate = _run(profile, seed, pages, config)
            assert candidate == reference, (
                f"{profile}: {config} diverged from the sets+heap "
                f"reference backends")
