"""Tests for the discrete-event core (EventLoop, IoFuture)."""

import pytest

from repro.sim.clock import ClockError, VirtualClock
from repro.sim.errors import InvalidArgumentError
from repro.sim.events import EventLoop, IoFuture


class TestEventLoopOrdering:
    def test_events_fire_in_time_order(self):
        loop = EventLoop(VirtualClock())
        fired = []
        loop.at(3.0, lambda: fired.append("c"))
        loop.at(1.0, lambda: fired.append("a"))
        loop.at(2.0, lambda: fired.append("b"))
        loop.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_equal_timestamps_fire_fifo(self):
        """The determinism rule: ties break by submission order, never
        by hash or identity."""
        loop = EventLoop(VirtualClock())
        fired = []
        for i in range(20):
            loop.at(1.0, lambda i=i: fired.append(i))
        loop.run_until_idle()
        assert fired == list(range(20))

    def test_clock_advances_to_event_time(self):
        clock = VirtualClock()
        loop = EventLoop(clock)
        loop.at(0.5, lambda: None)
        loop.step()
        assert clock.now == 0.5

    def test_charge_goes_to_event_category(self):
        clock = VirtualClock()
        loop = EventLoop(clock)
        loop.at(0.25, lambda: None, category="disk")
        loop.run_until_idle()
        assert clock.category_total("disk") == 0.25

    def test_event_at_current_time_fires_without_advance(self):
        clock = VirtualClock()
        clock.advance(1.0, "cpu")
        loop = EventLoop(clock)
        loop.at(1.0, lambda: None, category="disk")
        loop.step()
        assert clock.now == 1.0
        assert clock.category_total("disk") == 0.0

    def test_past_event_rejected(self):
        clock = VirtualClock()
        clock.advance(2.0, "cpu")
        loop = EventLoop(clock)
        with pytest.raises(InvalidArgumentError):
            loop.at(1.0, lambda: None)

    def test_after_negative_delay_rejected(self):
        loop = EventLoop(VirtualClock())
        with pytest.raises(InvalidArgumentError):
            loop.after(-0.1, lambda: None)

    def test_callback_may_schedule_more_events(self):
        clock = VirtualClock()
        loop = EventLoop(clock)
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                loop.after(1.0, lambda: chain(n + 1))

        loop.after(1.0, lambda: chain(1))
        assert loop.run_until_idle() == 3
        assert fired == [1, 2, 3]
        assert clock.now == 3.0

    def test_runaway_loop_detected(self):
        loop = EventLoop(VirtualClock())

        def reschedule():
            loop.after(0.0, reschedule)

        loop.after(0.0, reschedule)
        with pytest.raises(RuntimeError):
            loop.run_until_idle(max_events=100)


class TestEventCancel:
    def test_cancelled_event_does_not_fire(self):
        loop = EventLoop(VirtualClock())
        fired = []
        event = loop.at(1.0, lambda: fired.append("x"))
        loop.at(2.0, lambda: fired.append("y"))
        loop.cancel(event)
        loop.run_until_idle()
        assert fired == ["y"]

    def test_pending_excludes_cancelled(self):
        loop = EventLoop(VirtualClock())
        event = loop.at(1.0, lambda: None)
        loop.at(2.0, lambda: None)
        assert loop.pending == 2
        loop.cancel(event)
        assert loop.pending == 1

    def test_peek_time_skips_cancelled(self):
        loop = EventLoop(VirtualClock())
        event = loop.at(1.0, lambda: None)
        loop.at(2.0, lambda: None)
        loop.cancel(event)
        assert loop.peek_time() == 2.0

    def test_step_on_empty_returns_false(self):
        loop = EventLoop(VirtualClock())
        assert loop.step() is False
        assert loop.peek_time() is None


class TestAdvanceTo:
    def test_exact_landing(self):
        clock = VirtualClock()
        clock.advance(0.1, "cpu")
        target = clock.now + 0.2
        clock.advance_to(target, "disk")
        assert clock.now == target  # bit-exact, not approx

    def test_backwards_rejected(self):
        clock = VirtualClock()
        clock.advance(1.0, "cpu")
        with pytest.raises(ClockError):
            clock.advance_to(0.5)


class TestIoFuture:
    def test_resolve_delivers_value(self):
        future = IoFuture("f")
        assert not future.done
        future.resolve(42)
        assert future.done
        assert future.value == 42
        assert future.exception is None

    def test_value_before_resolution_raises(self):
        future = IoFuture("f")
        with pytest.raises(InvalidArgumentError):
            _ = future.value

    def test_fail_stores_and_reraises(self):
        future = IoFuture("f")
        error = OSError("EIO")
        future.fail(error)
        assert future.done
        assert future.exception is error
        with pytest.raises(OSError):
            _ = future.value

    def test_double_resolve_rejected(self):
        future = IoFuture("f")
        future.resolve(1)
        with pytest.raises(InvalidArgumentError):
            future.resolve(2)

    def test_callbacks_run_in_registration_order(self):
        future = IoFuture("f")
        order = []
        future.add_done_callback(lambda f: order.append(1))
        future.add_done_callback(lambda f: order.append(2))
        future.resolve(None)
        assert order == [1, 2]

    def test_callback_after_done_runs_immediately(self):
        future = IoFuture("f")
        future.resolve("v")
        seen = []
        future.add_done_callback(lambda f: seen.append(f.value))
        assert seen == ["v"]
