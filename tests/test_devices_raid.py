"""Tests for the RAID composite devices under the unchanged SLEDs stack."""

import numpy as np
import pytest

from repro.devices.disk import DiskDevice
from repro.devices.raid import Raid0, Raid1, make_stripe
from repro.fs.filesystem import Ext2Like
from repro.kernel.kernel import Kernel
from repro.machine import Machine
from repro.sim.rng import RngStreams
from repro.sim.units import KB, MB, PAGE_SIZE


def _disks(n, seed=1):
    return [DiskDevice(name=f"d{i}", rng=np.random.default_rng(seed + i))
            for i in range(n)]


class TestRaid0:
    def test_needs_two_members(self):
        with pytest.raises(ValueError):
            Raid0(_disks(1))

    def test_capacity_is_width_times_smallest(self):
        members = _disks(2)
        assert Raid0(members).capacity == 2 * min(
            m.capacity for m in members)

    def test_split_round_robins_stripes(self):
        raid = Raid0(_disks(2), stripe_size=64 * KB)
        split = raid._split(0, 256 * KB)
        assert set(split) == {0, 1}
        assert sum(take for pieces in split.values()
                   for _, take in pieces) == 256 * KB
        # each member got alternating stripes packed contiguously
        assert split[0] == [(0, 64 * KB), (64 * KB, 64 * KB)]
        assert split[1] == [(0, 64 * KB), (64 * KB, 64 * KB)]

    def test_sequential_bandwidth_scales(self):
        single = DiskDevice(rng=np.random.default_rng(9))
        stripe = make_stripe(width=2, seed=9)
        nbytes = 8 * MB
        t_single = sum(single.read(off, 256 * KB)
                       for off in range(0, nbytes, 256 * KB))
        t_stripe = sum(stripe.read(off, 256 * KB)
                       for off in range(0, nbytes, 256 * KB))
        assert t_stripe < 0.7 * t_single

    def test_small_reads_hit_one_member(self):
        raid = Raid0(_disks(2), stripe_size=64 * KB)
        raid.read(0, 4 * KB)
        assert raid.members[0].stats.reads == 1
        assert raid.members[1].stats.reads == 0

    def test_writes_fan_out(self):
        raid = Raid0(_disks(2), stripe_size=64 * KB)
        raid.write(0, 128 * KB)
        assert raid.members[0].stats.writes == 1
        assert raid.members[1].stats.writes == 1


class TestRaid1:
    def test_reads_prefer_nearest_head(self):
        members = _disks(2, seed=3)
        raid = Raid1(members)
        members[0].head_pos = 0
        members[1].head_pos = members[1].capacity // 2
        raid.read(members[1].capacity // 2, PAGE_SIZE)
        assert members[1].stats.reads == 1
        assert members[0].stats.reads == 0

    def test_writes_hit_all_members(self):
        raid = Raid1(_disks(2, seed=4))
        raid.write(0, PAGE_SIZE)
        assert all(m.stats.writes == 1 for m in raid.members)

    def test_capacity_is_smallest_member(self):
        members = _disks(2)
        assert Raid1(members).capacity == min(m.capacity for m in members)


class TestRaidUnderSleds:
    def _machine(self, device):
        rng = RngStreams(41)
        kernel = Kernel(cache_pages=128, rng=rng)
        machine = Machine(kernel=kernel)
        machine.mount("/", Ext2Like(DiskDevice(
            name="root", rng=rng.stream("root")), name="rootfs"))
        machine.mount("/mnt/ext2", Ext2Like(device, name="ext2"))
        machine.boot()
        return machine

    def test_boot_characterises_the_composite(self):
        machine = self._machine(make_stripe(width=2, seed=7))
        row = machine.kernel.sleds_table.lookup("ext2")
        single = self._machine(DiskDevice(
            rng=np.random.default_rng(7))).kernel.sleds_table.lookup("ext2")
        # the stripe's measured bandwidth clearly exceeds one disk's
        assert row.bandwidth > 1.5 * single.bandwidth

    def test_sleds_workload_on_raid(self):
        from repro.apps.wc import wc
        machine = self._machine(make_stripe(width=2, seed=8))
        machine.ext2.create_text_file("f", 64 * PAGE_SIZE, seed=1)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        plain = wc(k, "/mnt/ext2/f")
        sleds = wc(k, "/mnt/ext2/f", use_sleds=True)
        assert (plain.lines, plain.words, plain.chars) == \
            (sleds.lines, sleds.words, sleds.chars)
