"""Tests for the machine profiles and boot characterisation."""

import pytest

from repro.bench.lmbench import characterize_levels
from repro.machine import FULL_SCALE_CACHE_PAGES, Machine
from repro.sim.units import MB


class TestProfiles:
    def test_unix_profile_mounts(self):
        machine = Machine.unix_utilities(cache_pages=64)
        mounts = dict(machine.kernel.mounts())
        assert {"/", "/mnt/ext2", "/mnt/cdrom", "/mnt/nfs"} <= set(mounts)

    def test_lheasoft_profile_mounts(self):
        machine = Machine.lheasoft(cache_pages=64)
        mounts = dict(machine.kernel.mounts())
        assert "/mnt/ext2" in mounts
        assert "/mnt/cdrom" not in mounts

    def test_hsm_profile(self):
        machine = Machine.hsm(cache_pages=64, stage_pages=128)
        assert machine.hsmfs.stage_pages == 128
        assert len(machine.hsmfs.autochanger.drives) == 2

    def test_full_scale_cache_default(self):
        assert FULL_SCALE_CACHE_PAGES == (42 * MB) // 4096

    def test_accessors(self):
        machine = Machine.unix_utilities(cache_pages=64)
        assert machine.ext2 is machine.filesystems["/mnt/ext2"]
        assert machine.cdrom is machine.filesystems["/mnt/cdrom"]
        assert machine.nfs is machine.filesystems["/mnt/nfs"]

    def test_same_seed_reproducible(self):
        a = Machine.unix_utilities(cache_pages=64, seed=5)
        b = Machine.unix_utilities(cache_pages=64, seed=5)
        a.boot()
        b.boot()
        assert a.kernel.sleds_table.entries() == b.kernel.sleds_table.entries()


class TestBootCharacterisation:
    def test_boot_matches_paper_table2(self):
        machine = Machine.unix_utilities(cache_pages=64)
        entries = machine.boot()
        assert machine.booted
        lat, bw = entries["ext2"]
        assert 0.014 <= lat <= 0.022           # paper: 18 ms
        assert 7.5 * MB <= bw <= 10.5 * MB     # paper: 9.0 MB/s
        lat, bw = entries["iso9660"]
        assert 0.10 <= lat <= 0.16             # paper: 130 ms
        assert 2.2 * MB <= bw <= 3.2 * MB      # paper: 2.8 MB/s
        lat, bw = entries["nfs"]
        assert 0.20 <= lat <= 0.36             # paper: 270 ms
        assert 0.8 * MB <= bw <= 1.2 * MB      # paper: 1.0 MB/s
        lat, bw = entries["memory"]
        assert lat == pytest.approx(175e-9)
        assert bw == pytest.approx(48 * MB)

    def test_boot_matches_paper_table3(self):
        machine = Machine.lheasoft(cache_pages=64)
        entries = machine.boot()
        lat, bw = entries["ext2"]
        assert 0.013 <= lat <= 0.020           # paper: 16.5 ms
        assert 5.8 * MB <= bw <= 8.2 * MB      # paper: 7.0 MB/s
        lat, bw = entries["memory"]
        assert lat == pytest.approx(210e-9)
        assert bw == pytest.approx(87 * MB)

    def test_characterize_levels_covers_all_mounts(self):
        machine = Machine.hsm(cache_pages=64)
        entries = characterize_levels(machine.kernel)
        assert {"memory", "hsm-disk", "hsm-tape-mounted",
                "hsm-tape-shelved"} <= set(entries)

    def test_tape_levels_use_nominal_spec(self):
        machine = Machine.hsm(cache_pages=64)
        entries = characterize_levels(machine.kernel)
        drive = machine.hsmfs.autochanger.drives[0]
        assert entries["hsm-tape-mounted"] == (
            drive.spec.latency, drive.spec.bandwidth)
