"""Tests for the grep regex engine, including differential tests vs
Python's ``re`` on a restricted pattern family."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.grep import grep
from repro.apps.regex import RegexError, compile_regex
from repro.machine import Machine
from repro.sim.units import PAGE_SIZE


class TestBasics:
    @pytest.mark.parametrize("pattern,line,expected", [
        (b"abc", b"xxabcxx", True),
        (b"abc", b"xxabx", False),
        (b"a.c", b"axc", True),
        (b"a.c", b"ac", False),
        (b"a*b", b"b", True),
        (b"a*b", b"aaab", True),
        (b"a+b", b"b", False),
        (b"a+b", b"ab", True),
        (b"ab?c", b"ac", True),
        (b"ab?c", b"abc", True),
        (b"ab?c", b"abbc", False),
        (b"[abc]x", b"bx", True),
        (b"[abc]x", b"dx", False),
        (b"[a-f]x", b"dx", True),
        (b"[^abc]x", b"dx", True),
        (b"[^abc]x", b"ax", False),
        (b"cat|dog", b"hotdog", True),
        (b"cat|dog", b"bird", False),
        (b"^start", b"start here", True),
        (b"^start", b"a start", False),
        (b"end$", b"the end", True),
        (b"end$", b"end it", False),
        (b"^whole$", b"whole", True),
        (b"^whole$", b"whole x", False),
        (b"\\.", b"a.b", True),
        (b"\\.", b"ab", False),
        (b"(ab)+c", b"ababc", True),
        (b"(ab)+c", b"c", False),
        (b"x(a|b)*y", b"xabbay", True),
        (b"x(a|b)*y", b"xy", True),
        (b"x(a|b)*y", b"xcy", False),
    ])
    def test_matches(self, pattern, line, expected):
        assert compile_regex(pattern).matches(line) == expected

    def test_search_offset_leftmost(self):
        compiled = compile_regex(b"o+")
        assert compiled.search(b"fooboo") == 1

    def test_search_none(self):
        assert compile_regex(b"zz").search(b"abc") is None

    def test_dot_does_not_match_newline_semantics(self):
        # grep operates per line; '.' must not cross records
        assert not compile_regex(b"a.b").matches(b"a\nb")

    def test_empty_line_anchors(self):
        assert compile_regex(b"^$").matches(b"")
        assert not compile_regex(b"^$").matches(b"x")


class TestErrors:
    @pytest.mark.parametrize("pattern", [
        b"", b"*a", b"+a", b"?x"[0:1] + b"",  # leading quantifiers
        b"(abc", b"a[bc", b"a\\", b"[z-a]",
    ])
    def test_malformed_rejected(self, pattern):
        with pytest.raises(RegexError):
            compile_regex(pattern)


class TestDifferentialVsRe:
    _ATOMS = st.sampled_from(
        ["a", "b", "c", ".", "[ab]", "[^a]", "a*", "b+", "c?"])

    @given(st.lists(_ATOMS, min_size=1, max_size=6),
           st.text(alphabet="abcx", max_size=12))
    @settings(max_examples=150, deadline=None)
    def test_agrees_with_re(self, atoms, text):
        pattern = "".join(atoms)
        line = text.encode()
        ours = compile_regex(pattern.encode()).matches(line)
        theirs = re.search(pattern.encode(), line) is not None
        assert ours == theirs, f"pattern={pattern!r} line={line!r}"

    @given(st.lists(_ATOMS, min_size=1, max_size=4),
           st.lists(_ATOMS, min_size=1, max_size=4),
           st.text(alphabet="abcx", max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_alternation_agrees_with_re(self, left, right, text):
        pattern = "".join(left) + "|" + "".join(right)
        line = text.encode()
        ours = compile_regex(pattern.encode()).matches(line)
        theirs = re.search(pattern.encode(), line) is not None
        assert ours == theirs, f"pattern={pattern!r} line={line!r}"


class TestGrepIntegration:
    def _machine(self):
        machine = Machine.unix_utilities(cache_pages=64, seed=1201)
        machine.boot()
        return machine

    def test_regex_grep_finds_planted_pattern(self):
        machine = self._machine()
        machine.ext2.create_text_file("f", 16 * PAGE_SIZE, seed=1,
                                      plants={20_000: b"ERR-4091:"})
        result = grep(machine.kernel, "/mnt/ext2/f",
                      b"ERR-[0-9]+:", regex=True)
        assert result.count == 1
        assert b"ERR-4091:" in result.matches[0].line

    def test_regex_sleds_equals_linear(self):
        machine = Machine.unix_utilities(cache_pages=16, seed=1202)
        machine.boot()
        machine.ext2.create_text_file(
            "f", 32 * PAGE_SIZE, seed=2,
            plants={5_000: b"tag=alpha;", 90_000: b"tag=beta;"})
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        plain = grep(k, "/mnt/ext2/f", b"tag=(alpha|beta);", regex=True)
        sleds = grep(k, "/mnt/ext2/f", b"tag=(alpha|beta);", regex=True,
                     use_sleds=True)
        assert [(m.offset, m.line_number) for m in plain.matches] == \
            [(m.offset, m.line_number) for m in sleds.matches]
        assert plain.count == 2

    def test_regex_costs_more_cpu(self):
        machine = self._machine()
        machine.ext2.create_text_file("f", 32 * PAGE_SIZE, seed=3)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        with k.process() as literal:
            grep(k, "/mnt/ext2/f", b"zzzz")
        with k.process() as regexed:
            grep(k, "/mnt/ext2/f", b"zz+z", regex=True)
        assert regexed.cpu_time > literal.cpu_time
