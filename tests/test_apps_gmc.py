"""Tests for the gmc properties-panel reporting."""

from repro.apps.gmc import (
    file_properties,
    format_panel,
    should_wait_prompt,
)
from repro.machine import Machine
from repro.sim.units import PAGE_SIZE


def _machine(cache_pages=64):
    machine = Machine.unix_utilities(cache_pages=cache_pages, seed=91)
    machine.boot()
    return machine


class TestPanel:
    def test_panel_fields(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 16 * PAGE_SIZE, seed=1)
        panel = file_properties(machine.kernel, "/mnt/ext2/f")
        assert panel.size == 16 * PAGE_SIZE
        assert len(panel.sleds) >= 1
        assert panel.total_time_best <= panel.total_time_linear

    def test_cached_bytes_tracks_warming(self):
        machine = _machine(cache_pages=8)
        machine.ext2.create_text_file("f", 16 * PAGE_SIZE, seed=1)
        k = machine.kernel
        cold = file_properties(k, "/mnt/ext2/f")
        k.warm_file("/mnt/ext2/f")
        warm = file_properties(k, "/mnt/ext2/f")
        assert warm.cached_bytes > 0
        assert warm.cached_bytes <= 8 * PAGE_SIZE
        assert warm.total_time_best < cold.total_time_best
        # a cold disk file's "lowest latency" level is the disk itself
        assert cold.cached_bytes == cold.size

    def test_format_contains_each_sled(self):
        machine = _machine(cache_pages=8)
        machine.ext2.create_text_file("f", 16 * PAGE_SIZE, seed=1)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        panel = file_properties(k, "/mnt/ext2/f")
        text = format_panel(panel)
        assert "/mnt/ext2/f" in text
        assert text.count("MB/s") >= len(panel.sleds)
        assert "delivery time" in text

    def test_panel_on_nfs_reports_higher_times(self):
        machine = _machine()
        machine.ext2.create_text_file("local", 16 * PAGE_SIZE, seed=1)
        machine.nfs.create_text_file("remote", 16 * PAGE_SIZE, seed=1)
        local = file_properties(machine.kernel, "/mnt/ext2/local")
        remote = file_properties(machine.kernel, "/mnt/nfs/remote")
        assert remote.total_time_linear > local.total_time_linear


class TestWaitPrompt:
    def test_immediate(self):
        machine = _machine()
        machine.ext2.create_text_file("f", PAGE_SIZE, seed=1)
        machine.kernel.warm_file("/mnt/ext2/f")
        panel = file_properties(machine.kernel, "/mnt/ext2/f")
        assert should_wait_prompt(panel) == "available immediately"

    def test_short_wait(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 4 * 1024 * 1024, seed=1)
        panel = file_properties(machine.kernel, "/mnt/ext2/f")
        assert "short wait" in should_wait_prompt(panel)

    def test_long_retrieval_on_hsm(self, hsm_machine):
        fs = hsm_machine.hsmfs
        fs.create_tape_file("archive.dat", 64 * PAGE_SIZE, "VOL001")
        panel = file_properties(hsm_machine.kernel, "/mnt/hsm/archive.dat")
        assert "long retrieval" in should_wait_prompt(panel)


class TestDirectoryPanel:
    def test_listing_skips_directories(self):
        machine = _machine()
        machine.ext2.create_text_file("dir/a.txt", PAGE_SIZE, seed=1)
        machine.ext2.create_text_file("dir/sub/b.txt", PAGE_SIZE, seed=2)
        from repro.apps.gmc import directory_listing
        panels = directory_listing(machine.kernel, "/mnt/ext2/dir")
        assert [p.path for p in panels] == ["/mnt/ext2/dir/a.txt"]

    def test_format_directory_shows_cached_fraction(self):
        machine = _machine(cache_pages=64)
        machine.ext2.create_text_file("dir/hot.txt", 8 * PAGE_SIZE, seed=1)
        machine.ext2.create_text_file("dir/cold.txt", 8 * PAGE_SIZE, seed=2)
        k = machine.kernel
        k.warm_file("/mnt/ext2/dir/hot.txt")
        from repro.apps.gmc import format_directory
        text = format_directory(k, "/mnt/ext2/dir")
        lines = {line.split()[0]: line for line in text.splitlines()[2:]}
        assert "100%" in lines["hot.txt"]
        assert "0%" in lines["cold.txt"]
        assert "available immediately" in lines["hot.txt"]
