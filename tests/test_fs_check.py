"""Tests for the filesystem consistency checker."""

import numpy as np
import pytest

from repro.devices.disk import DiskDevice
from repro.fs.check import check_filesystem, check_machine
from repro.fs.filesystem import Ext2Like
from repro.fs.inode import Extent
from repro.machine import Machine
from repro.sim.units import MB, PAGE_SIZE


def _fs():
    return Ext2Like(DiskDevice(rng=np.random.default_rng(1)))


class TestCleanFilesystems:
    def test_fresh_fs_clean(self):
        assert check_filesystem(_fs()) == []

    def test_populated_fs_clean(self):
        fs = _fs()
        for i in range(5):
            fs.create_text_file(f"d{i}/f{i}.txt", (i + 1) * PAGE_SIZE,
                                seed=i)
        assert check_filesystem(fs) == []

    def test_fragmented_fs_clean(self):
        fs = Ext2Like(DiskDevice(rng=np.random.default_rng(1)),
                      max_extent_pages=2, gap_pages=1)
        fs.create_text_file("frag.txt", 16 * PAGE_SIZE, seed=1)
        assert check_filesystem(fs) == []

    def test_machine_after_workload_clean(self):
        machine = Machine.unix_utilities(cache_pages=64, seed=1401)
        machine.boot()
        machine.ext2.create_text_file("a.txt", 8 * PAGE_SIZE, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/b.txt", "w")
        k.write(fd, b"x" * (3 * PAGE_SIZE))
        k.close(fd)
        k.warm_file("/mnt/ext2/a.txt")
        report = check_machine(machine)
        assert all(problems == [] for problems in report.values())

    def test_hsm_after_staging_clean(self):
        machine = Machine.hsm(cache_pages=64, seed=1402)
        machine.boot()
        inode = machine.hsmfs.create_tape_file("t.dat", 8 * PAGE_SIZE,
                                               "VOL000")
        machine.hsmfs.read_pages(inode, 0, 8)
        assert check_filesystem(machine.hsmfs) == []


class TestCorruptionDetected:
    def test_overlapping_extents(self):
        fs = _fs()
        a = fs.create_file("a", 2 * PAGE_SIZE)
        fs.create_file("b", 2 * PAGE_SIZE)
        # force b's layout onto a's device range
        b = fs.resolve(["b"])
        b.extent_map.extents[0] = Extent(
            0, 2, a.extent_map.addr_of(0))
        problems = check_filesystem(fs)
        assert any("overlap" in p for p in problems)

    def test_size_extent_mismatch(self):
        fs = _fs()
        inode = fs.create_file("a", 2 * PAGE_SIZE)
        inode.size = 5 * PAGE_SIZE  # grew without layout
        problems = check_filesystem(fs)
        assert any("extent map covers" in p for p in problems)

    def test_extent_beyond_device(self):
        fs = _fs()
        inode = fs.create_file("a", PAGE_SIZE)
        inode.extent_map.extents[0] = Extent(
            0, 1, fs.device.capacity - 100)
        problems = check_filesystem(fs)
        assert any("beyond device" in p for p in problems)

    def test_directory_cycle(self):
        fs = _fs()
        d = fs.mkdir("loop")
        d.entries["back"] = fs.root
        problems = check_filesystem(fs)
        assert any("cycle" in p for p in problems)

    def test_hsm_unplaced_file(self):
        machine = Machine.hsm(cache_pages=64, seed=1403)
        machine.boot()
        machine.hsmfs.create_file("orphan.dat", PAGE_SIZE)  # no tape home
        problems = check_filesystem(machine.hsmfs)
        assert any("no tape placement" in p for p in problems)

    def test_bad_entry_name(self):
        fs = _fs()
        fs.root.entries[""] = fs.create_file("x", PAGE_SIZE)
        del fs.root.entries["x"]
        problems = check_filesystem(fs)
        assert any("bad entry name" in p for p in problems)
