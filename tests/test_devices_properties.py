"""Property tests over the device models' timing invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.cdrom import CdromDevice
from repro.devices.disk import DiskDevice
from repro.devices.flash import FlashDevice
from repro.devices.memory import MemoryDevice
from repro.devices.network import NfsDevice
from repro.devices.tape import TapeCartridge, TapeDevice
from repro.sim.units import GB, KB, MB, PAGE_SIZE

ADDRS = st.integers(0, 8 * GB)
SIZES = st.integers(1, 4 * MB)


def _devices(seed=0):
    rng = lambda: np.random.default_rng(seed)  # noqa: E731
    tape = TapeDevice(rng=rng())
    tape.load(TapeCartridge("P"))
    return [
        MemoryDevice(),
        DiskDevice(rng=rng()),
        CdromDevice(rng=rng()),
        NfsDevice(rng=rng()),
        FlashDevice(rng=rng()),
        tape,
    ]


class TestUniversalInvariants:
    @given(st.lists(st.tuples(ADDRS, SIZES), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_all_access_times_positive_and_finite(self, accesses):
        for device in _devices():
            for addr, nbytes in accesses:
                addr = min(addr, device.capacity - 1)
                nbytes = min(nbytes, device.capacity - addr)
                if nbytes <= 0:
                    continue
                seconds = device.read(addr, nbytes)
                assert 0 < seconds < 3600
                assert np.isfinite(seconds)

    @given(ADDRS, st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_bigger_reads_never_cheaper_same_state(self, addr, pages):
        """From identical state, reading more bytes costs at least as
        much as reading fewer."""
        for seed in (1, 2):
            small = DiskDevice(rng=np.random.default_rng(seed))
            large = DiskDevice(rng=np.random.default_rng(seed))
            addr2 = min(addr, small.capacity - 65 * PAGE_SIZE)
            t_small = small.read(addr2, pages * PAGE_SIZE)
            t_large = large.read(addr2, (pages + 1) * PAGE_SIZE)
            assert t_large >= t_small - 1e-12

    @given(ADDRS, ADDRS)
    @settings(max_examples=40, deadline=None)
    def test_sequential_never_dearer_than_seek(self, a, b):
        """Continuing a stream is never more expensive than jumping."""
        seed = 7
        stream = DiskDevice(rng=np.random.default_rng(seed))
        jump = DiskDevice(rng=np.random.default_rng(seed))
        a = min(a, stream.capacity - 2 * PAGE_SIZE)
        b = min(b, stream.capacity - 2 * PAGE_SIZE)
        stream.read(a, PAGE_SIZE)
        jump.read(a, PAGE_SIZE)
        t_stream = stream.read(a + PAGE_SIZE, PAGE_SIZE)
        if b != a + PAGE_SIZE:
            t_jump = jump.read(b, PAGE_SIZE)
            assert t_stream <= t_jump + 1e-12


class TestTimingConsistency:
    def test_deterministic_given_seed(self):
        def trace(seed):
            disk = DiskDevice(rng=np.random.default_rng(seed))
            return [disk.read((i * 977) % (disk.capacity - MB), 64 * KB)
                    for i in range(20)]

        assert trace(3) == trace(3)
        assert trace(3) != trace(4)

    @given(st.integers(1, 200))
    @settings(max_examples=30, deadline=None)
    def test_streaming_total_matches_bandwidth(self, chunks):
        """A long sequential disk stream converges to the zone rate."""
        disk = DiskDevice(rng=np.random.default_rng(5))
        chunk = 64 * KB
        total = sum(disk.read(i * chunk, chunk) for i in range(chunks))
        effective = chunks * chunk / total
        zone_rate = disk.bandwidth_at(0)
        # within 20% of the zone's rate (per-access overhead + first seek)
        assert effective > 0.6 * zone_rate
        assert effective <= zone_rate * 1.001

    def test_nfs_sequential_vs_random_gap_is_large(self):
        nfs = NfsDevice(rng=np.random.default_rng(6))
        nfs.read(0, 64 * KB)
        sequential = nfs.read(64 * KB, 64 * KB)
        rng = np.random.default_rng(7)
        randoms = []
        for _ in range(10):
            device = NfsDevice(rng=np.random.default_rng(8))
            addr = int(rng.integers(1 * GB, 8 * GB)) & ~4095
            device.read(0, 4096)
            randoms.append(device.read(addr, 64 * KB))
        assert np.mean(randoms) > 3 * sequential

    def test_tape_streaming_never_locates_mid_stream(self):
        tape = TapeDevice(rng=np.random.default_rng(9))
        tape.load(TapeCartridge("Q"))
        tape.read(0, MB)
        seeks_before = tape.stats.seeks
        for i in range(1, 30):
            tape.read(i * MB, MB)
        assert tape.stats.seeks == seeks_before
