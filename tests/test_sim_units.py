"""Unit and property tests for byte/page helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.units import (
    PAGE_SIZE,
    align_down,
    align_up,
    bytes_to_pages,
    human_bytes,
    human_time,
    page_span,
)


class TestBytesToPages:
    def test_zero(self):
        assert bytes_to_pages(0) == 0

    def test_one_byte(self):
        assert bytes_to_pages(1) == 1

    def test_exact_page(self):
        assert bytes_to_pages(PAGE_SIZE) == 1

    def test_page_plus_one(self):
        assert bytes_to_pages(PAGE_SIZE + 1) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_pages(-1)

    @given(st.integers(min_value=0, max_value=1 << 40))
    def test_covers_exactly(self, nbytes):
        pages = bytes_to_pages(nbytes)
        assert pages * PAGE_SIZE >= nbytes
        assert (pages - 1) * PAGE_SIZE < nbytes or pages == 0


class TestPageSpan:
    def test_empty_length(self):
        assert list(page_span(100, 0)) == []

    def test_single_page(self):
        assert list(page_span(0, 1)) == [0]

    def test_straddles_boundary(self):
        assert list(page_span(PAGE_SIZE - 1, 2)) == [0, 1]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            page_span(-1, 10)

    @given(st.integers(min_value=0, max_value=1 << 30),
           st.integers(min_value=1, max_value=1 << 20))
    def test_span_contains_all_touched_pages(self, offset, length):
        span = page_span(offset, length)
        assert span.start == offset // PAGE_SIZE
        assert span.stop - 1 == (offset + length - 1) // PAGE_SIZE


class TestAlign:
    @given(st.integers(min_value=0, max_value=1 << 30))
    def test_align_down_up_bracket(self, offset):
        assert align_down(offset) <= offset <= align_up(offset)
        assert align_down(offset) % PAGE_SIZE == 0
        assert align_up(offset) % PAGE_SIZE == 0
        assert align_up(offset) - align_down(offset) in (0, PAGE_SIZE)


class TestHumanFormats:
    def test_human_bytes_mb(self):
        assert human_bytes(64 * 1024 * 1024) == "64.0 MB"

    def test_human_bytes_small(self):
        assert human_bytes(100) == "100 B"

    def test_human_time_ranges(self):
        assert human_time(2.0).endswith(" s")
        assert human_time(2e-3).endswith(" ms")
        assert human_time(2e-6).endswith(" us")
        assert human_time(2e-9).endswith(" ns")
