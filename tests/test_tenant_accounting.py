"""Cross-tenant attribution regression tests.

The leak being pinned down: speculative and coalesced I/O used to be
billed to whichever context happened to be running at dispatch time —
the prefetcher's pump runs inside completion callbacks (no task, no
tenant) and the block layer happily merged adjacent requests from
different tenants into one dispatch.  These tests assert the fixes:

* the plug/merge stage never coalesces requests across tenants, and
  accounts submitted requests/bytes to the owning tenant;
* the prefetcher charges speculation to the tenant that *planned* it,
  wherever the pump happens to run;
* per-tenant kernel counters (hits/misses/evictions) survive the
  ``ProcessRun`` copy/delta machinery and export through telemetry;
* tenant-labeled SLO families route past-cap tenants into the
  ``_overflow`` series instead of growing without bound.
"""

import pytest

from repro.block.merge import BlockConfig, FaultRun
from repro.machine import Machine
from repro.obs import Telemetry
from repro.obs.lifecycle import LifecycleRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloTarget, SloTracker
from repro.sim.events import IoFuture
from repro.sim.prefetch import Prefetcher
from repro.sim.tasks import EventScheduler, Task
from repro.sim.units import PAGE_SIZE

MERGE_ALL = BlockConfig(merge=True, plug=True)


def _record(i, tenant, latency=0.5, task="r0", cls="disk"):
    return LifecycleRecord(
        id=i, kind="fault", task=task, fs="ext2", device_class=cls,
        inode=1, page=0, cluster=1, nbytes=PAGE_SIZE,
        submit_time=0.0, start_time=0.0, finish_time=latency,
        components=(), tenant=tenant)


def _plug_batch(spec):
    """A real ext2 PlugQueue plus hand-built two-page FaultRuns.

    ``spec`` is a list of ``(page, tenant)``; consecutive entries two
    pages apart are extent-adjacent, i.e. mergeable but for tenancy.
    """
    machine = Machine.unix_utilities(cache_pages=256, seed=9401)
    machine.boot()
    machine.ext2.create_text_file("f", 16 * PAGE_SIZE, seed=2)
    kernel = machine.kernel
    engine = kernel.attach_engine(block=MERGE_ALL)
    fs, inode, _ = kernel.resolve("/mnt/ext2/f")
    plug = engine.plug_for(fs.device)
    runs = [FaultRun(fs=fs, inode=inode, page=page, cluster=2,
                     addr=inode.extent_map.addr_of(page),
                     nbytes=2 * PAGE_SIZE, future=IoFuture(f"r{i}"),
                     submit_time=0.0, seq=i, tenant=tenant)
            for i, (page, tenant) in enumerate(spec)]
    return plug, runs


def _run_interleaved(tenants, pages=32, seed=11):
    """Two interleaved striding readers over one ext2 file, merge on."""
    machine = Machine.unix_utilities(cache_pages=256, seed=9000 + seed)
    machine.boot()
    machine.ext2.create_text_file("f", pages * PAGE_SIZE, seed=seed)
    kernel = machine.kernel
    telemetry = Telemetry()
    telemetry.attach(kernel)
    engine = kernel.attach_engine(block=MERGE_ALL)
    nchunks = pages // 2

    def reader(start):
        fd = kernel.open("/mnt/ext2/f")
        for chunk in range(start, nchunks, 2):
            yield from kernel.pread_async(
                fd, chunk * 2 * PAGE_SIZE, 2 * PAGE_SIZE)
        kernel.close(fd)

    tasks = [Task(f"r{i}", reader(i), tenant=tenants[i])
             for i in range(2)]
    EventScheduler(kernel, tasks, engine=engine).run()
    return machine, engine, telemetry


class TestPlugTenantIsolation:
    def test_same_tenant_requests_still_merge(self):
        _, engine, _ = _run_interleaved(["t0", "t0"])
        assert sum(p.merged_requests for p in engine.plugs()) > 0

    def test_coalesce_groups_never_span_tenants(self):
        """The batch partition refuses to bridge tenants even for
        perfectly adjacent extents of the same inode."""
        plug, runs = _plug_batch(
            [(0, "t0"), (2, "t0"), (4, "t1"), (6, "t1")])
        groups = plug._coalesce(runs)
        assert [[r.page for r in g] for g in groups] == [[0, 2], [4, 6]]
        assert all(len({r.tenant for r in g}) == 1 for g in groups)

    def test_coalesce_merges_same_batch_under_one_tenant(self):
        """Control: the identical batch collapses to one group when all
        runs belong to the same tenant."""
        plug, runs = _plug_batch(
            [(0, "t0"), (2, "t0"), (4, "t0"), (6, "t0")])
        groups = plug._coalesce(runs)
        assert [[r.page for r in g] for g in groups] == [[0, 2, 4, 6]]

    def test_untenanted_runs_form_their_own_group(self):
        plug, runs = _plug_batch([(0, None), (2, "t0")])
        groups = plug._coalesce(runs)
        assert [[r.page for r in g] for g in groups] == [[0], [2]]

    def test_cross_tenant_adjacency_merges_less_end_to_end(self):
        """Interleaved readers whose adjacent chunks belong to different
        tenants lose exactly the cross-task merges; intra-tenant
        (readahead) merges survive in both runs."""
        _, same, _ = _run_interleaved(["t0", "t0"], seed=12)
        _, distinct, _ = _run_interleaved(["t0", "t1"], seed=12)
        same_merges = sum(p.merged_requests for p in same.plugs())
        distinct_merges = sum(p.merged_requests
                              for p in distinct.plugs())
        assert same_merges > distinct_merges

    def test_plug_accounts_bytes_to_owning_tenant(self):
        _, engine, _ = _run_interleaved(["t0", "t1"])
        requests = {}
        nbytes = {}
        for plug in engine.plugs():
            for tenant, n in plug.tenant_requests.items():
                requests[tenant] = requests.get(tenant, 0) + n
            for tenant, n in plug.tenant_bytes.items():
                nbytes[tenant] = nbytes.get(tenant, 0) + n
        assert set(requests) == {"t0", "t1"}
        assert requests["t0"] > 0 and requests["t1"] > 0
        assert nbytes["t0"] > 0 and nbytes["t1"] > 0

    def test_lifecycle_records_carry_tenant(self):
        _, _, telemetry = _run_interleaved(["t0", "t1"])
        tenants = {rec.tenant for rec in telemetry.lifecycle.records
                   if rec.kind == "fault"}
        assert tenants == {"t0", "t1"}
        assert all("tenant" in rec.to_dict()
                   for rec in telemetry.lifecycle.records)

    def test_untenanted_records_have_no_tenant(self):
        _, _, telemetry = _run_interleaved([None, None])
        assert all(rec.tenant is None
                   for rec in telemetry.lifecycle.records)


class TestPrefetcherTenantCapture:
    def _machine(self):
        machine = Machine.unix_utilities(cache_pages=256, seed=9402)
        machine.boot()
        machine.ext2.create_text_file("big.dat", 64 * PAGE_SIZE, seed=7)
        return machine

    def test_speculation_charged_to_planning_tenant(self):
        """The pump may run from completion callbacks where no tenant is
        current; bytes must still be billed to the planner."""
        machine = self._machine()
        kernel = machine.kernel
        telemetry = Telemetry()
        telemetry.attach(kernel)
        engine = kernel.attach_engine()
        prefetcher = Prefetcher(kernel, engine).attach()
        fd = kernel.open("/mnt/ext2/big.dat")
        kernel.current_tenant = "tenA"
        planned = prefetcher.prefetch_fd(fd)
        kernel.current_tenant = None  # completion context has no tenant
        engine.loop.run_until_idle()
        assert planned > 0
        assert prefetcher.tenant_issued_pages.get("tenA", 0) > 0
        assert kernel.page_cache.tenant_resident_count("tenA") > 0
        prefetch_tenants = {rec.tenant
                            for rec in telemetry.lifecycle.records
                            if rec.kind == "prefetch"}
        assert prefetch_tenants == {"tenA"}
        kernel.close(fd)

    def test_used_pages_attributed_to_owner(self):
        machine = self._machine()
        kernel = machine.kernel
        engine = kernel.attach_engine()
        prefetcher = Prefetcher(kernel, engine).attach()
        fd = kernel.open("/mnt/ext2/big.dat")
        kernel.current_tenant = "tenA"
        prefetcher.prefetch_span(machine.ext2,
                                 kernel.resolve("/mnt/ext2/big.dat")[1],
                                 0, 8 * PAGE_SIZE)
        kernel.current_tenant = None
        engine.loop.run_until_idle()
        kernel.pread(fd, 0, 8 * PAGE_SIZE)  # untenanted demand read
        assert prefetcher.used_pages > 0
        assert prefetcher.tenant_used_pages.get("tenA") == \
            prefetcher.used_pages
        kernel.close(fd)

    def test_untenanted_prefetch_keeps_dicts_empty(self):
        machine = self._machine()
        kernel = machine.kernel
        engine = kernel.attach_engine()
        prefetcher = Prefetcher(kernel, engine).attach()
        fd = kernel.open("/mnt/ext2/big.dat")
        prefetcher.prefetch_fd(fd)
        engine.loop.run_until_idle()
        kernel.pread(fd, 0, 8 * PAGE_SIZE)
        assert prefetcher.issued_pages > 0
        assert prefetcher.tenant_issued_pages == {}
        assert prefetcher.tenant_used_pages == {}
        kernel.close(fd)


class TestPerTenantCounters:
    def test_counters_split_by_tenant(self):
        machine = Machine.unix_utilities(cache_pages=32, seed=9403)
        machine.boot()
        machine.ext2.create_text_file("f", 48 * PAGE_SIZE, seed=3)
        kernel = machine.kernel
        engine = kernel.attach_engine()

        def reader(start):
            fd = kernel.open("/mnt/ext2/f")
            for chunk in range(start, 24, 2):
                yield from kernel.pread_async(
                    fd, chunk * 2 * PAGE_SIZE, 2 * PAGE_SIZE)
            kernel.close(fd)

        tasks = [Task(f"r{i}", reader(i), tenant=f"t{i}")
                 for i in range(2)]
        with kernel.process() as run:
            EventScheduler(kernel, tasks, engine=engine).run()
        counters = run.counters
        assert set(counters.tenant_cache_misses) == {"t0", "t1"}
        assert all(n > 0 for n in counters.tenant_cache_misses.values())
        assert sum(counters.tenant_cache_misses.values()) <= \
            counters.cache_misses
        # the 32-page cache churned under 48 pages of file: evictions
        # must be attributed to the page owners
        assert counters.evictions > 0
        assert sum(counters.tenant_evictions.values()) > 0

    def test_process_delta_keeps_only_window_activity(self):
        machine = Machine.unix_utilities(cache_pages=256, seed=9404)
        machine.boot()
        machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=5)
        kernel = machine.kernel
        engine = kernel.attach_engine()

        def reader():
            fd = kernel.open("/mnt/ext2/f")
            yield from kernel.pread_async(fd, 0, 8 * PAGE_SIZE)
            kernel.close(fd)

        EventScheduler(kernel, [Task("warm", reader(), tenant="early")],
                       engine=engine).run()
        with kernel.process() as run:
            EventScheduler(kernel, [Task("w2", reader(), tenant="late")],
                           engine=engine).run()
        # the warm tenant's counts predate the window: delta drops them
        assert "early" not in run.counters.tenant_cache_misses
        assert run.counters.tenant_cache_hits.get("late", 0) > 0

    def test_snapshot_exports_tenant_counters(self):
        machine = Machine.unix_utilities(cache_pages=256, seed=9405)
        machine.boot()
        machine.ext2.create_text_file("f", 4 * PAGE_SIZE, seed=6)
        kernel = machine.kernel
        telemetry = Telemetry()
        telemetry.attach(kernel)
        engine = kernel.attach_engine()

        def reader():
            fd = kernel.open("/mnt/ext2/f")
            yield from kernel.pread_async(fd, 0, 4 * PAGE_SIZE)
            kernel.close(fd)

        EventScheduler(kernel, [Task("r", reader(), tenant="t0")],
                       engine=engine).run()
        telemetry.snapshot()  # must not crash on dict counters
        gauge = telemetry.registry.get("kernel_counter_tenant").labels(
            name="tenant_cache_misses", tenant="t0")
        assert gauge.value > 0
        text = telemetry.render_prometheus()
        assert 'repro_kernel_counter_tenant{name="tenant_cache_misses"' \
            ',tenant="t0"}' in text


class TestSloTenantFamilies:
    def _tracker(self, registry=None, **kw):
        targets = [SloTarget(name="all", cls="*", latency_objective=0.1)]
        return SloTracker(targets, registry=registry,
                          track_tenants=True, **kw)

    def test_tenant_rows_roll_up(self):
        tracker = self._tracker()
        for i in range(4):
            tracker.observe(_record(i, "fast", latency=0.01))
        for i in range(4, 8):
            tracker.observe(_record(i, "slow", latency=0.5))
        rows = {row["tenant"]: row for row in tracker.tenant_rows()}
        assert rows["fast"]["compliance"] == 1.0
        assert rows["slow"]["compliance"] == 0.0
        assert rows["slow"]["burn_rate"] > 1.0
        assert rows["slow"]["p50_s"] == pytest.approx(0.5)
        assert "tenants" in tracker.to_dict()
        assert "slow" in tracker.render_tenants()

    def test_untenanted_records_not_rolled_up(self):
        tracker = self._tracker()
        tracker.observe(_record(0, None))
        assert tracker.tenant_rows() == []

    def test_target_glob_matches_tenant_label(self):
        target = SloTarget(name="team", cls="*", latency_objective=1.0,
                           tenant="team-*")
        assert target.matches(_record(0, "team-a", task="r9"))
        assert not target.matches(_record(1, "other", task="team-a"))
        # untenanted records keep the historical task-name fallback
        assert target.matches(_record(2, None, task="team-batch"))

    def test_overflow_routing_under_cardinality_cap(self):
        registry = MetricsRegistry(max_label_cardinality=4)
        tracker = self._tracker(registry=registry)
        with pytest.warns(RuntimeWarning, match="cardinality"):
            for i in range(10):
                tracker.observe(_record(i, f"tenant-{i}", latency=0.5))
        family = registry.get("slo_tenant_requests_total")
        assert family.overflows > 0
        children = {tuple(labels.values()): child.value
                    for labels, child in family.children()}
        assert ("_overflow",) in children
        assert children[("_overflow",)] == 6  # 10 tenants, cap 4
        violations = registry.get("slo_tenant_violations_total")
        assert violations.labels(tenant="_overflow").value > 0
        # the rollup itself still tracks every tenant exactly
        assert len(tracker.tenant_rows()) == 10
