"""Tests for wc: correctness equivalence with and without SLEDs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.wc import wc
from repro.machine import Machine
from repro.sim.units import PAGE_SIZE


def _machine(cache_pages=64):
    machine = Machine.unix_utilities(cache_pages=cache_pages, seed=61)
    machine.boot()
    return machine


def _reference_counts(machine, path):
    """Ground truth from the content store, bypassing the kernel."""
    _, inode, _ = machine.kernel.resolve(path)
    blob = inode.content.read(0, inode.size)
    return blob.count(b"\n"), len(blob.split()), len(blob)


class TestCorrectness:
    def test_matches_reference_without_sleds(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 10 * PAGE_SIZE + 17, seed=1)
        result = wc(machine.kernel, "/mnt/ext2/f")
        assert (result.lines, result.words, result.chars) == \
            _reference_counts(machine, "/mnt/ext2/f")

    def test_sleds_equals_plain_cold_cache(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 10 * PAGE_SIZE, seed=2)
        plain = wc(machine.kernel, "/mnt/ext2/f")
        sleds = wc(machine.kernel, "/mnt/ext2/f", use_sleds=True)
        assert (plain.lines, plain.words, plain.chars) == \
            (sleds.lines, sleds.words, sleds.chars)

    def test_sleds_equals_plain_warm_interleaved_cache(self):
        machine = _machine(cache_pages=16)
        machine.ext2.create_text_file("f", 64 * PAGE_SIZE + 99, seed=3)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        plain = wc(k, "/mnt/ext2/f")
        sleds = wc(k, "/mnt/ext2/f", use_sleds=True)
        assert (plain.lines, plain.words, plain.chars) == \
            (sleds.lines, sleds.words, sleds.chars)

    def test_empty_file(self):
        machine = _machine()
        fd = machine.kernel.open("/mnt/ext2/empty", "w")
        machine.kernel.close(fd)
        for use_sleds in (False, True):
            result = wc(machine.kernel, "/mnt/ext2/empty",
                        use_sleds=use_sleds)
            assert (result.lines, result.words, result.chars) == (0, 0, 0)

    @given(st.integers(1, 8 * PAGE_SIZE), st.integers(1000, 20_000),
           st.sets(st.integers(0, 7)))
    @settings(max_examples=20, deadline=None)
    def test_equivalence_property(self, size, bufsize, cached):
        machine = _machine()
        machine.ext2.create_text_file("f", size, seed=4)
        k = machine.kernel
        inode = machine.ext2.resolve(["f"])
        for page in cached:
            if page < inode.npages:
                k.page_cache.insert((inode.id, page))
        plain = wc(k, "/mnt/ext2/f", bufsize=bufsize)
        sleds = wc(k, "/mnt/ext2/f", use_sleds=True, bufsize=bufsize)
        assert (plain.lines, plain.words, plain.chars) == \
            (sleds.lines, sleds.words, sleds.chars)


class TestPerformance:
    def test_sleds_reduces_faults_when_file_exceeds_cache(self):
        machine = _machine(cache_pages=32)
        machine.ext2.create_text_file("f", 64 * PAGE_SIZE, seed=5)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        with k.process() as plain:
            wc(k, "/mnt/ext2/f")
        k.drop_caches()
        k.warm_file("/mnt/ext2/f")
        with k.process() as sleds:
            wc(k, "/mnt/ext2/f", use_sleds=True)
        assert sleds.counters.pages_read < plain.counters.pages_read
        assert sleds.elapsed < plain.elapsed

    def test_no_benefit_on_cold_cache(self):
        """Paper: SLEDs provide no benefit for a completely cold cache."""
        machine = _machine(cache_pages=32)
        machine.ext2.create_text_file("f", 64 * PAGE_SIZE, seed=6)
        k = machine.kernel
        with k.process() as plain:
            wc(k, "/mnt/ext2/f")
        k.drop_caches()
        with k.process() as sleds:
            wc(k, "/mnt/ext2/f", use_sleds=True)
        assert sleds.counters.pages_read == plain.counters.pages_read
