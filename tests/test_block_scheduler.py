"""Tests for the block-layer I/O schedulers and writeback batching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.scheduler import (
    ClookScheduler,
    FcfsScheduler,
    IoRequest,
    SstfScheduler,
    make_scheduler,
    submit_batch,
)
from repro.devices.disk import DiskDevice
from repro.machine import Machine
from repro.sim.errors import InvalidArgumentError
from repro.sim.units import GB, MB, PAGE_SIZE


def _requests(addrs, nbytes=PAGE_SIZE):
    return [IoRequest(addr=a, nbytes=nbytes) for a in addrs]


class TestRequest:
    def test_end(self):
        assert IoRequest(100, 50).end == 150

    def test_invalid_rejected(self):
        with pytest.raises(InvalidArgumentError):
            IoRequest(-1, 10)
        with pytest.raises(InvalidArgumentError):
            IoRequest(0, 0)


class TestSchedulers:
    ADDRS = [5 * MB, 1 * MB, 9 * MB, 3 * MB]

    def test_fcfs_keeps_order(self):
        ordered = FcfsScheduler().order(_requests(self.ADDRS), head_pos=0)
        assert [r.addr for r in ordered] == self.ADDRS

    def test_sstf_greedy_from_head(self):
        ordered = SstfScheduler().order(_requests(self.ADDRS),
                                        head_pos=4 * MB)
        # nearest to 4MB is 3MB or 5MB; greedy proceeds by proximity
        assert ordered[0].addr in (3 * MB, 5 * MB)
        assert len(ordered) == 4

    def test_clook_sweeps_up_then_wraps(self):
        ordered = ClookScheduler().order(_requests(self.ADDRS),
                                         head_pos=4 * MB)
        assert [r.addr for r in ordered] == [5 * MB, 9 * MB, 1 * MB, 3 * MB]

    def test_factory(self):
        assert isinstance(make_scheduler("SSTF"), SstfScheduler)
        with pytest.raises(InvalidArgumentError):
            make_scheduler("deadline")

    @given(st.lists(st.integers(0, (8 * GB) // PAGE_SIZE - 1),
                    min_size=1, max_size=30, unique=True),
           st.sampled_from(["fcfs", "sstf", "clook"]),
           st.integers(0, 8 * GB))
    @settings(max_examples=50, deadline=None)
    def test_order_is_a_permutation(self, pages, name, head):
        requests = _requests([p * PAGE_SIZE for p in pages])
        ordered = make_scheduler(name).order(requests, head_pos=head)
        assert sorted(r.addr for r in ordered) == sorted(
            r.addr for r in requests)

    def _seek_total(self, name, pages, head_frac=0.5):
        disk = DiskDevice(rng=np.random.default_rng(9))
        head = int(disk.capacity * head_frac)
        requests = _requests([p * PAGE_SIZE for p in pages])
        ordered = make_scheduler(name).order(requests, head)
        total = 0.0
        pos = head
        for request in ordered:
            total += disk.seek_time(pos, request.addr)
            pos = request.end
        return total

    def test_clook_beats_fcfs_on_average(self):
        """The elevator wins on expectation over random scattered batches
        (not universally: the concave sqrt seek curve means a 2-request
        batch behind the head can favour FCFS)."""
        rng = np.random.default_rng(11)
        max_page = (8 * GB) // PAGE_SIZE - 1
        clook_total = fcfs_total = 0.0
        for _ in range(50):
            pages = rng.choice(max_page, size=16, replace=False)
            clook_total += self._seek_total("clook", pages)
            fcfs_total += self._seek_total("fcfs", pages)
        assert clook_total < 0.7 * fcfs_total

    def test_sstf_beats_fcfs_on_average(self):
        rng = np.random.default_rng(12)
        max_page = (8 * GB) // PAGE_SIZE - 1
        sstf_total = fcfs_total = 0.0
        for _ in range(50):
            pages = rng.choice(max_page, size=16, replace=False)
            sstf_total += self._seek_total("sstf", pages)
            fcfs_total += self._seek_total("fcfs", pages)
        assert sstf_total < 0.7 * fcfs_total


class TestSubmitBatch:
    def test_charges_device_time(self):
        disk = DiskDevice(rng=np.random.default_rng(3))
        total = submit_batch(disk, _requests([0, 5 * MB]),
                             ClookScheduler())
        assert total > 0
        assert disk.stats.reads == 2

    def test_writes_respected(self):
        disk = DiskDevice(rng=np.random.default_rng(3))
        submit_batch(disk, [IoRequest(0, PAGE_SIZE, is_write=True)],
                     FcfsScheduler())
        assert disk.stats.writes == 1


class TestKernelWriteback:
    def _dirty_scattered(self, io_scheduler):
        machine = Machine.unix_utilities(cache_pages=2048, seed=601)
        machine.boot()
        k = machine.kernel
        k.io_scheduler = make_scheduler(io_scheduler)
        k.writeback_threshold_pages = 1 << 30  # no early flush
        # preallocate files in name order (their extents are laid out
        # sequentially on disk), then dirty them in a random order: the
        # dirty list is scattered relative to device addresses, with a
        # large gap between consecutive files so seeks are non-trivial
        fs = machine.ext2
        for i in range(24):
            fs.create_file(f"f{i:02d}.dat", 4 * PAGE_SIZE)
            fs._alloc.cursor += 64 * MB  # spread files across the platter
        fds = [k.open(f"/mnt/ext2/f{i:02d}.dat", "r+") for i in range(24)]
        rng = np.random.default_rng(5)
        for i in rng.permutation(24):
            k.write(fds[int(i)], b"x" * (4 * PAGE_SIZE))
        with k.process() as run:
            k.sync()
        for fd in fds:
            k.close(fd)
        return run

    def test_clook_beats_fcfs_on_scattered_writeback(self):
        fcfs = self._dirty_scattered("fcfs")
        clook = self._dirty_scattered("clook")
        assert clook.counters.pages_written == fcfs.counters.pages_written
        assert clook.elapsed < fcfs.elapsed

    def test_sync_flushes_everything_once(self):
        machine = Machine.unix_utilities(cache_pages=256, seed=602)
        machine.boot()
        k = machine.kernel
        k.writeback_threshold_pages = 1 << 30
        fd = k.open("/mnt/ext2/a.dat", "w")
        k.write(fd, b"y" * (8 * PAGE_SIZE))
        k.sync()
        written = k.counters.pages_written
        assert written == 8
        k.sync()  # nothing left
        assert k.counters.pages_written == written
        k.close(fd)

    def test_hsm_writeback_keeps_staging_semantics(self):
        machine = Machine.hsm(cache_pages=256, seed=603)
        machine.boot()
        fs = machine.hsmfs
        k = machine.kernel
        fs.create_tape_file("w.dat", 8 * PAGE_SIZE, "VOL000")
        fd = k.open("/mnt/hsm/w.dat", "r+")
        k.write(fd, b"z" * (4 * PAGE_SIZE))
        k.fsync(fd)
        inode = k.resolve("/mnt/hsm/w.dat")[1]
        assert fs.staged_count(inode) >= 4  # writes land in the stage
        k.close(fd)


class TestTakeNext:
    """The online form: one request at a time against the live head."""

    def test_fcfs_pops_submission_order(self):
        pending = _requests([5 * MB, 1 * MB, 9 * MB])
        scheduler = FcfsScheduler()
        picked = [scheduler.take_next(pending, 0).addr for _ in range(3)]
        assert picked == [5 * MB, 1 * MB, 9 * MB]
        assert pending == []

    def test_sstf_picks_nearest_to_live_head(self):
        pending = _requests([1 * MB, 5 * MB, 9 * MB])
        assert SstfScheduler().take_next(pending, 6 * MB).addr == 5 * MB
        assert len(pending) == 2

    def test_sstf_equidistant_tie_breaks_to_lower_address(self):
        """Service order must be a pure function of (pending, head) —
        never of list construction order."""
        scheduler = SstfScheduler()
        for order in ([3 * MB, 5 * MB], [5 * MB, 3 * MB]):
            pending = _requests(order)
            assert scheduler.take_next(pending, 4 * MB).addr == 3 * MB

    def test_sstf_order_deterministic_under_permutation(self):
        scheduler = SstfScheduler()
        addrs = [4 * MB, 2 * MB, 6 * MB, 0]
        a = [r.addr for r in scheduler.order(_requests(addrs), 3 * MB)]
        b = [r.addr
             for r in scheduler.order(_requests(addrs[::-1]), 3 * MB)]
        assert a == b

    def test_clook_takes_lowest_at_or_above_head(self):
        pending = _requests([1 * MB, 5 * MB, 9 * MB])
        assert ClookScheduler().take_next(pending, 4 * MB).addr == 5 * MB

    def test_clook_wraps_to_lowest_when_nothing_ahead(self):
        """The wrap-around: head past every request sweeps back to the
        start of the disk, not backwards to the nearest."""
        pending = _requests([1 * MB, 3 * MB])
        assert ClookScheduler().take_next(pending, 8 * MB).addr == 1 * MB

    def test_clook_full_drain_matches_order(self):
        scheduler = ClookScheduler()
        addrs = [5 * MB, 1 * MB, 9 * MB, 3 * MB]
        via_order = [r.addr for r in scheduler.order(_requests(addrs),
                                                     4 * MB)]
        pending = _requests(addrs)
        # a LOOK sweep's head ends where each request ends
        via_take, head = [], 4 * MB
        while pending:
            request = scheduler.take_next(pending, head)
            via_take.append(request.addr)
            head = request.end
        assert via_take == via_order

    @given(st.lists(st.integers(0, (8 * GB) // PAGE_SIZE - 1),
                    min_size=1, max_size=20, unique=True),
           st.sampled_from(["fcfs", "sstf", "clook"]),
           st.integers(0, 8 * GB))
    @settings(max_examples=50, deadline=None)
    def test_take_next_drains_every_request(self, pages, name, head):
        scheduler = make_scheduler(name)
        pending = _requests([p * PAGE_SIZE for p in pages])
        expect = sorted(r.addr for r in pending)
        taken = []
        while pending:
            taken.append(scheduler.take_next(pending, head).addr)
        assert sorted(taken) == expect


class TestDeviceQueue:
    def _queue(self, scheduler_name="clook"):
        from repro.block.scheduler import DeviceQueue
        from repro.sim.clock import VirtualClock
        from repro.sim.events import EventLoop

        disk = DiskDevice(rng=np.random.default_rng(21))
        loop = EventLoop(VirtualClock())
        return DeviceQueue(disk, loop, make_scheduler(scheduler_name)), loop

    def test_single_request_completes(self):
        queue, loop = self._queue()
        future = queue.submit(0, PAGE_SIZE, is_write=False)
        assert queue.depth == 1  # dispatched, in service
        loop.run_until_idle()
        completion = future.value
        assert completion.queue_wait == 0.0
        assert completion.finish_time == loop.clock.now
        assert queue.depth == 0

    def test_second_request_waits_for_first(self):
        queue, loop = self._queue()
        first = queue.submit(0, PAGE_SIZE, is_write=False)
        second = queue.submit(5 * MB, PAGE_SIZE, is_write=False)
        assert queue.depth == 2
        loop.run_until_idle()
        assert second.value.start_time >= first.value.finish_time
        assert second.value.queue_wait > 0.0
        assert queue.total_queue_wait > 0.0
        assert queue.depth_high_water == 2

    def test_elevator_orders_queued_requests(self):
        """With three requests queued behind an in-flight one, C-LOOK
        services them in sweep order, not arrival order."""
        queue, loop = self._queue("clook")
        queue.submit(0, PAGE_SIZE, is_write=False)  # in service
        futures = {addr: queue.submit(addr, PAGE_SIZE, is_write=False)
                   for addr in (9 * MB, 1 * MB, 5 * MB)}
        loop.run_until_idle()
        starts = {addr: futures[addr].value.start_time
                  for addr in futures}
        assert starts[1 * MB] < starts[5 * MB] < starts[9 * MB]

    def test_congestion_epoch_moves_on_submit_and_complete(self):
        queue, loop = self._queue()
        epoch0 = queue.congestion_epoch
        queue.submit(0, PAGE_SIZE, is_write=False)
        assert queue.congestion_epoch > epoch0
        epoch1 = queue.congestion_epoch
        loop.run_until_idle()
        assert queue.congestion_epoch > epoch1

    def test_failed_request_does_not_wedge_queue(self):
        queue, loop = self._queue()
        queue.device.inject_failures(1)
        bad = queue.submit(0, PAGE_SIZE, is_write=False)
        good = queue.submit(PAGE_SIZE, PAGE_SIZE, is_write=False)
        loop.run_until_idle()
        assert bad.exception is not None
        assert good.value.duration > 0.0

    def test_estimated_delay_counts_inflight_and_pending(self):
        queue, loop = self._queue()
        assert queue.estimated_delay(loop.clock.now) == 0.0
        queue.submit(0, PAGE_SIZE, is_write=False)
        busy_only = queue.estimated_delay(loop.clock.now)
        assert busy_only > 0.0
        queue.submit(5 * MB, PAGE_SIZE, is_write=False)
        assert queue.estimated_delay(loop.clock.now) > busy_only
