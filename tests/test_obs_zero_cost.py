"""Property test: the new observability layers are strictly zero-cost.

A run with the time-series recorder (buckets + exemplars), the SLO
tracker, the hot-path profiler, and the latency-forensics stack all
attached must be bit-identical — virtual clock, fault counters,
per-task stats — to the same run with none of them, across every
filesystem personality.  Telemetry observes; it never advances the
clock and never draws randomness.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.merge import BlockConfig
from repro.machine import Machine
from repro.obs import (HotPathProfiler, LatencyForensics, SloTracker,
                       Telemetry)
from repro.sim.tasks import EventScheduler, Task
from repro.sim.units import PAGE_SIZE

PROFILES = ("ext2", "cdrom", "nfs", "hsm")

MERGE_ALL = BlockConfig(merge=True, plug=True)

SLO_OBJECTIVES = {"memory": 0.001, "disk": 0.02, "nfs": 0.06,
                  "cdrom": 1.0, "tape": 300.0}


def _setup(profile: str, seed: int, pages: int):
    if profile == "hsm":
        machine = Machine.hsm(cache_pages=256, stage_pages=512,
                              seed=9000 + seed)
        machine.boot()
        machine.hsmfs.create_tape_file("f", pages * PAGE_SIZE, "VOL000")
        return machine, "/mnt/hsm/f"
    machine = Machine.unix_utilities(cache_pages=256, seed=9000 + seed)
    machine.boot()
    fs = {"ext2": machine.ext2, "cdrom": machine.cdrom,
          "nfs": machine.nfs}[profile]
    fs.create_text_file("f", pages * PAGE_SIZE, seed=seed)
    return machine, f"/mnt/{profile}/f"


def _interleaved_readers(kernel, path, pages, readers=2, chunk_pages=2):
    nchunks = max(1, pages // chunk_pages)

    def reader(start):
        fd = kernel.open(path)
        kernel.get_sleds(fd)  # exercise the (profiled) SLED-build path
        for chunk in range(start, nchunks, readers):
            yield from kernel.pread_async(
                fd, chunk * chunk_pages * PAGE_SIZE, chunk_pages * PAGE_SIZE)
        kernel.close(fd)

    return [Task(f"r{i}", reader(i)) for i in range(readers)]


def _fingerprint(machine, stats):
    kernel = machine.kernel
    counters = kernel.counters
    return (
        kernel.clock.now,
        counters.hard_faults, counters.pages_read, counters.cache_hits,
        counters.readahead_pages, counters.evictions,
        tuple(sorted(
            (name, s.virtual_time, s.wait_time, s.hard_faults, s.io_waits,
             s.finished_at)
            for name, s in stats.items())),
    )


def _run(profile, seed, pages, observed: bool):
    machine, path = _setup(profile, seed, pages)
    kernel = machine.kernel
    forensics = None
    if observed:
        telemetry = Telemetry()
        telemetry.attach(kernel)
        forensics = LatencyForensics(kernel)
        telemetry.enable_timeseries(interval=0.001, sample_buckets=True,
                                    exemplars=forensics.reservoir)
        slo = SloTracker.for_classes(
            SLO_OBJECTIVES, registry=telemetry.registry,
            track_tenants=True).attach(telemetry)
        forensics.attach(telemetry, slo=slo)
        HotPathProfiler().attach(kernel)
    engine = kernel.attach_engine(block=MERGE_ALL)
    tasks = _interleaved_readers(kernel, path, pages)
    stats = EventScheduler(kernel, tasks, engine=engine).run()
    if observed:
        # exercise the analysis path too: blame every traced record and
        # fold the matrix — all post-hoc, none of it may have perturbed
        # the run (the fingerprint comparison below is the proof)
        forensics.analyze(top=3)
    return _fingerprint(machine, stats)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 50), pages=st.integers(2, 40))
def test_observability_stack_is_zero_cost(seed, pages):
    for profile in PROFILES:
        bare = _run(profile, seed, pages, observed=False)
        observed = _run(profile, seed, pages, observed=True)
        assert bare == observed, (
            f"{profile}: attaching timeseries+SLO+profiler+forensics "
            f"changed simulated behaviour")
