"""Tests for find: tree walk, -latency predicate, mount pruning."""

import pytest

from repro.apps.findutil import (
    LatencyPredicate,
    find,
    find_exec_grep_cached_first,
    parse_latency,
)
from repro.core.delivery import SLEDS_BEST
from repro.machine import Machine
from repro.sim.errors import InvalidArgumentError
from repro.sim.units import PAGE_SIZE


def _machine():
    machine = Machine.unix_utilities(cache_pages=128, seed=81)
    machine.boot()
    return machine


class TestParseLatency:
    @pytest.mark.parametrize("spec,cmp,seconds", [
        ("+5", "+", 5.0),
        ("-5", "-", 5.0),
        ("5", "=", 5.0),
        ("+m200", "+", 0.2),
        ("-M200", "-", 0.2),
        ("u150", "=", 150e-6),
        ("+U2", "+", 2e-6),
        ("0.5", "=", 0.5),
    ])
    def test_valid_specs(self, spec, cmp, seconds):
        pred = parse_latency(spec)
        assert pred.comparison == cmp
        assert pred.seconds == pytest.approx(seconds)

    @pytest.mark.parametrize("spec", ["", "++5", "m", "xyz", "-", "+-3"])
    def test_invalid_specs(self, spec):
        with pytest.raises(InvalidArgumentError):
            parse_latency(spec)

    def test_negative_value_rejected(self):
        with pytest.raises(InvalidArgumentError):
            parse_latency("+-5")

    def test_predicate_comparisons(self):
        assert LatencyPredicate("+", 1.0).matches(2.0)
        assert not LatencyPredicate("+", 1.0).matches(0.5)
        assert LatencyPredicate("-", 1.0).matches(0.5)
        assert LatencyPredicate("=", 1.0).matches(1.0)
        assert not LatencyPredicate("=", 1.0).matches(1.1)


class TestTreeWalk:
    def _populate(self, machine):
        fs = machine.ext2
        fs.create_text_file("src/a.c", 2 * PAGE_SIZE, seed=1)
        fs.create_text_file("src/b.c", 2 * PAGE_SIZE, seed=2)
        fs.create_text_file("src/deep/c.h", PAGE_SIZE, seed=3)
        fs.create_text_file("doc/readme.txt", PAGE_SIZE, seed=4)

    def test_finds_all_files(self):
        machine = _machine()
        self._populate(machine)
        hits = find(machine.kernel, "/mnt/ext2")
        assert len(hits) == 4

    def test_name_glob(self):
        machine = _machine()
        self._populate(machine)
        hits = find(machine.kernel, "/mnt/ext2", name="*.c")
        assert sorted(h.path for h in hits) == [
            "/mnt/ext2/src/a.c", "/mnt/ext2/src/b.c"]

    def test_min_size(self):
        machine = _machine()
        self._populate(machine)
        hits = find(machine.kernel, "/mnt/ext2",
                    min_size=2 * PAGE_SIZE)
        assert len(hits) == 2

    def test_exec_fn_called_per_hit(self):
        machine = _machine()
        self._populate(machine)
        seen = []
        find(machine.kernel, "/mnt/ext2", name="*.c", exec_fn=seen.append)
        assert len(seen) == 2

    def test_cross_mounts_control(self):
        machine = _machine()
        self._populate(machine)
        machine.nfs.create_text_file("remote.txt", PAGE_SIZE, seed=5)
        everywhere = find(machine.kernel, "/")
        assert any("nfs" in h.path for h in everywhere)
        local_only = find(machine.kernel, "/", cross_mounts=False)
        assert not any("nfs" in h.path for h in local_only)
        assert not any("ext2" in h.path for h in local_only)


class TestLatencyPredicate:
    def test_prunes_uncached_files(self):
        machine = _machine()
        fs = machine.ext2
        fs.create_text_file("cached.txt", 8 * PAGE_SIZE, seed=1)
        fs.create_text_file("cold.txt", 8 * PAGE_SIZE, seed=2)
        k = machine.kernel
        k.warm_file("/mnt/ext2/cached.txt")
        fast = find(k, "/mnt/ext2", latency="-m10", attack_plan=SLEDS_BEST)
        assert [h.path for h in fast] == ["/mnt/ext2/cached.txt"]
        slow = find(k, "/mnt/ext2", latency="+m10", attack_plan=SLEDS_BEST)
        assert [h.path for h in slow] == ["/mnt/ext2/cold.txt"]

    def test_delivery_time_attached_to_hits(self):
        machine = _machine()
        machine.ext2.create_text_file("f.txt", 4 * PAGE_SIZE, seed=1)
        hits = find(machine.kernel, "/mnt/ext2", latency="+u1")
        assert hits and hits[0].delivery_time > 0

    def test_no_latency_means_none(self):
        machine = _machine()
        machine.ext2.create_text_file("f.txt", PAGE_SIZE, seed=1)
        hits = find(machine.kernel, "/mnt/ext2")
        assert hits[0].delivery_time is None

    def test_bad_attack_plan(self):
        machine = _machine()
        with pytest.raises(InvalidArgumentError):
            find(machine.kernel, "/mnt/ext2", attack_plan="nope")

    def test_hsm_pruning_avoids_tape(self, hsm_machine):
        """The HSM story: -latency skips shelved-tape files entirely."""
        fs = hsm_machine.hsmfs
        k = hsm_machine.kernel
        staged = fs.create_tape_file("staged.dat", 4 * PAGE_SIZE, "VOL000")
        fs.create_tape_file("shelved.dat", 4 * PAGE_SIZE, "VOL001")
        fs.read_pages(staged, 0, 4)  # stage one file in
        quick = find(k, "/mnt/hsm", latency="-1", attack_plan=SLEDS_BEST)
        assert [h.path for h in quick] == ["/mnt/hsm/staged.dat"]
        tape_reads_before = sum(d.stats.reads
                                for d in fs.autochanger.drives)
        # pruning never touched the tape
        assert sum(d.stats.reads
                   for d in fs.autochanger.drives) == tape_reads_before


class TestCachedFirstComposition:
    def test_find_exec_grep_cached_first(self):
        machine = _machine()
        fs = machine.ext2
        needle = b"XNEEDLEX"
        fs.create_text_file("src/hot.c", 8 * PAGE_SIZE, seed=1,
                            plants={1000: needle})
        fs.create_text_file("src/cold.c", 8 * PAGE_SIZE, seed=2,
                            plants={2000: needle})
        k = machine.kernel
        k.warm_file("/mnt/ext2/src/hot.c")
        cheap, expensive = find_exec_grep_cached_first(
            k, "/mnt/ext2/src", needle, threshold_seconds=0.01,
            name="*.c")
        assert [r.path for r in cheap] == ["/mnt/ext2/src/hot.c"]
        assert [r.path for r in expensive] == ["/mnt/ext2/src/cold.c"]
        assert all(r.count == 1 for r in cheap + expensive)


class TestExtraPredicates:
    def test_max_size(self):
        machine = _machine()
        machine.ext2.create_text_file("small.txt", PAGE_SIZE, seed=1)
        machine.ext2.create_text_file("large.txt", 8 * PAGE_SIZE, seed=2)
        hits = find(machine.kernel, "/mnt/ext2", max_size=2 * PAGE_SIZE)
        assert [h.path for h in hits] == ["/mnt/ext2/small.txt"]

    def test_size_band(self):
        machine = _machine()
        for pages in (1, 4, 16):
            machine.ext2.create_text_file(f"f{pages}.txt",
                                          pages * PAGE_SIZE, seed=pages)
        hits = find(machine.kernel, "/mnt/ext2",
                    min_size=2 * PAGE_SIZE, max_size=8 * PAGE_SIZE)
        assert [h.path for h in hits] == ["/mnt/ext2/f4.txt"]

    def test_accessed_within(self):
        machine = _machine()
        machine.ext2.create_text_file("old.txt", PAGE_SIZE, seed=1)
        machine.ext2.create_text_file("hot.txt", PAGE_SIZE, seed=2)
        k = machine.kernel
        # age the world, then touch only one file
        k.charge_cpu(100.0)
        k.warm_file("/mnt/ext2/hot.txt")
        hits = find(k, "/mnt/ext2", accessed_within=50.0)
        assert [h.path for h in hits] == ["/mnt/ext2/hot.txt"]
