"""Unit and property tests for the element-granular (ff) SLEDs wrapper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ffsleds import (
    ff_active_session,
    ffsleds_pick_finish,
    ffsleds_pick_init,
    ffsleds_pick_next_read,
)
from repro.core.pick import sleds_pick_init
from repro.machine import Machine
from repro.sim.errors import InvalidArgumentError
from repro.sim.units import PAGE_SIZE


def _machine(cache_pages=64):
    machine = Machine.unix_utilities(cache_pages=cache_pages, seed=51)
    machine.boot()
    return machine


def _drain(kernel, fd):
    ranges = []
    while True:
        advice = ffsleds_pick_next_read(kernel, fd)
        if advice is None:
            return ranges
        ranges.append(advice)


class TestLifecycle:
    def test_conflicts_with_byte_session(self):
        machine = _machine()
        machine.ext2.create_file("f", 8 * PAGE_SIZE)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        sleds_pick_init(k, fd, 4096)
        with pytest.raises(InvalidArgumentError):
            ffsleds_pick_init(k, fd, 0, 4, 100, 16)

    def test_bad_parameters(self):
        machine = _machine()
        machine.ext2.create_file("f", 8 * PAGE_SIZE)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        with pytest.raises(InvalidArgumentError):
            ffsleds_pick_init(k, fd, 0, 0, 100, 16)
        with pytest.raises(InvalidArgumentError):
            ffsleds_pick_init(k, fd, -1, 4, 100, 16)
        with pytest.raises(InvalidArgumentError):
            ffsleds_pick_init(k, fd, 0, 4, 100, 0)

    def test_next_without_init(self):
        machine = _machine()
        with pytest.raises(InvalidArgumentError):
            ffsleds_pick_next_read(machine.kernel, 42)

    def test_finish_releases(self):
        machine = _machine()
        machine.ext2.create_file("f", 8 * PAGE_SIZE)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        ffsleds_pick_init(k, fd, 0, 4, 100, 16)
        assert ff_active_session(k, fd) is not None
        ffsleds_pick_finish(k, fd)
        assert ff_active_session(k, fd) is None

    def test_byte_range_mapping(self):
        machine = _machine()
        machine.ext2.create_file("f", 8 * PAGE_SIZE)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        ffsleds_pick_init(k, fd, data_offset=2880, element_size=4,
                          element_count=100, preferred_elements=16)
        session = ff_active_session(k, fd)
        assert session.byte_range(0, 10) == (2880, 40)
        assert session.byte_range(5, 2) == (2880 + 20, 8)
        ffsleds_pick_finish(k, fd)


class TestElementPartition:
    @pytest.mark.parametrize("element_size,data_offset", [
        (2, 0), (4, 2880), (8, 2880), (12, 2880), (4, 5760), (3, 2880),
    ])
    def test_elements_partitioned_exactly_once(self, element_size,
                                               data_offset):
        machine = _machine(cache_pages=32)
        file_size = 64 * PAGE_SIZE
        element_count = (file_size - data_offset) // element_size - 5
        machine.ext2.create_file("f", file_size)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")  # partial cache -> interesting order
        fd = k.open("/mnt/ext2/f")
        ffsleds_pick_init(k, fd, data_offset, element_size, element_count,
                          preferred_elements=1000)
        ranges = sorted(_drain(k, fd))
        ffsleds_pick_finish(k, fd)
        pos = 0
        for first, count in ranges:
            assert first == pos, "element gap or overlap"
            pos += count
        assert pos == element_count

    @given(st.integers(1, 16), st.integers(0, 3 * PAGE_SIZE),
           st.sets(st.integers(0, 15)))
    @settings(max_examples=25, deadline=None)
    def test_partition_property(self, element_size, data_offset, cached):
        machine = _machine(cache_pages=64)
        file_size = 16 * PAGE_SIZE
        element_count = max(
            1, (file_size - data_offset) // element_size - 1)
        machine.ext2.create_file("f", file_size)
        k = machine.kernel
        inode = machine.ext2.resolve(["f"])
        for page in cached:
            k.page_cache.insert((inode.id, page))
        fd = k.open("/mnt/ext2/f")
        ffsleds_pick_init(k, fd, data_offset, element_size, element_count,
                          preferred_elements=64)
        ranges = sorted(_drain(k, fd))
        ffsleds_pick_finish(k, fd)
        pos = 0
        for first, count in ranges:
            assert first == pos
            pos += count
        assert pos == element_count
