"""Tests for the LHEASOFT ports: fimhisto and fimgbin."""

import numpy as np
import pytest

from repro.fits.cfitsio import create_image, open_image, read_bintable, read_elements
from repro.lhea.fimgbin import fimgbin
from repro.lhea.fimhisto import fimhisto
from repro.machine import Machine
from repro.sim.errors import InvalidArgumentError


def _machine(cache_pages=256):
    machine = Machine.lheasoft(cache_pages=cache_pages, seed=111)
    machine.boot()
    return machine


def _make_image(machine, shape=(64, 128), seed=0, path="/mnt/ext2/in.fits"):
    rng = np.random.default_rng(seed)
    image = rng.integers(0, 4096, size=shape, dtype=np.int16)
    create_image(machine.kernel, path, image)
    return image


def _read_image(machine, path):
    k = machine.kernel
    fd = k.open(path)
    info = open_image(k, fd, path)
    data = read_elements(k, fd, info, 0, info.element_count)
    k.close(fd)
    width, height = info.shape
    return data.reshape(height, width)


class TestFimhisto:
    def test_histogram_matches_numpy(self):
        machine = _machine()
        image = _make_image(machine)
        result = fimhisto(machine.kernel, "/mnt/ext2/in.fits",
                          "/mnt/ext2/out.fits", nbins=32)
        expected, _ = np.histogram(
            image.astype(float),
            bins=np.linspace(image.min(), image.max(), 33))
        assert np.array_equal(result.counts, expected)
        assert result.counts.sum() == image.size

    def test_sleds_mode_identical_histogram(self):
        machine = _machine(cache_pages=32)
        _make_image(machine, shape=(128, 128))
        k = machine.kernel
        plain = fimhisto(k, "/mnt/ext2/in.fits", "/mnt/ext2/o1.fits")
        sleds = fimhisto(k, "/mnt/ext2/in.fits", "/mnt/ext2/o2.fits",
                         use_sleds=True)
        assert np.array_equal(plain.counts, sleds.counts)
        assert plain.data_min == sleds.data_min
        assert plain.data_max == sleds.data_max

    def test_output_file_is_copy_plus_histogram(self):
        machine = _machine()
        image = _make_image(machine)
        result = fimhisto(machine.kernel, "/mnt/ext2/in.fits",
                          "/mnt/ext2/out.fits", nbins=16)
        copied = _read_image(machine, "/mnt/ext2/out.fits")
        assert np.array_equal(copied, image)
        table = read_bintable(machine.kernel, "/mnt/ext2/out.fits", 1)
        assert np.array_equal(table.columns["COUNTS"],
                              result.counts.astype(np.int32))
        assert np.allclose(table.columns["BIN_LO"], result.bin_edges[:-1])

    def test_bad_nbins(self):
        machine = _machine()
        _make_image(machine)
        with pytest.raises(InvalidArgumentError):
            fimhisto(machine.kernel, "/mnt/ext2/in.fits",
                     "/mnt/ext2/out.fits", nbins=0)

    def test_constant_image(self):
        machine = _machine()
        create_image(machine.kernel, "/mnt/ext2/flat.fits",
                     np.full((16, 16), 7, dtype=np.int16))
        result = fimhisto(machine.kernel, "/mnt/ext2/flat.fits",
                          "/mnt/ext2/out.fits", nbins=8)
        assert result.counts.sum() == 256
        assert result.data_min == result.data_max == 7.0


class TestFimgbin:
    def _expected(self, image, side):
        h, w = image.shape
        binned = image.astype(np.float64).reshape(
            h // side, side, w // side, side).sum(axis=(1, 3)) / (side * side)
        return np.rint(binned).astype(np.int16)

    @pytest.mark.parametrize("factor,side", [(1, 1), (4, 2), (16, 4)])
    def test_rebin_matches_reference(self, factor, side):
        machine = _machine()
        image = _make_image(machine, shape=(32, 64))
        result = fimgbin(machine.kernel, "/mnt/ext2/in.fits",
                         "/mnt/ext2/out.fits", factor=factor)
        assert result.out_shape == (64 // side, 32 // side)
        out = _read_image(machine, "/mnt/ext2/out.fits")
        assert np.array_equal(out, self._expected(image, side))

    def test_sleds_mode_identical_output(self):
        machine = _machine(cache_pages=32)
        _make_image(machine, shape=(128, 128))
        k = machine.kernel
        fimgbin(k, "/mnt/ext2/in.fits", "/mnt/ext2/o1.fits", 4)
        fimgbin(k, "/mnt/ext2/in.fits", "/mnt/ext2/o2.fits", 4,
                use_sleds=True)
        assert np.array_equal(_read_image(machine, "/mnt/ext2/o1.fits"),
                              _read_image(machine, "/mnt/ext2/o2.fits"))

    def test_float_image(self):
        machine = _machine()
        rng = np.random.default_rng(5)
        image = rng.normal(size=(16, 32)).astype(np.float32)
        create_image(machine.kernel, "/mnt/ext2/fin.fits", image)
        fimgbin(machine.kernel, "/mnt/ext2/fin.fits",
                "/mnt/ext2/fout.fits", 4)
        out = _read_image(machine, "/mnt/ext2/fout.fits")
        expected = image.astype(np.float64).reshape(8, 2, 16, 2).sum(
            axis=(1, 3)) / 4
        assert np.allclose(out, expected.astype(np.float32))

    def test_non_square_factor_rejected(self):
        machine = _machine()
        _make_image(machine)
        with pytest.raises(InvalidArgumentError):
            fimgbin(machine.kernel, "/mnt/ext2/in.fits",
                    "/mnt/ext2/out.fits", factor=8)

    def test_indivisible_image_rejected(self):
        machine = _machine()
        create_image(machine.kernel, "/mnt/ext2/odd.fits",
                     np.zeros((15, 30), dtype=np.int16))
        with pytest.raises(InvalidArgumentError):
            fimgbin(machine.kernel, "/mnt/ext2/odd.fits",
                    "/mnt/ext2/out.fits", factor=4)

    def test_one_dimensional_rejected(self):
        from repro.fits.format import FitsFormatError
        machine = _machine()
        create_image(machine.kernel, "/mnt/ext2/vec.fits",
                     np.zeros(64, dtype=np.int16))
        with pytest.raises(FitsFormatError):
            fimgbin(machine.kernel, "/mnt/ext2/vec.fits",
                    "/mnt/ext2/out.fits", factor=4)


class TestPerformanceShape:
    def test_sleds_reduces_faults_for_large_files(self):
        """The paper's Figure 14 mechanism at small scale."""
        machine = _machine(cache_pages=64)  # image >> cache
        _make_image(machine, shape=(512, 512))  # 512 KB
        k = machine.kernel
        fimhisto(k, "/mnt/ext2/in.fits", "/mnt/ext2/w.fits")  # warm
        with k.process() as plain:
            fimhisto(k, "/mnt/ext2/in.fits", "/mnt/ext2/p.fits")
        with k.process() as sleds:
            fimhisto(k, "/mnt/ext2/in.fits", "/mnt/ext2/s.fits",
                     use_sleds=True)
        assert sleds.counters.pages_read < plain.counters.pages_read
        assert sleds.elapsed < plain.elapsed
