"""Unit and property tests for inodes, extents, and the allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.content import ZeroContent
from repro.fs.inode import (
    Allocator,
    Extent,
    ExtentMap,
    InodeKind,
    make_directory,
    make_file,
)
from repro.sim.errors import InvalidArgumentError, NoSpaceError
from repro.sim.units import MB, PAGE_SIZE


class TestExtent:
    def test_addr_of(self):
        extent = Extent(file_page=2, npages=3, device_addr=8 * PAGE_SIZE)
        assert extent.addr_of(2) == 8 * PAGE_SIZE
        assert extent.addr_of(4) == 10 * PAGE_SIZE

    def test_addr_of_outside_rejected(self):
        extent = Extent(0, 2, 0)
        with pytest.raises(InvalidArgumentError):
            extent.addr_of(2)

    def test_invalid_extent_rejected(self):
        with pytest.raises(InvalidArgumentError):
            Extent(0, 0, 0)
        with pytest.raises(InvalidArgumentError):
            Extent(-1, 1, 0)


class TestExtentMap:
    def test_must_start_at_zero(self):
        emap = ExtentMap()
        with pytest.raises(InvalidArgumentError):
            emap.append(Extent(1, 2, 0))

    def test_must_be_contiguous_in_file_space(self):
        emap = ExtentMap([Extent(0, 2, 0)])
        with pytest.raises(InvalidArgumentError):
            emap.append(Extent(3, 1, 0))

    def test_addr_lookup_across_extents(self):
        emap = ExtentMap([
            Extent(0, 2, 100 * PAGE_SIZE),
            Extent(2, 3, 500 * PAGE_SIZE),
        ])
        assert emap.addr_of(1) == 101 * PAGE_SIZE
        assert emap.addr_of(2) == 500 * PAGE_SIZE
        assert emap.addr_of(4) == 502 * PAGE_SIZE

    def test_unmapped_page_rejected(self):
        emap = ExtentMap([Extent(0, 2, 0)])
        with pytest.raises(InvalidArgumentError):
            emap.addr_of(2)

    def test_contiguous_run_within_extent(self):
        emap = ExtentMap([Extent(0, 4, 0), Extent(4, 4, 100 * PAGE_SIZE)])
        assert emap.contiguous_run(0, 8) == 4
        assert emap.contiguous_run(4, 8) == 4
        assert emap.contiguous_run(2, 1) == 1

    def test_contiguous_run_spans_adjacent_device_extents(self):
        emap = ExtentMap([Extent(0, 2, 0), Extent(2, 2, 2 * PAGE_SIZE)])
        assert emap.contiguous_run(0, 4) == 4

    @given(st.lists(st.integers(1, 8), min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_every_page_resolvable(self, extent_sizes):
        emap = ExtentMap()
        page = 0
        addr = 0
        for npages in extent_sizes:
            emap.append(Extent(page, npages, addr))
            page += npages
            addr += (npages + 3) * PAGE_SIZE  # gaps between extents
        for p in range(emap.npages):
            emap.addr_of(p)  # must not raise
        assert emap.npages == sum(extent_sizes)


class TestAllocator:
    def test_bump_allocation(self):
        alloc = Allocator(capacity=100 * PAGE_SIZE)
        pieces = alloc.allocate(5)
        assert pieces == [(0, 5)]
        assert alloc.allocate(2) == [(5 * PAGE_SIZE, 2)]

    def test_fragmented_allocation(self):
        alloc = Allocator(capacity=MB, max_extent_pages=2, gap_pages=1)
        pieces = alloc.allocate(5)
        assert [n for _, n in pieces] == [2, 2, 1]
        # gaps mean extents are not device-adjacent
        assert pieces[1][0] - pieces[0][0] > 2 * PAGE_SIZE

    def test_out_of_space(self):
        alloc = Allocator(capacity=2 * PAGE_SIZE)
        with pytest.raises(NoSpaceError):
            alloc.allocate(3)

    def test_negative_rejected(self):
        alloc = Allocator(capacity=MB)
        with pytest.raises(InvalidArgumentError):
            alloc.allocate(-1)

    def test_bad_range_rejected(self):
        with pytest.raises(InvalidArgumentError):
            Allocator(capacity=0)
        with pytest.raises(InvalidArgumentError):
            Allocator(capacity=100, start=100)


class TestInodeFactories:
    def test_make_file_lays_out_all_pages(self):
        alloc = Allocator(capacity=MB)
        inode = make_file(10 * PAGE_SIZE + 1, ZeroContent(), alloc)
        assert inode.kind is InodeKind.FILE
        assert inode.npages == 11
        assert inode.extent_map.npages == 11

    def test_make_file_empty(self):
        inode = make_file(0, ZeroContent(), Allocator(capacity=MB))
        assert inode.size == 0
        assert inode.npages == 0

    def test_make_directory(self):
        node = make_directory()
        assert node.is_dir
        assert node.entries == {}

    def test_inode_ids_unique(self):
        alloc = Allocator(capacity=MB)
        a = make_file(PAGE_SIZE, ZeroContent(), alloc)
        b = make_file(PAGE_SIZE, ZeroContent(), alloc)
        assert a.id != b.id
