"""Unit tests for the simulated kernel's syscall surface."""

import pytest

from repro.kernel.kernel import SEEK_CUR, SEEK_END, SEEK_SET
from repro.sim.errors import (
    BadFileDescriptorError,
    FileNotFoundSimError,
    InvalidArgumentError,
    IsADirectorySimError,
    ReadOnlyFilesystemError,
)
from repro.sim.units import MB, PAGE_SIZE


class TestOpenClose:
    def test_open_returns_distinct_fds(self, ext2_file):
        machine, path, _ = ext2_file
        k = machine.kernel
        fd1 = k.open(path)
        fd2 = k.open(path)
        assert fd1 != fd2
        k.close(fd1)
        k.close(fd2)

    def test_open_missing_file(self, kernel):
        with pytest.raises(FileNotFoundSimError):
            kernel.open("/mnt/ext2/nope.txt")

    def test_open_directory_rejected(self, ext2_file):
        machine, _, _ = ext2_file
        with pytest.raises(IsADirectorySimError):
            machine.kernel.open("/mnt/ext2/data")

    def test_open_bad_mode(self, ext2_file):
        machine, path, _ = ext2_file
        with pytest.raises(InvalidArgumentError):
            machine.kernel.open(path, "rb")

    def test_close_unknown_fd(self, kernel):
        with pytest.raises(BadFileDescriptorError):
            kernel.close(999)

    def test_open_w_creates(self, kernel):
        fd = kernel.open("/mnt/ext2/new.txt", "w")
        kernel.write(fd, b"hello")
        kernel.close(fd)
        assert kernel.stat("/mnt/ext2/new.txt").size == 5

    def test_open_w_truncates(self, kernel):
        fd = kernel.open("/mnt/ext2/t.txt", "w")
        kernel.write(fd, b"hello world")
        kernel.close(fd)
        fd = kernel.open("/mnt/ext2/t.txt", "w")
        kernel.close(fd)
        assert kernel.stat("/mnt/ext2/t.txt").size == 0

    def test_open_write_on_readonly_fs(self, unix_machine):
        unix_machine.cdrom.create_file("disc.dat", 100)
        with pytest.raises(ReadOnlyFilesystemError):
            unix_machine.kernel.open("/mnt/cdrom/disc.dat", "w")


class TestReadSeek:
    def test_read_whole_file(self, ext2_file):
        machine, path, size = ext2_file
        k = machine.kernel
        fd = k.open(path)
        data = b""
        while True:
            chunk = k.read(fd, 64 * 1024)
            if not chunk:
                break
            data += chunk
        k.close(fd)
        assert len(data) == size

    def test_read_clamps_at_eof(self, ext2_file):
        machine, path, size = ext2_file
        k = machine.kernel
        fd = k.open(path)
        k.lseek(fd, size - 10)
        assert len(k.read(fd, 100)) == 10
        assert k.read(fd, 100) == b""
        k.close(fd)

    def test_negative_read_rejected(self, ext2_file):
        machine, path, _ = ext2_file
        fd = machine.kernel.open(path)
        with pytest.raises(InvalidArgumentError):
            machine.kernel.read(fd, -1)

    def test_lseek_whences(self, ext2_file):
        machine, path, size = ext2_file
        k = machine.kernel
        fd = k.open(path)
        assert k.lseek(fd, 100, SEEK_SET) == 100
        assert k.lseek(fd, 50, SEEK_CUR) == 150
        assert k.lseek(fd, -10, SEEK_END) == size - 10
        k.close(fd)

    def test_lseek_negative_rejected(self, ext2_file):
        machine, path, _ = ext2_file
        fd = machine.kernel.open(path)
        with pytest.raises(InvalidArgumentError):
            machine.kernel.lseek(fd, -1)

    def test_lseek_bad_whence(self, ext2_file):
        machine, path, _ = ext2_file
        fd = machine.kernel.open(path)
        with pytest.raises(InvalidArgumentError):
            machine.kernel.lseek(fd, 0, 7)

    def test_pread_does_not_move_offset(self, ext2_file):
        machine, path, _ = ext2_file
        k = machine.kernel
        fd = k.open(path)
        k.lseek(fd, 500)
        k.pread(fd, 0, 100)
        assert k.lseek(fd, 0, SEEK_CUR) == 500
        k.close(fd)

    def test_read_matches_content(self, ext2_file):
        machine, path, _ = ext2_file
        k = machine.kernel
        fd = k.open(path)
        k.lseek(fd, 1234)
        via_read = k.read(fd, 100)
        via_pread = k.pread(fd, 1234, 100)
        assert via_read == via_pread


class TestWrite:
    def test_write_then_read_back(self, kernel):
        fd = kernel.open("/mnt/ext2/w.txt", "w")
        kernel.write(fd, b"abc" * 1000)
        kernel.lseek(fd, 0)
        assert kernel.read(fd, 6) == b"abcabc"
        kernel.close(fd)

    def test_append_mode(self, kernel):
        fd = kernel.open("/mnt/ext2/a.txt", "w")
        kernel.write(fd, b"one")
        kernel.close(fd)
        fd = kernel.open("/mnt/ext2/a.txt", "a")
        kernel.write(fd, b"two")
        kernel.close(fd)
        fd = kernel.open("/mnt/ext2/a.txt")
        assert kernel.read(fd, 10) == b"onetwo"

    def test_write_on_readonly_descriptor(self, ext2_file):
        machine, path, _ = ext2_file
        fd = machine.kernel.open(path)
        with pytest.raises(BadFileDescriptorError):
            machine.kernel.write(fd, b"x")

    def test_write_grows_file(self, kernel):
        fd = kernel.open("/mnt/ext2/g.txt", "w")
        kernel.write(fd, b"\0" * (2 * PAGE_SIZE + 5))
        assert kernel.stat("/mnt/ext2/g.txt").size == 2 * PAGE_SIZE + 5

    def test_fsync_flushes_dirty_pages(self, kernel):
        fd = kernel.open("/mnt/ext2/s.txt", "w")
        kernel.write(fd, b"x" * PAGE_SIZE)
        before = kernel.counters.pages_written
        kernel.fsync(fd)
        assert kernel.counters.pages_written > before
        kernel.fsync(fd)  # idempotent: nothing more to flush
        assert kernel.counters.pages_written == before + 1

    def test_writeback_threshold_triggers_flush(self, unix_machine):
        k = unix_machine.kernel
        k.writeback_threshold_pages = 4
        fd = k.open("/mnt/ext2/big.txt", "w")
        k.write(fd, b"\0" * (8 * PAGE_SIZE))
        assert k.counters.pages_written >= 4
        k.close(fd)


class TestNamespaceSyscalls:
    def test_stat(self, ext2_file):
        machine, path, size = ext2_file
        st = machine.kernel.stat(path)
        assert st.size == size
        assert not st.is_dir

    def test_listdir_includes_mounts(self, kernel):
        names = kernel.listdir("/mnt")
        assert {"ext2", "cdrom", "nfs"} <= set(names)

    def test_listdir_of_file_rejected(self, ext2_file):
        machine, path, _ = ext2_file
        with pytest.raises(InvalidArgumentError):
            machine.kernel.listdir(path)

    def test_unlink(self, ext2_file):
        machine, path, _ = ext2_file
        machine.kernel.unlink(path)
        with pytest.raises(FileNotFoundSimError):
            machine.kernel.stat(path)

    def test_unlink_drops_cached_pages(self, ext2_file):
        machine, path, _ = ext2_file
        k = machine.kernel
        k.warm_file(path)
        assert len(k.page_cache) > 0
        k.unlink(path)
        assert len(k.page_cache) == 0

    def test_no_mount_for_path(self, kernel):
        with pytest.raises(FileNotFoundSimError):
            kernel.resolve("/zzz/file")


class TestProcessAccounting:
    def test_elapsed_and_categories(self, ext2_file):
        machine, path, _ = ext2_file
        k = machine.kernel
        with k.process() as run:
            k.warm_file(path)
        assert run.elapsed > 0
        assert run.hard_faults > 0
        assert "disk" in run.by_category

    def test_nested_deltas_are_disjoint(self, ext2_file):
        machine, path, _ = ext2_file
        k = machine.kernel
        with k.process() as first:
            k.warm_file(path)
        with k.process() as second:
            pass
        assert second.elapsed == 0.0
        assert second.hard_faults == 0
        assert first.elapsed > 0

    def test_charge_cpu_is_visible(self, kernel):
        with kernel.process() as run:
            kernel.charge_cpu(0.25)
        assert run.cpu_time == pytest.approx(0.25)


class TestPwrite:
    def test_pwrite_does_not_move_offset(self, kernel):
        fd = kernel.open("/mnt/ext2/pw.dat", "w")
        kernel.write(fd, b"0123456789")
        kernel.lseek(fd, 3)
        kernel.pwrite(fd, 0, b"XX")
        assert kernel.lseek(fd, 0, SEEK_CUR) == 3
        kernel.lseek(fd, 0)
        assert kernel.read(fd, 10) == b"XX23456789"
        kernel.close(fd)

    def test_pwrite_grows_file(self, kernel):
        fd = kernel.open("/mnt/ext2/pw2.dat", "w")
        kernel.pwrite(fd, 2 * PAGE_SIZE, b"tail")
        assert kernel.stat("/mnt/ext2/pw2.dat").size == 2 * PAGE_SIZE + 4
        kernel.close(fd)

    def test_pwrite_on_readonly_fd(self, ext2_file):
        machine, path, _ = ext2_file
        fd = machine.kernel.open(path)
        with pytest.raises(BadFileDescriptorError):
            machine.kernel.pwrite(fd, 0, b"x")

    def test_pwrite_negative_offset(self, kernel):
        fd = kernel.open("/mnt/ext2/pw3.dat", "w")
        with pytest.raises(InvalidArgumentError):
            kernel.pwrite(fd, -1, b"x")
        kernel.close(fd)

    def test_pwrite_upgrades_synthetic_content(self, ext2_file):
        machine, path, _ = ext2_file
        k = machine.kernel
        fd = k.open(path, "r+")
        before = k.pread(fd, 100, 10)
        k.pwrite(fd, 100, b"Y" * 4)
        after = k.pread(fd, 100, 10)
        assert after[:4] == b"YYYY"
        assert after[4:] == before[4:]
        k.close(fd)
