"""Tests for per-class / per-tenant SLO tracking (repro.obs.slo)."""

import pytest

from repro.machine import Machine
from repro.obs import SloTarget, SloTracker, Telemetry
from repro.obs.lifecycle import LifecycleRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import window_quantile
from repro.sim.units import MB


def _record(cls="disk", task="grep", latency=0.01, kind="fault"):
    return LifecycleRecord(
        id=1, kind=kind, task=task, fs="ext2", device_class=cls,
        inode=7, page=0, cluster=1, nbytes=4096,
        submit_time=0.0, start_time=0.0, finish_time=latency,
        components=(("transfer", latency),))


class TestWindowQuantile:
    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        assert window_quantile(values, 0.0) == 1.0
        assert window_quantile(values, 0.5) == 51.0
        assert window_quantile(values, 0.99) == 99.0
        assert window_quantile(values, 1.0) == 100.0

    def test_empty_and_bad_q(self):
        assert window_quantile([], 0.5) == 0.0
        with pytest.raises(ValueError):
            window_quantile([1.0], 1.5)


class TestTargetMatching:
    def test_class_match(self):
        t = SloTarget("d", cls="disk", latency_objective=0.02)
        assert t.matches(_record(cls="disk"))
        assert not t.matches(_record(cls="nfs"))

    def test_wildcard_class(self):
        t = SloTarget("any", cls="*", latency_objective=0.02)
        assert t.matches(_record(cls="disk"))
        assert t.matches(_record(cls="tape"))

    def test_tenant_exact(self):
        t = SloTarget("g", cls="*", latency_objective=0.02, tenant="grep")
        assert t.matches(_record(task="grep"))
        assert not t.matches(_record(task="grep.0"))
        assert not t.matches(_record(task=None))

    def test_tenant_glob(self):
        t = SloTarget("g", cls="disk", latency_objective=0.02,
                      tenant="reader*")
        assert t.matches(_record(task="reader.0"))
        assert t.matches(_record(task="reader"))
        assert not t.matches(_record(task="writer.0"))

    def test_validation(self):
        with pytest.raises(ValueError):
            SloTarget("bad", cls="disk", latency_objective=0.0)
        with pytest.raises(ValueError):
            SloTarget("bad", cls="disk", latency_objective=0.1,
                      compliance_target=1.0)

    def test_error_budget(self):
        t = SloTarget("d", cls="disk", latency_objective=0.02,
                      compliance_target=0.95)
        assert t.error_budget == pytest.approx(0.05)


class TestTrackerMath:
    def _tracker(self, **kw):
        return SloTracker([SloTarget("disk-lat", cls="disk",
                                     latency_objective=0.01,
                                     compliance_target=0.9)], **kw)

    def test_compliance_and_burn(self):
        slo = self._tracker(window=100)
        for _ in range(8):
            slo.observe(_record(latency=0.005))
        for _ in range(2):
            slo.observe(_record(latency=0.05))
        row = slo.report_rows()[0]
        assert row["requests"] == 10 and row["violations"] == 2
        assert row["compliance"] == pytest.approx(0.8)
        # 20% violation rate against a 10% budget: burning at 2x
        assert row["burn_rate"] == pytest.approx(2.0)
        assert row["p50_s"] == pytest.approx(0.005)
        assert row["worst_latency_s"] == pytest.approx(0.05)

    def test_window_forgets_old_violations(self):
        slo = self._tracker(window=4)
        for _ in range(3):
            slo.observe(_record(latency=0.05))  # violations
        for _ in range(4):
            slo.observe(_record(latency=0.001))  # window fills with passes
        row = slo.report_rows()[0]
        assert row["violations"] == 3  # cumulative remembers
        assert row["window_violations"] == 0  # window forgot
        assert row["burn_rate"] == 0.0
        assert row["window_compliance"] == 1.0

    def test_no_traffic_defaults(self):
        row = self._tracker().report_rows()[0]
        assert row["compliance"] == 1.0
        assert row["burn_rate"] == 0.0
        assert "no traffic" in self._tracker().render()

    def test_unmatched_counted(self):
        slo = self._tracker()
        slo.observe(_record(cls="nfs"))
        assert slo.unmatched == 1

    def test_record_can_match_multiple_targets(self):
        slo = SloTracker([
            SloTarget("disk-lat", cls="disk", latency_objective=0.01),
            SloTarget("tenant-lat", cls="*", latency_objective=0.02,
                      tenant="grep*"),
        ])
        slo.observe(_record(cls="disk", task="grep.1", latency=0.015))
        rows = {r["name"]: r for r in slo.report_rows()}
        assert rows["disk-lat"]["violations"] == 1  # over 10 ms
        assert rows["tenant-lat"]["violations"] == 0  # under 20 ms

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SloTracker([])
        t = SloTarget("x", cls="disk", latency_objective=0.01)
        with pytest.raises(ValueError):
            SloTracker([t, t])
        with pytest.raises(ValueError):
            SloTracker([t], window=0)

    def test_for_classes_builder(self):
        slo = SloTracker.for_classes({"disk": 0.02, "nfs": 0.06})
        assert sorted(slo.states) == ["disk-latency", "nfs-latency"]

    def test_registry_metrics(self):
        reg = MetricsRegistry()
        slo = self._tracker(registry=reg)
        slo.observe(_record(latency=0.05))
        graded = reg.get("slo_requests_total").labels(slo="disk-lat")
        violated = reg.get("slo_violations_total").labels(slo="disk-lat")
        burn = reg.get("slo_burn_rate").labels(slo="disk-lat")
        assert graded.value == 1 and violated.value == 1
        assert burn.value == pytest.approx(10.0)  # 100% rate / 10% budget


class TestTelemetrySubscription:
    def test_attach_grades_real_run(self):
        machine = Machine.unix_utilities(cache_pages=256, seed=123)
        machine.boot()
        machine.ext2.create_text_file("data/f.txt", MB // 2, seed=7)
        telemetry = Telemetry()
        telemetry.attach(machine.kernel)
        slo = SloTracker.for_classes({"disk": 0.02},
                                     registry=telemetry.registry)
        slo.attach(telemetry)
        from repro.apps.wc import wc
        wc(machine.kernel, "/mnt/ext2/data/f.txt")
        telemetry.detach()
        row = slo.report_rows()[0]
        assert row["requests"] > 0
        assert row["requests"] == len(
            [r for r in telemetry.lifecycle.records
             if r.device_class == "disk"])
        assert 0.0 < row["p50_s"] <= row["p99_s"]

    def test_double_attach_rejected_and_detach(self):
        telemetry = Telemetry()
        slo = SloTracker.for_classes({"disk": 0.02}).attach(telemetry)
        with pytest.raises(ValueError):
            slo.attach(telemetry)
        slo.detach()
        assert telemetry.lifecycle.observers == []
        slo.detach()  # idempotent
