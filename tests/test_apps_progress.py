"""Tests for the §3.3 progress-reporting application."""

import pytest

from repro.apps.progress import retrieve_with_progress
from repro.fs.content import SyntheticText
from repro.machine import Machine
from repro.sim.units import MB, PAGE_SIZE


def _unix_machine():
    machine = Machine.unix_utilities(cache_pages=128, seed=701)
    machine.boot()
    return machine


class TestRetrieveWithProgress:
    def test_reads_whole_file(self):
        machine = _unix_machine()
        machine.ext2.create_text_file("f", MB, seed=1)
        report = retrieve_with_progress(machine.kernel, "/mnt/ext2/f")
        assert report.size == MB
        assert report.total_time > 0
        assert report.samples, "progress must be sampled"

    def test_initial_estimate_available_before_first_byte(self):
        machine = _unix_machine()
        machine.ext2.create_text_file("f", MB, seed=1)
        report = retrieve_with_progress(machine.kernel, "/mnt/ext2/f")
        # the SLEDs-implied total is in the right ballpark of the truth
        assert report.initial_estimate == pytest.approx(
            report.total_time, rel=0.5)

    def test_samples_monotonic(self):
        machine = _unix_machine()
        machine.ext2.create_text_file("f", MB, seed=1)
        report = retrieve_with_progress(machine.kernel, "/mnt/ext2/f")
        fractions = [s.fraction_done for s in report.samples]
        elapsed = [s.elapsed for s in report.samples]
        assert fractions == sorted(fractions)
        assert elapsed == sorted(elapsed)
        assert all(0 < f < 1 for f in fractions)

    def test_eta_sleds_shrinks_with_progress(self):
        machine = _unix_machine()
        machine.ext2.create_text_file("f", 2 * MB, seed=1)
        report = retrieve_with_progress(machine.kernel, "/mnt/ext2/f")
        etas = [s.eta_sleds for s in report.samples]
        assert etas[-1] < etas[0]

    def test_estimator_errors_api(self):
        machine = _unix_machine()
        machine.ext2.create_text_file("f", MB, seed=1)
        report = retrieve_with_progress(machine.kernel, "/mnt/ext2/f")
        dynamic_err, sleds_err = report.estimator_errors(0.5)
        assert sleds_err >= 0
        assert dynamic_err is None or dynamic_err >= 0

    def test_no_samples_raises(self):
        from repro.apps.progress import RetrievalReport
        report = RetrievalReport(path="x", size=1, total_time=1.0,
                                 initial_estimate=1.0)
        with pytest.raises(ValueError):
            report.sample_nearest(0.5)


class TestHsmSkew:
    def test_dynamic_estimator_skewed_by_mount(self, hsm_machine):
        size = MB
        inode = hsm_machine.hsmfs.create_tape_file("obs.dat", size, "VOL004")
        inode.content = SyntheticText(seed=3, size=size)
        report = retrieve_with_progress(hsm_machine.kernel,
                                        "/mnt/hsm/obs.dat")
        dynamic_err, sleds_err = report.estimator_errors(0.10)
        assert dynamic_err is not None
        # the mount dominated the early rate: dynamic extrapolation is
        # wildly pessimistic; SLEDs (refreshed) stays close
        assert dynamic_err > 1.0
        assert sleds_err < 0.5

    def test_stale_vector_overestimates_after_mount(self, hsm_machine):
        """Without refresh, the remaining-time estimate keeps charging the
        already-paid mount — the §3.4 staleness effect, visible here."""
        size = MB
        inode = hsm_machine.hsmfs.create_tape_file("obs2.dat", size,
                                                   "VOL005")
        inode.content = SyntheticText(seed=4, size=size)
        stale = retrieve_with_progress(hsm_machine.kernel,
                                       "/mnt/hsm/obs2.dat",
                                       refresh_vector=False)
        _, stale_err = stale.estimator_errors(0.5)
        inode2 = hsm_machine.hsmfs.create_tape_file("obs3.dat", size,
                                                    "VOL006")
        inode2.content = SyntheticText(seed=5, size=size)
        fresh = retrieve_with_progress(hsm_machine.kernel,
                                       "/mnt/hsm/obs3.dat",
                                       refresh_vector=True)
        _, fresh_err = fresh.estimator_errors(0.5)
        assert fresh_err < stale_err
