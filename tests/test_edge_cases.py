"""Edge-case tests across modules: empty files, tiny caches, boundary
offsets, odd record layouts, and API misuse."""

import numpy as np
import pytest

from repro.apps.grep import grep
from repro.apps.wc import wc
from repro.core.delivery import SLEDS_BEST, sleds_total_delivery_time
from repro.core.pick import (
    sleds_pick_finish,
    sleds_pick_init,
    sleds_pick_next_read,
)
from repro.machine import Machine
from repro.sim.units import PAGE_SIZE

NEEDLE = b"XNEEDLEX"


def _machine(cache_pages=64):
    machine = Machine.unix_utilities(cache_pages=cache_pages, seed=1101)
    machine.boot()
    return machine


class TestEmptyAndTinyFiles:
    def test_pick_session_on_empty_file(self):
        machine = _machine()
        k = machine.kernel
        fd = k.open("/mnt/ext2/empty", "w")
        sleds_pick_init(k, fd, 4096)
        assert sleds_pick_next_read(k, fd) is None
        sleds_pick_finish(k, fd)
        k.close(fd)

    def test_delivery_time_of_empty_file(self):
        machine = _machine()
        k = machine.kernel
        fd = k.open("/mnt/ext2/empty", "w")
        assert sleds_total_delivery_time(k, fd) == 0.0
        k.close(fd)

    def test_one_byte_file(self):
        machine = _machine()
        machine.ext2.create_text_file("tiny", 1, seed=1)
        for use_sleds in (False, True):
            result = wc(machine.kernel, "/mnt/ext2/tiny",
                        use_sleds=use_sleds)
            assert result.chars == 1

    def test_grep_on_one_page(self):
        machine = _machine()
        machine.ext2.create_text_file("tiny", PAGE_SIZE, seed=1,
                                      plants={10: NEEDLE})
        for use_sleds in (False, True):
            result = grep(machine.kernel, "/mnt/ext2/tiny", NEEDLE,
                          use_sleds=use_sleds)
            assert result.count == 1

    def test_file_exactly_cache_sized(self):
        machine = _machine(cache_pages=16)
        machine.ext2.create_text_file("exact", 16 * PAGE_SIZE, seed=1)
        k = machine.kernel
        k.warm_file("/mnt/ext2/exact")
        with k.process() as run:
            wc(k, "/mnt/ext2/exact", use_sleds=True)
        assert run.counters.pages_read == 0  # everything fit


class TestBoundaryOffsets:
    def test_needle_at_file_start(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 4 * PAGE_SIZE, seed=1,
                                      plants={0: NEEDLE})
        result = grep(machine.kernel, "/mnt/ext2/f", NEEDLE,
                      use_sleds=True)
        assert result.matches[0].offset == 0
        assert result.matches[0].line_number == 1

    def test_needle_spanning_page_boundary(self):
        machine = _machine()
        offset = PAGE_SIZE - 4
        machine.ext2.create_text_file("f", 4 * PAGE_SIZE, seed=1,
                                      plants={offset: NEEDLE})
        for use_sleds in (False, True):
            result = grep(machine.kernel, "/mnt/ext2/f", NEEDLE,
                          use_sleds=use_sleds)
            assert result.count == 1

    def test_needle_spanning_sled_boundary(self):
        """A match straddling a cached/uncached boundary must be found in
        record mode (the Figure 4 machinery guarantees it)."""
        machine = _machine(cache_pages=32)
        size = 16 * PAGE_SIZE
        machine.ext2.create_text_file("f", size, seed=2)
        k = machine.kernel
        inode = machine.ext2.resolve(["f"])
        # cache the first 8 pages only; plant the needle across the edge
        for page in range(8):
            k.page_cache.insert((inode.id, page))
        boundary = 8 * PAGE_SIZE
        inode.content.plants = {boundary - 4: NEEDLE}
        plain = grep(k, "/mnt/ext2/f", NEEDLE)
        sleds = grep(k, "/mnt/ext2/f", NEEDLE, use_sleds=True)
        assert plain.count == sleds.count == 1
        assert plain.matches[0].offset == sleds.matches[0].offset

    def test_read_at_exact_eof(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 1000, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        k.lseek(fd, 1000)
        assert k.read(fd, 10) == b""
        k.close(fd)

    def test_seek_past_eof_reads_nothing(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 1000, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        k.lseek(fd, 5000)
        assert k.read(fd, 10) == b""
        k.close(fd)


class TestTinyCache:
    def test_cache_smaller_than_one_chunk(self):
        machine = Machine.unix_utilities(cache_pages=16, seed=1102)
        machine.boot()
        machine.ext2.create_text_file("f", 64 * PAGE_SIZE, seed=1)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        plain = wc(k, "/mnt/ext2/f")
        sleds = wc(k, "/mnt/ext2/f", use_sleds=True)
        assert (plain.lines, plain.words, plain.chars) == \
            (sleds.lines, sleds.words, sleds.chars)

    def test_bufsize_larger_than_file(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 2 * PAGE_SIZE, seed=1)
        result = wc(machine.kernel, "/mnt/ext2/f", use_sleds=True,
                    bufsize=1 << 20)
        assert result.chars == 2 * PAGE_SIZE

    def test_one_byte_bufsize(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 300, seed=1)
        result = wc(machine.kernel, "/mnt/ext2/f", bufsize=1)
        reference = wc(machine.kernel, "/mnt/ext2/f")
        assert (result.lines, result.words, result.chars) == \
            (reference.lines, reference.words, reference.chars)


class TestSledsBestVsLinearOrdering:
    def test_best_reflects_cached_fraction(self):
        machine = _machine(cache_pages=32)
        machine.ext2.create_text_file("f", 64 * PAGE_SIZE, seed=1)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        fd = k.open("/mnt/ext2/f")
        best = sleds_total_delivery_time(k, fd, SLEDS_BEST)
        linear = sleds_total_delivery_time(k, fd)
        k.close(fd)
        assert best <= linear

    def test_multi_level_file_best_charges_levels_once(self):
        machine = _machine(cache_pages=64)
        machine.ext2.create_text_file("f", 32 * PAGE_SIZE, seed=1)
        k = machine.kernel
        inode = machine.ext2.resolve(["f"])
        # alternate cached/uncached pages: many sleds, two levels
        for page in range(0, 32, 2):
            k.page_cache.insert((inode.id, page))
        fd = k.open("/mnt/ext2/f")
        vector = k.get_sleds(fd)
        best = sleds_total_delivery_time(k, fd, SLEDS_BEST)
        linear = sleds_total_delivery_time(k, fd)
        k.close(fd)
        assert len(vector) == 32  # fully alternating
        # linear charges disk latency ~16 times, best only once
        disk_latency = k.sleds_table.lookup("ext2").latency
        assert linear - best > 10 * disk_latency


class TestApiMisuse:
    def test_double_close(self):
        from repro.sim.errors import BadFileDescriptorError
        machine = _machine()
        machine.ext2.create_text_file("f", PAGE_SIZE, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        k.close(fd)
        with pytest.raises(BadFileDescriptorError):
            k.close(fd)

    def test_read_after_close(self):
        from repro.sim.errors import BadFileDescriptorError
        machine = _machine()
        machine.ext2.create_text_file("f", PAGE_SIZE, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        k.close(fd)
        with pytest.raises(BadFileDescriptorError):
            k.read(fd, 10)

    def test_mount_conflict(self):
        from repro.fs.filesystem import Ext2Like
        from repro.sim.errors import InvalidArgumentError
        machine = _machine()
        with pytest.raises(InvalidArgumentError):
            machine.kernel.mount("/mnt/ext2", Ext2Like(name="dup"))

    def test_unlink_directory_rejected(self):
        from repro.sim.errors import IsADirectorySimError
        machine = _machine()
        machine.ext2.create_text_file("d/f", PAGE_SIZE, seed=1)
        with pytest.raises(IsADirectorySimError):
            machine.kernel.unlink("/mnt/ext2/d")
