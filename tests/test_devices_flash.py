"""Tests for the flash device and its drop-in use under the SLEDs stack."""

import numpy as np
import pytest

from repro.devices.flash import FlashDevice
from repro.fs.filesystem import Ext2Like
from repro.kernel.kernel import Kernel
from repro.machine import Machine
from repro.sim.rng import RngStreams
from repro.sim.units import GB, KB, MB, PAGE_SIZE


def _flash(**kwargs):
    return FlashDevice(rng=np.random.default_rng(1), **kwargs)


class TestFlashModel:
    def test_uniform_read_latency(self):
        flash = _flash()
        near = flash.read(0, PAGE_SIZE)
        far = flash.read(20 * GB, PAGE_SIZE)
        assert near == pytest.approx(far)

    def test_read_faster_than_write(self):
        flash = _flash()
        read = flash.read(0, 64 * KB)
        write = flash.write(0, 64 * KB)
        assert read < write

    def test_small_write_pays_erase_penalty(self):
        flash = _flash()
        aligned_full = flash.write(0, flash.erase_block)
        small = flash.write(flash.erase_block * 2, PAGE_SIZE)
        per_byte_full = aligned_full / flash.erase_block
        assert small > flash.program_latency + flash.erase_penalty * 0.99
        assert small > per_byte_full * PAGE_SIZE

    def test_aligned_block_write_avoids_penalty(self):
        flash = _flash()
        t = flash.write(0, flash.erase_block)
        expected = (flash.program_latency
                    + flash.erase_block / flash.write_bandwidth)
        assert t == pytest.approx(expected)

    def test_misaligned_large_write_pays_half_penalty(self):
        flash = _flash()
        t = flash.write(PAGE_SIZE, 2 * flash.erase_block)
        expected = (flash.program_latency + flash.erase_penalty / 2
                    + 2 * flash.erase_block / flash.write_bandwidth)
        assert t == pytest.approx(expected)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FlashDevice(read_latency=-1)
        with pytest.raises(ValueError):
            FlashDevice(read_bandwidth=0)
        with pytest.raises(ValueError):
            FlashDevice(erase_block=0)


class TestFlashUnderSleds:
    def _flash_machine(self):
        rng = RngStreams(71)
        kernel = Kernel(cache_pages=128, rng=rng)
        machine = Machine(kernel=kernel)
        from repro.devices.disk import DiskDevice
        machine.mount("/", Ext2Like(DiskDevice(
            name="root", rng=rng.stream("root")), name="rootfs"))
        machine.mount("/mnt/ext2", Ext2Like(
            _flash(), name="ext2"))
        machine.boot()
        return machine

    def test_boot_characterises_flash(self):
        machine = self._flash_machine()
        latency, bandwidth = machine.kernel.sleds_table.lookup(
            "ext2").latency, machine.kernel.sleds_table.lookup(
            "ext2").bandwidth
        assert latency < 1e-3           # no seeks: sub-millisecond
        assert bandwidth > 100 * MB

    def test_sled_vector_reports_flash_level(self):
        machine = self._flash_machine()
        machine.ext2.create_text_file("f", 16 * PAGE_SIZE, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        vector = k.get_sleds(fd)
        k.close(fd)
        assert len(vector) == 1
        assert vector[0].latency == k.sleds_table.lookup("ext2").latency

    def test_wc_correct_on_flash(self):
        machine = self._flash_machine()
        machine.ext2.create_text_file("f", 32 * PAGE_SIZE, seed=2)
        from repro.apps.wc import wc
        k = machine.kernel
        plain = wc(k, "/mnt/ext2/f")
        sleds = wc(k, "/mnt/ext2/f", use_sleds=True)
        assert (plain.lines, plain.words, plain.chars) == \
            (sleds.lines, sleds.words, sleds.chars)
