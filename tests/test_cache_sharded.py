"""Tests for the sharded page cache, tenant limits, and the balancer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.page_cache import PageCache, TenantMemoryLimit


class TestTenantMemoryLimit:
    def test_validates_positive(self):
        with pytest.raises(ValueError):
            TenantMemoryLimit(soft_pages=0)
        with pytest.raises(ValueError):
            TenantMemoryLimit(hard_pages=-1)

    def test_soft_must_not_exceed_hard(self):
        with pytest.raises(ValueError):
            TenantMemoryLimit(soft_pages=10, hard_pages=5)
        TenantMemoryLimit(soft_pages=5, hard_pages=5)  # equal is fine

    def test_unbounded_axes(self):
        limit = TenantMemoryLimit()
        assert limit.soft_pages is None and limit.hard_pages is None


class TestShardedStructure:
    def test_shard_validation(self):
        with pytest.raises(ValueError):
            PageCache(16, shards=0)
        with pytest.raises(ValueError):
            PageCache(4, shards=8)  # more shards than pages

    def test_policy_object_rejected_for_multiple_shards(self):
        from repro.cache.policies import make_policy
        with pytest.raises(ValueError):
            PageCache(16, policy=make_policy("lru"), shards=4)

    def test_capacity_split_sums_to_total(self):
        cache = PageCache(10, shards=3)
        report = cache.shard_report()
        assert sum(s["capacity_pages"] for s in report) == 10
        assert [s["capacity_pages"] for s in report] == [4, 3, 3]

    def test_keys_route_by_inode(self):
        cache = PageCache(16, shards=4)
        for inode in range(8):
            cache.insert((inode, 0))
        report = cache.shard_report()
        # inodes 0..7 over 4 shards: two inodes per shard
        assert [s["resident_pages"] for s in report] == [2, 2, 2, 2]

    def test_single_shard_is_the_seed_structure(self):
        cache = PageCache(4, shards=1)
        evicted = [cache.insert((0, p)) for p in range(6)]
        # LRU at capacity 4: pages 0 and 1 evicted, in order
        assert evicted == [None, None, None, None, (0, 0), (0, 1)]
        assert len(cache) == 4

    def test_per_shard_eviction_pressure(self):
        """A full shard evicts even while other shards sit empty."""
        cache = PageCache(8, shards=2)
        # inode 0 routes to shard 0 (capacity 4); fill past it
        for p in range(5):
            cache.insert((0, p))
        assert cache.stats.evictions == 1
        assert not cache.peek((0, 0))
        report = cache.shard_report()
        assert report[0]["resident_pages"] == 4
        assert report[1]["resident_pages"] == 0

    @given(shards=st.integers(1, 5), inodes=st.integers(1, 6),
           pages=st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_shard_counts_always_consistent(self, shards, inodes, pages):
        cache = PageCache(12, shards=min(shards, 12))
        for p in range(pages):
            cache.insert((p % inodes, p))
        report = cache.shard_report()
        assert sum(s["resident_pages"] for s in report) == len(cache)
        assert all(s["resident_pages"] <= s["capacity_pages"]
                   for s in report)
        assert len(cache) <= cache.capacity_pages


class TestBalancer:
    def test_rebalance_moves_capacity_toward_hot_shard(self):
        cache = PageCache(64, shards=4, rebalance_every=32)
        # all traffic on inode 0 -> shard 0 is the only hot shard
        for p in range(200):
            cache.insert((0, p))
        assert cache.stats.rebalances > 0
        report = cache.shard_report()
        assert report[0]["capacity_pages"] > report[1]["capacity_pages"]
        assert sum(s["capacity_pages"] for s in report) == 64

    def test_cold_shards_keep_the_floor(self):
        cache = PageCache(64, shards=4, rebalance_every=16)
        for p in range(500):
            cache.insert((0, p))
        floor = 64 // (4 * 4)
        assert all(s["capacity_pages"] >= floor
                   for s in cache.shard_report())

    def test_rebalance_never_loses_resident_pages(self):
        cache = PageCache(32, shards=4, rebalance_every=8)
        keys = [(i % 4, p) for i, p in enumerate(range(120))]
        for key in keys:
            cache.insert(key)
        report = cache.shard_report()
        assert sum(s["resident_pages"] for s in report) == len(cache)
        assert all(s["resident_pages"] <= s["capacity_pages"]
                   for s in report)

    def test_no_rebalance_at_one_shard(self):
        cache = PageCache(8, shards=1, rebalance_every=2)
        for p in range(50):
            cache.insert((0, p))
        assert cache.stats.rebalances == 0


class TestTenantLimits:
    def test_soft_limit_prefers_over_soft_tenant(self):
        limits = {"hog": TenantMemoryLimit(soft_pages=2)}
        cache = PageCache(8, tenant_limits=limits)
        for p in range(4):
            cache.insert((0, p), "hog")        # hog 2 over soft
        for p in range(4):
            cache.insert((1, p), "victim")     # fills the cache
        assert cache.stats.evictions == 0
        # next insert must reclaim from the over-soft hog, not LRU order
        cache.insert((2, 0), "victim")
        assert cache.stats.tenant_soft_evictions == 1
        assert cache.stats.tenant_evictions.get("hog") == 1
        assert cache.tenant_resident_count("hog") == 3
        assert cache.last_evicted_owner == "hog"

    def test_under_soft_tenant_not_preferred(self):
        limits = {"a": TenantMemoryLimit(soft_pages=8)}
        cache = PageCache(4, tenant_limits=limits)
        for p in range(4):
            cache.insert((0, p), "a")
        cache.insert((0, 4), "a")
        # nobody over soft: plain LRU victim, not a soft eviction
        assert cache.stats.tenant_soft_evictions == 0
        assert cache.stats.evictions == 1

    def test_hard_cap_self_evicts(self):
        limits = {"capped": TenantMemoryLimit(hard_pages=3)}
        cache = PageCache(16, tenant_limits=limits)
        for p in range(6):
            cache.insert((0, p), "capped")
        assert cache.tenant_resident_count("capped") == 3
        assert cache.stats.tenant_hard_evictions == 3
        # oldest pages went first; the newest 3 remain
        assert [cache.peek((0, p)) for p in range(6)] == [
            False, False, False, True, True, True]

    def test_hard_cap_never_touches_other_tenants(self):
        limits = {"capped": TenantMemoryLimit(hard_pages=2)}
        cache = PageCache(16, tenant_limits=limits)
        for p in range(4):
            cache.insert((1, p), "other")
        for p in range(5):
            cache.insert((0, p), "capped")
        assert cache.tenant_resident_count("other") == 4
        assert cache.tenant_resident_count("capped") == 2

    def test_tenant_report_shape(self):
        limits = {"a": TenantMemoryLimit(soft_pages=2, hard_pages=4)}
        cache = PageCache(8, tenant_limits=limits)
        cache.insert((0, 0), "a")
        cache.insert((1, 0), "b")
        report = cache.tenant_report()
        assert report["a"] == {"resident_pages": 1, "soft_pages": 2,
                               "hard_pages": 4, "evictions": 0}
        assert report["b"]["soft_pages"] is None
        assert report["b"]["resident_pages"] == 1

    def test_invalidate_forgets_tenant_ownership(self):
        cache = PageCache(8)
        cache.insert((0, 0), "a")
        assert cache.tenant_resident_count("a") == 1
        cache.invalidate((0, 0))
        assert cache.tenant_resident_count("a") == 0

    def test_clear_resets_tenant_tracking(self):
        cache = PageCache(8)
        cache.insert((0, 0), "a")
        cache.insert((0, 1), "b")
        cache.clear()
        assert cache.tenant_resident_count("a") == 0
        assert cache.tenant_resident_count("b") == 0
        assert len(cache) == 0

    def test_untenanted_eviction_clears_owner(self):
        """last_evicted_owner must not go stale after tenant pages are
        gone and an untenanted eviction follows."""
        cache = PageCache(2)
        cache.insert((0, 0), "a")
        cache.insert((0, 1))
        cache.insert((0, 2))  # evicts (0,0), owner "a"
        assert cache.last_evicted_owner == "a"
        cache.insert((0, 3))  # evicts untenanted (0,1)
        assert cache.last_evicted_owner is None

    @given(hard=st.integers(1, 6), inserts=st.integers(1, 60))
    @settings(max_examples=40, deadline=None)
    def test_hard_cap_is_an_invariant(self, hard, inserts):
        limits = {"t": TenantMemoryLimit(hard_pages=hard)}
        cache = PageCache(32, tenant_limits=limits)
        for p in range(inserts):
            cache.insert((p % 3, p), "t")
            assert cache.tenant_resident_count("t") <= hard


class TestShardsAndLimitsTogether:
    def test_soft_reclaim_within_a_shard(self):
        limits = {"hog": TenantMemoryLimit(soft_pages=1)}
        cache = PageCache(8, shards=2, tenant_limits=limits)
        # shard 0: inode 0/2 keys; hog over-soft inside shard 0
        cache.insert((0, 0), "hog")
        cache.insert((0, 1), "hog")
        cache.insert((2, 0), "v")
        cache.insert((2, 1), "v")  # shard 0 (capacity 4) now full
        cache.insert((2, 2), "v")
        assert cache.stats.tenant_soft_evictions == 1
        assert cache.tenant_resident_count("hog") == 1
