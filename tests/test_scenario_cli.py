"""Tests for the scenario loader and the sleds-run CLI."""

import json

import pytest

from repro.apps.cli import main
from repro.bench.scenario import (
    DEFAULT_SCENARIO,
    ScenarioError,
    build_scenario,
    load_scenario,
)
from repro.sim.units import KB, MB, PAGE_SIZE


class TestBuildScenario:
    def test_default_scenario_builds(self):
        machine = build_scenario(DEFAULT_SCENARIO)
        assert machine.booted
        st = machine.kernel.stat("/mnt/ext2/demo/big.txt")
        assert st.size == 8 * MB

    def test_file_sizes_and_plants(self):
        machine = build_scenario({
            "profile": "unix",
            "cache_mb": 1,
            "files": [
                {"path": "/mnt/ext2/a.txt", "size_kb": 64, "seed": 1,
                 "plants": {"1000": "MARKER"}},
            ],
        })
        fd = machine.kernel.open("/mnt/ext2/a.txt")
        assert machine.kernel.pread(fd, 1000, 6) == b"MARKER"
        machine.kernel.close(fd)

    def test_warm_applies(self):
        machine = build_scenario({
            "profile": "unix", "cache_mb": 4,
            "files": [{"path": "/mnt/ext2/w.txt", "size_kb": 64}],
            "warm": ["/mnt/ext2/w.txt"],
        })
        inode = machine.kernel.resolve("/mnt/ext2/w.txt")[1]
        assert machine.kernel.page_cache.resident_count(
            inode.id, inode.npages) == inode.npages

    def test_hsm_tape_files(self):
        machine = build_scenario({
            "profile": "hsm", "cache_mb": 1,
            "tape_files": [
                {"path": "/mnt/hsm/arch.dat", "size_kb": 128,
                 "cartridge": "VOL001"},
            ],
        })
        inode = machine.kernel.resolve("/mnt/hsm/arch.dat")[1]
        state = machine.hsmfs.state_of(inode)
        assert state.cartridge_label == "VOL001"

    @pytest.mark.parametrize("spec,fragment", [
        ("not a dict", "must be a dict"),
        ({"profile": "vms"}, "unknown profile"),
        ({"cache_mb": -1}, "bad cache_mb"),
        ({"files": [{"size_kb": 4}]}, "missing path"),
        ({"files": [{"path": "/mnt/ext2/x", "size_kb": 4, "size_mb": 4}]},
         "exactly one"),
        ({"files": [{"path": "/mnt/ext2/x", "size_kb": 4,
                     "plants": {"junk": "A"}}]}, "not an int"),
        ({"files": [{"path": "/mnt/ext2/x", "size": 100,
                     "plants": {"5000": "A"}}]}, "escapes"),
        ({"tape_files": [{"path": "/mnt/ext2/x", "size_kb": 4}]},
         "not on an HSM"),
    ])
    def test_malformed_specs_rejected(self, spec, fragment):
        if isinstance(spec, dict) and "tape_files" in spec:
            spec = {"profile": "unix", **spec}
        with pytest.raises(ScenarioError, match=fragment):
            build_scenario(spec)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps({
            "profile": "unix", "cache_mb": 1,
            "files": [{"path": "/mnt/ext2/f.txt", "size_kb": 16}],
        }))
        machine = load_scenario(path)
        assert machine.kernel.stat("/mnt/ext2/f.txt").size == 16 * KB

    def test_load_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ScenarioError, match="invalid JSON"):
            load_scenario(path)


class TestCli:
    def test_wc(self, capsys):
        assert main(["wc", "/mnt/ext2/demo/big.txt", "--sleds"]) == 0
        out = capsys.readouterr().out
        assert "8388608" in out
        assert "virtual time" in out

    def test_grep_found_and_missing(self, capsys):
        assert main(["grep", "XNEEDLEX", "/mnt/ext2/demo/big.txt",
                     "-q", "--sleds"]) == 0
        assert main(["grep", "ZZZABSENT", "/mnt/ext2/demo/small.txt"]) == 1

    def test_grep_line_numbers(self, capsys):
        main(["grep", "XNEEDLEX", "/mnt/ext2/demo/big.txt", "-n"])
        out = capsys.readouterr().out
        first_line = out.splitlines()[0]
        line_no = int(first_line.split(":", 1)[0])
        assert line_no > 0

    def test_find_latency(self, capsys):
        assert main(["find", "/mnt/ext2", "-latency", "+u1"]) == 0
        out = capsys.readouterr().out
        assert "/mnt/ext2/demo/big.txt" in out

    def test_gmc(self, capsys):
        assert main(["gmc", "/mnt/ext2/demo/big.txt"]) == 0
        out = capsys.readouterr().out
        assert "delivery time" in out

    def test_sleds_dump(self, capsys):
        assert main(["sleds", "/mnt/ext2/demo/big.txt"]) == 0
        out = capsys.readouterr().out
        assert "SLED(s) over 8388608 bytes" in out

    def test_timeline(self, capsys):
        assert main(["timeline", "/mnt/ext2/demo/big.txt"]) == 0
        out = capsys.readouterr().out
        assert "fault" in out

    def test_scenario_file(self, capsys, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({
            "profile": "unix", "cache_mb": 1,
            "files": [{"path": "/mnt/ext2/t.txt", "size_kb": 16}],
        }))
        assert main(["--scenario", str(path), "wc", "/mnt/ext2/t.txt"]) == 0

    def test_progress_command(self, capsys):
        assert main(["progress", "/mnt/nfs/pub/dataset.txt",
                     "--samples", "4"]) == 0
        out = capsys.readouterr().out
        assert "initial SLEDs estimate" in out
        assert "dynamic ETA" in out

    def test_gmc_directory(self, capsys):
        assert main(["gmc", "/mnt/ext2/demo"]) == 0
        out = capsys.readouterr().out
        assert "big.txt" in out and "small.txt" in out
        assert "cached" in out

    def test_stats_warm_reports_accuracy(self, capsys):
        assert main(["stats", "/mnt/ext2/demo/big.txt", "--warm"]) == 0
        out = capsys.readouterr().out
        assert "SLED prediction accuracy" in out
        assert "disk" in out
        assert "memory" in out
        assert "hit ratio" in out

    def test_stats_prometheus_format(self, capsys):
        assert main(["stats", "/mnt/ext2/demo/big.txt",
                     "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_syscalls_total counter" in out

    def test_stats_json_to_file(self, capsys, tmp_path):
        out_path = tmp_path / "metrics.json"
        assert main(["stats", "/mnt/ext2/demo/big.txt", "--format", "json",
                     "--app", "grep", "-o", str(out_path)]) == 0
        dump = json.loads(out_path.read_text())
        assert "metrics" in dump and "accuracy" in dump

    def test_trace_exports_chrome_json(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "/mnt/ext2/demo/big.txt",
                     "-o", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        events = doc["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        assert {"syscall", "fault", "device"} <= {e["cat"] for e in events}

    def test_trace_to_stdout(self, capsys):
        assert main(["trace", "/mnt/ext2/demo/small.txt"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["traceEvents"]

    def test_report_json_exports_by_component(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        assert main(["report", "--json", str(out_path)]) == 0
        dump = json.loads(out_path.read_text())
        acc = dump["accuracy"]
        assert "by_class" in acc and "by_component" in acc
        assert any(key.endswith("/queue") or key.endswith("/service")
                   for key in acc["by_component"])

    def test_slo_command(self, capsys, tmp_path):
        json_path = tmp_path / "slo.json"
        series_path = tmp_path / "series.json"
        om_path = tmp_path / "series.om"
        assert main(["slo", "--json", str(json_path),
                     "--series-out", str(series_path),
                     "--openmetrics-out", str(om_path)]) == 0
        out = capsys.readouterr().out
        assert "SLO compliance" in out
        dump = json.loads(json_path.read_text())
        rows = {r["name"]: r for r in dump["slo"]["targets"]}
        graded = [r for r in rows.values() if r["requests"]]
        assert graded, "demo mix graded no requests"
        for row in graded:
            assert row["p50_s"] <= row["p99_s"]
            assert 0.0 <= row["compliance"] <= 1.0
            assert row["burn_rate"] >= 0.0
        series = json.loads(series_path.read_text())
        assert series["samples"] >= 2
        assert len(series["families"]) >= 3
        assert om_path.read_text().endswith("# EOF\n")

    def test_slo_custom_objective_and_bad_spec(self, capsys):
        assert main(["slo", "/mnt/ext2/demo/small.txt",
                     "--objective", "disk=0.000001"]) == 0
        out = capsys.readouterr().out
        assert "disk-latency" in out
        with pytest.raises(SystemExit):
            main(["slo", "--objective", "disk"])

    def test_explain_command(self, capsys, tmp_path):
        import math
        import re
        json_path = tmp_path / "forensics.json"
        folded_path = tmp_path / "stacks.folded"
        assert main(["explain", "--tenants", "3", "--top", "2",
                     "--json", str(json_path),
                     "--folded-out", str(folded_path)]) == 0
        out = capsys.readouterr().out
        assert "latency forensics" in out
        assert "blame:" in out
        assert "per-tenant queue delay" in out
        dump = json.loads(json_path.read_text())
        forensics = dump["forensics"]
        assert forensics["analyzed"] > 0
        assert len(forensics["waterfalls"]) == 2
        for wf in forensics["waterfalls"]:
            blame = wf["blame"]
            assert math.fsum(blame.values()) == pytest.approx(
                wf["record"]["latency"], rel=1e-12, abs=1e-15)
            assert wf["spans"], "waterfall without spans"
        # matrix rows reconcile with the SLO tracker's queue pools
        rows = forensics["interference"]["row_totals"]
        pools = dump["slo_tenant_queue_waits"]
        for tenant, pooled in pools.items():
            assert rows.get(tenant, 0.0) == pytest.approx(
                pooled, rel=1e-12, abs=1e-15)
        # folded stacks: `frame(;frame)* <integer ns>` per line
        lines = folded_path.read_text().splitlines()
        assert lines
        pattern = re.compile(r"^\S.*;.+ \d+$")
        for line in lines:
            assert pattern.match(line), f"bad folded line: {line!r}"
        assert any(line.startswith("critical;") for line in lines)

    def test_explain_plain_and_bad_args(self, capsys):
        assert main(["explain", "/mnt/ext2/demo/small.txt",
                     "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "traced request(s)" in out
        assert "per-tenant queue delay" not in out
        with pytest.raises(SystemExit):
            main(["explain", "--top", "0"])
        with pytest.raises(SystemExit):
            main(["explain", "--tenants", "-1"])

    def test_profile_command(self, capsys, tmp_path):
        out_path = tmp_path / "prof.json"
        assert main(["profile", "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "hot-path profile" in out
        dump = json.loads(out_path.read_text())
        sites = {row["site"] for row in dump["sites"]}
        assert {"event_loop.dispatch", "kernel.sled_build"} <= sites
        assert all(row["calls"] > 0 for row in dump["sites"])

    def test_profile_budget_gate(self, capsys):
        # any real run clears 1 fault/s; nothing clears 1e12
        assert main(["profile", "--budget", "1"]) == 0
        assert "PASS" in capsys.readouterr().out
        assert main(["profile", "--budget", "1e12"]) == 1
        assert "FAIL" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["profile", "--budget", "0"])
