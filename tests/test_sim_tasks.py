"""Tests for the cooperative multiprogramming layer."""

import pytest

from repro.apps.grep import grep
from repro.apps.wc import wc
from repro.machine import Machine
from repro.sim.errors import InvalidArgumentError
from repro.sim.tasks import (
    EventScheduler,
    RoundRobin,
    Task,
    grep_task,
    make_task,
    reader_task,
    reader_task_async,
    wc_task,
)
from repro.sim.units import PAGE_SIZE

NEEDLE = b"XNEEDLEX"


def _machine(cache_pages=128):
    machine = Machine.unix_utilities(cache_pages=cache_pages, seed=901)
    machine.boot()
    return machine


class TestTaskMechanics:
    def test_task_runs_to_completion(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1)
        task = Task("r", reader_task(machine.kernel, "/mnt/ext2/f"))
        while task.step(machine.kernel):
            pass
        assert task.done
        assert task.stats.steps > 1
        assert task.stats.virtual_time > 0

    def test_task_result_captured(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1)
        task = Task("wc", wc_task(machine.kernel, "/mnt/ext2/f"))
        while task.step(machine.kernel):
            pass
        reference = wc(machine.kernel, "/mnt/ext2/f")
        assert task.stats.result == (reference.lines, reference.words,
                                     reference.chars)

    def test_step_after_done_is_noop(self):
        machine = _machine()
        machine.ext2.create_text_file("f", PAGE_SIZE, seed=1)
        task = Task("r", reader_task(machine.kernel, "/mnt/ext2/f"))
        while task.step(machine.kernel):
            pass
        assert task.step(machine.kernel) is False

    def test_make_task(self):
        machine = _machine()
        machine.ext2.create_text_file("f", PAGE_SIZE, seed=1)
        task = make_task("r", lambda: reader_task(machine.kernel,
                                                  "/mnt/ext2/f"))
        assert task.name == "r"


class TestRoundRobin:
    def test_needs_tasks(self):
        machine = _machine()
        with pytest.raises(InvalidArgumentError):
            RoundRobin(machine.kernel, [])

    def test_duplicate_names_rejected(self):
        machine = _machine()
        machine.ext2.create_text_file("f", PAGE_SIZE, seed=1)
        tasks = [Task("x", reader_task(machine.kernel, "/mnt/ext2/f")),
                 Task("x", reader_task(machine.kernel, "/mnt/ext2/f"))]
        with pytest.raises(InvalidArgumentError):
            RoundRobin(machine.kernel, tasks)

    def test_interleaves_and_finishes_all(self):
        machine = _machine()
        for name in ("a", "b", "c"):
            machine.ext2.create_text_file(f"{name}.txt", 16 * PAGE_SIZE,
                                          seed=ord(name))
        tasks = [Task(name, reader_task(machine.kernel,
                                        f"/mnt/ext2/{name}.txt"))
                 for name in ("a", "b", "c")]
        stats = RoundRobin(machine.kernel, tasks).run()
        assert set(stats) == {"a", "b", "c"}
        assert all(s.finished_at is not None for s in stats.values())

    def test_per_task_accounting_sums_to_total(self):
        machine = _machine()
        for name in ("a", "b"):
            machine.ext2.create_text_file(f"{name}.txt", 32 * PAGE_SIZE,
                                          seed=ord(name))
        k = machine.kernel
        tasks = [Task(name, wc_task(k, f"/mnt/ext2/{name}.txt"))
                 for name in ("a", "b")]
        with k.process() as run:
            stats = RoundRobin(k, tasks).run()
        per_task_time = sum(s.virtual_time for s in stats.values())
        assert per_task_time == pytest.approx(run.elapsed, rel=1e-9)
        per_task_faults = sum(s.hard_faults for s in stats.values())
        assert per_task_faults == run.hard_faults

    def test_round_limit(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 64 * PAGE_SIZE, seed=1)
        task = Task("r", reader_task(machine.kernel, "/mnt/ext2/f",
                                     bufsize=PAGE_SIZE))
        with pytest.raises(RuntimeError):
            RoundRobin(machine.kernel, [task]).run(max_rounds=3)

    def test_finished_at_is_absolute_elapsed_is_relative(self):
        """finished_at is absolute virtual time (comparable to
        clock.now); elapsed is the distance from scheduler start."""
        machine = _machine()
        machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1)
        k = machine.kernel
        k.charge_cpu(1.0)  # scheduler starts at a nonzero clock
        start = k.clock.now
        task = Task("r", reader_task(k, "/mnt/ext2/f"))
        stats = RoundRobin(k, [task]).run()["r"]
        assert stats.finished_at == k.clock.now
        assert stats.elapsed == pytest.approx(k.clock.now - start)
        assert stats.finished_at > 1.0 > stats.elapsed
        assert stats.started_at is not None
        assert start <= stats.started_at <= stats.finished_at


class TestEventSchedulerBasics:
    """Scheduler mechanics; engine-level behaviour lives in
    test_sim_engine.py."""

    def test_needs_tasks(self):
        machine = _machine()
        with pytest.raises(InvalidArgumentError):
            EventScheduler(machine.kernel, [])

    def test_duplicate_names_rejected(self):
        machine = _machine()
        machine.ext2.create_text_file("f", PAGE_SIZE, seed=1)
        tasks = [Task("x", reader_task_async(machine.kernel, "/mnt/ext2/f")),
                 Task("x", reader_task_async(machine.kernel, "/mnt/ext2/f"))]
        with pytest.raises(InvalidArgumentError):
            EventScheduler(machine.kernel, tasks)

    def test_plain_sync_tasks_also_run(self):
        """Tasks that only yield None (the RoundRobin contract) work
        unchanged under the event scheduler."""
        machine = _machine()
        machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1)
        task = Task("r", reader_task(machine.kernel, "/mnt/ext2/f"))
        stats = EventScheduler(machine.kernel, [task]).run()
        assert task.done
        assert stats["r"].finished_at == machine.kernel.clock.now

    def test_bad_yield_rejected(self):
        machine = _machine()

        def bad():
            yield "not a future"

        with pytest.raises(InvalidArgumentError):
            EventScheduler(machine.kernel, [Task("bad", bad())]).run()

    def test_step_limit(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 64 * PAGE_SIZE, seed=1)
        task = Task("r", reader_task_async(machine.kernel, "/mnt/ext2/f",
                                           bufsize=PAGE_SIZE))
        with pytest.raises(RuntimeError):
            EventScheduler(machine.kernel, [task]).run(max_steps=3)

    def test_wait_time_accounted_for_blocked_task(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 16 * PAGE_SIZE, seed=1)
        task = Task("r", reader_task_async(machine.kernel, "/mnt/ext2/f"))
        stats = EventScheduler(machine.kernel, [task]).run()["r"]
        assert stats.io_waits > 0
        assert stats.wait_time > 0.0
        assert stats.wait_time < stats.finished_at

    def test_per_task_accounting_sums_to_total(self):
        """Solo run: all elapsed time is attributed to the one task
        (its execution slices plus its I/O waits)."""
        machine = _machine()
        machine.ext2.create_text_file("f", 32 * PAGE_SIZE, seed=1)
        k = machine.kernel
        task = Task("r", reader_task_async(k, "/mnt/ext2/f"))
        with k.process() as run:
            stats = EventScheduler(k, [task]).run()["r"]
        assert stats.virtual_time + stats.wait_time == pytest.approx(
            run.elapsed, rel=1e-9)


class TestGrepTask:
    def test_finds_match_across_chunk_boundary(self):
        machine = _machine()
        bufsize = 8 * 1024
        # plant the needle straddling a chunk boundary
        offset = bufsize - 3
        machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1,
                                      plants={offset: NEEDLE})
        task = Task("g", grep_task(machine.kernel, "/mnt/ext2/f", NEEDLE,
                                   bufsize=bufsize))
        while task.step(machine.kernel):
            pass
        assert task.stats.result == offset

    def test_no_match_returns_none(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 4 * PAGE_SIZE, seed=1)
        task = Task("g", grep_task(machine.kernel, "/mnt/ext2/f", NEEDLE))
        while task.step(machine.kernel):
            pass
        assert task.stats.result is None

    def test_sleds_task_agrees_with_app(self):
        machine = _machine(cache_pages=32)
        machine.ext2.create_text_file("f", 64 * PAGE_SIZE, seed=2,
                                      plants={200_000: NEEDLE})
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        task = Task("g", grep_task(k, "/mnt/ext2/f", NEEDLE,
                                   use_sleds=True))
        while task.step(k):
            pass
        reference = grep(k, "/mnt/ext2/f", NEEDLE, use_sleds=True,
                         first_match_only=True)
        line = reference.matches[0]
        assert line.offset <= task.stats.result < line.offset + len(
            line.line) + 1


class TestBetterCitizen:
    def test_concurrent_sleds_scans_reduce_system_load(self):
        """The extH mechanism at unit-test scale."""
        def run(use_sleds):
            machine = Machine.unix_utilities(cache_pages=128, seed=902)
            machine.boot()
            k = machine.kernel
            size = 96 * PAGE_SIZE  # each file ~3/4 of the cache
            machine.ext2.create_text_file("a.txt", size, seed=1)
            machine.ext2.create_text_file("b.txt", size, seed=2)
            k.warm_file("/mnt/ext2/a.txt")
            k.warm_file("/mnt/ext2/b.txt")
            before = k.counters.pages_read
            tasks = [Task("a", wc_task(k, "/mnt/ext2/a.txt",
                                       use_sleds=use_sleds)),
                     Task("b", wc_task(k, "/mnt/ext2/b.txt",
                                       use_sleds=use_sleds))]
            RoundRobin(k, tasks).run()
            return k.counters.pages_read - before

        assert run(True) < run(False)
