"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.plotting import Series, ascii_chart, chart_result
from repro.bench.report import ExperimentResult


class TestSeries:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Series("s", (1, 2), (1,))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Series("s", (), ())


class TestAsciiChart:
    def test_empty(self):
        assert ascii_chart([]) == "(no series)"

    def test_too_small(self):
        with pytest.raises(ValueError):
            ascii_chart([Series("s", (1, 2), (1, 2))], width=4, height=2)

    def test_contains_glyphs_axes_legend(self):
        text = ascii_chart([Series("ratio", (0, 50, 100), (1, 5, 2))],
                           width=40, height=10, x_label="MB")
        assert "*" in text
        assert "| " in text or "|*" in text
        assert "MB" in text
        assert "ratio" in text

    def test_multiple_series_distinct_glyphs(self):
        text = ascii_chart([
            Series("a", (0, 1), (0, 1)),
            Series("b", (0, 1), (1, 0)),
        ], width=20, height=8)
        assert "*" in text and "+" in text

    def test_peak_lands_high(self):
        """The peak of a spiky series must appear on the top grid row."""
        text = ascii_chart([Series("s", (0, 1, 2), (0, 10, 0))],
                           width=30, height=10)
        rows = [line for line in text.splitlines() if "|" in line]
        top_data_row = rows[0].split("|", 1)[1]
        assert "*" in top_data_row

    def test_constant_series_does_not_crash(self):
        text = ascii_chart([Series("flat", (0, 1, 2), (5, 5, 5))],
                           width=20, height=8)
        assert "*" in text


class TestChartResult:
    def _result(self):
        result = ExperimentResult("figX", "demo", columns=["MB", "speedup",
                                                           "±", "label"])
        result.add_row(8, 1.0, 0.1, "a")
        result.add_row(64, 4.5, 0.2, "b")
        result.add_row(128, 1.4, 0.3, "c")
        return result

    def test_charts_numeric_columns_only(self):
        text = chart_result(self._result())
        assert "speedup" in text
        assert "label" not in text.splitlines()[-1]

    def test_skips_error_bar_columns(self):
        text = chart_result(self._result())
        legend = text.splitlines()[-1]
        assert "±" not in legend

    def test_empty_result(self):
        empty = ExperimentResult("x", "t", columns=["a", "b"])
        assert chart_result(empty) == "(no rows to chart)"

    def test_no_numeric_series(self):
        result = ExperimentResult("x", "t", columns=["name", "verdict"])
        result.add_row("a", "ok")
        result.add_row("b", "ok")
        assert chart_result(result) == "(no numeric series to chart)"

    def test_explicit_columns(self):
        text = chart_result(self._result(), x_column="MB",
                            y_columns=["speedup"])
        assert "speedup" in text
