"""Property tests: the incremental, stamp-cached FSLEDS_GET path is
bit-identical to the paper's literal full-page walk.

For ext2- (flat and zone-aware), NFS- (server SLEDs + server cache), and
HSM-backed files, a randomized interleaving of reads, writes, drops,
migrations, and repeated ``get_sleds`` calls must never produce a vector
that differs from :func:`build_sled_vector_full_walk` recomputed from
scratch at the same instant — whether the kernel answered from its
generation-stamped cache or rebuilt via ``span_estimates``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_sled_vector_full_walk
from repro.devices.autochanger import Autochanger
from repro.devices.disk import DiskDevice, Zone
from repro.devices.network import NfsDevice
from repro.devices.tape import TapeCartridge, TapeDevice
from repro.fs.filesystem import Ext2Like
from repro.fs.hsmfs import HsmFs
from repro.fs.nfs import NfsLike
from repro.kernel.ioctl import FSLEDS_FILL
from repro.kernel.kernel import Kernel
from repro.sim.rng import RngStreams
from repro.sim.units import KB, MB, PAGE_SIZE

import numpy as np

FILE_PAGES = 24
FILE_SIZE = FILE_PAGES * PAGE_SIZE - 700  # last page partial


def _fill_table(kernel, fs) -> None:
    """Hand-rolled FSLEDS_FILL: one distinct row per device key so every
    level boundary is visible in the vector."""
    entries = {"memory": (1e-7, 48 * MB)}
    for i, key in enumerate(sorted(fs.device_table())):
        entries[key] = (0.004 * (i + 1), (9 - i) * MB)
    entries.update(fs.static_levels())
    kernel.ioctl(-1, FSLEDS_FILL, entries)


def _ext2_world(zone_aware: bool):
    rng = RngStreams(7)
    kernel = Kernel(cache_pages=10, rng=rng)
    zones = (Zone(0.0, 8.6 * MB), Zone(0.3, 7.0 * MB), Zone(0.7, 5.2 * MB))
    disk = DiskDevice(name="d", zones=zones, rng=np.random.default_rng(3))
    # gap_pages forces multi-extent layouts so extents_in() is exercised
    fs = Ext2Like(disk, name="ext2", zone_aware=zone_aware,
                  max_extent_pages=7, gap_pages=3)
    kernel.mount("/", fs)
    fs.create_file("f", FILE_SIZE)
    _fill_table(kernel, fs)
    return kernel, fs, "/f"


def _nfs_world():
    rng = RngStreams(11)
    kernel = Kernel(cache_pages=10, rng=rng)
    device = NfsDevice(name="nfs", server_cache_bytes=512 * KB,
                       rng=np.random.default_rng(5))
    fs = NfsLike(device, name="nfs", server_sleds=True)
    kernel.mount("/", fs)
    fs.create_file("f", FILE_SIZE)
    _fill_table(kernel, fs)
    return kernel, fs, "/f"


def _hsm_world():
    rng = RngStreams(13)
    kernel = Kernel(cache_pages=10, rng=rng)
    drives = [TapeDevice(name=f"t{i}", rng=np.random.default_rng(20 + i))
              for i in range(2)]
    carts = [TapeCartridge(label=f"V{i}") for i in range(3)]
    changer = Autochanger(drives, carts, rng=np.random.default_rng(9))
    fs = HsmFs(changer, stage_device=DiskDevice(name="stage"),
               stage_pages=12)
    kernel.mount("/", fs)
    fs.create_tape_file("f", FILE_SIZE, "V1")
    _fill_table(kernel, fs)
    return kernel, fs, "/f"


_WORLDS = {
    "ext2": lambda: _ext2_world(False),
    "ext2-zones": lambda: _ext2_world(True),
    "nfs": _nfs_world,
    "hsm": _hsm_world,
}

# (op, page-granular offset slot, length slot); interpretation per op
_ops = st.lists(
    st.tuples(st.sampled_from(["read", "write", "drop_page",
                               "invalidate_inode", "get", "migrate"]),
              st.integers(0, FILE_PAGES - 1),
              st.integers(1, 6)),
    min_size=1, max_size=14)


def _check(kernel, fs, fd) -> None:
    of = kernel._fd(fd)
    got = kernel.get_sleds(fd)
    expected = build_sled_vector_full_walk(
        kernel.page_cache, fs, of.inode, kernel.sleds_table)
    assert got == expected
    assert got.file_size == expected.file_size


class TestIncrementalMatchesFullWalk:
    @given(st.sampled_from(sorted(_WORLDS)), _ops)
    @settings(max_examples=40, deadline=None)
    def test_randomized_interleavings(self, world, ops):
        kernel, fs, path = _WORLDS[world]()
        fd = kernel.open(path, "r+")
        inode = kernel._fd(fd).inode
        for op, slot, span in ops:
            if op == "read":
                kernel.pread(fd, slot * PAGE_SIZE, span * PAGE_SIZE)
            elif op == "write":
                # stay within the file for HSM (tape homes are sized at
                # placement); let local/NFS files grow past the end
                end = (slot + span) * PAGE_SIZE
                if isinstance(fs, HsmFs):
                    end = min(end, inode.size)
                nbytes = end - slot * PAGE_SIZE
                if nbytes > 0:
                    kernel.pwrite(fd, slot * PAGE_SIZE, b"x" * nbytes)
            elif op == "drop_page":
                kernel.page_cache.invalidate((inode.id, slot))
            elif op == "invalidate_inode":
                kernel.page_cache.invalidate_inode(inode.id)
            elif op == "migrate" and isinstance(fs, HsmFs):
                kernel.sync()  # dirty pages must not outlive the stage
                fs.migrate_to_tape(inode)
            elif op == "get":
                kernel.get_sleds(fd)  # may be served from the stamp cache
            _check(kernel, fs, fd)
        # back-to-back fetches with no interleaving op: the second comes
        # from the stamp cache and must still match a from-scratch walk
        before = kernel.counters.sleds_cache_hits
        _check(kernel, fs, fd)
        _check(kernel, fs, fd)
        assert kernel.counters.sleds_cache_hits > before
