"""Property tests: the three residency backends are interchangeable.

``RunResidency`` (interval runs), ``BitmapResidency`` (numpy), and
``SetResidency`` (the pre-PR-7 reference) must answer every query
identically under any legal update sequence — that is what lets
:class:`~repro.machine.MachineConfig` swap them without perturbing a
single virtual-time result.  A pure-python model (dict of sets) provides
the ground truth; a second test drives whole :class:`PageCache`
instances, one per backend, through an identical churn script and
demands identical observable state (residency, runs, counts, bitmaps,
generations, eviction stats).
"""

from __future__ import annotations

import random

import pytest

from repro.cache.page_cache import PageCache
from repro.cache.residency import RESIDENCY_KINDS, make_residency

SEEDS = range(6)
OPS = 600
INODES = (1, 2, 7)
MAX_PAGE = 96


def _check_against_model(backends, model):
    """Every backend answers every query exactly like the model."""
    npages_probes = (0, 1, MAX_PAGE // 3, MAX_PAGE, MAX_PAGE + 10)
    for index in backends:
        assert set(index.inodes()) == {i for i, pages in model.items()
                                       if pages}
        for inode_id in INODES:
            pages = model.get(inode_id, set())
            assert index.pages(inode_id) == frozenset(pages)
            for npages in npages_probes:
                clipped = sorted(p for p in pages if p < npages)
                runs: list[tuple[int, int]] = []
                for page in clipped:
                    if runs and runs[-1][1] == page:
                        runs[-1] = (runs[-1][0], page + 1)
                    else:
                        runs.append((page, page + 1))
                assert index.runs(inode_id, npages) == runs
                assert index.count(inode_id, npages) == len(clipped)
                assert index.bitmap(inode_id, npages) == [
                    p in pages for p in range(npages)]


@pytest.mark.parametrize("seed", SEEDS)
def test_backends_match_model(seed):
    assert set(RESIDENCY_KINDS) == {"runs", "bitmap", "sets"}
    rng = random.Random(seed)
    backends = [make_residency(kind) for kind in RESIDENCY_KINDS]
    model: dict[int, set[int]] = {}

    for op in range(OPS):
        roll = rng.random()
        inode_id = rng.choice(INODES)
        pages = model.setdefault(inode_id, set())
        if roll < 0.55:
            # sequential bias: extend the trailing run half the time
            page = (max(pages) + 1 if pages and rng.random() < 0.5
                    else rng.randrange(MAX_PAGE))
            if page not in pages and page < MAX_PAGE:
                pages.add(page)
                for index in backends:
                    index.add(inode_id, page)
        elif roll < 0.85:
            if pages:
                page = rng.choice(sorted(pages))
                pages.discard(page)
                for index in backends:
                    index.discard(inode_id, page)
        elif roll < 0.95:
            expected = sorted(pages)
            pages.clear()
            for index in backends:
                assert list(index.pop_inode(inode_id)) == expected
        else:
            model = {}
            for index in backends:
                index.clear()
        if op % 40 == 0:
            _check_against_model(backends, model)

    _check_against_model(backends, model)


@pytest.mark.parametrize("seed", SEEDS)
def test_page_caches_agree_across_backends(seed):
    """Whole caches on different backends stay observably identical."""
    rng = random.Random(seed)
    caches = [PageCache(48, policy="lru", residency=kind)
              for kind in RESIDENCY_KINDS]

    for _ in range(OPS):
        roll = rng.random()
        inode_id = rng.choice(INODES)
        page = rng.randrange(MAX_PAGE)
        key = (inode_id, page)
        if roll < 0.55:
            results = {cache.insert(key) if key not in cache
                       else cache.access(key) for cache in caches}
            assert len(results) == 1  # same hit/miss/evictee everywhere
        elif roll < 0.70:
            assert len({cache.access(key) for cache in caches}) == 1
        elif roll < 0.80:
            assert len({cache.invalidate(key) for cache in caches}) == 1
        elif roll < 0.90:
            assert len({cache.invalidate_inode(inode_id)
                        for cache in caches}) == 1
        elif roll < 0.95:
            assert len({cache.pin(key) for cache in caches}) == 1
        else:
            assert len({cache.unpin(key) for cache in caches}) == 1

    reference = caches[0]
    for cache in caches[1:]:
        assert len(cache) == len(reference)
        assert cache.stats.hits == reference.stats.hits
        assert cache.stats.misses == reference.stats.misses
        assert cache.stats.evictions == reference.stats.evictions
        for inode_id in INODES:
            assert (cache.resident_set(inode_id)
                    == reference.resident_set(inode_id))
            assert (cache.resident_runs(inode_id, MAX_PAGE)
                    == reference.resident_runs(inode_id, MAX_PAGE))
            assert (cache.resident_pages(inode_id, MAX_PAGE)
                    == reference.resident_pages(inode_id, MAX_PAGE))
            assert (cache.resident_count(inode_id, MAX_PAGE)
                    == reference.resident_count(inode_id, MAX_PAGE))
            assert (cache.generation(inode_id)
                    == reference.generation(inode_id))
