"""Tests for the result-comparison (regression detection) tool."""

import pytest

from repro.bench.compare import compare_dirs, compare_files, main


def _write(path, header, rows):
    lines = [",".join(header)]
    lines += [",".join(str(c) for c in row) for row in rows]
    path.write_text("\n".join(lines) + "\n")


class TestCompareFiles:
    def test_identical_is_clean(self, tmp_path):
        a = tmp_path / "fig7.csv"
        b = tmp_path / "fig7_new.csv"
        for path in (a, b):
            _write(path, ["MB", "speedup"], [[8, 0.91], [64, 2.5]])
        comparison = compare_files(a, b)
        assert comparison.clean
        assert "no drift" in comparison.summary()

    def test_within_tolerance_is_clean(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        _write(a, ["MB", "speedup"], [[64, 2.0]])
        _write(b, ["MB", "speedup"], [[64, 2.2]])
        assert compare_files(a, b, rtol=0.25).clean

    def test_drift_detected(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        _write(a, ["MB", "speedup"], [[64, 2.0]])
        _write(b, ["MB", "speedup"], [[64, 3.5]])
        comparison = compare_files(a, b, rtol=0.25)
        assert not comparison.clean
        assert comparison.drifts[0].column == "speedup"
        assert comparison.drifts[0].relative == pytest.approx(0.75)

    def test_non_numeric_change_is_shape_change(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        _write(a, ["mode", "t"], [["with", 1.0]])
        _write(b, ["mode", "t"], [["without", 1.0]])
        comparison = compare_files(a, b)
        assert comparison.shape_changes

    def test_column_change_detected(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        _write(a, ["MB", "speedup"], [[64, 2.0]])
        _write(b, ["MB", "ratio"], [[64, 2.0]])
        assert compare_files(a, b).shape_changes

    def test_row_count_change_detected(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        _write(a, ["MB", "speedup"], [[64, 2.0], [96, 1.5]])
        _write(b, ["MB", "speedup"], [[64, 2.0]])
        assert compare_files(a, b).shape_changes


class TestCompareDirs:
    def test_missing_and_added(self, tmp_path):
        old = tmp_path / "old"
        new = tmp_path / "new"
        old.mkdir()
        new.mkdir()
        _write(old / "fig7.csv", ["MB"], [[8]])
        _write(new / "fig9.csv", ["MB"], [[8]])
        comparison = compare_dirs(old, new)
        assert comparison.missing == ["fig7.csv"]
        assert comparison.added == ["fig9.csv"]
        assert not comparison.clean

    def test_clean_dirs(self, tmp_path):
        old = tmp_path / "old"
        new = tmp_path / "new"
        old.mkdir()
        new.mkdir()
        for base in (old, new):
            _write(base / "fig7.csv", ["MB", "s"], [[8, 1.0]])
        assert compare_dirs(old, new).clean


class TestCliEntry:
    def test_exit_codes(self, tmp_path, capsys):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        _write(a, ["MB", "s"], [[8, 1.0]])
        _write(b, ["MB", "s"], [[8, 1.0]])
        assert main([str(a), str(b)]) == 0
        _write(b, ["MB", "s"], [[8, 9.0]])
        assert main([str(a), str(b)]) == 1
        assert "->" in capsys.readouterr().out
