"""Conformance of the public library API to the paper's Table 1.

Table 1 defines the library surface::

    function                    arguments                              returns
    sleds_pick_init             fd, preferred buffer size              buffer size
    sleds_pick_next_read        fd, (buffer size, record flag)         read location, size
    sleds_pick_finish           fd                                     (none)
    sleds_total_delivery_time   fd, attack plan                        estimated delivery time

(our calls take the kernel as the explicit first argument — the C library
reached it implicitly through the process's kernel.)
"""

import inspect

import pytest

from repro.core import (
    SLEDS_BEST,
    SLEDS_LINEAR,
    sleds_pick_finish,
    sleds_pick_init,
    sleds_pick_next_read,
    sleds_total_delivery_time,
)
from repro.machine import Machine
from repro.sim.units import PAGE_SIZE


class TestTable1Signatures:
    def test_pick_init_signature(self):
        params = list(inspect.signature(sleds_pick_init).parameters)
        assert params[:3] == ["kernel", "fd", "preferred_bufsize"]
        assert "record_mode" in params  # the record flag
        assert "separator" in params    # "the character used to identify
        #                                  record boundaries"

    def test_pick_next_read_signature(self):
        params = list(inspect.signature(sleds_pick_next_read).parameters)
        assert params == ["kernel", "fd"]

    def test_pick_finish_signature(self):
        params = list(inspect.signature(sleds_pick_finish).parameters)
        assert params == ["kernel", "fd"]

    def test_total_delivery_time_signature(self):
        params = list(inspect.signature(sleds_total_delivery_time).parameters)
        assert params[:2] == ["kernel", "fd"]
        assert "attack_plan" in params

    def test_attack_plan_constants(self):
        assert SLEDS_LINEAR == "SLEDS_LINEAR"
        assert SLEDS_BEST == "SLEDS_BEST"


class TestTable1ReturnValues:
    @pytest.fixture
    def ready(self):
        machine = Machine.unix_utilities(cache_pages=64, seed=401)
        machine.boot()
        machine.ext2.create_text_file("f", 4 * PAGE_SIZE, seed=1)
        kernel = machine.kernel
        fd = kernel.open("/mnt/ext2/f")
        yield kernel, fd
        kernel.close(fd)

    def test_init_returns_buffer_size(self, ready):
        kernel, fd = ready
        assert sleds_pick_init(kernel, fd, 8192) == 8192
        sleds_pick_finish(kernel, fd)

    def test_next_read_returns_location_and_size(self, ready):
        kernel, fd = ready
        sleds_pick_init(kernel, fd, 8192)
        location, size = sleds_pick_next_read(kernel, fd)
        assert isinstance(location, int) and isinstance(size, int)
        assert 0 < size <= 8192
        sleds_pick_finish(kernel, fd)

    def test_finish_returns_none(self, ready):
        kernel, fd = ready
        sleds_pick_init(kernel, fd, 8192)
        assert sleds_pick_finish(kernel, fd) is None

    def test_total_delivery_time_returns_seconds(self, ready):
        kernel, fd = ready
        for plan in (SLEDS_LINEAR, SLEDS_BEST):
            estimate = sleds_total_delivery_time(kernel, fd, plan)
            assert isinstance(estimate, float)
            assert estimate > 0
