"""Shape tests for the experiment runners, at tiny scale.

These assert the *qualitative* claims of each paper figure (who wins,
where the crossover falls) using small configs so the whole file runs in
seconds; the full-resolution regeneration lives in ``benchmarks/`` and the
CLI.
"""

import pytest

from repro.bench import ablations, experiments
from repro.bench.workloads import BenchConfig

#: tiny-but-meaningful config: cache = 42/64 MB ~ 168 pages
TINY = BenchConfig(scale=64, runs=3, noise=0.02)
SIZES_SMALL = (16, 32)     # below cache
SIZES_LARGE = (64, 96)     # above cache
SIZES_MIX = SIZES_SMALL + SIZES_LARGE


class TestTables:
    def test_table2_rows(self):
        result = experiments.run_table2(TINY)
        assert set(result.column("level")) == {
            "memory", "ext2", "iso9660", "nfs"}

    def test_table3_rows(self):
        result = experiments.run_table3(TINY)
        assert set(result.column("level")) == {"memory", "ext2"}

    def test_table4_rows(self):
        result = experiments.run_table4(TINY)
        apps = result.column("application")
        assert "grep" in apps and "fimgbin" in apps


class TestFig3:
    def test_pathology_demonstrated(self):
        result = experiments.run_fig3(TINY)
        second_pass = [row for row in result.rows if row[0] == 2]
        assert all(row[3] == "FAULT" for row in second_pass)
        assert "SLEDs order = 2/5" in result.notes[0]


class TestWcSweeps:
    def test_fig7_crossover_at_cache_size(self):
        result = experiments.run_fig7(TINY, sizes_mb=SIZES_MIX)
        speedups = dict(zip(result.column("MB"), result.column("speedup")))
        # below the cache: no real benefit; above: SLEDs wins clearly
        assert speedups[16] < 1.3
        assert speedups[64] > 1.5
        assert speedups[96] > 1.3

    def test_fig8_derived_from_same_sweep(self):
        fig7 = experiments.run_fig7(TINY, sizes_mb=SIZES_MIX)
        fig8 = experiments.run_fig8(TINY, sizes_mb=SIZES_MIX)
        assert fig8.column("speedup") == fig7.column("speedup")

    def test_fig9_fault_reduction_above_cache(self):
        result = experiments.run_fig9(TINY, sizes_mb=SIZES_MIX)
        rows = {row[0]: row for row in result.rows}
        assert rows[16][1] == 0          # fully cached: no faults at all
        assert rows[96][1] > 0
        assert rows[96][3] > 25          # >25% fault reduction with SLEDs


class TestGrepSweeps:
    def test_fig10_constant_gain_above_cache(self):
        result = experiments.run_fig10(TINY, sizes_mb=(24, 64, 96))
        gains = dict(zip(result.column("MB"), result.column("gain s")))
        assert gains[24] <= 0.5          # CPU overhead below cache size
        assert gains[64] > 1.0
        # the gain is roughly constant (cache fill time), not growing
        assert abs(gains[96] - gains[64]) < 0.7 * max(gains[64], 1e-9)

    def test_fig11_with_sleds_stabler(self):
        result = experiments.run_fig11(TINY, sizes_mb=(96,))
        row = result.rows[0]
        without_mean, without_ci = row[1], row[2]
        with_mean, with_ci = row[3], row[4]
        assert with_mean < without_mean

    def test_fig12_speedup_above_one_past_cache(self):
        result = experiments.run_fig12(TINY, sizes_mb=(96,))
        assert result.column("speedup")[0] > 1.0

    def test_fig13_cdf_separation(self):
        result = experiments.run_fig13(TINY, paper_mb=64, trials=12)
        med = [row for row in result.rows if row[0] == 50][0]
        assert med[2] < med[1]  # with-SLEDs median much lower


class TestLheaSweeps:
    def test_fig14_gains_above_cache(self):
        result = experiments.run_fig14(TINY, sizes_mb=(16, 64))
        rows = {row[0]: row for row in result.rows}
        assert abs(rows[16][5]) < 5       # below cache: no time gain
        assert rows[64][5] > 8            # above: >8% elapsed-time gain
        assert rows[64][6] > 20           # and >20% fewer faults

    def test_fig15_sixteen_x_beats_four_x(self):
        result = experiments.run_fig15(TINY, sizes_mb=(64,))
        gains = {row[1]: row[4] for row in result.rows}
        assert gains[16] >= gains[4] > 0


class TestExtensions:
    def test_extA_hsm_speedup(self):
        result = ablations.run_extA(TINY, paper_mb=64)
        t_without = result.rows[0][1]
        t_with = result.rows[1][1]
        assert t_with < t_without

    def test_extB_covers_policies(self):
        result = ablations.run_extB(TINY, sizes_mb=(64,))
        assert set(result.column("policy")) == {"lru", "clock", "2q"}

    def test_extC_sweeps_refresh_cadence(self):
        result = ablations.run_extC(TINY, paper_mb=96)
        assert result.column("refresh every") == ["init only", 8, 32]
        assert all(pages > 0 for pages in result.column("device pages"))

    def test_pick_order_ablation(self):
        result = ablations.run_abl_pick_order(TINY, paper_mb=64)
        times = dict(zip(result.column("order"),
                         result.column("time s (paper-eq)")))
        assert times["sleds"] < times["linear"]
        pages = dict(zip(result.column("order"),
                         result.column("device pages")))
        assert pages["sleds"] < pages["linear"]

    def test_readahead_ablation_monotone(self):
        result = ablations.run_abl_readahead(TINY, paper_mb=32)
        times = result.column("time s (paper-eq)")
        assert times[0] > times[-1]  # 1-page clusters slowest


class TestNewExtensions:
    def test_extD_columns(self):
        result = ablations.run_extD(TINY)
        assert len(result.rows) == 4
        assert set(result.column("table")) == {"per-device", "per-zone"}

    def test_extF_flash_rows(self):
        result = ablations.run_extF(TINY, sizes_mb=(64,))
        devices = result.column("device")
        assert devices == ["disk", "flash"]
        speedups = dict(zip(devices, result.column("speedup")))
        # the disk-era win shrinks (or vanishes) on flash
        assert speedups["flash"] < speedups["disk"]

    def test_extG_hsm_dynamic_skew(self):
        result = ablations.run_extG(TINY, paper_mb=32)
        hsm_rows = [row for row in result.rows if row[0] == "hsm"]
        early = hsm_rows[0]
        # at 10% progress the dynamic estimator is skewed far worse than
        # the SLEDs estimate (the tape mount dominates the observed rate)
        assert early[2] != "-"
        assert early[2] > 3 * early[3]

    def test_abl_scheduler_elevator_wins(self):
        result = ablations.run_abl_scheduler(TINY, nfiles=24)
        times = dict(zip(result.column("scheduler"),
                         result.column("sync s (paper-eq)")))
        assert times["clook"] < times["fcfs"]
        assert times["sstf"] < times["fcfs"]

    def test_abl_fragmentation_rows(self):
        result = ablations.run_abl_fragmentation(TINY, paper_mb=64)
        speedups = dict(zip(result.column("layout"),
                            result.column("speedup")))
        # SLEDs wins on both layouts (the avoided I/O is pricier when
        # fragmented, so the aged win is at least comparable)
        assert speedups["clean"] > 1.1
        assert speedups["aged"] > 1.1

    def test_abl_aio_thrashes(self):
        result = ablations.run_abl_aio(TINY, paper_mb=64)
        times = dict(zip(result.column("approach"),
                         result.column("time s (paper-eq)")))
        assert times["SLEDs pick order"] < times["AIO, file-order consumer"]

    def test_extH_better_citizen(self):
        result = ablations.run_extH(TINY)
        pages = dict(zip(result.column("mode"),
                         result.column("total device pages")))
        assert pages["with SLEDs"] < pages["without"]

    def test_extI_fileset_batching(self):
        result = ablations.run_extI(TINY, nfiles=4, paper_mb=4)
        exchanges = dict(zip(result.column("order"),
                             result.column("cartridge exchanges")))
        assert exchanges["sleds order"] < exchanges["name order"]

    def test_extJ_anecdote(self):
        result = ablations.run_extJ(TINY, nfiles=4, paper_mb=2, trials=4)
        pages = dict(zip(result.column("strategy"),
                         result.column("device pages")))
        assert pages["cached-first"] == 0
        assert pages["naive rescan"] > 0
