"""Unit tests for the memory, disk, CD-ROM, and NFS device models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.devices.cdrom import CdromDevice
from repro.devices.disk import DiskDevice, Zone
from repro.devices.memory import MemoryDevice
from repro.devices.network import NfsDevice
from repro.sim.units import GB, KB, MB, PAGE_SIZE


def _rng():
    return np.random.default_rng(7)


class TestDeviceBase:
    def test_out_of_range_access_rejected(self):
        mem = MemoryDevice(capacity=1024)
        with pytest.raises(ValueError):
            mem.read(1000, 100)

    def test_negative_access_rejected(self):
        mem = MemoryDevice(capacity=1024)
        with pytest.raises(ValueError):
            mem.read(-1, 10)
        with pytest.raises(ValueError):
            mem.read(0, -10)

    def test_stats_accumulate(self):
        mem = MemoryDevice()
        mem.read(0, 100)
        mem.read(0, 100)
        mem.write(0, 50)
        assert mem.stats.reads == 2
        assert mem.stats.writes == 1
        assert mem.stats.bytes_read == 200
        assert mem.stats.bytes_written == 50
        assert mem.stats.busy_time > 0

    def test_describe_mentions_name(self):
        assert "memory" in MemoryDevice().describe()

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryDevice(capacity=0)


class TestMemoryDevice:
    def test_latency_plus_transfer(self):
        mem = MemoryDevice(latency=1e-6, bandwidth=1 * MB)
        assert mem.read(0, MB) == pytest.approx(1e-6 + 1.0)

    def test_write_same_cost_as_read(self):
        mem = MemoryDevice()
        assert mem.read(0, 4096) == pytest.approx(mem.write(0, 4096))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MemoryDevice(latency=-1)
        with pytest.raises(ValueError):
            MemoryDevice(bandwidth=0)


class TestDiskDevice:
    def test_sequential_cheaper_than_random(self):
        disk = DiskDevice(rng=_rng())
        disk.read(0, 64 * KB)
        sequential = disk.read(64 * KB, 64 * KB)
        random = disk.read(4 * GB, 64 * KB)
        assert sequential < random

    def test_seek_time_zero_for_same_address(self):
        disk = DiskDevice(rng=_rng())
        assert disk.seek_time(100, 100) == 0.0

    def test_seek_time_monotone_in_distance(self):
        disk = DiskDevice(rng=_rng())
        near = disk.seek_time(0, MB)
        far = disk.seek_time(0, 4 * GB)
        assert 0 < near < far <= disk.max_seek + 1e-9

    def test_outer_zone_faster(self):
        disk = DiskDevice(rng=_rng())
        assert disk.bandwidth_at(0) > disk.bandwidth_at(disk.capacity - 1)

    def test_zone_table_must_start_at_zero(self):
        with pytest.raises(ValueError):
            DiskDevice(zones=(Zone(0.1, 10 * MB),))

    def test_zone_fractions_must_increase(self):
        with pytest.raises(ValueError):
            DiskDevice(zones=(Zone(0.0, 10 * MB), Zone(0.0, 9 * MB)))

    def test_reset_state_forgets_position(self):
        disk = DiskDevice(rng=_rng())
        disk.read(GB, 4096)
        disk.reset_state()
        assert disk.head_pos == 0

    def test_nominal_latency_near_table2(self):
        disk = DiskDevice()
        assert 0.012 < disk.spec.latency < 0.025

    def test_seeks_counted_only_for_non_sequential(self):
        disk = DiskDevice(rng=_rng())
        disk.read(0, 4096)     # head parks at 0: sequential start
        disk.read(4096, 4096)  # sequential
        disk.read(GB, 4096)    # seek
        assert disk.stats.seeks == 1

    @given(st.integers(min_value=0, max_value=9 * GB - 1),
           st.integers(min_value=0, max_value=9 * GB - 1))
    def test_seek_time_symmetric_and_bounded(self, a, b):
        disk = DiskDevice(rng=_rng())
        t = disk.seek_time(a, b)
        assert t == disk.seek_time(b, a)
        assert 0 <= t <= disk.max_seek + 1e-12


class TestCdromDevice:
    def test_read_only(self):
        cd = CdromDevice(rng=_rng())
        with pytest.raises(ValueError):
            cd.write(0, 4096)

    def test_streaming_at_bandwidth(self):
        cd = CdromDevice(rng=_rng())
        cd.read(0, PAGE_SIZE)
        t = cd.read(PAGE_SIZE, MB)
        assert t == pytest.approx(MB / cd.spec.bandwidth)

    def test_random_access_pays_settle(self):
        cd = CdromDevice(rng=_rng())
        cd.read(0, PAGE_SIZE)
        t = cd.read(400 * MB, PAGE_SIZE)
        assert t > cd.base_settle

    def test_long_jump_pays_speed_change(self):
        cd = CdromDevice(rng=_rng())
        cd.read(0, PAGE_SIZE)
        short = cd.read(8 * MB, PAGE_SIZE)
        cd.reset_state()
        cd.read(0, PAGE_SIZE)
        long = cd.read(600 * MB, PAGE_SIZE)
        assert long > short

    def test_nominal_latency_near_table2(self):
        assert 0.10 < CdromDevice().spec.latency < 0.16


class TestNfsDevice:
    def test_sequential_skips_server_disk(self):
        nfs = NfsDevice(rng=_rng())
        nfs.read(0, 64 * KB)
        t = nfs.read(64 * KB, 64 * KB)
        expected = (nfs.rtt + nfs.request_overhead
                    + 64 * KB / nfs.link_bandwidth)
        assert t == pytest.approx(expected)

    def test_random_read_pays_server_penalty(self):
        nfs = NfsDevice(rng=_rng())
        nfs.read(0, 4096)
        t = nfs.read(GB, 4096)
        assert t > nfs.rtt + nfs.request_overhead + 4096 / nfs.link_bandwidth

    def test_bandwidth_capped_by_link(self):
        nfs = NfsDevice(rng=_rng())
        t = nfs.read(0, MB)
        assert MB / t <= nfs.link_bandwidth * 1.01

    def test_nominal_latency_near_table2(self):
        assert 0.2 < NfsDevice().spec.latency < 0.35

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NfsDevice(rtt=-1)
        with pytest.raises(ValueError):
            NfsDevice(link_bandwidth=0)
