"""Property test: the multi-tenant kernel at its defaults IS the seed.

The multi-tenant refactor (sharded page cache, per-tenant working-set
limits, the fair elevator, tenant threading through tasks / faults /
telemetry) must not move a single virtual-time result when its features
are off.  Four configurations run the same workload as
``test_core_fastpath_identity.py`` — concurrent striding readers with
merge + plug, SLED vectors requested mid-stream, then a synchronous
warm re-read — and must fingerprint bit-identically to the baseline:

* the baseline itself (one shard, no limits, C-LOOK, untenanted tasks);
* the fair elevator enabled but every task untenanted — the DRR layer
  must delegate straight to its inner C-LOOK;
* per-tenant memory limits configured but no task carrying a tenant —
  the limits must never fire;
* every task assigned the *same* tenant under the default scheduler —
  tenancy labels alone must be timing-free (same-tenant requests still
  merge);
* tasks assigned *distinct* tenants with the block front off — with no
  merge stage in play, per-tenant attribution must be timing-free too.

(Distinct tenants under an active merge stage are deliberately NOT
identical: the block layer refuses to coalesce requests across tenants
so one tenant's bytes are never billed to another — that behaviour is
asserted in ``test_tenant_accounting.py``.)

The fingerprint covers the clock, its per-category charges, the fault
counters, and every per-task stat, across all four filesystem
personalities (ext2, cdrom, nfs, hsm).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.merge import BlockConfig
from repro.cache import TenantMemoryLimit
from repro.machine import Machine, MachineConfig
from repro.sim.tasks import EventScheduler, Task
from repro.sim.units import PAGE_SIZE

PROFILES = ("ext2", "cdrom", "nfs", "hsm")

BASELINE = MachineConfig()

#: (config, tenancy-mode) variants that must all match the merge-on
#: baseline; tenancy mode None = untenanted, "shared" = every task
#: under one tenant
MERGE_VARIANTS = (
    (MachineConfig(fair_elevator=True), None),
    (MachineConfig(tenant_limits={
        "t0": TenantMemoryLimit(soft_pages=64, hard_pages=128),
        "t1": TenantMemoryLimit(soft_pages=64, hard_pages=128),
    }), None),
    (MachineConfig(), "shared"),
)

MERGE_ALL = BlockConfig(merge=True, plug=True)


def _tenant_of(mode, i):
    if mode is None:
        return None
    return "t0" if mode == "shared" else f"t{i}"


def _setup(profile: str, seed: int, pages: int, config: MachineConfig):
    if profile == "hsm":
        machine = Machine.hsm(cache_pages=256, stage_pages=512,
                              seed=9000 + seed, config=config)
        machine.boot()
        machine.hsmfs.create_tape_file("f", pages * PAGE_SIZE, "VOL000")
        return machine, "/mnt/hsm/f"
    machine = Machine.unix_utilities(cache_pages=256, seed=9000 + seed,
                                     config=config)
    machine.boot()
    fs = {"ext2": machine.ext2, "cdrom": machine.cdrom,
          "nfs": machine.nfs}[profile]
    fs.create_text_file("f", pages * PAGE_SIZE, seed=seed)
    return machine, f"/mnt/{profile}/f"


def _striding_readers(kernel, path, pages, mode, readers=2,
                      chunk_pages=2):
    nchunks = max(1, pages // chunk_pages)

    def reader(start):
        fd = kernel.open(path)
        for chunk in range(start, nchunks, readers):
            kernel.get_sleds(fd)
            yield from kernel.pread_async(
                fd, chunk * chunk_pages * PAGE_SIZE, chunk_pages * PAGE_SIZE)
        kernel.close(fd)

    return [Task(f"r{i}", reader(i), tenant=_tenant_of(mode, i))
            for i in range(readers)]


def _fingerprint(machine, stats):
    kernel = machine.kernel
    counters = kernel.counters
    return (
        kernel.clock.now,
        tuple(sorted(kernel.clock.categories().items())),
        counters.hard_faults, counters.pages_read, counters.cache_hits,
        counters.readahead_pages, counters.evictions,
        tuple(sorted(
            (name, s.virtual_time, s.wait_time, s.hard_faults, s.io_waits,
             s.finished_at)
            for name, s in stats.items())),
    )


def _run(profile: str, seed: int, pages: int, config: MachineConfig,
         mode, block=MERGE_ALL):
    machine, path = _setup(profile, seed, pages, config)
    kernel = machine.kernel
    engine = kernel.attach_engine(block=block)
    tasks = _striding_readers(kernel, path, pages, mode)
    stats = EventScheduler(kernel, tasks, engine=engine).run()
    fd = kernel.open(path)
    kernel.pread(fd, 0, pages * PAGE_SIZE)
    vector = kernel.get_sleds(fd)
    kernel.close(fd)
    return _fingerprint(machine, stats), tuple(
        (sled.offset, sled.length, sled.latency, sled.bandwidth)
        for sled in vector)


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(0, 50), pages=st.integers(2, 40))
def test_multitenant_defaults_are_bit_identical_to_seed(seed, pages):
    for profile in PROFILES:
        reference = _run(profile, seed, pages, BASELINE, None)
        for config, mode in MERGE_VARIANTS:
            candidate = _run(profile, seed, pages, config, mode)
            assert candidate == reference, (
                f"{profile}: {config} (tenancy={mode}) diverged "
                f"from the single-tenant baseline")
        # distinct tenants with no block front: attribution alone must
        # not move the clock either
        plain_ref = _run(profile, seed, pages, BASELINE, None, block=None)
        plain_multi = _run(profile, seed, pages, MachineConfig(),
                           "distinct", block=None)
        assert plain_multi == plain_ref, (
            f"{profile}: distinct tenants (no block front) diverged "
            f"from the single-tenant baseline")


def test_fair_elevator_with_tenants_still_terminates_and_serves_all():
    """The non-identity corner: fair elevator + distinct tenants must
    still run to completion and read every byte (timing may differ)."""
    machine, path = _setup("ext2", 7, 24,
                           MachineConfig(fair_elevator=True))
    kernel = machine.kernel
    engine = kernel.attach_engine(block=MERGE_ALL)
    tasks = _striding_readers(kernel, path, 24, "distinct")
    stats = EventScheduler(kernel, tasks, engine=engine).run()
    assert all(s.finished_at is not None for s in stats.values())
    assert kernel.counters.pages_read >= 24
