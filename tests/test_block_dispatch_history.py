"""Tests for the DeviceQueue dispatch-history ring and plug hold records.

The forensic blame engine reconstructs queue-wait occupancy from the
dispatch history, so its invariants are load-bearing: entries appear at
dispatch time only (cancelled requests never show up, a coalesced group
appears exactly once as its union), service intervals never overlap on
one device, and the ring is bounded with an explicit drop counter.
"""

import numpy as np
import pytest

from repro.block.merge import BlockConfig
from repro.block.scheduler import DeviceQueue, make_scheduler
from repro.devices.disk import DiskDevice
from repro.machine import Machine
from repro.sim.clock import VirtualClock
from repro.sim.events import EventLoop
from repro.sim.tasks import EventScheduler, Task
from repro.sim.units import PAGE_SIZE

MERGE_ALL = BlockConfig(merge=True, plug=True)


def _queue(history=4096, seed=7):
    disk = DiskDevice(rng=np.random.default_rng(seed))
    loop = EventLoop(VirtualClock())
    return DeviceQueue(disk, loop, make_scheduler("fcfs"),
                       history=history), loop


class TestDispatchHistory:
    def test_entries_carry_provenance(self):
        queue, loop = _queue()
        queue.submit(0, PAGE_SIZE, is_write=False, label="a",
                     tenant="t0", kind="fault")
        queue.submit(8 * PAGE_SIZE, 2 * PAGE_SIZE, is_write=True,
                     label="b", kind="writeback")
        loop.run_until_idle()
        hist = queue.recent_dispatches()
        assert [d.label for d in hist] == ["a", "b"]
        assert [d.kind for d in hist] == ["fault", "writeback"]
        assert [d.tenant for d in hist] == ["t0", None]
        assert [d.is_write for d in hist] == [False, True]
        assert [d.nbytes for d in hist] == [PAGE_SIZE, 2 * PAGE_SIZE]
        assert [d.rid for d in hist] == [0, 1]
        for d in hist:
            assert d.submit_time <= d.start < d.finish
            assert set(d.to_dict()) == {
                "rid", "kind", "label", "tenant", "is_write", "nbytes",
                "submit_time", "start", "finish"}

    def test_service_intervals_never_overlap(self):
        """A device queue dispatches serially — the occupancy windows
        the blame engine integrates over must be disjoint."""
        queue, loop = _queue()
        for i in range(12):
            queue.submit(i * 16 * PAGE_SIZE, PAGE_SIZE, is_write=False,
                         tenant=f"t{i % 3}")
        loop.run_until_idle()
        hist = queue.recent_dispatches()
        assert len(hist) == 12
        for prev, nxt in zip(hist, hist[1:]):
            assert prev.finish <= nxt.start

    def test_cancelled_requests_never_appear(self):
        queue, loop = _queue()
        kept = queue.submit(0, PAGE_SIZE, is_write=False, label="kept")
        doomed = queue.submit(4 * PAGE_SIZE, PAGE_SIZE, is_write=False,
                              label="doomed")
        assert queue.cancel(doomed)
        loop.run_until_idle()
        assert kept.value is not None
        assert doomed.value is None
        labels = [d.label for d in queue.recent_dispatches()]
        assert labels == ["kept"]

    def test_failed_requests_never_appear(self):
        """A dispatch that fails raises before any device time is
        charged — it occupied the head for zero seconds, so it must
        not show up as occupancy (the survivors do)."""
        queue, loop = _queue()
        queue.device.inject_failures(1)
        bad = queue.submit(0, PAGE_SIZE, is_write=False, label="bad")
        good = queue.submit(4 * PAGE_SIZE, PAGE_SIZE, is_write=False,
                            label="good")
        loop.run_until_idle()
        assert bad.exception is not None
        assert good.value is not None
        assert [d.label for d in queue.recent_dispatches()] == ["good"]

    def test_ring_is_bounded_with_drop_counter(self):
        queue, loop = _queue(history=4)
        for i in range(10):
            queue.submit(i * 8 * PAGE_SIZE, PAGE_SIZE, is_write=False,
                         label=f"r{i}")
        loop.run_until_idle()
        hist = queue.recent_dispatches()
        assert len(hist) == 4
        assert [d.label for d in hist] == ["r6", "r7", "r8", "r9"]
        assert queue.history_dropped == 6

    def test_zero_history_disables_the_ring(self):
        queue, loop = _queue(history=0)
        queue.submit(0, PAGE_SIZE, is_write=False)
        loop.run_until_idle()
        assert queue.recent_dispatches() == ()


class TestMergedHistory:
    def _run_interleaved(self, pages=24, readers=2, chunk_pages=2):
        machine = Machine.unix_utilities(cache_pages=256, seed=9001)
        machine.boot()
        machine.ext2.create_text_file("f", pages * PAGE_SIZE, seed=1)
        kernel = machine.kernel
        engine = kernel.attach_engine(block=MERGE_ALL)
        nchunks = pages // chunk_pages

        def reader(start):
            fd = kernel.open("/mnt/ext2/f")
            for chunk in range(start, nchunks, readers):
                yield from kernel.pread_async(
                    fd, chunk * chunk_pages * PAGE_SIZE,
                    chunk_pages * PAGE_SIZE)
            kernel.close(fd)

        tasks = [Task(f"r{i}", reader(i), tenant=f"tenant{i}")
                 for i in range(readers)]
        EventScheduler(kernel, tasks, engine=engine).run()
        return machine, engine

    def test_coalesced_group_appears_once_as_union(self):
        machine, engine = self._run_interleaved()
        plug = engine.plugs()[0]
        assert plug.merged_requests > 0
        hist = engine.dispatch_histories()[machine.ext2.device.name]
        assert hist, "no dispatches recorded"
        # a coalesced group is ONE history entry (the union), so there
        # are strictly fewer dispatches than member faults
        faults = [d for d in hist if d.kind == "fault"]
        assert machine.kernel.counters.hard_faults > len(faults)
        merged = [d for d in faults if d.label.startswith("merged:")]
        assert merged, "expected union dispatch entries"
        assert all(d.nbytes > PAGE_SIZE for d in merged)
        for prev, nxt in zip(hist, hist[1:]):
            assert prev.finish <= nxt.start

    def test_hold_records_cover_dispatched_requests(self):
        machine, engine = self._run_interleaved()
        holds = engine.hold_histories()
        assert holds
        for key, hold in holds.items():
            assert hold.key == key
            assert hold.unplug_time >= hold.submit_time
            assert hold.held >= 0.0
            assert hold.members >= 1
        assert any(h.members > 1 for h in holds.values()), \
            "expected at least one coalesced hold group"

    def test_hold_keys_match_lifecycle_identity(self):
        """A hold record's key is exactly the identity of the lifecycle
        record the released request produced — that join is what blame
        attribution pivots on."""
        from repro.obs import Telemetry
        machine = Machine.unix_utilities(cache_pages=256, seed=9002)
        machine.boot()
        machine.ext2.create_text_file("f", 24 * PAGE_SIZE, seed=2)
        kernel = machine.kernel
        telemetry = Telemetry()
        telemetry.attach(kernel)
        engine = kernel.attach_engine(block=MERGE_ALL)
        nchunks = 12

        def reader(start):
            fd = kernel.open("/mnt/ext2/f")
            for chunk in range(start, nchunks, 2):
                yield from kernel.pread_async(
                    fd, chunk * 2 * PAGE_SIZE, 2 * PAGE_SIZE)
            kernel.close(fd)

        tasks = [Task(f"r{i}", reader(i)) for i in range(2)]
        EventScheduler(kernel, tasks, engine=engine).run()
        holds = engine.hold_histories()
        matched = 0
        for rec in telemetry.lifecycle.records:
            key = (rec.fs, rec.inode, rec.page, rec.cluster,
                   rec.submit_time)
            if key in holds:
                matched += 1
        assert matched == len(telemetry.lifecycle.records), \
            "every plugged fault's record should join a hold record"
