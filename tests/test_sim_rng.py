"""Unit tests for deterministic named RNG streams."""

from repro.sim.rng import RngStreams


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RngStreams(1).stream("disk")
        b = RngStreams(1).stream("disk")
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_different_names_are_independent(self):
        streams = RngStreams(1)
        a = streams.stream("disk")
        b = streams.stream("tape")
        assert list(a.integers(0, 1 << 30, 8)) != list(
            b.integers(0, 1 << 30, 8))

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("disk")
        b = RngStreams(2).stream("disk")
        assert list(a.integers(0, 1 << 30, 8)) != list(
            b.integers(0, 1 << 30, 8))

    def test_stream_is_cached(self):
        streams = RngStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_adding_stream_does_not_perturb_existing(self):
        solo = RngStreams(5)
        first_alone = list(solo.stream("a").integers(0, 100, 10))
        both = RngStreams(5)
        both.stream("b")  # created before "a" this time
        first_with_other = list(both.stream("a").integers(0, 100, 10))
        assert first_alone == first_with_other


class TestReseedFork:
    def test_reseed_restarts(self):
        streams = RngStreams(1)
        first = streams.stream("x").integers(0, 1 << 30)
        streams.reseed(1)
        assert streams.stream("x").integers(0, 1 << 30) == first

    def test_fork_is_deterministic(self):
        a = RngStreams(9).fork("run1").stream("s")
        b = RngStreams(9).fork("run1").stream("s")
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_fork_differs_from_parent(self):
        parent = RngStreams(9)
        child = parent.fork("run1")
        assert (parent.stream("s").integers(0, 1 << 30)
                != child.stream("s").integers(0, 1 << 30))
