"""Unit and property tests for kernel-side SLED vector construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.page_cache import PageCache
from repro.core.builder import (
    build_sled_vector,
    build_sled_vector_full_walk,
    page_level,
)
from repro.core.sled_table import SledTable
from repro.devices.disk import DiskDevice
from repro.fs.filesystem import Ext2Like
from repro.sim.units import MB, PAGE_SIZE

import numpy as np


def _setup(file_pages=16, cache_pages=64):
    fs = Ext2Like(DiskDevice(rng=np.random.default_rng(1)))
    inode = fs.create_file("f", file_pages * PAGE_SIZE)
    cache = PageCache(cache_pages)
    table = SledTable()
    table.fill({"memory": (1e-7, 48 * MB), "ext2": (0.018, 9 * MB)})
    return fs, inode, cache, table


class TestPageLevel:
    def test_uncached_page_uses_table_row(self):
        fs, inode, cache, table = _setup()
        latency, bandwidth = page_level(cache, fs, inode, 0, table)
        assert latency == 0.018
        assert bandwidth == 9 * MB

    def test_cached_page_is_memory(self):
        fs, inode, cache, table = _setup()
        cache.insert((inode.id, 3))
        latency, _ = page_level(cache, fs, inode, 3, table)
        assert latency == 1e-7


class TestBuildVector:
    def test_cold_file_single_sled(self):
        fs, inode, cache, table = _setup()
        vector = build_sled_vector(cache, fs, inode, table)
        assert len(vector) == 1
        assert vector[0].latency == 0.018

    def test_fully_cached_single_sled(self):
        fs, inode, cache, table = _setup()
        for page in range(inode.npages):
            cache.insert((inode.id, page))
        vector = build_sled_vector(cache, fs, inode, table)
        assert len(vector) == 1
        assert vector[0].latency == 1e-7

    def test_interleaved_residency_alternates(self):
        fs, inode, cache, table = _setup(file_pages=8)
        for page in (0, 1, 4, 5):
            cache.insert((inode.id, page))
        vector = build_sled_vector(cache, fs, inode, table)
        assert len(vector) == 4
        assert [s.latency for s in vector] == [1e-7, 0.018, 1e-7, 0.018]

    def test_last_sled_clamped_to_file_size(self):
        fs = Ext2Like(DiskDevice(rng=np.random.default_rng(1)))
        inode = fs.create_file("f", 3 * PAGE_SIZE + 100)
        cache = PageCache(16)
        table = SledTable()
        table.fill({"memory": (1e-7, 48 * MB), "ext2": (0.018, 9 * MB)})
        vector = build_sled_vector(cache, fs, inode, table)
        assert vector.file_size == 3 * PAGE_SIZE + 100
        assert vector[len(vector) - 1].end == 3 * PAGE_SIZE + 100

    def test_empty_file(self):
        fs, _, cache, table = _setup()
        inode = fs.create_file("empty", 0)
        vector = build_sled_vector(cache, fs, inode, table)
        assert len(vector) == 0

    @given(st.sets(st.integers(0, 31)), st.integers(1, 32 * PAGE_SIZE))
    @settings(max_examples=60, deadline=None)
    def test_vector_matches_residency_exactly(self, cached_pages, size):
        """For any cache state, the vector covers the file exactly and
        each byte's level matches its page's residency."""
        fs = Ext2Like(DiskDevice(rng=np.random.default_rng(1)))
        inode = fs.create_file("f", size)
        cache = PageCache(64)
        table = SledTable()
        table.fill({"memory": (1e-7, 48 * MB), "ext2": (0.018, 9 * MB)})
        for page in cached_pages:
            if page < inode.npages:
                cache.insert((inode.id, page))
        vector = build_sled_vector(cache, fs, inode, table)
        assert sum(s.length for s in vector) == size
        for page in range(inode.npages):
            sled = vector.sled_at(page * PAGE_SIZE)
            expected = 1e-7 if cache.peek((inode.id, page)) else 0.018
            assert sled.latency == expected
        # SLED boundaries sit on page boundaries (except the file end)
        for sled in vector:
            assert sled.offset % PAGE_SIZE == 0

    @given(st.sets(st.integers(0, 31)), st.integers(1, 32 * PAGE_SIZE))
    @settings(max_examples=60, deadline=None)
    def test_incremental_equals_full_walk(self, cached_pages, size):
        """The O(runs) builder and the paper's O(npages) walk are
        bit-identical for every cache state."""
        fs = Ext2Like(DiskDevice(rng=np.random.default_rng(1)))
        inode = fs.create_file("f", size)
        cache = PageCache(64)
        table = SledTable()
        table.fill({"memory": (1e-7, 48 * MB), "ext2": (0.018, 9 * MB)})
        for page in cached_pages:
            if page < inode.npages:
                cache.insert((inode.id, page))
        assert (build_sled_vector(cache, fs, inode, table)
                == build_sled_vector_full_walk(cache, fs, inode, table))

    def test_stale_residency_outside_file_ignored(self):
        """Index entries past EOF (e.g. after an external shrink) must not
        leak into the vector."""
        fs, inode, cache, table = _setup(file_pages=4)
        cache.insert((inode.id, 2))
        cache.insert((inode.id, 99))  # beyond the file
        vector = build_sled_vector(cache, fs, inode, table)
        assert sum(s.length for s in vector) == inode.size
        assert vector == build_sled_vector_full_walk(cache, fs, inode, table)


class TestSpanEstimatesContract:
    def test_default_fallback_matches_page_estimate(self):
        """The FileSystem base-class fallback (used by third-party
        filesystems that only implement page_estimate) reports runs whose
        lengths sum to npages and whose estimates are per-page exact."""
        fs, inode, _, _ = _setup(file_pages=12)
        from repro.fs.filesystem import FileSystem
        runs = FileSystem.span_estimates(fs, inode, 2, 9)
        assert sum(n for n, _ in runs) == 9
        page = 2
        for run_len, estimate in runs:
            assert run_len > 0
            for idx in range(page, page + run_len):
                assert fs.page_estimate(inode, idx) == estimate
            page += run_len

    def test_empty_span(self):
        fs, inode, _, _ = _setup()
        assert fs.span_estimates(inode, 0, 0) == []
