"""Property test: the calendar-queue loop is bit-identical to the heap loop.

The PR-7 :class:`~repro.sim.events.EventLoop` (calendar queue, eager
cancellation, ``at_now`` fast path) must preserve the exact virtual-time
semantics of the original :class:`~repro.sim.events.HeapEventLoop`:
same fired sequence (tag, timestamp, clock reading), same per-category
clock charges, same ``pending`` and ``peek_time`` at every checkpoint —
under randomized schedules with heavy same-timestamp ties, cancellations
(including at either deque end and mid-deque), reschedule-from-callback
(the at-now path), and CPU charges between steps (which strand at-now
events in the past and force the now-queue migration).

The driver replays one seeded random program against each loop; any
behavioural divergence shows up as a trace mismatch.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.events import EVENT_LOOP_KINDS, make_event_loop

SEEDS = range(10)
OPS_PER_SEED = 400

DELAYS = (0.0, 0.0, 0.001, 0.001, 0.001, 0.0025, 0.005)
CATEGORIES = ("disk", "cpu", "nfs-net", "wait")


def _drive(kind: str, seed: int) -> tuple[list, dict, int]:
    """Run one seeded random schedule; return (trace, charges, fired)."""
    rng = random.Random(seed)
    clock = VirtualClock()
    loop = make_event_loop(kind, clock)
    trace: list = []
    tags: list = []          # tag -> Event handle, in creation order
    live_tags: list[int] = []  # tags believed schedulable/cancellable

    def schedule(time: float, category: str) -> None:
        tag = len(tags)

        def callback(tag=tag):
            trace.append(("fire", tag, clock.now))
            # nested behaviour drawn from the shared rng: identical
            # across loops as long as the fired sequence is identical
            # (a divergence fails the trace comparison either way)
            roll = rng.random()
            if roll < 0.25:
                # at-now fast path: same-timestamp chain from a callback
                schedule(clock.now, rng.choice(CATEGORIES))
            elif roll < 0.35:
                # charge CPU, then schedule at the *new* now — the
                # previous now-queue (if any) is stranded in the past
                clock.advance(0.0001, "cpu")
                schedule(clock.now, rng.choice(CATEGORIES))
            elif roll < 0.45:
                schedule(clock.now + rng.choice(DELAYS),
                         rng.choice(CATEGORIES))
            elif roll < 0.55 and live_tags:
                victim = rng.choice(live_tags)
                loop.cancel(tags[victim])

        event = loop.at(time, callback, category)
        tags.append(event)
        live_tags.append(tag)
        trace.append(("at", tag, time, category))

    for op in range(OPS_PER_SEED):
        roll = rng.random()
        if roll < 0.45:
            schedule(clock.now + rng.choice(DELAYS),
                     rng.choice(CATEGORIES))
        elif roll < 0.60 and live_tags:
            # cancel anywhere: front/back of a deque or buried mid-deque
            victim = live_tags.pop(rng.randrange(len(live_tags)))
            loop.cancel(tags[victim])
            trace.append(("cancel", victim))
        elif roll < 0.70:
            # a task charging CPU between steps
            clock.advance(rng.choice((0.00005, 0.0002)), "cpu")
        else:
            loop.step()
        if op % 10 == 0:
            trace.append(("chk", loop.pending, clock.now,
                          loop.peek_time(),
                          tuple(sorted(clock.categories().items()))))

    while loop.step():
        pass
    trace.append(("end", loop.pending, clock.now, loop.peek_time()))
    return trace, clock.categories(), loop.fired


@pytest.mark.parametrize("seed", SEEDS)
def test_bucket_loop_matches_heap_loop(seed):
    assert set(EVENT_LOOP_KINDS) == {"bucket", "heap"}
    heap_trace, heap_charges, heap_fired = _drive("heap", seed)
    bucket_trace, bucket_charges, bucket_fired = _drive("bucket", seed)
    assert bucket_fired == heap_fired
    assert bucket_charges == heap_charges
    assert bucket_trace == heap_trace


def test_bucket_pending_is_exact_under_cancellation():
    """The O(1) live counter tracks schedule/cancel/fire exactly."""
    clock = VirtualClock()
    loop = make_event_loop("bucket", clock)
    events = [loop.at(0.001 * (i % 5), lambda: None) for i in range(50)]
    assert loop.pending == 50
    for event in events[::3]:
        loop.cancel(event)
        loop.cancel(event)  # double-cancel must not double-count
    cancelled = len(events[::3])
    assert loop.pending == 50 - cancelled
    fired = loop.run_until_idle()
    assert fired == 50 - cancelled
    assert loop.pending == 0


def test_bucket_compaction_sweeps_mid_deque_cancels():
    """Mid-deque cancellations trigger compaction and stay exact."""
    clock = VirtualClock()
    loop = make_event_loop("bucket", clock)
    fired_tags: list[int] = []
    events = [loop.at(0.5, (lambda i=i: fired_tags.append(i)))
              for i in range(300)]
    # cancel a mid-deque stripe (never the ends) to defeat eager unlink
    for i in range(1, 299, 2):
        loop.cancel(events[i])
    assert loop.pending == 300 - 149
    loop.run_until_idle()
    assert fired_tags == [i for i in range(300) if not (1 <= i <= 298
                                                        and i % 2 == 1)]
    assert loop.pending == 0
