"""Unit tests for the HSM filesystem: staging, estimates, migration."""

import numpy as np
import pytest

from repro.devices.autochanger import Autochanger
from repro.devices.disk import DiskDevice
from repro.devices.tape import TapeCartridge, TapeDevice
from repro.fs.hsmfs import HsmFs
from repro.hsm.migration import MigrationDaemon
from repro.sim.errors import InvalidArgumentError, NoSpaceError
from repro.sim.units import MB, PAGE_SIZE


def _hsm(stage_pages=64):
    rng = np.random.default_rng(5)
    changer = Autochanger(
        [TapeDevice(name="t0", rng=rng), TapeDevice(name="t1", rng=rng)],
        [TapeCartridge("VOL0"), TapeCartridge("VOL1")],
        rng=rng)
    return HsmFs(changer, stage_device=DiskDevice(name="stage", rng=rng),
                 stage_pages=stage_pages)


class TestPlacement:
    def test_create_tape_file(self):
        fs = _hsm()
        inode = fs.create_tape_file("a/f.dat", MB, "VOL0")
        state = fs.state_of(inode)
        assert state.cartridge_label == "VOL0"
        assert state.tape_addr == 0

    def test_sequential_tape_layout(self):
        fs = _hsm()
        fs.create_tape_file("f1", MB, "VOL0")
        inode2 = fs.create_tape_file("f2", MB, "VOL0")
        assert fs.state_of(inode2).tape_addr == MB

    def test_unplaced_inode_rejected(self):
        fs = _hsm()
        inode = fs.create_file("plain", MB)
        with pytest.raises(InvalidArgumentError):
            fs.state_of(inode)

    def test_cartridge_capacity_enforced(self):
        fs = _hsm()
        small = TapeCartridge("TINY", capacity=MB)
        fs.autochanger.shelf["TINY"] = small
        fs._tape_cursor["TINY"] = 0
        fs.create_tape_file("ok", MB, "TINY")
        with pytest.raises(NoSpaceError):
            fs.create_tape_file("over", MB, "TINY")


class TestStaging:
    def test_read_stages_pages(self):
        fs = _hsm()
        inode = fs.create_tape_file("f", 8 * PAGE_SIZE, "VOL0")
        assert fs.staged_count(inode) == 0
        fs.read_pages(inode, 0, 8)
        assert fs.staged_count(inode) == 8

    def test_staged_read_avoids_tape(self):
        fs = _hsm()
        inode = fs.create_tape_file("f", 8 * PAGE_SIZE, "VOL0")
        fs.read_pages(inode, 0, 8)
        tape_reads = sum(d.stats.reads for d in fs.autochanger.drives)
        fs.read_pages(inode, 0, 8)
        assert sum(d.stats.reads
                   for d in fs.autochanger.drives) == tape_reads

    def test_stage_lru_eviction(self):
        fs = _hsm(stage_pages=4)
        inode = fs.create_tape_file("f", 8 * PAGE_SIZE, "VOL0")
        fs.read_pages(inode, 0, 8)
        assert fs.staged_count(inode) == 4
        assert fs.is_staged(inode, 7)
        assert not fs.is_staged(inode, 0)

    def test_write_lands_in_stage(self):
        fs = _hsm()
        inode = fs.create_tape_file("f", 4 * PAGE_SIZE, "VOL0")
        fs.write_pages(inode, 0, 2)
        assert fs.is_staged(inode, 0)
        assert not fs.is_staged(inode, 3)

    def test_evict_staged(self):
        fs = _hsm()
        inode = fs.create_tape_file("f", 4 * PAGE_SIZE, "VOL0")
        fs.read_pages(inode, 0, 4)
        assert fs.evict_staged(inode) == 4
        assert fs.staged_count(inode) == 0


class TestEstimates:
    def test_staged_page_is_disk_level(self):
        fs = _hsm()
        inode = fs.create_tape_file("f", 4 * PAGE_SIZE, "VOL0")
        fs.read_pages(inode, 0, 1)
        assert fs.page_estimate(inode, 0).device_key == "hsm-disk"

    def test_unstaged_shelved_is_expensive(self):
        fs = _hsm()
        inode = fs.create_tape_file("f", 4 * PAGE_SIZE, "VOL0")
        est = fs.page_estimate(inode, 0)
        assert est.device_key == "hsm-tape-shelved"
        assert est.latency >= fs.autochanger.drives[0].load_time

    def test_mounted_cheaper_than_shelved(self):
        fs = _hsm()
        inode = fs.create_tape_file("f", 8 * PAGE_SIZE, "VOL0")
        shelved = fs.page_estimate(inode, 4).latency
        fs.read_pages(inode, 0, 1)  # mounts VOL0
        est = fs.page_estimate(inode, 4)
        assert est.device_key == "hsm-tape-mounted"
        assert est.latency < shelved

    def test_estimates_coalesce_per_region(self):
        """Adjacent unstaged pages must share one latency estimate, or the
        SLED vector fragments into per-page tape locates."""
        fs = _hsm()
        inode = fs.create_tape_file("f", 16 * PAGE_SIZE, "VOL0")
        estimates = {fs.page_estimate(inode, p).latency for p in range(16)}
        assert len(estimates) == 1

    def test_device_table_has_all_levels(self):
        table = _hsm().device_table()
        assert {"hsm-disk", "hsm-tape-mounted",
                "hsm-tape-shelved"} <= set(table)


class TestMigration:
    def test_migrate_to_tape_clears_stage(self):
        fs = _hsm()
        inode = fs.create_tape_file("f", 4 * PAGE_SIZE, "VOL0")
        fs.read_pages(inode, 0, 4)
        seconds = fs.migrate_to_tape(inode)
        assert seconds > 0
        assert fs.staged_count(inode) == 0

    def test_daemon_sweeps_cold_files(self):
        fs = _hsm()
        inode = fs.create_tape_file("dir/cold.dat", 4 * PAGE_SIZE, "VOL0")
        fs.read_pages(inode, 0, 4)
        inode.atime = 0.0
        daemon = MigrationDaemon(fs, cold_after=100.0)
        report = daemon.sweep(now=1000.0)
        assert report.migrated == ["/dir/cold.dat"]
        assert fs.staged_count(inode) == 0

    def test_daemon_spares_hot_files(self):
        fs = _hsm()
        inode = fs.create_tape_file("hot.dat", 4 * PAGE_SIZE, "VOL0")
        fs.read_pages(inode, 0, 4)
        inode.atime = 990.0
        daemon = MigrationDaemon(fs, cold_after=100.0)
        assert daemon.sweep(now=1000.0).migrated == []
        assert fs.staged_count(inode) == 4

    def test_daemon_bad_threshold(self):
        with pytest.raises(ValueError):
            MigrationDaemon(_hsm(), cold_after=-1)
