"""Property tests: the vectorised fault path is bit-identical to scalar.

The numpy fast paths (run-batched device math in ``Device.read_run``,
the kernel's ``_fault_in_batch`` dispatch, the flat-array SLED build in
``build_sled_vector``, and the deferred telemetry fan-in) promise *exact*
equality with the scalar reference code, not approximation.  Every test
here runs the same deterministic workload twice — once with
:func:`repro.devices.batch.set_enabled` forcing the vectorised path,
once forcing the scalar reference — and asserts the results match bit
for bit:

* full workloads (async striding readers + a blocking fault storm)
  across all four filesystem personalities and all three residency
  backends, fingerprinting the clock, per-category charges, fault
  counters, per-task stats, per-device stats/component totals, and the
  final SLED vector;
* the per-device batch kernels against a scalar read loop over
  randomized run layouts — durations, running stats, busy horizon,
  component totals, and rng stream alignment;
* the vectorised SLED build against the scalar fold and the paper's
  literal full walk, on residency patterns wide enough to actually take
  the array path (asserted via a spy, so the comparison can't go
  vacuous);
* the telemetry fan-in (``TelemetryBatch``) against immediate per-fault
  ``on_fault`` calls, comparing whole telemetry exports;
* the no-numpy fallback: with the batch module's numpy knocked out the
  library still runs workloads, ``read_run`` declines, and the results
  still match the vectorised ones.
"""

from __future__ import annotations

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.merge import BlockConfig
from repro.core import builder
from repro.core.builder import build_sled_vector, build_sled_vector_full_walk
from repro.devices import batch
from repro.devices.cdrom import CdromDevice
from repro.devices.disk import DiskDevice
from repro.devices.flash import FlashDevice
from repro.devices.memory import MemoryDevice
from repro.devices.network import NfsDevice
from repro.fs import inode as inode_mod
from repro.machine import Machine, MachineConfig
from repro.obs.telemetry import Telemetry
from repro.sim.tasks import EventScheduler, Task
from repro.sim.units import PAGE_SIZE

PROFILES = ("ext2", "cdrom", "nfs", "hsm")

CONFIGS = (
    MachineConfig(residency="sets", event_loop="heap"),    # pre-PR-7
    MachineConfig(residency="runs", event_loop="bucket"),  # tuned default
    MachineConfig(residency="bitmap", event_loop="bucket"),
)

MERGE_ALL = BlockConfig(merge=True, plug=True)


def _with_batch(flag, fn, *args):
    """Run ``fn(*args)`` with the vectorised path forced on/off,
    restoring the environment-driven default afterwards."""
    batch.set_enabled(flag)
    try:
        return fn(*args)
    finally:
        batch.set_enabled(None)


def _setup(profile: str, seed: int, pages: int, config: MachineConfig):
    if profile == "hsm":
        machine = Machine.hsm(cache_pages=256, stage_pages=512,
                              seed=13000 + seed, config=config)
        machine.boot()
        machine.hsmfs.create_tape_file("f", pages * PAGE_SIZE, "VOL000")
        return machine, "/mnt/hsm/f"
    machine = Machine.unix_utilities(cache_pages=256, seed=13000 + seed,
                                     config=config)
    machine.boot()
    fs = {"ext2": machine.ext2, "cdrom": machine.cdrom,
          "nfs": machine.nfs}[profile]
    fs.create_text_file("f", pages * PAGE_SIZE, seed=seed)
    return machine, f"/mnt/{profile}/f"


def _striding_readers(kernel, path, pages, readers=2, chunk_pages=2):
    nchunks = max(1, pages // chunk_pages)

    def reader(start):
        fd = kernel.open(path)
        for chunk in range(start, nchunks, readers):
            kernel.get_sleds(fd)
            yield from kernel.pread_async(
                fd, chunk * chunk_pages * PAGE_SIZE, chunk_pages * PAGE_SIZE)
        kernel.close(fd)

    return [Task(f"r{i}", reader(i)) for i in range(readers)]


def _device_state(machine):
    out = []
    for mount in sorted(machine.filesystems):
        device = machine.filesystems[mount].device
        stats = device.stats
        out.append((mount, stats.reads, stats.bytes_read, stats.busy_time,
                    stats.queue_wait_time, stats.queued_requests,
                    device.busy_until,
                    tuple(sorted(device.component_totals.items()))))
    return tuple(out)


def _fingerprint(machine, stats):
    kernel = machine.kernel
    counters = kernel.counters
    return (
        kernel.clock.now,
        tuple(sorted(kernel.clock.categories().items())),
        counters.hard_faults, counters.pages_read, counters.cache_hits,
        counters.readahead_pages, counters.evictions,
        tuple(sorted(
            (name, s.virtual_time, s.wait_time, s.hard_faults, s.io_waits,
             s.finished_at)
            for name, s in stats.items())),
        _device_state(machine),
    )


def _run(profile: str, seed: int, pages: int, config: MachineConfig):
    machine, path = _setup(profile, seed, pages, config)
    kernel = machine.kernel
    engine = kernel.attach_engine(block=MERGE_ALL)
    tasks = _striding_readers(kernel, path, pages)
    stats = EventScheduler(kernel, tasks, engine=engine).run()
    # blocking storm phase: sequential re-read sweeps drive the
    # synchronous fault path (Kernel._fault_in / _fault_in_batch)
    fd = kernel.open(path)
    chunk = 3 * PAGE_SIZE
    for _ in range(2):
        offset = 0
        while offset < pages * PAGE_SIZE:
            kernel.pread(fd, offset, chunk)
            offset += chunk
    vector = kernel.get_sleds(fd)
    kernel.close(fd)
    return _fingerprint(machine, stats), tuple(
        (sled.offset, sled.length, sled.latency, sled.bandwidth)
        for sled in vector)


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(0, 50), pages=st.integers(2, 40))
def test_vectorised_workloads_bit_identical(seed, pages):
    for profile in PROFILES:
        for config in CONFIGS:
            scalar = _with_batch(False, _run, profile, seed, pages, config)
            vector = _with_batch(True, _run, profile, seed, pages, config)
            assert vector == scalar, (
                f"{profile}/{config.residency}+{config.event_loop}: "
                f"vectorised fault path diverged from the scalar reference")


DEVICE_FACTORIES = (
    lambda rng: DiskDevice(rng=rng),
    lambda rng: CdromDevice(rng=rng),
    lambda rng: NfsDevice(rng=rng),
    lambda rng: FlashDevice(rng=rng),
    lambda rng: MemoryDevice(rng=rng),
)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 1000),
       runs=st.lists(st.tuples(st.integers(0, 4000), st.integers(1, 64)),
                     min_size=1, max_size=6))
def test_device_batch_math_matches_scalar(seed, runs):
    """``read_run`` == a loop of blocking ``read`` calls, bit for bit:
    per-access durations, running stats, busy horizon, component totals,
    and the rng stream position afterwards."""
    for make in DEVICE_FACTORIES:
        batch_dev = make(np.random.default_rng(seed))
        scalar_dev = make(np.random.default_rng(seed))
        for page_addr, npages in runs:
            addr = page_addr * PAGE_SIZE
            durations = _with_batch(
                True, batch_dev.read_run, addr, npages, PAGE_SIZE)
            assert durations is not None, (
                f"{type(batch_dev).__name__} has no batch kernel")
            expected = [scalar_dev.read(addr + i * PAGE_SIZE, PAGE_SIZE)
                        for i in range(npages)]
            assert list(durations) == expected
        assert batch_dev.stats.reads == scalar_dev.stats.reads
        assert batch_dev.stats.bytes_read == scalar_dev.stats.bytes_read
        assert batch_dev.stats.busy_time == scalar_dev.stats.busy_time
        assert batch_dev.busy_until == scalar_dev.busy_until
        assert batch_dev.component_totals == scalar_dev.component_totals
        # rng alignment: the next non-sequential access draws the same
        # randomness on both devices
        probe = 5000 * PAGE_SIZE
        assert (batch_dev.read(probe, PAGE_SIZE)
                == scalar_dev.read(probe, PAGE_SIZE))


def _sled_inputs(profile: str):
    """A machine whose file has an alternating residency pattern wide
    enough (32 resident runs) that ``build_sled_vector`` takes the
    array path."""
    machine, path = _setup(profile, seed=7, pages=256, config=MachineConfig())
    kernel = machine.kernel
    fd = kernel.open(path)
    for chunk in range(0, 256, 8):
        if (chunk // 8) % 2 == 0:
            kernel.pread(fd, chunk * PAGE_SIZE, 4 * PAGE_SIZE)
    inode = kernel._fd(fd).inode
    fs = kernel._fd(fd).fs
    return machine, kernel, inode, fs


def _sleds(vector):
    return tuple((s.offset, s.length, s.latency, s.bandwidth)
                 for s in vector)


def _build_spied(cache, fs, inode, table, queue_delays):
    """build_sled_vector, asserting the numpy emit actually ran."""
    calls = []
    original = builder._emit_arrays

    def spy(*args, **kwargs):
        calls.append(1)
        return original(*args, **kwargs)

    builder._emit_arrays = spy
    try:
        vector = build_sled_vector(cache, fs, inode, table,
                                   queue_delays=queue_delays)
    finally:
        builder._emit_arrays = original
    assert calls, "vector emit path was not taken (test would be vacuous)"
    return vector


def test_sled_build_vector_path_identical():
    for profile in PROFILES:
        machine, kernel, inode, fs = _sled_inputs(profile)
        cache = kernel.page_cache
        table = kernel.sleds_table
        keys = {estimate.device_key for _, estimate
                in fs.span_estimates(inode, 0, inode.npages)}
        for queue_delays in (None, {key: 0.00173 for key in keys}):
            vector = _with_batch(True, _build_spied,
                                 cache, fs, inode, table, queue_delays)
            scalar = _with_batch(False, build_sled_vector,
                                 cache, fs, inode, table, queue_delays)
            assert _sleds(vector) == _sleds(scalar), (
                f"{profile}: array emit diverged from scalar fold "
                f"(queue_delays={queue_delays is not None})")
        full = build_sled_vector_full_walk(cache, fs, inode, table)
        fast = _with_batch(True, build_sled_vector, cache, fs, inode, table)
        assert _sleds(fast) == _sleds(full), (
            f"{profile}: vectorised build diverged from the paper's "
            f"literal per-page walk")


@settings(max_examples=10, deadline=None)
@given(mask=st.lists(st.booleans(), min_size=24, max_size=120))
def test_sled_build_random_residency_identical(mask):
    """Randomized residency layouts: whatever pattern of resident pages
    the workload leaves behind, the three builders agree exactly."""
    pages = len(mask)
    machine, path = _setup("ext2", seed=11, pages=pages,
                           config=MachineConfig())
    kernel = machine.kernel
    fd = kernel.open(path)
    for page, resident in enumerate(mask):
        if resident:
            kernel.pread(fd, page * PAGE_SIZE, PAGE_SIZE)
    inode = kernel._fd(fd).inode
    fs = kernel._fd(fd).fs
    cache, table = kernel.page_cache, kernel.sleds_table
    vector = _with_batch(True, build_sled_vector, cache, fs, inode, table)
    scalar = _with_batch(False, build_sled_vector, cache, fs, inode, table)
    full = build_sled_vector_full_walk(cache, fs, inode, table)
    assert _sleds(vector) == _sleds(scalar) == _sleds(full)


def test_telemetry_fanin_identical():
    """Deferred fan-in (``TelemetryBatch``) produces byte-identical
    telemetry exports to immediate per-fault ``on_fault`` calls.

    Inode ids come from a process-global counter, so both runs pin it to
    the same start — telemetry keys spans by inode id and the exports
    would otherwise differ spuriously.
    """
    def run():
        saved = inode_mod._inode_ids
        inode_mod._inode_ids = itertools.count(1_000_000)
        try:
            machine, path = _setup("ext2", seed=5, pages=96,
                                   config=MachineConfig())
            kernel = machine.kernel
            telemetry = Telemetry()
            telemetry.attach(kernel)
            engine = kernel.attach_engine(block=MERGE_ALL)
            tasks = _striding_readers(kernel, path, 96, readers=3,
                                      chunk_pages=4)
            EventScheduler(kernel, tasks, engine=engine).run()
            fd = kernel.open(path)
            kernel.pread(fd, 0, 96 * PAGE_SIZE)
            kernel.close(fd)
            return telemetry.to_dict(), telemetry.chrome_trace()
        finally:
            inode_mod._inode_ids = saved

    scalar_dict, scalar_trace = _with_batch(False, run)
    batch_dict, batch_trace = _with_batch(True, run)
    assert batch_dict == scalar_dict
    assert batch_trace == scalar_trace


def test_scalar_fallback_without_numpy(monkeypatch):
    """With numpy knocked out of the batch layer the library still runs
    every workload — ``read_run`` declines, the kernel and builder take
    their scalar reference paths, and results match the vectorised run."""
    vector = _run("ext2", seed=3, pages=24, config=MachineConfig())

    with monkeypatch.context() as m:
        m.setattr(batch, "_np", None)
        m.setattr(builder, "np", None)
        assert not batch.enabled()
        device = DiskDevice(rng=np.random.default_rng(1))
        assert device.read_run(0, 8, PAGE_SIZE) is None
        fallback = _run("ext2", seed=3, pages=24, config=MachineConfig())

    assert fallback == vector
