"""Tests for SLED prediction-accuracy tracking."""

import pytest

from repro.core.sled import Sled, SledVector
from repro.obs.accuracy import ClassAccuracy, SledAccuracyTracker
from repro.obs.metrics import MetricsRegistry
from repro.sim.units import PAGE_SIZE


def _vector(npages=4, latency=0.018, bandwidth=9e6):
    size = npages * PAGE_SIZE
    return SledVector([Sled(0, size, latency, bandwidth)], file_size=size)


class TestClassAccuracy:
    def test_means(self):
        acc = ClassAccuracy()
        acc.add(predicted=1.0, actual=2.0)
        acc.add(predicted=4.0, actual=2.0)
        assert acc.mean_abs_error == pytest.approx(1.5)
        assert acc.mean_error == pytest.approx(-0.5)  # (+1 - 2) / 2
        assert acc.mean_relative_error == pytest.approx(3.0 / 4.0)

    def test_empty_is_zero(self):
        acc = ClassAccuracy()
        assert acc.mean_abs_error == 0.0
        assert acc.mean_error == 0.0
        assert acc.mean_relative_error == 0.0


class TestTracker:
    def test_fault_consumes_whole_cluster(self):
        tracker = SledAccuracyTracker()
        tracker.record_prediction(1, _vector(npages=4))
        assert tracker.outstanding == 4
        tracker.record_fault(1, 0, cluster=4, actual_seconds=0.02,
                             device_class="disk")
        assert tracker.outstanding == 0
        report = tracker.report()
        assert report.by_class["disk"].samples == 1

    def test_fault_error_math(self):
        tracker = SledAccuracyTracker()
        tracker.record_prediction(1, _vector(npages=2, latency=0.01,
                                             bandwidth=1e6))
        predicted = 0.01 + (2 * PAGE_SIZE) / 1e6
        tracker.record_fault(1, 0, cluster=2, actual_seconds=predicted + 0.005,
                             device_class="disk")
        acc = tracker.report().by_class["disk"]
        assert acc.mean_abs_error == pytest.approx(0.005)
        assert acc.mean_error == pytest.approx(0.005)

    def test_hit_uses_single_page_transfer(self):
        tracker = SledAccuracyTracker()
        tracker.record_prediction(1, _vector(npages=1, latency=0.0,
                                             bandwidth=1e6))
        predicted = PAGE_SIZE / 1e6
        tracker.record_hit(1, 0, actual_seconds=predicted)
        acc = tracker.report().by_class["memory"]
        assert acc.samples == 1
        assert acc.mean_abs_error == pytest.approx(0.0)

    def test_predictions_consumed_on_first_use(self):
        tracker = SledAccuracyTracker()
        tracker.record_prediction(1, _vector(npages=1))
        tracker.record_hit(1, 0, actual_seconds=0.001)
        tracker.record_hit(1, 0, actual_seconds=0.001)  # no prediction left
        assert tracker.report().by_class["memory"].samples == 1

    def test_unmatched_fault_counted(self):
        tracker = SledAccuracyTracker()
        tracker.record_fault(9, 0, cluster=1, actual_seconds=0.01,
                             device_class="disk")
        report = tracker.report()
        assert report.unmatched_faults == 1
        assert "disk" not in report.by_class

    def test_unmatched_hit_ignored(self):
        tracker = SledAccuracyTracker()
        tracker.record_hit(9, 0, actual_seconds=0.001)
        assert tracker.report().by_class == {}

    def test_reask_refreshes_predictions(self):
        tracker = SledAccuracyTracker()
        tracker.record_prediction(1, _vector(npages=2))
        tracker.record_prediction(1, _vector(npages=2))
        assert tracker.outstanding == 2

    def test_registry_histogram_fed(self):
        registry = MetricsRegistry()
        tracker = SledAccuracyTracker(registry=registry)
        tracker.record_prediction(1, _vector(npages=1))
        tracker.record_fault(1, 0, cluster=1, actual_seconds=0.02,
                             device_class="disk")
        hist = registry.get("sled_abs_error_seconds").labels(cls="disk")
        assert hist.count == 1

    def test_render_and_to_dict(self):
        tracker = SledAccuracyTracker()
        tracker.record_prediction(1, _vector(npages=1))
        tracker.record_fault(1, 0, cluster=1, actual_seconds=0.02,
                             device_class="disk")
        text = tracker.report().render()
        assert "disk" in text
        assert "mean_abs_err" in text
        dump = tracker.to_dict()
        assert dump["classes"]["disk"]["samples"] == 1
        assert dump["unmatched_faults"] == 0

    def test_render_empty(self):
        text = SledAccuracyTracker().report().render()
        assert "no predictions" in text

    def test_clear(self):
        tracker = SledAccuracyTracker()
        tracker.record_prediction(1, _vector(npages=1))
        tracker.record_fault(2, 0, cluster=1, actual_seconds=0.01,
                             device_class="disk")
        tracker.clear()
        assert tracker.outstanding == 0
        assert tracker.unmatched_faults == 0
        assert tracker.report().by_class == {}
