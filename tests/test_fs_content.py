"""Unit and property tests for the content stores."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.content import ByteStoreContent, SyntheticText, ZeroContent
from repro.sim.errors import InvalidArgumentError, ReadOnlyFilesystemError
from repro.sim.units import PAGE_SIZE


class TestZeroContent:
    def test_reads_zeros(self):
        assert ZeroContent().read(10, 5) == b"\0" * 5

    def test_write_rejected(self):
        with pytest.raises(ReadOnlyFilesystemError):
            ZeroContent().write(0, b"x")

    def test_negative_rejected(self):
        with pytest.raises(InvalidArgumentError):
            ZeroContent().read(-1, 5)


class TestSyntheticText:
    def test_deterministic(self):
        a = SyntheticText(seed=1, size=100_000)
        b = SyntheticText(seed=1, size=100_000)
        assert a.read(12_345, 500) == b.read(12_345, 500)

    def test_different_seeds_differ(self):
        a = SyntheticText(seed=1, size=100_000)
        b = SyntheticText(seed=2, size=100_000)
        assert a.read(0, 4096) != b.read(0, 4096)

    def test_reads_clamped_to_size(self):
        content = SyntheticText(seed=1, size=100)
        assert len(content.read(90, 50)) == 10
        assert content.read(200, 10) == b""

    def test_is_ascii_text_with_newlines(self):
        blob = SyntheticText(seed=3, size=PAGE_SIZE * 2).read(0, PAGE_SIZE * 2)
        blob.decode("ascii")
        assert b"\n" in blob

    def test_plant_appears_at_offset(self):
        content = SyntheticText(seed=1, size=10_000,
                                plants={5_000: b"MARKER"})
        assert content.read(5_000, 6) == b"MARKER"

    def test_plant_visible_in_partial_overlap(self):
        content = SyntheticText(seed=1, size=10_000,
                                plants={5_000: b"MARKER"})
        assert content.read(5_002, 2) == b"RK"
        assert content.read(4_998, 4).endswith(b"MA")

    def test_plant_escaping_file_rejected(self):
        with pytest.raises(InvalidArgumentError):
            SyntheticText(seed=1, size=100, plants={99: b"LONG"})

    def test_consistency_across_read_granularity(self):
        content = SyntheticText(seed=9, size=3 * PAGE_SIZE)
        whole = content.read(0, 3 * PAGE_SIZE)
        pieces = b"".join(content.read(i * 1000, 1000)
                          for i in range(3 * PAGE_SIZE // 1000 + 1))
        assert pieces[: len(whole)] == whole

    @given(st.integers(0, 50_000), st.integers(0, 5_000))
    @settings(max_examples=40, deadline=None)
    def test_read_matches_whole_file_slice(self, offset, length):
        content = SyntheticText(seed=11, size=50_000)
        whole = content.read(0, 50_000)
        expected = whole[offset: offset + length]
        assert content.read(offset, length) == expected


class TestByteStoreContent:
    def test_unwritten_is_zero(self):
        assert ByteStoreContent().read(100, 4) == b"\0" * 4

    def test_roundtrip(self):
        store = ByteStoreContent()
        store.write(1000, b"hello")
        assert store.read(1000, 5) == b"hello"

    def test_cross_page_write(self):
        store = ByteStoreContent()
        blob = bytes(range(256)) * 40  # 10240 bytes, crosses pages
        store.write(PAGE_SIZE - 100, blob)
        assert store.read(PAGE_SIZE - 100, len(blob)) == blob

    def test_initial_data(self):
        store = ByteStoreContent(b"abc")
        assert store.read(0, 3) == b"abc"

    def test_overwrite(self):
        store = ByteStoreContent()
        store.write(0, b"aaaa")
        store.write(2, b"bb")
        assert store.read(0, 4) == b"aabb"

    @given(st.lists(st.tuples(st.integers(0, 20_000),
                              st.binary(min_size=1, max_size=500)),
                    min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_bytearray(self, writes):
        store = ByteStoreContent()
        reference = bytearray(30_000)
        for offset, data in writes:
            store.write(offset, data)
            reference[offset: offset + len(data)] = data
        assert store.read(0, 30_000) == bytes(reference)


class TestCowContent:
    def test_reads_fall_through_to_base(self):
        from repro.fs.content import CowContent
        base = SyntheticText(seed=5, size=20_000)
        cow = CowContent(base)
        assert cow.read(3_000, 400) == base.read(3_000, 400)

    def test_writes_shadow_base(self):
        from repro.fs.content import CowContent
        base = SyntheticText(seed=5, size=20_000)
        cow = CowContent(base)
        cow.write(5_000, b"PATCHED")
        assert cow.read(5_000, 7) == b"PATCHED"
        # neighbouring bytes keep the base content
        assert cow.read(4_990, 10) == base.read(4_990, 10)
        assert cow.read(5_007, 10) == base.read(5_007, 10)

    def test_cross_page_write(self):
        from repro.fs.content import CowContent
        base = ZeroContent()
        cow = CowContent(base)
        blob = bytes(range(200)) * 50  # 10 KB, crosses pages
        cow.write(PAGE_SIZE - 77, blob)
        assert cow.read(PAGE_SIZE - 77, len(blob)) == blob

    def test_base_object_unmodified(self):
        from repro.fs.content import CowContent
        base = SyntheticText(seed=5, size=20_000)
        before = base.read(0, 20_000)
        cow = CowContent(base)
        cow.write(0, b"X" * 10_000)
        assert base.read(0, 20_000) == before

    @given(st.lists(st.tuples(st.integers(0, 15_000),
                              st.binary(min_size=1, max_size=400)),
                    min_size=1, max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_matches_reference_overlay(self, writes):
        from repro.fs.content import CowContent
        base = SyntheticText(seed=6, size=16_000)
        cow = CowContent(base)
        reference = bytearray(base.read(0, 16_000))
        for offset, data in writes:
            data = data[: 16_000 - offset]
            if not data:
                continue
            cow.write(offset, data)
            reference[offset: offset + len(data)] = data
        assert cow.read(0, 16_000) == bytes(reference)
