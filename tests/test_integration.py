"""End-to-end scenarios across the whole stack."""

import numpy as np
import pytest

from repro.apps.findutil import find
from repro.apps.gmc import file_properties
from repro.apps.grep import grep
from repro.apps.wc import wc
from repro.core.delivery import SLEDS_BEST, sleds_total_delivery_time
from repro.fits.cfitsio import create_image
from repro.lhea.fimhisto import fimhisto
from repro.machine import Machine
from repro.sim.units import MB, PAGE_SIZE

NEEDLE = b"XNEEDLEX"


class TestPaperScenarioKernelTree:
    """The paper's running example: grepping a source tree where the
    interesting file was cached by an interrupted earlier search."""

    def _setup(self):
        machine = Machine.unix_utilities(cache_pages=64, seed=201)
        machine.boot()
        fs = machine.ext2
        for i in range(6):
            plants = {3000: NEEDLE} if i == 4 else None
            fs.create_text_file(f"linux/drivers/f{i}.c", 24 * PAGE_SIZE,
                                seed=300 + i, plants=plants or {})
        return machine

    def test_interrupted_search_then_sleds_find(self):
        machine = self._setup()
        k = machine.kernel
        # first search was interrupted right after reading f4 (it matched)
        k.warm_file("/mnt/ext2/linux/drivers/f4.c")
        # the SLEDs-aware user greps cheap (cached) files first
        cheap = find(k, "/mnt/ext2/linux", name="*.c", latency="-m10",
                     attack_plan=SLEDS_BEST)
        assert [h.path for h in cheap] == ["/mnt/ext2/linux/drivers/f4.c"]
        with k.process() as run:
            result = grep(k, cheap[0].path, NEEDLE, use_sleds=True,
                          first_match_only=True)
        assert result.count == 1
        assert run.hard_faults == 0  # found without touching the disk

    def test_naive_rescan_rereads_everything(self):
        machine = self._setup()
        k = machine.kernel
        k.warm_file("/mnt/ext2/linux/drivers/f4.c")
        with k.process() as run:
            for i in range(6):
                result = grep(k, f"/mnt/ext2/linux/drivers/f{i}.c", NEEDLE,
                              first_match_only=True)
                if result.count:
                    break
        assert run.hard_faults > 0


class TestMultiFilesystemStory:
    def test_same_file_different_mounts_different_estimates(self):
        machine = Machine.unix_utilities(cache_pages=256, seed=202)
        machine.boot()
        for fs, mount in ((machine.ext2, "ext2"), (machine.cdrom, "cdrom"),
                          (machine.nfs, "nfs")):
            fs.create_text_file("data.txt", 32 * PAGE_SIZE, seed=1)
        k = machine.kernel
        times = {}
        for mount in ("ext2", "cdrom", "nfs"):
            fd = k.open(f"/mnt/{mount}/data.txt")
            times[mount] = sleds_total_delivery_time(k, fd)
            k.close(fd)
        assert times["ext2"] < times["cdrom"] < times["nfs"]

    def test_wc_consistent_across_filesystems(self):
        machine = Machine.unix_utilities(cache_pages=256, seed=203)
        machine.boot()
        for fs in (machine.ext2, machine.cdrom, machine.nfs):
            fs.create_text_file("data.txt", 16 * PAGE_SIZE, seed=9)
        k = machine.kernel
        results = [wc(k, f"/mnt/{m}/data.txt", use_sleds=s)
                   for m in ("ext2", "cdrom", "nfs") for s in (False, True)]
        first = (results[0].lines, results[0].words, results[0].chars)
        assert all((r.lines, r.words, r.chars) == first for r in results)


class TestHsmStory:
    def test_three_level_ordering(self):
        """SLEDs orders memory < staged disk < tape within one file."""
        machine = Machine.hsm(cache_pages=32, stage_pages=48, seed=204)
        machine.boot()
        fs = machine.hsmfs
        k = machine.kernel
        size = 64 * PAGE_SIZE
        from repro.fs.content import SyntheticText
        inode = fs.create_tape_file("arch.txt", size, "VOL000")
        inode.content = SyntheticText(seed=5, size=size)
        k.warm_file("/mnt/hsm/arch.txt")
        fd = k.open("/mnt/hsm/arch.txt")
        vector = k.get_sleds(fd)
        k.close(fd)
        latencies = sorted(vector.levels())
        assert len(latencies) == 3  # memory, hsm-disk, tape

    def test_panel_warns_about_tape(self):
        machine = Machine.hsm(cache_pages=64, seed=205)
        machine.boot()
        machine.hsmfs.create_tape_file("cold.dat", 256 * PAGE_SIZE, "VOL003")
        panel = file_properties(machine.kernel, "/mnt/hsm/cold.dat")
        assert panel.total_time_best > 10  # tape load dominates


class TestFullPipeline:
    def test_astronomy_pipeline_end_to_end(self):
        """Create image -> fimhisto with SLEDs -> verify output parses."""
        machine = Machine.lheasoft(cache_pages=128, seed=206)
        machine.boot()
        rng = np.random.default_rng(3)
        image = rng.integers(0, 512, size=(64, 64), dtype=np.int16)
        create_image(machine.kernel, "/mnt/ext2/obs.fits", image)
        result = fimhisto(machine.kernel, "/mnt/ext2/obs.fits",
                          "/mnt/ext2/obs_h.fits", nbins=16, use_sleds=True)
        assert result.counts.sum() == image.size
        panel = file_properties(machine.kernel, "/mnt/ext2/obs_h.fits")
        assert panel.size > image.nbytes  # copy + histogram table

    def test_repeated_mixed_workload_stays_consistent(self):
        machine = Machine.unix_utilities(cache_pages=32, seed=207)
        machine.boot()
        machine.ext2.create_text_file("f", 64 * PAGE_SIZE, seed=2,
                                      plants={10_000: NEEDLE})
        k = machine.kernel
        reference = None
        for _ in range(5):
            counts = wc(k, "/mnt/ext2/f", use_sleds=True)
            matches = grep(k, "/mnt/ext2/f", NEEDLE, use_sleds=True)
            snapshot = (counts.lines, counts.words, counts.chars,
                        [(m.offset, m.line_number) for m in matches.matches])
            if reference is None:
                reference = snapshot
            assert snapshot == reference
