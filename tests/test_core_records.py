"""Unit and property tests for record-boundary SLED adjustment (Fig. 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import adjust_to_records
from repro.core.sled import Sled, SledVector
from repro.machine import Machine
from repro.sim.units import PAGE_SIZE


def _machine():
    machine = Machine.unix_utilities(cache_pages=64, seed=31)
    machine.boot()
    return machine


def _warm_pages(kernel, inode, pages):
    for page in pages:
        kernel.page_cache.insert((inode.id, page))


def _open_with_vector(machine, size, cached_pages, seed=1):
    machine.ext2.create_text_file("f", size, seed=seed)
    kernel = machine.kernel
    inode = machine.ext2.resolve(["f"])
    _warm_pages(kernel, inode, cached_pages)
    fd = kernel.open("/mnt/ext2/f")
    return kernel, fd, kernel.get_sleds(fd)


class TestAdjustment:
    def test_single_sled_untouched(self):
        machine = _machine()
        kernel, fd, vector = _open_with_vector(machine, 4 * PAGE_SIZE, [])
        adjusted = adjust_to_records(kernel, fd, vector)
        assert adjusted == vector

    def test_coverage_preserved(self):
        machine = _machine()
        size = 16 * PAGE_SIZE + 100
        kernel, fd, vector = _open_with_vector(
            machine, size, [4, 5, 6, 10, 11])
        adjusted = adjust_to_records(kernel, fd, vector)
        assert adjusted.file_size == size
        assert sum(s.length for s in adjusted) == size
        pos = 0
        for sled in adjusted:
            assert sled.offset == pos
            pos += sled.length

    def test_low_latency_edges_are_record_aligned(self):
        """After adjustment, every low-latency SLED starts at a record
        start and, when followed by high latency, ends at a record end."""
        machine = _machine()
        size = 16 * PAGE_SIZE
        kernel, fd, vector = _open_with_vector(machine, size, [4, 5, 6])
        adjusted = adjust_to_records(kernel, fd, vector)
        sleds = list(adjusted)
        for i, sled in enumerate(sleds):
            prev = sleds[i - 1] if i > 0 else None
            nxt = sleds[i + 1] if i + 1 < len(sleds) else None
            if prev is not None and sled.latency < prev.latency:
                # low sled begins a fresh record
                assert kernel.pread(fd, sled.offset - 1, 1) == b"\n"
            if nxt is not None and sled.latency < nxt.latency:
                # low sled ends exactly after a separator
                assert kernel.pread(fd, sled.end - 1, 1) == b"\n"

    def test_fragments_pushed_to_high_latency_side(self):
        """The low-latency SLED only ever shrinks."""
        machine = _machine()
        size = 16 * PAGE_SIZE
        kernel, fd, vector = _open_with_vector(machine, size, [4, 5, 6])
        adjusted = adjust_to_records(kernel, fd, vector)
        low_before = sum(s.length for s in vector if s.latency < 0.001)
        low_after = sum(s.length for s in adjusted if s.latency < 0.001)
        assert low_after <= low_before

    def test_multibyte_separator_rejected(self):
        machine = _machine()
        kernel, fd, vector = _open_with_vector(machine, 4 * PAGE_SIZE, [1])
        with pytest.raises(ValueError):
            adjust_to_records(kernel, fd, vector, separator=b"ab")

    def test_separator_free_low_sled_collapses(self):
        """A low-latency sled with no separator at all is one big record
        fragment and is absorbed into its high-latency neighbours."""
        machine = _machine()
        size = 8 * PAGE_SIZE
        machine.ext2.create_file("raw", size)  # ZeroContent: no newlines
        kernel = machine.kernel
        inode = machine.ext2.resolve(["raw"])
        _warm_pages(kernel, inode, [3, 4])
        fd = kernel.open("/mnt/ext2/raw")
        vector = kernel.get_sleds(fd)
        assert len(vector) == 3
        adjusted = adjust_to_records(kernel, fd, vector)
        assert sum(s.length for s in adjusted) == size
        memory_latency = kernel.sleds_table.memory.latency
        assert all(s.latency != memory_latency for s in adjusted)

    @given(st.sets(st.integers(0, 15)), st.integers(1, 16 * PAGE_SIZE))
    @settings(max_examples=25, deadline=None)
    def test_adjustment_always_valid(self, cached, size):
        machine = _machine()
        machine.ext2.create_text_file("f", size, seed=3)
        kernel = machine.kernel
        inode = machine.ext2.resolve(["f"])
        _warm_pages(kernel, inode,
                    [p for p in cached if p < inode.npages])
        fd = kernel.open("/mnt/ext2/f")
        vector = kernel.get_sleds(fd)
        adjusted = adjust_to_records(kernel, fd, vector)
        # still a valid vector (constructor re-validates) covering the file
        assert adjusted.file_size == size
        assert sum(s.length for s in adjusted) == size
        kernel.close(fd)


class TestCustomSeparator:
    def test_nul_separated_records(self):
        """Record mode with a separator other than newline (the library's
        separator argument, paper §4.2)."""
        machine = _machine()
        size = 8 * PAGE_SIZE
        # build a NUL-separated file: records of ~100 'A's
        payload = (b"A" * 100 + b"\0") * (size // 101 + 1)
        machine.ext2.create_file("recs", size)
        kernel = machine.kernel
        inode = machine.ext2.resolve(["recs"])
        from repro.fs.content import ByteStoreContent
        inode.content = ByteStoreContent(payload[:size])
        _warm_pages(kernel, inode, [2, 3])
        fd = kernel.open("/mnt/ext2/recs")
        vector = kernel.get_sleds(fd)
        adjusted = adjust_to_records(kernel, fd, vector, separator=b"\0")
        assert sum(s.length for s in adjusted) == size
        sleds = list(adjusted)
        for i, sled in enumerate(sleds):
            nxt = sleds[i + 1] if i + 1 < len(sleds) else None
            if nxt is not None and sled.latency < nxt.latency:
                assert kernel.pread(fd, sled.end - 1, 1) == b"\0"

    def test_pick_session_custom_separator(self):
        from repro.core.pick import (
            sleds_pick_finish,
            sleds_pick_init,
            sleds_pick_next_read,
        )
        machine = _machine()
        size = 8 * PAGE_SIZE
        machine.ext2.create_file("recs2", size)
        kernel = machine.kernel
        inode = machine.ext2.resolve(["recs2"])
        from repro.fs.content import ByteStoreContent
        inode.content = ByteStoreContent((b"B" * 60 + b";") * (size // 61 + 1))
        _warm_pages(kernel, inode, [4, 5, 6])
        fd = kernel.open("/mnt/ext2/recs2")
        sleds_pick_init(kernel, fd, PAGE_SIZE, record_mode=True,
                        separator=b";")
        chunks = []
        while (advice := sleds_pick_next_read(kernel, fd)) is not None:
            chunks.append(advice)
        sleds_pick_finish(kernel, fd)
        pos = 0
        for offset, length in sorted(chunks):
            assert offset == pos
            pos += length
        assert pos == size
