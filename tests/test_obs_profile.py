"""Tests for the hot-path wall-clock profiler (repro.obs.profile)."""

import time

from repro.block import BlockConfig
from repro.machine import Machine
from repro.obs import HotPathProfiler
from repro.obs.profile import SITES
from repro.sim.tasks import EventScheduler, Task, reader_task_async
from repro.sim.units import MB


class TestAccounting:
    def test_add_accumulates(self):
        prof = HotPathProfiler()
        t0 = prof.begin()
        prof.add("event_loop.dispatch", t0)
        prof.add("event_loop.dispatch", prof.begin())
        site = prof.rows()[0]
        assert site["site"] == "event_loop.dispatch"
        assert site["calls"] == 2
        assert site["wall_seconds"] >= 0.0
        assert prof.calls("event_loop.dispatch") == 2
        assert prof.calls("never.hit") == 0

    def test_scope_context_manager(self):
        prof = HotPathProfiler()
        with prof.scope("kernel.sled_build"):
            time.sleep(0.001)
        row = prof.rows()[0]
        assert row["calls"] == 1
        assert row["wall_seconds"] >= 0.001
        assert row["wall_max_us"] >= 1000.0

    def test_rows_sorted_by_wall_time(self):
        prof = HotPathProfiler()
        with prof.scope("cache.residency"):
            time.sleep(0.002)
        with prof.scope("block.merge_flush"):
            pass
        assert [r["site"] for r in prof.rows()] == [
            "cache.residency", "block.merge_flush"]

    def test_wall_per_virtual_second(self):
        prof = HotPathProfiler()
        with prof.scope("cache.residency"):
            time.sleep(0.001)
        row = prof.rows(virtual_seconds=2.0)[0]
        assert row["wall_per_virtual_second"] == (
            row["wall_seconds"] / 2.0)
        # no ratio without a virtual duration
        assert "wall_per_virtual_second" not in prof.rows()[0]

    def test_render_and_to_dict(self):
        prof = HotPathProfiler()
        assert "no instrumented site was hit" in prof.render()
        with prof.scope("event_loop.dispatch"):
            pass
        text = prof.render(virtual_seconds=1.0)
        assert "event_loop.dispatch" in text and "wall/vsec" in text
        dump = prof.to_dict(virtual_seconds=1.0)
        assert dump["virtual_seconds"] == 1.0
        assert dump["total_wall_seconds"] == prof.total_wall_seconds

    def test_clear(self):
        prof = HotPathProfiler()
        with prof.scope("cache.residency"):
            pass
        prof.clear()
        assert prof.rows() == [] and prof.total_wall_seconds == 0.0


class TestWiring:
    def _machine(self):
        machine = Machine.unix_utilities(cache_pages=256, seed=123)
        machine.boot()
        machine.ext2.create_text_file("data/f.txt", MB // 2, seed=7)
        return machine

    def test_attach_before_engine(self):
        machine = self._machine()
        prof = HotPathProfiler().attach(machine.kernel)
        assert machine.kernel.profiler is prof
        assert machine.kernel.page_cache.profiler is prof
        engine = machine.kernel.attach_engine()
        # engine arriving later still gets the instrumented loop
        assert engine.loop.profiler is prof
        prof.detach(machine.kernel)
        assert machine.kernel.profiler is None
        assert engine.loop.profiler is None

    def test_attach_after_engine(self):
        machine = self._machine()
        engine = machine.kernel.attach_engine()
        prof = HotPathProfiler().attach(machine.kernel)
        assert engine.loop.profiler is prof

    def test_real_run_covers_core_sites(self):
        machine = self._machine()
        prof = HotPathProfiler().attach(machine.kernel)
        machine.kernel.attach_engine(
            block=BlockConfig(merge=True, plug=True))
        path = "/mnt/ext2/data/f.txt"
        fd = machine.kernel.open(path)
        machine.kernel.get_sleds(fd)  # exercise the SLED-build site
        machine.kernel.close(fd)
        tasks = [Task("reader",
                      reader_task_async(machine.kernel, path))]
        EventScheduler(machine.kernel, tasks).run()
        hit = {row["site"] for row in prof.rows()}
        # the acceptance bar: at least dispatch + SLED builds, and every
        # site name reported is a declared one
        assert "event_loop.dispatch" in hit
        assert "kernel.sled_build" in hit
        assert "cache.residency" in hit
        assert "block.merge_flush" in hit
        assert hit <= set(SITES)
        assert prof.calls("event_loop.dispatch") > 0
