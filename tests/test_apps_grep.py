"""Tests for grep: match equivalence, line numbers, -q early termination."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.grep import grep
from repro.machine import Machine
from repro.sim.errors import InvalidArgumentError
from repro.sim.units import PAGE_SIZE

NEEDLE = b"XNEEDLEX"


def _machine(cache_pages=64):
    machine = Machine.unix_utilities(cache_pages=cache_pages, seed=71)
    machine.boot()
    return machine


def _signature(result):
    return [(m.offset, m.line_number, m.line) for m in result.matches]


class TestValidation:
    def test_empty_pattern_rejected(self):
        machine = _machine()
        machine.ext2.create_text_file("f", PAGE_SIZE, seed=1)
        with pytest.raises(InvalidArgumentError):
            grep(machine.kernel, "/mnt/ext2/f", b"")

    def test_newline_in_pattern_rejected(self):
        machine = _machine()
        machine.ext2.create_text_file("f", PAGE_SIZE, seed=1)
        with pytest.raises(InvalidArgumentError):
            grep(machine.kernel, "/mnt/ext2/f", b"a\nb")


class TestMatching:
    def test_finds_planted_needles(self):
        machine = _machine()
        plants = {10_000: NEEDLE, 30_000: NEEDLE}
        machine.ext2.create_text_file("f", 16 * PAGE_SIZE, seed=2,
                                      plants=plants)
        result = grep(machine.kernel, "/mnt/ext2/f", NEEDLE)
        assert result.count == 2
        assert result.matches[0].offset < result.matches[1].offset

    def test_no_match(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 4 * PAGE_SIZE, seed=2)
        result = grep(machine.kernel, "/mnt/ext2/f", NEEDLE)
        assert result.count == 0
        assert not result.truncated

    def test_vocabulary_word_matches_common_lines(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 4 * PAGE_SIZE, seed=2)
        result = grep(machine.kernel, "/mnt/ext2/f", b"storage")
        assert result.count > 0
        assert all(b"storage" in m.line for m in result.matches)

    def test_line_numbers_match_naive_count(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=3,
                                      plants={20_000: NEEDLE})
        k = machine.kernel
        result = grep(k, "/mnt/ext2/f", NEEDLE)
        inode = machine.ext2.resolve(["f"])
        blob = inode.content.read(0, inode.size)
        expected_line = blob[:20_000].count(b"\n") + 1
        assert result.matches[0].line_number == expected_line

    def test_match_at_file_end_without_newline(self):
        machine = _machine()
        size = 2 * PAGE_SIZE
        machine.ext2.create_text_file(
            "f", size, seed=3, plants={size - len(NEEDLE): NEEDLE})
        for use_sleds in (False, True):
            result = grep(machine.kernel, "/mnt/ext2/f", NEEDLE,
                          use_sleds=use_sleds)
            assert result.count == 1


class TestSledsEquivalence:
    def test_same_matches_warm_cache(self):
        machine = _machine(cache_pages=16)
        plants = {5_000: NEEDLE, 100_000: NEEDLE, 200_000: NEEDLE}
        machine.ext2.create_text_file("f", 64 * PAGE_SIZE, seed=4,
                                      plants=plants)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        plain = grep(k, "/mnt/ext2/f", NEEDLE)
        sleds = grep(k, "/mnt/ext2/f", NEEDLE, use_sleds=True)
        assert _signature(plain) == _signature(sleds)

    @given(st.sets(st.integers(0, 31), max_size=8),
           st.lists(st.integers(100, 120_000), min_size=1, max_size=5,
                    unique=True))
    @settings(max_examples=20, deadline=None)
    def test_equivalence_property(self, cached, match_offsets):
        machine = _machine()
        size = 32 * PAGE_SIZE
        plants = {}
        for offset in match_offsets:
            # keep needles on distinct lines (corpus lines are ~64 chars)
            if all(abs(offset - o) > 200 for o in plants):
                plants[offset] = NEEDLE
        machine.ext2.create_text_file("f", size, seed=5, plants=plants)
        k = machine.kernel
        inode = machine.ext2.resolve(["f"])
        for page in cached:
            k.page_cache.insert((inode.id, page))
        plain = grep(k, "/mnt/ext2/f", NEEDLE)
        sleds = grep(k, "/mnt/ext2/f", NEEDLE, use_sleds=True)
        assert _signature(plain) == _signature(sleds)
        assert plain.count == len(plants)


class TestFirstMatch:
    def test_q_stops_early(self):
        machine = _machine()
        plants = {1_000: NEEDLE, 100_000: NEEDLE}
        machine.ext2.create_text_file("f", 32 * PAGE_SIZE, seed=6,
                                      plants=plants)
        result = grep(machine.kernel, "/mnt/ext2/f", NEEDLE,
                      first_match_only=True)
        assert result.count == 1
        assert result.truncated
        # the match line contains the first needle; its start precedes it
        assert result.matches[0].offset <= 1_000
        assert NEEDLE in result.matches[0].line

    def test_q_reads_less_than_full_pass(self):
        machine = _machine()
        plants = {2_000: NEEDLE}
        machine.ext2.create_text_file("f", 64 * PAGE_SIZE, seed=6,
                                      plants=plants)
        k = machine.kernel
        with k.process() as run:
            grep(k, "/mnt/ext2/f", NEEDLE, first_match_only=True)
        assert run.counters.bytes_read < 64 * PAGE_SIZE

    def test_q_with_sleds_finds_cached_match_without_io(self):
        """The paper's ideal case: the match is cached; SLEDs-grep -q
        terminates without any physical I/O."""
        machine = _machine(cache_pages=16)
        size = 64 * PAGE_SIZE
        match_offset = size - 3 * PAGE_SIZE  # near the end: stays cached
        machine.ext2.create_text_file("f", size, seed=7,
                                      plants={match_offset: NEEDLE})
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")  # tail (incl. match) cached
        with k.process() as run:
            result = grep(k, "/mnt/ext2/f", NEEDLE, use_sleds=True,
                          first_match_only=True)
        assert result.count == 1
        assert run.hard_faults == 0
        assert run.by_category.get("disk", 0.0) == 0.0

    def test_q_without_sleds_does_physical_io_for_same_case(self):
        machine = _machine(cache_pages=16)
        size = 64 * PAGE_SIZE
        match_offset = size - 3 * PAGE_SIZE
        machine.ext2.create_text_file("f", size, seed=7,
                                      plants={match_offset: NEEDLE})
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        with k.process() as run:
            grep(k, "/mnt/ext2/f", NEEDLE, first_match_only=True)
        assert run.hard_faults > 0
