"""Unit tests for the tape drive and autochanger models."""

import numpy as np
import pytest

from repro.devices.autochanger import Autochanger, UnknownCartridgeError
from repro.devices.tape import TapeCartridge, TapeDevice, TapeNotLoadedError
from repro.sim.units import GB, MB


def _drive(name="tape0"):
    return TapeDevice(name=name, rng=np.random.default_rng(3))


class TestTapeDevice:
    def test_access_requires_loaded_tape(self):
        with pytest.raises(TapeNotLoadedError):
            _drive().read(0, 4096)

    def test_load_unload_cycle(self):
        drive = _drive()
        cart = TapeCartridge("VOL001")
        assert drive.load(cart) == drive.load_time
        assert drive.loaded is cart
        assert drive.unload() == drive.unload_time
        assert drive.loaded is None

    def test_double_load_rejected(self):
        drive = _drive()
        drive.load(TapeCartridge("A"))
        with pytest.raises(TapeNotLoadedError):
            drive.load(TapeCartridge("B"))

    def test_unload_empty_rejected(self):
        with pytest.raises(TapeNotLoadedError):
            _drive().unload()

    def test_unload_rewinds(self):
        drive = _drive()
        cart = TapeCartridge("A")
        drive.load(cart)
        drive.read(0, MB)
        assert cart.position > 0
        drive.unload()
        assert cart.position == 0

    def test_sequential_streaming_no_locate(self):
        drive = _drive()
        drive.load(TapeCartridge("A"))
        drive.read(0, MB)
        t = drive.read(MB, MB)
        assert t == pytest.approx(MB / drive.spec.bandwidth)

    def test_random_access_pays_locate(self):
        drive = _drive()
        drive.load(TapeCartridge("A"))
        drive.read(0, 4096)
        t = drive.read(20 * GB, 4096)
        assert t > drive.locate_startup

    def test_locate_time_grows_with_longitudinal_distance(self):
        drive = _drive()
        drive.load(TapeCartridge("A", capacity=35 * GB))
        wrap_len = 35 * GB // drive.wraps
        near = drive.locate_time(0, wrap_len // 10)
        far = drive.locate_time(0, wrap_len // 2)
        assert near < far

    def test_locate_time_zero_in_place(self):
        drive = _drive()
        drive.load(TapeCartridge("A"))
        assert drive.locate_time(5000, 5000) == 0.0

    def test_estimate_unloaded_includes_load(self):
        drive = _drive()
        assert drive.estimate_latency(0) >= drive.load_time

    def test_estimate_loaded_is_locate(self):
        drive = _drive()
        cart = TapeCartridge("A")
        drive.load(cart)
        assert drive.estimate_latency(0) == drive.locate_time(0, 0)

    def test_read_beyond_cartridge_rejected(self):
        drive = _drive()
        drive.load(TapeCartridge("A", capacity=MB))
        with pytest.raises(ValueError):
            drive.read(0, 2 * MB)


class TestAutochanger:
    def _changer(self, drives=2, carts=4):
        return Autochanger(
            [TapeDevice(name=f"t{i}", rng=np.random.default_rng(i))
             for i in range(drives)],
            [TapeCartridge(f"VOL{i}") for i in range(carts)],
            rng=np.random.default_rng(9))

    def test_unknown_cartridge(self):
        with pytest.raises(UnknownCartridgeError):
            self._changer().cartridge("NOPE")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            Autochanger([_drive()], [TapeCartridge("A"), TapeCartridge("A")])

    def test_needs_a_drive(self):
        with pytest.raises(ValueError):
            Autochanger([], [TapeCartridge("A")])

    def test_mount_costs_exchange_plus_load(self):
        changer = self._changer()
        drive, seconds = changer.mount("VOL0")
        assert seconds == changer.exchange_time + drive.load_time

    def test_remount_is_free(self):
        changer = self._changer()
        changer.mount("VOL0")
        _, seconds = changer.mount("VOL0")
        assert seconds == 0.0

    def test_lru_drive_eviction(self):
        changer = self._changer(drives=2)
        changer.mount("VOL0")
        changer.mount("VOL1")
        changer.mount("VOL0")  # touch VOL0
        changer.mount("VOL2")  # must evict VOL1 (LRU)
        assert set(changer.mounted_labels()) == {"VOL0", "VOL2"}

    def test_eviction_pays_unload(self):
        changer = self._changer(drives=1)
        changer.mount("VOL0")
        _, seconds = changer.mount("VOL1")
        drive = changer.drives[0]
        assert seconds == (drive.unload_time + changer.exchange_time
                           + drive.load_time)

    def test_access_reads_through(self):
        changer = self._changer()
        t = changer.access("VOL0", 0, MB)
        assert t > MB / changer.drives[0].spec.bandwidth

    def test_estimate_mounted_cheaper_than_shelved(self):
        changer = self._changer()
        changer.mount("VOL0")
        assert (changer.estimate_latency("VOL0", 0)
                < changer.estimate_latency("VOL3", 0))

    def test_negative_exchange_rejected(self):
        with pytest.raises(ValueError):
            Autochanger([_drive()], [TapeCartridge("A")], exchange_time=-1)
