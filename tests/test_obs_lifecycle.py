"""Lifecycle tracing: exact component closure, critical path, zero cost.

The tentpole invariants:

* every traced request's breakdown *closes*: ``fsum([queue_wait,
  *components]) == latency`` exactly (``math.fsum`` is exact, so this is
  an equality, not an approx);
* the critical-path walk satisfies the telescoping identity
  ``makespan == cpu_head + Σ(latency + gap_after)``;
* tracing is zero-cost when attached: virtual times, fault counts and
  per-task stats are bit-identical with and without telemetry
  (property-tested over seeds).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.machine import Machine
from repro.obs import Telemetry, critical_path
from repro.obs.lifecycle import LifecycleRecord
from repro.sim.tasks import EventScheduler, Task, reader_task_async
from repro.sim.units import PAGE_SIZE

FILE_PAGES = 64
PATHS = ["/mnt/ext2/a.dat", "/mnt/cdrom/b.dat", "/mnt/nfs/c.dat"]


def _three_reader_world(seed: int = 4242) -> Machine:
    machine = Machine.unix_utilities(cache_pages=4096, seed=seed)
    machine.boot()
    size = FILE_PAGES * PAGE_SIZE
    machine.ext2.create_text_file("a.dat", size, seed=1)
    machine.cdrom.create_file("b.dat", size)
    machine.nfs.create_text_file("c.dat", size, seed=3)
    return machine


def _run_traced(machine: Machine):
    kernel = machine.kernel
    telemetry = Telemetry()
    kernel.attach_telemetry(telemetry)
    kernel.attach_engine()
    start = kernel.clock.now
    tasks = [Task(f"r{i}", reader_task_async(kernel, path))
             for i, path in enumerate(PATHS)]
    stats = EventScheduler(kernel, tasks).run()
    end = kernel.clock.now
    kernel.detach_engine()
    kernel.detach_telemetry()
    return telemetry, start, end, stats


class TestExactClosure:

    def test_every_record_closes_exactly(self):
        telemetry, _, _, _ = _run_traced(_three_reader_world())
        records = list(telemetry.lifecycle.records)
        assert len(records) > 10
        for rec in records:
            total = math.fsum(
                [rec.queue_wait] + [s for _, s in rec.components])
            assert total == rec.latency  # exact, not approx
            assert math.fsum(rec.attribution().values()) == rec.latency

    def test_records_carry_causal_context(self):
        telemetry, _, _, _ = _run_traced(_three_reader_world())
        records = list(telemetry.lifecycle.records)
        classes = {rec.device_class for rec in records}
        assert {"disk", "cdrom", "nfs"} <= classes
        assert {rec.task for rec in records} <= {"r0", "r1", "r2"}
        for rec in records:
            assert rec.kind == "fault"
            assert rec.cluster >= 1
            assert rec.nbytes == rec.cluster * PAGE_SIZE
            assert rec.submit_time <= rec.start_time <= rec.finish_time
        names = {name for rec in records for name, _ in rec.components}
        assert "transfer" in names

    def test_breakdown_histograms_registered(self):
        telemetry, _, _, _ = _run_traced(_three_reader_world())
        body = telemetry.render_prometheus()
        assert "lifecycle_request_seconds" in body
        assert "lifecycle_component_seconds" in body
        table = telemetry.lifecycle.breakdown()
        # per-class component totals equal the per-class latency totals
        for cls, parts in table.items():
            latencies = math.fsum(
                rec.latency for rec in telemetry.lifecycle.records
                if rec.device_class == cls)
            assert math.fsum(parts.values()) == pytest.approx(
                latencies, rel=1e-12, abs=1e-15)


class TestCriticalPath:

    def test_telescoping_identity_on_real_run(self):
        telemetry, start, end, _ = _run_traced(_three_reader_world())
        report = critical_path(telemetry.lifecycle.records, start, end)
        assert report.links
        accounted = report.cpu_head + report.io_time + report.gap_time
        assert accounted == pytest.approx(report.makespan, rel=1e-9)
        # chain requests are ordered and non-overlapping
        for earlier, later in zip(report.links, report.links[1:]):
            assert (earlier.record.finish_time
                    <= later.record.submit_time + 1e-12)
            assert later.gap_after >= 0.0
        # the slowest device dominates the what-if table
        rows = report.what_if()
        assert rows and rows[0][2] > 0.0

    @staticmethod
    def _rec(rec_id: int, submit: float, start: float,
             finish: float) -> LifecycleRecord:
        return LifecycleRecord(
            id=rec_id, kind="fault", task=None, fs="fs",
            device_class="disk", inode=1, page=0, cluster=1,
            nbytes=PAGE_SIZE, submit_time=submit, start_time=start,
            finish_time=finish,
            components=(("transfer", finish - start),))

    def test_greedy_walk_synthetic(self):
        a = self._rec(0, 0.0, 0.0, 4.0)
        b = self._rec(1, 4.0, 4.5, 6.0)   # 0.5s queued behind a
        c = self._rec(2, 6.5, 6.5, 10.0)
        off = self._rec(3, 0.0, 0.0, 2.0)  # finishes early, not on path
        report = critical_path([off, c, a, b], start=0.0, end=10.0)
        assert [link.record.id for link in report.links] == [0, 1, 2]
        assert [link.gap_after for link in report.links] == [0.0, 0.5, 0.0]
        assert report.cpu_head == 0.0
        assert (report.cpu_head + report.io_time + report.gap_time
                == pytest.approx(report.makespan))

    def test_tie_breaks_prefer_longer_then_newer(self):
        short = self._rec(5, 3.0, 3.0, 4.0)
        long_ = self._rec(4, 1.0, 1.0, 4.0)  # same finish, longer latency
        report = critical_path([short, long_], start=0.0, end=4.0)
        assert report.links[-1].record.id == 4

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            critical_path([], start=2.0, end=1.0)


class TestHsmAndWriteback:

    def test_hsm_stage_in_is_attributed(self):
        machine = Machine.hsm(cache_pages=2048, seed=7)
        machine.boot()
        kernel = machine.kernel
        fs = machine.hsmfs
        inode = fs.create_tape_file("t.dat", 32 * PAGE_SIZE, "VOL000")
        fs.migrate_to_tape(inode)  # authoritative copy on tape only
        telemetry = Telemetry()
        kernel.attach_telemetry(telemetry)
        fd = kernel.open("/mnt/hsm/t.dat")
        kernel.read(fd, 8 * PAGE_SIZE)
        kernel.detach_telemetry()
        kernel.close(fd)
        records = list(telemetry.lifecycle.records)
        assert records
        names = {name for rec in records for name, _ in rec.components}
        # tape→stage-disk writes fold into "stage"; never a raw write_*
        assert "stage" in names
        assert not any(name.startswith("write_") for name in names)
        for rec in records:
            total = math.fsum(
                [rec.queue_wait] + [s for _, s in rec.components])
            assert total == rec.latency

    def test_autochanger_mount_time_accrues(self):
        machine = Machine.hsm(cache_pages=2048, seed=9)
        machine.boot()
        changer = machine.hsmfs.autochanger
        _, duration = changer.mount("VOL001")
        assert duration > 0.0
        assert changer.component_totals["mount"] == pytest.approx(duration)

    def test_writeback_records_under_engine(self):
        machine = Machine.unix_utilities(cache_pages=4096, seed=11)
        machine.boot()
        kernel = machine.kernel
        machine.ext2.create_file("w.dat", 32 * PAGE_SIZE)
        telemetry = Telemetry()
        kernel.attach_telemetry(telemetry)
        kernel.attach_engine()

        def writer():
            fd = kernel.open("/mnt/ext2/w.dat", "r+")
            kernel.write(fd, b"x" * (8 * PAGE_SIZE))
            yield from kernel.fsync_async(fd)
            kernel.close(fd)

        EventScheduler(kernel, [Task("w", writer())]).run()
        kernel.detach_engine()
        kernel.detach_telemetry()
        writebacks = [rec for rec in telemetry.lifecycle.records
                      if rec.kind == "writeback"]
        assert writebacks
        for rec in writebacks:
            assert rec.page == -1
            assert rec.task == "w"
            total = math.fsum(
                [rec.queue_wait] + [s for _, s in rec.components])
            assert total == rec.latency
            assert not any(name.startswith("write_")
                           for name, _ in rec.components)


class TestPredictionJoin:

    def test_records_join_sled_predictions(self):
        machine = _three_reader_world(seed=5)
        kernel = machine.kernel
        telemetry = Telemetry()
        kernel.attach_telemetry(telemetry)
        kernel.attach_engine()
        for path in PATHS:
            fd = kernel.open(path)
            kernel.get_sleds(fd)
            kernel.close(fd)
        tasks = [Task(f"r{i}", reader_task_async(kernel, path))
                 for i, path in enumerate(PATHS)]
        EventScheduler(kernel, tasks).run()
        kernel.detach_engine()
        kernel.detach_telemetry()
        predicted = [rec for rec in telemetry.lifecycle.records
                     if rec.predicted_latency is not None]
        assert predicted
        report = telemetry.accuracy.report()
        assert report.by_component
        assert any(component == "service"
                   for _, component in report.by_component)
        assert any(component == "queue"
                   for _, component in report.by_component)


class TestZeroCostDetached:

    @staticmethod
    def _run(seed: int, npages: int, with_telemetry: bool):
        machine = Machine.unix_utilities(cache_pages=2048, seed=seed)
        machine.boot()
        size = npages * PAGE_SIZE
        machine.ext2.create_text_file("a.dat", size, seed=1)
        machine.nfs.create_text_file("b.dat", size, seed=2)
        kernel = machine.kernel
        telemetry = Telemetry() if with_telemetry else None
        if telemetry is not None:
            kernel.attach_telemetry(telemetry)
        kernel.attach_engine()
        tasks = [
            Task("a", reader_task_async(kernel, "/mnt/ext2/a.dat")),
            Task("b", reader_task_async(kernel, "/mnt/nfs/b.dat")),
        ]
        stats = EventScheduler(kernel, tasks).run()
        kernel.detach_engine()
        if telemetry is not None:
            kernel.detach_telemetry()
            assert len(telemetry.lifecycle) > 0
        return (kernel.clock.now, kernel.counters.hard_faults,
                {name: (s.virtual_time, s.wait_time, s.hard_faults,
                        s.io_waits)
                 for name, s in stats.items()})

    @pytest.mark.parametrize("seed", [1, 17, 923, 31337])
    def test_bit_identical_with_and_without_tracing(self, seed):
        npages = random.Random(seed).randrange(16, 96)
        baseline = self._run(seed, npages, with_telemetry=False)
        traced = self._run(seed, npages, with_telemetry=True)
        assert baseline == traced  # ==, not approx: bit-identical
