"""Unit and property tests for the FITS encoder/decoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fits.format import (
    BLOCK_SIZE,
    BinTableHDU,
    Card,
    FitsFormatError,
    FitsHeader,
    ImageHDU,
    image_params,
    padded,
)


class TestCard:
    def test_card_is_80_bytes(self):
        assert len(Card("SIMPLE", True).to_bytes()) == 80

    @pytest.mark.parametrize("value", [True, False, 42, -7, 3.5, "hello"])
    def test_value_roundtrip(self, value):
        card = Card("KEY", value)
        parsed = Card.from_bytes(card.to_bytes())
        assert parsed.keyword == "KEY"
        assert parsed.value == value

    def test_comment_roundtrip(self):
        card = Card("KEY", 1, "a comment")
        parsed = Card.from_bytes(card.to_bytes())
        assert parsed.comment == "a comment"

    def test_string_with_quote(self):
        card = Card("KEY", "it's")
        assert Card.from_bytes(card.to_bytes()).value == "it's"

    def test_long_keyword_rejected(self):
        with pytest.raises(FitsFormatError):
            Card("TOOLONGKEY", 1).to_bytes()

    def test_wrong_size_rejected(self):
        with pytest.raises(FitsFormatError):
            Card.from_bytes(b"short")

    @given(st.integers(-10**15, 10**15))
    @settings(max_examples=50, deadline=None)
    def test_integer_roundtrip_property(self, value):
        assert Card.from_bytes(Card("K", value).to_bytes()).value == value

    @given(st.text(alphabet=st.characters(min_codepoint=32,
                                          max_codepoint=126),
                   max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_string_roundtrip_property(self, text):
        parsed = Card.from_bytes(Card("K", text).to_bytes())
        assert parsed.value == text.rstrip()


class TestHeader:
    def test_block_aligned(self):
        header = FitsHeader([Card("SIMPLE", True), Card("BITPIX", 16)])
        raw = header.to_bytes()
        assert len(raw) % BLOCK_SIZE == 0

    def test_roundtrip(self):
        header = FitsHeader([Card("SIMPLE", True), Card("BITPIX", 16),
                             Card("NAXIS", 2), Card("NAXIS1", 100),
                             Card("NAXIS2", 50)])
        parsed, consumed = FitsHeader.from_bytes(header.to_bytes())
        assert consumed == len(header.to_bytes())
        assert parsed["BITPIX"] == 16
        assert parsed["NAXIS2"] == 50

    def test_missing_end_detected(self):
        with pytest.raises(FitsFormatError):
            FitsHeader.from_bytes(b" " * BLOCK_SIZE)

    def test_get_set(self):
        header = FitsHeader()
        header.set("BITPIX", 16)
        header.set("BITPIX", 32)  # replaces
        assert header["BITPIX"] == 32
        assert header.get("MISSING", "dflt") == "dflt"
        assert "BITPIX" in header
        with pytest.raises(KeyError):
            header["MISSING"]

    def test_many_cards_multiple_blocks(self):
        header = FitsHeader([Card(f"K{i:06d}"[:8], i) for i in range(50)])
        raw = header.to_bytes()
        assert len(raw) == 2 * BLOCK_SIZE
        parsed, _ = FitsHeader.from_bytes(raw)
        assert len(parsed.cards) == 50


class TestImageHDU:
    def test_standard_cards_generated(self):
        data = np.zeros((4, 8), dtype=np.int16)
        hdu = ImageHDU(data)
        assert hdu.header["SIMPLE"] is True
        assert hdu.header["BITPIX"] == 16
        assert hdu.header["NAXIS"] == 2
        assert hdu.header["NAXIS1"] == 8  # fastest axis = width
        assert hdu.header["NAXIS2"] == 4

    def test_serialised_size_padded(self):
        data = np.zeros((10, 10), dtype=np.int16)
        blob = ImageHDU(data).to_bytes()
        assert len(blob) % BLOCK_SIZE == 0

    def test_data_is_big_endian(self):
        data = np.array([[256]], dtype=np.int16)
        blob = ImageHDU(data).to_bytes()
        payload = blob[BLOCK_SIZE:BLOCK_SIZE + 2]
        assert payload == b"\x01\x00"

    def test_image_params(self):
        hdu = ImageHDU(np.zeros((4, 8), dtype=np.float32))
        bitpix, axes, nbytes = image_params(hdu.header)
        assert bitpix == -32
        assert axes == [8, 4]
        assert nbytes == 4 * 8 * 4

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(FitsFormatError):
            ImageHDU(np.zeros(4, dtype=np.complex64))


class TestBinTable:
    def test_roundtrip(self):
        table = BinTableHDU(columns={
            "COUNTS": np.arange(10, dtype=">i4"),
            "VALUE": np.linspace(0, 1, 10).astype(">f8"),
        })
        blob = table.to_bytes()
        header, consumed = FitsHeader.from_bytes(blob)
        parsed = BinTableHDU.parse(header, blob[consumed:])
        assert np.array_equal(parsed.columns["COUNTS"], np.arange(10))
        assert np.allclose(parsed.columns["VALUE"], np.linspace(0, 1, 10))

    def test_header_describes_layout(self):
        table = BinTableHDU(columns={"A": np.zeros(5, dtype=">i2")})
        header, _ = FitsHeader.from_bytes(table.to_bytes())
        assert header["XTENSION"] == "BINTABLE"
        assert header["TFIELDS"] == 1
        assert header["NAXIS1"] == 2
        assert header["NAXIS2"] == 5
        assert header["TTYPE1"] == "A"

    def test_unequal_columns_rejected(self):
        with pytest.raises(FitsFormatError):
            BinTableHDU(columns={"A": np.zeros(5), "B": np.zeros(6)})

    def test_empty_rejected(self):
        with pytest.raises(FitsFormatError):
            BinTableHDU(columns={})


class TestPadded:
    @given(st.integers(0, 10 * BLOCK_SIZE))
    @settings(max_examples=50, deadline=None)
    def test_padded_properties(self, nbytes):
        out = padded(nbytes)
        assert out % BLOCK_SIZE == 0
        assert 0 <= out - nbytes < BLOCK_SIZE
