"""Tests for the event tracer and its kernel integration."""

import pytest

from repro.machine import Machine
from repro.sim.trace import TraceEvent, Tracer, render_timeline
from repro.sim.units import PAGE_SIZE


class TestTracer:
    def test_emit_and_filter(self):
        tracer = Tracer()
        tracer.emit(1.0, "syscall", "read", 0.001)
        tracer.emit(2.0, "fault", "disk", 0.02, page=3)
        assert len(tracer) == 2
        assert len(tracer.events(kind="fault")) == 1
        assert tracer.events(kind="syscall", detail="read")[0].time == 1.0
        assert tracer.events(since=1.5)[0].kind == "fault"

    def test_attrs(self):
        event = TraceEvent(1.0, "fault", "disk", 0.02,
                           attrs=(("cluster", 4), ("page", 3)))
        assert event.attr("page") == 3
        assert event.attr("nope", "dflt") == "dflt"

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.emit(float(i), "syscall", f"s{i}")
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert tracer.events()[0].detail == "s2"

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_time_by(self):
        tracer = Tracer()
        tracer.emit(0.0, "fault", "disk", 0.5)
        tracer.emit(1.0, "fault", "disk", 0.25)
        tracer.emit(2.0, "fault", "nfs", 1.0)
        totals = tracer.time_by(lambda e: e.detail, kind="fault")
        assert totals == {"disk": 0.75, "nfs": 1.0}

    def test_first(self):
        tracer = Tracer()
        tracer.emit(0.0, "syscall", "open")
        tracer.emit(1.0, "syscall", "read")
        assert tracer.first("syscall").detail == "open"
        assert tracer.first("syscall", "read").time == 1.0
        assert tracer.first("fault") is None

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(0.0, "syscall", "open")
        tracer.clear()
        assert len(tracer) == 0

    def test_filters_compose(self):
        tracer = Tracer()
        tracer.emit(0.0, "syscall", "read")
        tracer.emit(1.0, "syscall", "read")
        tracer.emit(2.0, "syscall", "write")
        tracer.emit(3.0, "fault", "read")  # detail collides across kinds
        events = tracer.events(kind="syscall", detail="read", since=0.5)
        assert len(events) == 1
        assert events[0].time == 1.0


class TestKernelIntegration:
    def _traced_machine(self):
        machine = Machine.unix_utilities(cache_pages=64, seed=501)
        machine.boot()
        tracer = Tracer()
        machine.kernel.attach_tracer(tracer)
        return machine, tracer

    def test_syscalls_traced_by_name(self):
        machine, tracer = self._traced_machine()
        machine.ext2.create_text_file("f", 4 * PAGE_SIZE, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        k.read(fd, 100)
        k.lseek(fd, 0)
        k.close(fd)
        names = [e.detail for e in tracer.events(kind="syscall")]
        assert names == ["open", "read", "lseek", "close"]

    def test_faults_traced_with_cluster_info(self):
        machine, tracer = self._traced_machine()
        machine.ext2.create_text_file("f", 16 * PAGE_SIZE, seed=1)
        machine.kernel.warm_file("/mnt/ext2/f")
        faults = tracer.events(kind="fault")
        assert faults
        assert sum(e.attr("cluster") for e in faults) == 16
        assert all(e.detail == "disk" for e in faults)
        assert all(e.duration > 0 for e in faults)

    def test_ioctls_traced_by_command_name(self):
        machine, tracer = self._traced_machine()
        machine.ext2.create_text_file("f", PAGE_SIZE, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        k.get_sleds(fd)
        k.close(fd)
        assert tracer.first("syscall", "FSLEDS_GET") is not None

    def test_detach_stops_recording(self):
        machine, tracer = self._traced_machine()
        machine.kernel.detach_tracer()
        machine.ext2.create_text_file("f", PAGE_SIZE, seed=1)
        machine.kernel.warm_file("/mnt/ext2/f")
        assert len(tracer.events(kind="fault")) == 0

    def test_warm_run_emits_no_faults(self):
        machine, tracer = self._traced_machine()
        machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1)
        machine.kernel.warm_file("/mnt/ext2/f")
        tracer.clear()
        machine.kernel.warm_file("/mnt/ext2/f")
        assert tracer.events(kind="fault") == []

    def test_disabled_tracer_costs_nothing(self):
        """Tracing must not perturb virtual time: with the tracer detached
        the run is bit-identical to one on a machine that never traced."""
        plain = Machine.unix_utilities(cache_pages=64, seed=501)
        plain.boot()
        plain.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1)

        machine, tracer = self._traced_machine()
        machine.kernel.detach_tracer()
        machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1)

        with plain.kernel.process() as want:
            plain.kernel.warm_file("/mnt/ext2/f")
        with machine.kernel.process() as got:
            machine.kernel.warm_file("/mnt/ext2/f")
        assert len(tracer) == 0
        assert got.elapsed == want.elapsed
        assert got.by_category == want.by_category


class TestTimeline:
    def test_render_empty(self):
        assert render_timeline([]) == "(no events)"

    def test_render_contains_lanes(self):
        events = [
            TraceEvent(0.0, "syscall", "read", 0.0),
            TraceEvent(0.5, "fault", "disk", 0.2),
        ]
        text = render_timeline(events, width=40)
        assert "syscall" in text
        assert "fault" in text
        assert "|" in text or "#" in text

    def test_render_single_event(self):
        # one event: the time span is degenerate but must still render
        text = render_timeline([TraceEvent(1.0, "fault", "disk", 0.0)],
                               width=40)
        assert "fault" in text
        assert "|" in text

    def test_render_zero_duration_uses_tick_glyph(self):
        events = [
            TraceEvent(0.0, "syscall", "open", 0.0),
            TraceEvent(1.0, "fault", "disk", 0.5),
        ]
        text = render_timeline(events, width=40)
        syscall_row = next(l for l in text.splitlines() if "syscall" in l)
        fault_row = next(l for l in text.splitlines() if "fault" in l)
        assert "|" in syscall_row and "#" not in syscall_row
        assert "#" in fault_row
