"""Tests for the budget-based (DRR) fair elevator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.scheduler import (
    ClookScheduler,
    DeviceQueue,
    FairScheduler,
    IoRequest,
    SstfScheduler,
    make_scheduler,
)
from repro.devices.disk import DiskDevice
from repro.sim.clock import VirtualClock
from repro.sim.errors import InvalidArgumentError
from repro.sim.events import EventLoop
from repro.sim.units import GB, KB, MB, PAGE_SIZE


def _req(addr, nbytes=PAGE_SIZE, tenant=None):
    return IoRequest(addr=addr, nbytes=nbytes, tenant=tenant)


class TestFactory:
    def test_fair_by_name(self):
        scheduler = make_scheduler("fair")
        assert isinstance(scheduler, FairScheduler)
        assert isinstance(scheduler.inner, ClookScheduler)
        assert scheduler.per_device and scheduler.tenant_aware

    def test_fair_with_inner(self):
        assert isinstance(make_scheduler("fair:sstf").inner, SstfScheduler)

    def test_bad_inner_rejected(self):
        with pytest.raises(InvalidArgumentError):
            make_scheduler("fair:deadline")

    def test_bad_quantum_rejected(self):
        with pytest.raises(InvalidArgumentError):
            FairScheduler(quantum_bytes=0)

    def test_clone_is_fresh_and_isolated(self):
        scheduler = FairScheduler(quantum_bytes=64 * KB)
        clone = scheduler.clone()
        assert clone is not scheduler
        assert clone.quantum_bytes == 64 * KB
        pending = [_req(0, tenant="a"), _req(MB, tenant="b")]
        clone.take_next(pending, 0)
        assert scheduler._deficits == {}


class TestDelegation:
    """Untenanted / single-tenant workloads run the pure inner policy."""

    ADDRS = [5 * MB, 1 * MB, 9 * MB, 3 * MB]

    def test_untenanted_matches_inner_exactly(self):
        fair = FairScheduler()
        inner = ClookScheduler()
        a = [r.addr for r in fair.order(
            [_req(a) for a in self.ADDRS], 4 * MB)]
        b = [r.addr for r in inner.order(
            [_req(a) for a in self.ADDRS], 4 * MB)]
        assert a == b == [5 * MB, 9 * MB, 1 * MB, 3 * MB]

    def test_single_tenant_matches_inner_exactly(self):
        fair = FairScheduler()
        pending = [_req(a, tenant="only") for a in self.ADDRS]
        order = []
        head = 4 * MB
        while pending:
            request = fair.take_next(pending, head)
            order.append(request.addr)
            head = request.end
        assert order == [5 * MB, 9 * MB, 1 * MB, 3 * MB]

    def test_contention_then_drain_resets_state(self):
        """After a contended period ends, the next single-tenant call
        clears DRR state and delegates."""
        fair = FairScheduler(quantum_bytes=PAGE_SIZE)
        pending = [_req(0, tenant="a"), _req(MB, tenant="b")]
        fair.take_next(pending, 0)
        assert fair._ring  # contended state alive
        pending = [_req(a, tenant="a") for a in self.ADDRS]
        fair.take_next(pending, 4 * MB)
        assert fair._ring == [] and fair._deficits == {}


class TestDeficitRoundRobin:
    def test_tenants_alternate_under_equal_load(self):
        fair = FairScheduler(quantum_bytes=PAGE_SIZE)
        pending = ([_req(i * MB, tenant="a") for i in range(4)]
                   + [_req((10 + i) * MB, tenant="b") for i in range(4)])
        served = []
        head = 0
        while pending:
            request = fair.take_next(pending, head)
            served.append(request.tenant)
            head = request.end
        assert served == ["a", "b", "a", "b", "a", "b", "a", "b"]

    def test_large_requests_cost_multiple_turns(self):
        """A hog with quantum-sized requests cannot starve a tenant
        issuing small ones: bytes served stay roughly proportional."""
        fair = FairScheduler(quantum_bytes=64 * KB)
        pending = ([_req(i * MB, nbytes=256 * KB, tenant="hog")
                    for i in range(4)]
                   + [_req((100 + i) * MB, nbytes=16 * KB, tenant="small")
                      for i in range(16)])
        head = 0
        first_small_at = None
        for n in range(8):
            request = fair.take_next(pending, head)
            head = request.end
            if request.tenant == "small" and first_small_at is None:
                first_small_at = n
        # the small tenant is served within the first few dispatches,
        # not after the hog's whole megabyte
        assert first_small_at is not None and first_small_at <= 2

    def test_served_bytes_accounting(self):
        fair = FairScheduler(quantum_bytes=PAGE_SIZE)
        pending = [_req(0, tenant="a"), _req(MB, tenant="b"),
                   _req(2 * MB, tenant="a")]
        head = 0
        while pending:
            head = fair.take_next(pending, head).end
        assert fair.served_bytes == {"a": 2 * PAGE_SIZE,
                                     "b": PAGE_SIZE}

    def test_drained_tenant_leaves_ring(self):
        fair = FairScheduler(quantum_bytes=PAGE_SIZE)
        pending = [_req(0, tenant="a"), _req(MB, tenant="b"),
                   _req(2 * MB, tenant="b")]
        head = fair.take_next(pending, 0).end  # serves a's only request
        # next call: only b remains -> single-tenant fast path
        request = fair.take_next(pending, head)
        assert request.tenant == "b"
        assert fair._ring == []

    def test_order_does_not_disturb_live_state(self):
        fair = FairScheduler(quantum_bytes=PAGE_SIZE)
        live = [_req(0, tenant="a"), _req(MB, tenant="b")]
        fair.take_next(live, 0)
        deficits = dict(fair._deficits)
        fair.order([_req(i * MB, tenant=t)
                    for i, t in enumerate("abab")], 0)
        assert fair._deficits == deficits

    @given(st.lists(
        st.tuples(st.integers(0, (GB) // PAGE_SIZE - 1),
                  st.integers(1, 64),
                  st.sampled_from(["a", "b", "c", None])),
        min_size=1, max_size=24, unique_by=lambda t: t[0]))
    @settings(max_examples=50, deadline=None)
    def test_take_next_always_drains(self, spec):
        fair = FairScheduler(quantum_bytes=64 * KB)
        pending = [_req(page * PAGE_SIZE, nbytes=np_ * KB, tenant=tenant)
                   for page, np_, tenant in spec]
        expect = sorted(r.addr for r in pending)
        taken, head = [], 0
        while pending:
            request = fair.take_next(pending, head)
            taken.append(request.addr)
            head = request.end
        assert sorted(taken) == expect


class TestDeviceQueueIntegration:
    def _queue(self, scheduler):
        disk = DiskDevice(rng=np.random.default_rng(31))
        loop = EventLoop(VirtualClock())
        return DeviceQueue(disk, loop, scheduler), loop

    def test_per_device_clone(self):
        scheduler = FairScheduler()
        q1, _ = self._queue(scheduler)
        q2, _ = self._queue(scheduler)
        assert q1.scheduler is not scheduler
        assert q2.scheduler is not q1.scheduler

    def test_stateless_scheduler_shared(self):
        scheduler = ClookScheduler()
        q1, _ = self._queue(scheduler)
        assert q1.scheduler is scheduler

    def test_fair_queue_interleaves_tenants(self):
        queue, loop = self._queue(FairScheduler(quantum_bytes=PAGE_SIZE))
        queue.submit(0, PAGE_SIZE, is_write=False)  # in service
        futures = {}
        for i in range(3):
            futures[("a", i)] = queue.submit(
                (1 + i) * MB, PAGE_SIZE, is_write=False, tenant="a")
        for i in range(3):
            futures[("b", i)] = queue.submit(
                (100 + i) * MB, PAGE_SIZE, is_write=False, tenant="b")
        loop.run_until_idle()
        starts = {key: futures[key].value.start_time for key in futures}
        # b's first request is served before a's backlog finishes
        assert starts[("b", 0)] < starts[("a", 2)]

    def test_estimated_delay_scopes_to_tenant(self):
        queue, loop = self._queue(FairScheduler(quantum_bytes=64 * KB))
        queue.submit(0, PAGE_SIZE, is_write=False)  # in service
        for i in range(8):
            queue.submit((1 + i) * MB, 256 * KB, is_write=False,
                         tenant="hog")
        queue.submit(200 * MB, PAGE_SIZE, is_write=False, tenant="small")
        now = loop.clock.now
        blind = queue.estimated_delay(now)
        small = queue.estimated_delay(now, "small")
        hog = queue.estimated_delay(now, "hog")
        # the small tenant does not wait behind the hog's whole backlog
        assert small < hog
        assert small < blind
        assert blind > 0.0
