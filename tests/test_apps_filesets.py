"""Tests for file-set ordering (Steere-style, with live re-estimation)."""

import pytest

from repro.apps.filesets import estimate_set, fileset_wc, iterate_by_latency
from repro.fs.content import SyntheticText
from repro.machine import Machine
from repro.sim.errors import InvalidArgumentError
from repro.sim.units import PAGE_SIZE


def _machine(cache_pages=128):
    machine = Machine.unix_utilities(cache_pages=cache_pages, seed=1301)
    machine.boot()
    return machine


class TestOrdering:
    def test_cached_files_first(self):
        machine = _machine()
        paths = []
        for i in range(4):
            machine.ext2.create_text_file(f"s/f{i}.txt", 8 * PAGE_SIZE,
                                          seed=i)
            paths.append(f"/mnt/ext2/s/f{i}.txt")
        machine.kernel.warm_file(paths[2])
        order = list(iterate_by_latency(machine.kernel, paths))
        assert order[0] == paths[2]
        assert sorted(order) == sorted(paths)

    def test_static_mode_orders_once(self):
        machine = _machine()
        paths = []
        for i in range(3):
            machine.ext2.create_text_file(f"s/f{i}.txt", 8 * PAGE_SIZE,
                                          seed=i)
            paths.append(f"/mnt/ext2/s/f{i}.txt")
        machine.kernel.warm_file(paths[1])
        order = list(iterate_by_latency(machine.kernel, paths,
                                        reestimate=False))
        assert order[0] == paths[1]

    def test_duplicates_rejected(self):
        machine = _machine()
        machine.ext2.create_text_file("f.txt", PAGE_SIZE, seed=1)
        with pytest.raises(InvalidArgumentError):
            list(iterate_by_latency(machine.kernel,
                                    ["/mnt/ext2/f.txt"] * 2))

    def test_estimate_set_shape(self):
        machine = _machine()
        machine.ext2.create_text_file("f.txt", 4 * PAGE_SIZE, seed=1)
        estimates = estimate_set(machine.kernel, ["/mnt/ext2/f.txt"])
        assert len(estimates) == 1
        assert estimates[0][1] > 0

    def test_hsm_batches_by_cartridge(self):
        """Re-estimation drains the mounted cartridge before swapping."""
        machine = Machine.hsm(cache_pages=128, seed=1302)
        machine.boot()
        machine.hsmfs.autochanger.drives = \
            machine.hsmfs.autochanger.drives[:1]
        machine.hsmfs.autochanger._use_order = \
            list(machine.hsmfs.autochanger.drives)
        k = machine.kernel
        paths = []
        for i in range(4):
            label = "VOL000" if i % 2 == 0 else "VOL001"
            inode = machine.hsmfs.create_tape_file(f"s/f{i}.dat",
                                                   4 * PAGE_SIZE, label)
            inode.content = SyntheticText(seed=i, size=4 * PAGE_SIZE)
            paths.append(f"/mnt/hsm/s/f{i}.dat")
        from repro.apps.wc import wc
        labels = []
        for path in iterate_by_latency(k, paths):
            wc(k, path)
            labels.append(machine.hsmfs.autochanger.drives[0].loaded.label)
        # one contiguous run per cartridge: at most one switch
        switches = sum(1 for a, b in zip(labels, labels[1:]) if a != b)
        assert switches == 1


class TestFilesetWc:
    def test_results_complete_and_correct(self):
        machine = _machine()
        paths = []
        for i in range(3):
            machine.ext2.create_text_file(f"s/f{i}.txt", 4 * PAGE_SIZE,
                                          seed=i)
            paths.append(f"/mnt/ext2/s/f{i}.txt")
        results = fileset_wc(machine.kernel, paths)
        assert set(results) == set(paths)
        assert all(r.chars == 4 * PAGE_SIZE for r in results.values())

    def test_plain_mode_keeps_given_order(self):
        machine = _machine()
        paths = []
        for i in range(3):
            machine.ext2.create_text_file(f"s/f{i}.txt", PAGE_SIZE, seed=i)
            paths.append(f"/mnt/ext2/s/f{i}.txt")
        results = fileset_wc(machine.kernel, paths, use_sleds=False)
        assert list(results) == paths
