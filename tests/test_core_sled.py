"""Unit and property tests for Sled and SledVector invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sled import Sled, SledVector


def _sled(offset, length, latency=0.01, bandwidth=1e6):
    return Sled(offset, length, latency, bandwidth)


class TestSled:
    def test_end(self):
        assert _sled(100, 50).end == 150

    def test_delivery_time(self):
        sled = Sled(0, 1000, latency=0.5, bandwidth=1000)
        assert sled.delivery_time() == pytest.approx(1.5)

    def test_same_level(self):
        assert _sled(0, 10).same_level(_sled(10, 10))
        assert not _sled(0, 10).same_level(_sled(10, 10, latency=0.02))

    def test_split_at(self):
        left, right = _sled(0, 100).split_at(40)
        assert (left.offset, left.length) == (0, 40)
        assert (right.offset, right.length) == (40, 60)
        assert left.same_level(right)

    def test_split_outside_rejected(self):
        with pytest.raises(ValueError):
            _sled(0, 100).split_at(0)
        with pytest.raises(ValueError):
            _sled(0, 100).split_at(100)

    @pytest.mark.parametrize("kwargs", [
        dict(offset=-1, length=1, latency=0.1, bandwidth=1.0),
        dict(offset=0, length=0, latency=0.1, bandwidth=1.0),
        dict(offset=0, length=1, latency=-0.1, bandwidth=1.0),
        dict(offset=0, length=1, latency=0.1, bandwidth=0.0),
    ])
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Sled(**kwargs)


class TestSledVectorValidation:
    def test_empty_vector_for_empty_file(self):
        vector = SledVector([], file_size=0)
        assert len(vector) == 0

    def test_empty_vector_for_nonempty_file_rejected(self):
        with pytest.raises(ValueError):
            SledVector([], file_size=10)

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            SledVector([_sled(10, 10)], file_size=20)

    def test_gap_rejected(self):
        with pytest.raises(ValueError):
            SledVector([_sled(0, 10), _sled(20, 10)], file_size=30)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            SledVector([_sled(0, 10), _sled(5, 10)], file_size=15)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SledVector([_sled(0, 10)], file_size=20)

    def test_unsorted_input_is_sorted(self):
        vector = SledVector([_sled(10, 10, latency=0.2), _sled(0, 10)],
                            file_size=20)
        assert [s.offset for s in vector] == [0, 10]


class TestCoalescing:
    def test_adjacent_same_level_merged(self):
        vector = SledVector([_sled(0, 10), _sled(10, 10)], file_size=20)
        assert len(vector) == 1
        assert vector[0].length == 20

    def test_different_levels_kept(self):
        vector = SledVector([_sled(0, 10), _sled(10, 10, latency=0.5)],
                            file_size=20)
        assert len(vector) == 2

    def test_coalesce_disabled(self):
        vector = SledVector([_sled(0, 10), _sled(10, 10)], file_size=20,
                            coalesce=False)
        assert len(vector) == 2

    @given(st.lists(st.tuples(st.integers(1, 20),
                              st.sampled_from([0.001, 0.02, 0.5])),
                    min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_coalesced_vector_properties(self, pieces):
        """Any contiguous latency labelling coalesces into a valid vector
        where adjacent sleds differ and coverage is exact."""
        sleds = []
        offset = 0
        for length, latency in pieces:
            sleds.append(Sled(offset, length, latency, 1e6))
            offset += length
        vector = SledVector(sleds, file_size=offset)
        # exact, gapless coverage
        assert vector[0].offset == 0
        assert vector[len(vector) - 1].end == offset
        for a, b in zip(vector, list(vector)[1:]):
            assert a.end == b.offset
            assert not a.same_level(b)
        assert sum(s.length for s in vector) == offset


class TestQueries:
    def _vector(self):
        return SledVector([
            _sled(0, 100, latency=0.5),
            _sled(100, 100, latency=0.001),
            _sled(200, 50, latency=0.5),
        ], file_size=250)

    def test_sled_at(self):
        vector = self._vector()
        assert vector.sled_at(0).latency == 0.5
        assert vector.sled_at(150).latency == 0.001
        assert vector.sled_at(249).offset == 200

    def test_sled_at_outside_rejected(self):
        with pytest.raises(ValueError):
            self._vector().sled_at(250)

    def test_levels(self):
        assert len(self._vector().levels()) == 2

    def test_bytes_at_or_below_latency(self):
        assert self._vector().bytes_at_or_below_latency(0.01) == 100
        assert self._vector().bytes_at_or_below_latency(1.0) == 250

    def test_min_max_latency(self):
        vector = self._vector()
        assert vector.min_latency() == 0.001
        assert vector.max_latency() == 0.5

    def test_equality(self):
        assert self._vector() == self._vector()
        assert self._vector() != SledVector([_sled(0, 250)], file_size=250)
