"""Unit and property tests for the SLEDs pick library."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pick import (
    active_session,
    sleds_pick_finish,
    sleds_pick_init,
    sleds_pick_next_read,
)
from repro.machine import Machine
from repro.sim.errors import InvalidArgumentError
from repro.sim.units import PAGE_SIZE


def _machine(cache_pages=64):
    machine = Machine.unix_utilities(cache_pages=cache_pages, seed=21)
    machine.boot()
    return machine


def _drain(kernel, fd):
    """Collect every advised (offset, nbytes) without reading."""
    chunks = []
    while True:
        advice = sleds_pick_next_read(kernel, fd)
        if advice is None:
            return chunks
        chunks.append(advice)


class TestSessionLifecycle:
    def test_init_returns_bufsize(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        assert sleds_pick_init(k, fd, 8192) == 8192
        sleds_pick_finish(k, fd)

    def test_double_init_rejected(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 8 * PAGE_SIZE, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        sleds_pick_init(k, fd, 8192)
        with pytest.raises(InvalidArgumentError):
            sleds_pick_init(k, fd, 8192)
        sleds_pick_finish(k, fd)

    def test_next_without_init_rejected(self):
        machine = _machine()
        with pytest.raises(InvalidArgumentError):
            sleds_pick_next_read(machine.kernel, 99)

    def test_finish_is_idempotent(self):
        machine = _machine()
        sleds_pick_finish(machine.kernel, 99)  # no-op

    def test_bad_parameters(self):
        machine = _machine()
        machine.ext2.create_text_file("f", PAGE_SIZE, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        with pytest.raises(InvalidArgumentError):
            sleds_pick_init(k, fd, 0)
        with pytest.raises(InvalidArgumentError):
            sleds_pick_init(k, fd, 100, order="bogus")
        with pytest.raises(InvalidArgumentError):
            sleds_pick_init(k, fd, 100, refresh_every=-1)

    def test_active_session_visibility(self):
        machine = _machine()
        machine.ext2.create_text_file("f", PAGE_SIZE, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        assert active_session(k, fd) is None
        sleds_pick_init(k, fd, 4096)
        assert active_session(k, fd) is not None
        sleds_pick_finish(k, fd)
        assert active_session(k, fd) is None


class TestChunkCoverage:
    def test_cold_file_degenerates_to_linear(self):
        """Paper: with a cold cache the algorithm degenerates to linear
        access of the file."""
        machine = _machine()
        machine.ext2.create_text_file("f", 16 * PAGE_SIZE, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        sleds_pick_init(k, fd, 2 * PAGE_SIZE)
        chunks = _drain(k, fd)
        sleds_pick_finish(k, fd)
        offsets = [c[0] for c in chunks]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0

    def test_cached_chunks_come_first(self):
        machine = _machine(cache_pages=32)
        machine.ext2.create_text_file("f", 64 * PAGE_SIZE, seed=1)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")  # tail cached
        fd = k.open("/mnt/ext2/f")
        vector = k.get_sleds(fd)
        memory_latency = k.sleds_table.memory.latency
        cached_bytes = sum(s.length for s in vector
                           if s.latency == memory_latency)
        sleds_pick_init(k, fd, 2 * PAGE_SIZE)
        chunks = _drain(k, fd)
        sleds_pick_finish(k, fd)
        first = chunks[: max(1, cached_bytes // (2 * PAGE_SIZE))]
        for offset, length in first:
            assert vector.sled_at(offset).latency == memory_latency

    def test_exactly_once_coverage_warm(self):
        machine = _machine(cache_pages=32)
        size = 64 * PAGE_SIZE + 777
        machine.ext2.create_text_file("f", size, seed=1)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        fd = k.open("/mnt/ext2/f")
        sleds_pick_init(k, fd, 3 * PAGE_SIZE)
        chunks = sorted(_drain(k, fd))
        sleds_pick_finish(k, fd)
        pos = 0
        for offset, length in chunks:
            assert offset == pos, "gap or overlap in chunk coverage"
            pos += length
        assert pos == size

    def test_chunks_respect_bufsize(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 10 * PAGE_SIZE, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        sleds_pick_init(k, fd, 4096)
        chunks = _drain(k, fd)
        sleds_pick_finish(k, fd)
        assert all(length <= 4096 for _, length in chunks)

    @given(st.sets(st.integers(0, 31)), st.integers(1, 6 * PAGE_SIZE),
           st.sampled_from(["sleds", "linear", "random"]))
    @settings(max_examples=25, deadline=None)
    def test_exactly_once_any_cache_state_any_order(self, cached, bufsize,
                                                    order):
        """The library returns each byte exactly once regardless of cache
        state, buffer size, or pick order."""
        machine = _machine(cache_pages=64)
        size = 32 * PAGE_SIZE - 123
        machine.ext2.create_text_file("f", size, seed=1)
        k = machine.kernel
        inode = machine.ext2.resolve(["f"])
        for page in cached:
            k.page_cache.insert((inode.id, page))
        fd = k.open("/mnt/ext2/f")
        sleds_pick_init(k, fd, bufsize, order=order)
        chunks = sorted(_drain(k, fd))
        sleds_pick_finish(k, fd)
        pos = 0
        for offset, length in chunks:
            assert offset == pos
            pos += length
        assert pos == size


class TestRefresh:
    def test_refresh_preserves_exactly_once(self):
        machine = _machine(cache_pages=32)
        size = 64 * PAGE_SIZE
        machine.ext2.create_text_file("f", size, seed=1)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f")
        fd = k.open("/mnt/ext2/f")
        sleds_pick_init(k, fd, PAGE_SIZE, refresh_every=5)
        seen = sorted(_drain(k, fd))
        sleds_pick_finish(k, fd)
        pos = 0
        for offset, length in seen:
            assert offset == pos
            pos += length
        assert pos == size

    def test_remaining_counters(self):
        machine = _machine()
        machine.ext2.create_text_file("f", 4 * PAGE_SIZE, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f")
        sleds_pick_init(k, fd, PAGE_SIZE)
        session = active_session(k, fd)
        assert session.remaining_chunks() == 4
        assert session.remaining_bytes() == 4 * PAGE_SIZE
        sleds_pick_next_read(k, fd)
        assert session.remaining_chunks() == 3
        sleds_pick_finish(k, fd)


class TestDeviceTrafficNeverWorse:
    @given(st.sets(st.integers(0, 63), max_size=48),
           st.sampled_from([PAGE_SIZE, 3 * PAGE_SIZE, 16 * PAGE_SIZE]))
    @settings(max_examples=20, deadline=None)
    def test_sleds_device_pages_at_most_linear(self, cached, bufsize):
        """For any initial cache state, a SLEDs-ordered single pass never
        reads more device pages than a linear pass from the same state —
        the 'better citizen' guarantee at page granularity."""
        def run(order_by_sleds):
            machine = _machine(cache_pages=48)
            size = 64 * PAGE_SIZE
            machine.ext2.create_text_file("f", size, seed=2)
            k = machine.kernel
            inode = machine.ext2.resolve(["f"])
            for page in sorted(cached):
                k.page_cache.insert((inode.id, page))
            fd = k.open("/mnt/ext2/f")
            before = k.counters.pages_read
            if order_by_sleds:
                sleds_pick_init(k, fd, bufsize)
                while (advice := sleds_pick_next_read(k, fd)) is not None:
                    offset, nbytes = advice
                    k.lseek(fd, offset)
                    k.read(fd, nbytes)
                sleds_pick_finish(k, fd)
            else:
                while k.read(fd, bufsize):
                    pass
            k.close(fd)
            return k.counters.pages_read - before

        assert run(True) <= run(False)
