"""Tests of fault accounting, readahead clustering, and cache behaviour
through the kernel read path."""

import pytest

from repro.machine import Machine
from repro.sim.units import MB, PAGE_SIZE


def _machine(cache_pages=64):
    machine = Machine.unix_utilities(cache_pages=cache_pages, seed=9)
    machine.boot()
    return machine


class TestFaultAccounting:
    def test_cold_read_faults_then_warm_read_hits(self):
        machine = _machine(cache_pages=256)
        machine.ext2.create_text_file("f.txt", 64 * PAGE_SIZE, seed=1)
        k = machine.kernel
        with k.process() as cold:
            k.warm_file("/mnt/ext2/f.txt")
        with k.process() as warm:
            k.warm_file("/mnt/ext2/f.txt")
        assert cold.hard_faults > 0
        assert warm.hard_faults == 0

    def test_readahead_fetches_clusters(self):
        machine = _machine(cache_pages=256)
        machine.ext2.create_text_file("f.txt", 64 * PAGE_SIZE, seed=1)
        k = machine.kernel
        with k.process() as run:
            k.warm_file("/mnt/ext2/f.txt")
        # far fewer faulting pages than total pages, thanks to clustering
        assert run.hard_faults < 64
        assert run.counters.pages_read == 64
        assert run.counters.readahead_pages == 64 - run.hard_faults

    def test_random_access_defeats_readahead(self):
        machine = _machine(cache_pages=512)
        machine.ext2.create_text_file("f.txt", 256 * PAGE_SIZE, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f.txt")
        with k.process() as run:
            for page in range(0, 256, 32):  # stride defeats sequentiality
                k.lseek(fd, page * PAGE_SIZE)
                k.read(fd, 100)
        k.close(fd)
        assert run.hard_faults == 8

    def test_cluster_never_refetches_cached_pages(self):
        machine = _machine(cache_pages=256)
        machine.ext2.create_text_file("f.txt", 32 * PAGE_SIZE, seed=1)
        k = machine.kernel
        fd = k.open("/mnt/ext2/f.txt")
        # fault in page 8 first, alone
        k.lseek(fd, 8 * PAGE_SIZE)
        k.read(fd, 100)
        pages_before = k.counters.pages_read
        # now scan from 0; clusters must stop at already-cached page 8
        k.lseek(fd, 0)
        k.read(fd, 9 * PAGE_SIZE)
        k.close(fd)
        new_pages = k.counters.pages_read - pages_before
        assert new_pages <= 9

    def test_faults_capped_by_file_pages(self):
        machine = _machine(cache_pages=16)
        machine.ext2.create_text_file("f.txt", 32 * PAGE_SIZE, seed=1)
        k = machine.kernel
        with k.process() as run:
            k.warm_file("/mnt/ext2/f.txt")
        assert run.counters.pages_read == 32


class TestLruPathologyEndToEnd:
    def test_second_linear_pass_gains_nothing(self):
        """Figure 3 through the whole kernel: file 2x the cache."""
        machine = _machine(cache_pages=64)
        machine.ext2.create_text_file("f.txt", 128 * PAGE_SIZE, seed=1)
        k = machine.kernel
        with k.process() as first:
            k.warm_file("/mnt/ext2/f.txt")
        with k.process() as second:
            k.warm_file("/mnt/ext2/f.txt")
        assert second.counters.pages_read == first.counters.pages_read

    def test_small_file_fully_cached(self):
        machine = _machine(cache_pages=64)
        machine.ext2.create_text_file("f.txt", 32 * PAGE_SIZE, seed=1)
        k = machine.kernel
        k.warm_file("/mnt/ext2/f.txt")
        with k.process() as warm:
            k.warm_file("/mnt/ext2/f.txt")
        assert warm.counters.pages_read == 0
        assert warm.by_category.get("disk", 0.0) == 0.0


class TestNoise:
    def test_noise_perturbs_device_times(self):
        loud = Machine.unix_utilities(cache_pages=64, seed=9, noise=0.2)
        loud.boot()
        quiet = Machine.unix_utilities(cache_pages=64, seed=9, noise=0.0)
        quiet.boot()
        for machine in (loud, quiet):
            machine.ext2.create_text_file("f.txt", 64 * PAGE_SIZE, seed=1)
        times = {}
        for name, machine in (("loud", loud), ("quiet", quiet)):
            k = machine.kernel
            with k.process() as run:
                k.warm_file("/mnt/ext2/f.txt")
            times[name] = run.elapsed
        assert times["loud"] > times["quiet"]

    def test_negative_noise_rejected(self):
        from repro.kernel.kernel import Kernel
        from repro.sim.errors import InvalidArgumentError
        with pytest.raises(InvalidArgumentError):
            Kernel(noise=-0.1)

    def test_zero_noise_deterministic(self):
        runs = []
        for _ in range(2):
            machine = Machine.unix_utilities(cache_pages=64, seed=33)
            machine.boot()
            machine.ext2.create_text_file("f.txt", 64 * PAGE_SIZE, seed=1)
            k = machine.kernel
            with k.process() as run:
                k.warm_file("/mnt/ext2/f.txt")
            runs.append(run.elapsed)
        assert runs[0] == runs[1]
