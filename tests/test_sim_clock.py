"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import ClockError, VirtualClock


class TestAdvance:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_advance_returns_new_time(self):
        clock = VirtualClock()
        assert clock.advance(3.0) == 3.0

    def test_zero_advance_is_allowed(self):
        clock = VirtualClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ClockError):
            VirtualClock().advance(-1e-9)


class TestCategories:
    def test_category_totals(self):
        clock = VirtualClock()
        clock.advance(1.0, "disk")
        clock.advance(2.0, "cpu")
        clock.advance(3.0, "disk")
        assert clock.category_total("disk") == 4.0
        assert clock.category_total("cpu") == 2.0

    def test_unknown_category_is_zero(self):
        assert VirtualClock().category_total("never") == 0.0

    def test_categories_snapshot_is_a_copy(self):
        clock = VirtualClock()
        clock.advance(1.0, "disk")
        cats = clock.categories()
        cats["disk"] = 99.0
        assert clock.category_total("disk") == 1.0

    def test_default_category_is_other(self):
        clock = VirtualClock()
        clock.advance(1.0)
        assert clock.category_total("other") == 1.0


class TestSnapshots:
    def test_elapsed_since(self):
        clock = VirtualClock()
        clock.advance(1.0)
        snap = clock.snapshot()
        clock.advance(2.5)
        assert clock.elapsed_since(snap) == 2.5

    def test_elapsed_by_category_omits_zero_deltas(self):
        clock = VirtualClock()
        clock.advance(1.0, "disk")
        snap = clock.snapshot()
        clock.advance(2.0, "cpu")
        deltas = clock.elapsed_by_category(snap)
        assert deltas == {"cpu": 2.0}

    def test_elapsed_by_category_tracks_increments(self):
        clock = VirtualClock()
        clock.advance(1.0, "disk")
        snap = clock.snapshot()
        clock.advance(0.5, "disk")
        assert clock.elapsed_by_category(snap) == {"disk": 0.5}


class TestReset:
    def test_reset_clears_everything(self):
        clock = VirtualClock()
        clock.advance(5.0, "disk")
        clock.reset()
        assert clock.now == 0.0
        assert clock.categories() == {}
