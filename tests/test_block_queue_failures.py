"""Failure-safe dispatch chain of the DeviceQueue under injected faults.

A device error must fail exactly the requests that hit it, keep servicing
the rest of the batch in elevator order, and leave the queue able to take
new work — no wedged futures, no lost completions, at any position in the
batch.  Cancellation (the prefetcher's withdrawal path) gets the same
treatment: a cancelled entry leaves the elevator without disturbing its
neighbours.
"""

import numpy as np
import pytest

from repro.block.scheduler import DeviceQueue, make_scheduler
from repro.devices.disk import DiskDevice
from repro.machine import Machine
from repro.sim.clock import VirtualClock
from repro.sim.errors import IoSimError
from repro.sim.events import EventLoop
from repro.sim.tasks import EventScheduler, Task
from repro.sim.units import PAGE_SIZE


def _queue(scheduler_name="fcfs", seed=21):
    disk = DiskDevice(rng=np.random.default_rng(seed))
    loop = EventLoop(VirtualClock())
    return DeviceQueue(disk, loop, make_scheduler(scheduler_name)), loop


class TestMidBatchFailures:
    @pytest.mark.parametrize("bad_index", [0, 2, 4])
    def test_defect_fails_only_the_overlapping_request(self, bad_index):
        """Five queued requests, a media defect under one of them: that
        future fails with EIO, the other four complete, in order."""
        queue, loop = _queue("fcfs")
        addrs = [i * 8 * PAGE_SIZE for i in range(5)]
        queue.device.mark_bad_range(addrs[bad_index], PAGE_SIZE)
        futures = [queue.submit(addr, PAGE_SIZE, is_write=False)
                   for addr in addrs]
        loop.run_until_idle()
        for i, future in enumerate(futures):
            if i == bad_index:
                assert isinstance(future.exception, IoSimError)
                assert future.exception.errno_name == "EIO"
            else:
                assert future.value.duration > 0.0
        # fcfs: the survivors still completed in submission order
        finishes = [f.value.finish_time for i, f in enumerate(futures)
                    if i != bad_index]
        assert finishes == sorted(finishes)
        assert queue.depth == 0

    def test_consecutive_failures_drain_recursively(self):
        """Head-of-queue failures dispatch the next entry immediately —
        three bad requests in a row must not stall the fourth."""
        queue, loop = _queue("fcfs")
        queue.device.inject_failures(3)
        futures = [queue.submit(i * 4 * PAGE_SIZE, PAGE_SIZE,
                                is_write=False) for i in range(4)]
        loop.run_until_idle()
        assert all(f.exception is not None for f in futures[:3])
        assert futures[3].value.duration > 0.0
        assert queue.depth == 0

    def test_queue_usable_after_failures(self):
        queue, loop = _queue()
        queue.device.inject_failures(1)
        bad = queue.submit(0, PAGE_SIZE, is_write=False)
        loop.run_until_idle()
        assert bad.exception is not None
        good = queue.submit(PAGE_SIZE, PAGE_SIZE, is_write=False)
        loop.run_until_idle()
        assert good.value.duration > 0.0

    def test_failing_service_thunk_mid_batch(self):
        """A service callable that raises (filesystem-level error) fails
        its own future and the dispatch chain continues."""
        queue, loop = _queue("fcfs")

        failure = RuntimeError("fs exploded mid-service")

        def boom():
            raise failure

        first = queue.submit(0, PAGE_SIZE, is_write=False)
        bad = queue.submit(8 * PAGE_SIZE, PAGE_SIZE, is_write=False,
                           service=boom)
        last = queue.submit(16 * PAGE_SIZE, PAGE_SIZE, is_write=False)
        loop.run_until_idle()
        assert first.value.duration > 0.0
        assert bad.exception is failure
        assert last.value.duration > 0.0


class TestCancellation:
    def test_cancel_pending_entry(self):
        queue, loop = _queue("fcfs")
        queue.submit(0, PAGE_SIZE, is_write=False)  # in service
        doomed = queue.submit(8 * PAGE_SIZE, PAGE_SIZE, is_write=False)
        survivor = queue.submit(16 * PAGE_SIZE, PAGE_SIZE, is_write=False)
        epoch = queue.congestion_epoch
        assert queue.cancel(doomed)
        assert doomed.done and doomed.value is None
        assert queue.congestion_epoch > epoch
        loop.run_until_idle()
        assert survivor.value.duration > 0.0

    def test_cancel_unknown_future_is_refused(self):
        queue, loop = _queue()
        from repro.sim.events import IoFuture
        assert not queue.cancel(IoFuture("stranger"))

    def test_cancel_dispatched_request_is_refused(self):
        """In-service requests are beyond recall — the platter is
        already spinning under the head."""
        queue, loop = _queue()
        inflight = queue.submit(0, PAGE_SIZE, is_write=False)
        assert not queue.cancel(inflight)
        loop.run_until_idle()
        assert inflight.value.duration > 0.0


class TestEngineLevelFaults:
    def test_async_reader_sees_eio_once_queue_recovers(self):
        """End to end: an injected fault during a concurrent async
        workload surfaces as EIO in exactly one task; the others
        finish their files."""
        machine = Machine.unix_utilities(cache_pages=512, seed=606)
        machine.boot()
        machine.ext2.create_text_file("f", 32 * PAGE_SIZE, seed=1)
        kernel = machine.kernel
        engine = kernel.attach_engine()
        machine.ext2.device.inject_failures(1)
        outcomes = {}

        def reader(name, start_page):
            fd = kernel.open("/mnt/ext2/f")
            try:
                for page in range(start_page, 32, 2):
                    yield from kernel.pread_async(
                        fd, page * PAGE_SIZE, PAGE_SIZE)
            except IoSimError:
                outcomes[name] = "eio"
            else:
                outcomes[name] = "ok"
            finally:
                kernel.close(fd)

        tasks = [Task(f"r{i}", reader(f"r{i}", i)) for i in range(2)]
        EventScheduler(kernel, tasks, engine=engine).run()
        assert sorted(outcomes.values()) == ["eio", "ok"]
        assert machine.ext2.device.stats.errors == 1
