"""Filesystem substrate: inodes, extents, content stores, and fs types."""

from repro.fs.content import (
    ByteStoreContent,
    FileContent,
    SyntheticText,
    ZeroContent,
)
from repro.fs.filesystem import (
    Ext2Like,
    FileSystem,
    Iso9660Like,
    PageEstimate,
    split_path,
)
from repro.fs.hsmfs import HsmFileState, HsmFs
from repro.fs.inode import (
    Allocator,
    Extent,
    ExtentMap,
    Inode,
    InodeKind,
    make_directory,
    make_file,
)
from repro.fs.nfs import NfsLike

__all__ = [
    "FileContent",
    "SyntheticText",
    "ByteStoreContent",
    "ZeroContent",
    "FileSystem",
    "Ext2Like",
    "Iso9660Like",
    "NfsLike",
    "HsmFs",
    "HsmFileState",
    "PageEstimate",
    "split_path",
    "Inode",
    "InodeKind",
    "Extent",
    "ExtentMap",
    "Allocator",
    "make_file",
    "make_directory",
]
