"""Inodes and extent maps.

An :class:`Inode` is either a regular file or a directory.  Regular files
carry a :class:`FileContent` (the bytes) and an :class:`ExtentMap` (where
each file page lives on the filesystem's device).  Directories carry a
name → inode mapping.

The extent map is what the SLED builder walks: for each page it answers
"which device address holds this page?", which combined with cache
residency yields the SLED vector.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from repro.fs.content import FileContent, ZeroContent
from repro.sim.errors import InvalidArgumentError, NoSpaceError
from repro.sim.units import PAGE_SIZE, bytes_to_pages

_inode_ids = itertools.count(1)


class InodeKind(Enum):
    FILE = "file"
    DIRECTORY = "directory"


@dataclass(frozen=True)
class Extent:
    """``npages`` file pages starting at file page ``file_page`` living at
    device byte address ``device_addr`` (pages are device-contiguous)."""

    file_page: int
    npages: int
    device_addr: int

    def __post_init__(self) -> None:
        if self.file_page < 0 or self.npages <= 0 or self.device_addr < 0:
            raise InvalidArgumentError(f"invalid extent: {self}")

    @property
    def end_page(self) -> int:
        return self.file_page + self.npages

    def addr_of(self, page_index: int) -> int:
        if not self.file_page <= page_index < self.end_page:
            raise InvalidArgumentError(
                f"page {page_index} outside extent {self}")
        return self.device_addr + (page_index - self.file_page) * PAGE_SIZE


class ExtentMap:
    """Ordered, non-overlapping extents covering a file's pages."""

    def __init__(self, extents: list[Extent] | None = None) -> None:
        self.extents: list[Extent] = []
        for extent in extents or []:
            self.append(extent)

    def append(self, extent: Extent) -> None:
        if self.extents and extent.file_page != self.extents[-1].end_page:
            raise InvalidArgumentError(
                f"extent {extent} does not continue at page "
                f"{self.extents[-1].end_page}")
        if not self.extents and extent.file_page != 0:
            raise InvalidArgumentError(
                f"first extent must start at page 0: {extent}")
        self.extents.append(extent)

    @property
    def npages(self) -> int:
        return self.extents[-1].end_page if self.extents else 0

    def addr_of(self, page_index: int) -> int:
        """Device byte address of a file page (binary search)."""
        lo, hi = 0, len(self.extents) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            extent = self.extents[mid]
            if page_index < extent.file_page:
                hi = mid - 1
            elif page_index >= extent.end_page:
                lo = mid + 1
            else:
                return extent.addr_of(page_index)
        raise InvalidArgumentError(
            f"page {page_index} not mapped (file has {self.npages} pages)")

    def extents_in(self, start_page: int, npages: int):
        """Yield ``(file_page, npages, device_addr)`` pieces covering
        ``[start_page, start_page + npages)``, one per underlying extent.

        Addresses within one piece are device-contiguous, so batched
        estimators (``FileSystem.span_estimates``) can reason about whole
        runs instead of asking one page at a time.  O(log extents) to find
        the first piece, O(1) per piece after that.
        """
        end = start_page + npages
        if npages <= 0:
            return
        # binary search for the extent containing start_page
        lo, hi = 0, len(self.extents) - 1
        first = None
        while lo <= hi:
            mid = (lo + hi) // 2
            extent = self.extents[mid]
            if start_page < extent.file_page:
                hi = mid - 1
            elif start_page >= extent.end_page:
                lo = mid + 1
            else:
                first = mid
                break
        if first is None:
            raise InvalidArgumentError(
                f"page {start_page} not mapped (file has {self.npages} pages)")
        for extent in self.extents[first:]:
            if extent.file_page >= end:
                break
            piece_start = max(start_page, extent.file_page)
            piece_end = min(end, extent.end_page)
            yield (piece_start, piece_end - piece_start,
                   extent.addr_of(piece_start))

    def contiguous_run(self, page_index: int, max_pages: int) -> int:
        """Pages starting at ``page_index`` that are device-contiguous,
        capped at ``max_pages``.  Used to batch device I/O per extent."""
        if max_pages <= 0:
            return 0
        run = 1
        addr = self.addr_of(page_index)
        while run < max_pages:
            nxt = page_index + run
            if nxt >= self.npages:
                break
            if self.addr_of(nxt) != addr + run * PAGE_SIZE:
                break
            run += 1
        return run


class Allocator:
    """Bump allocator with optional fragmentation for a device's space.

    ``max_extent_pages`` caps extent length; a fragmented filesystem uses a
    small cap plus an inter-extent gap so consecutive file pages land on
    discontiguous device addresses (aged-filesystem emulation for the seek
    ablations).
    """

    def __init__(self, capacity: int, start: int = 0,
                 max_extent_pages: int = 1 << 20,
                 gap_pages: int = 0) -> None:
        if capacity <= 0 or start < 0 or start >= capacity:
            raise InvalidArgumentError(
                f"bad allocator range: start={start}, capacity={capacity}")
        if max_extent_pages <= 0 or gap_pages < 0:
            raise InvalidArgumentError("bad allocator shape parameters")
        self.capacity = capacity
        self.cursor = start
        self.max_extent_pages = max_extent_pages
        self.gap_pages = gap_pages

    def allocate(self, npages: int) -> list[tuple[int, int]]:
        """Allocate ``npages``; returns ``[(device_addr, npages), ...]``."""
        if npages < 0:
            raise InvalidArgumentError(f"negative allocation: {npages}")
        pieces: list[tuple[int, int]] = []
        remaining = npages
        while remaining > 0:
            take = min(remaining, self.max_extent_pages)
            nbytes = take * PAGE_SIZE
            if self.cursor + nbytes > self.capacity:
                raise NoSpaceError(
                    f"device full: need {nbytes} bytes at {self.cursor} "
                    f"of {self.capacity}")
            pieces.append((self.cursor, take))
            self.cursor += nbytes + self.gap_pages * PAGE_SIZE
            remaining -= take
        return pieces


@dataclass
class Inode:
    """A file or directory."""

    kind: InodeKind
    size: int = 0
    content: FileContent = field(default_factory=ZeroContent)
    extent_map: ExtentMap = field(default_factory=ExtentMap)
    entries: dict[str, "Inode"] = field(default_factory=dict)
    id: int = field(default_factory=lambda: next(_inode_ids))
    atime: float = 0.0
    mtime: float = 0.0

    @property
    def is_dir(self) -> bool:
        return self.kind is InodeKind.DIRECTORY

    @property
    def npages(self) -> int:
        return bytes_to_pages(self.size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Inode #{self.id} {self.kind.value} size={self.size}>"


def make_file(size: int, content: FileContent,
              allocator: Allocator) -> Inode:
    """Create a file inode with ``size`` bytes laid out via ``allocator``."""
    inode = Inode(kind=InodeKind.FILE, size=size, content=content)
    page = 0
    for device_addr, npages in allocator.allocate(bytes_to_pages(size)):
        inode.extent_map.append(Extent(page, npages, device_addr))
        page += npages
    return inode


def make_directory() -> Inode:
    """Create an empty directory inode."""
    return Inode(kind=InodeKind.DIRECTORY)
