"""Filesystem types: the VFS-facing interface plus local implementations.

A :class:`FileSystem` owns a namespace (directory tree of inodes), a device,
and a layout policy.  The kernel talks to it through a narrow interface:

* ``resolve`` / ``create_file`` / ``mkdir`` — namespace operations;
* ``read_pages`` / ``write_pages`` — move pages to/from the device,
  returning virtual seconds (contiguous extents are batched into single
  device accesses, so streaming runs at device bandwidth);
* ``page_estimate`` — the SLED builder's question: which *storage level*
  holds this page right now, and (for levels with dynamic state such as
  tape) what is the current latency estimate.

Workload-construction helpers (``create_file`` and friends) are not
simulated syscalls; they build the experimental world.  The ``read_only``
flag gates the *kernel* write path only, which is how an ISO9660 CD-ROM
refuses writes while still being populate-able when mastering the disc.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass

from repro.devices.base import Device
from repro.devices.cdrom import CdromDevice
from repro.devices.disk import DiskDevice
from repro.fs.content import FileContent, SyntheticText, ZeroContent
from repro.fs.inode import (
    Allocator,
    Inode,
    InodeKind,
    make_directory,
    make_file,
)
from repro.sim.errors import (
    FileExistsSimError,
    FileNotFoundSimError,
    InvalidArgumentError,
    NotADirectorySimError,
)
from repro.sim.units import PAGE_SIZE


def split_path(path: str) -> list[str]:
    """Split a slash path into components, ignoring empties."""
    return [part for part in path.split("/") if part]


@dataclass(frozen=True)
class PageEstimate:
    """Where one page lives and how fast it can be delivered.

    ``device_key`` names a row of the kernel sleds table (e.g. ``"disk"``).
    ``latency``/``bandwidth`` are optional *dynamic* overrides; when None,
    the kernel uses the boot-time characterisation from the sleds table —
    exactly the paper's implementation, which "keeps only a single entry
    per device".  Filesystems with large dynamic state (HSM tape) override.

    ``queue_delay`` is *additive* extra latency from queueing the
    filesystem itself models (e.g. a staging queue); the kernel adds its
    own live per-device queue delay on top when an I/O engine is attached
    (see :func:`repro.core.builder.resolve_estimate`).
    """

    device_key: str
    latency: float | None = None
    bandwidth: float | None = None
    queue_delay: float = 0.0


class FileSystem(ABC):
    """Base class: directory tree + device-backed page I/O."""

    def __init__(self, name: str, device: Device,
                 read_only: bool = False) -> None:
        self.name = name
        self.device = device
        self.read_only = read_only
        self.root = make_directory()
        #: local contribution to :attr:`state_epoch`; bump via bump_epoch()
        self._epoch = 0

    # -- state epoch -------------------------------------------------------

    @property
    def state_epoch(self) -> int:
        """Monotonic counter over every state change that can alter a
        ``page_estimate`` / ``span_estimates`` answer: layout growth,
        truncation, mounting, HSM staging/migration, server-cache churn.
        The kernel stamps cached SLED vectors with this (plus the page
        cache generation) and rebuilds only on mismatch."""
        return self._epoch + self._extra_epoch()

    def bump_epoch(self) -> None:
        """Record a state change that may alter delivery estimates."""
        self._epoch += 1

    def _extra_epoch(self) -> int:
        """Epoch contribution from external state (server caches, tape
        robotics); subclasses with such state override."""
        return 0

    # -- namespace -------------------------------------------------------

    def resolve(self, parts: list[str]) -> Inode:
        """Walk ``parts`` from the root; raises on missing components."""
        node = self.root
        for i, part in enumerate(parts):
            if not node.is_dir:
                raise NotADirectorySimError(
                    "/".join(parts[:i]) or "<root>")
            child = node.entries.get(part)
            if child is None:
                raise FileNotFoundSimError("/".join(parts[: i + 1]))
            node = child
        return node

    def _resolve_parent(self, parts: list[str],
                        create_dirs: bool) -> tuple[Inode, str]:
        if not parts:
            raise InvalidArgumentError("empty path")
        node = self.root
        for i, part in enumerate(parts[:-1]):
            if not node.is_dir:
                raise NotADirectorySimError("/".join(parts[: i + 1]))
            child = node.entries.get(part)
            if child is None:
                if not create_dirs:
                    raise FileNotFoundSimError("/".join(parts[: i + 1]))
                child = make_directory()
                node.entries[part] = child
            node = child
        if not node.is_dir:
            raise NotADirectorySimError("/".join(parts[:-1]))
        return node, parts[-1]

    def create_file(self, path: str | list[str], size: int,
                    content: FileContent | None = None,
                    create_dirs: bool = True) -> Inode:
        """Create (and lay out) a regular file; world-building API."""
        parts = split_path(path) if isinstance(path, str) else list(path)
        parent, name = self._resolve_parent(parts, create_dirs)
        if name in parent.entries:
            raise FileExistsSimError("/".join(parts))
        inode = make_file(size, content or ZeroContent(), self._allocator())
        parent.entries[name] = inode
        return inode

    def create_text_file(self, path: str, size: int, seed: int = 0,
                         plants: dict[int, bytes] | None = None) -> Inode:
        """Convenience: create a file of deterministic pseudo-text."""
        return self.create_file(
            path, size, SyntheticText(seed=seed, size=size, plants=plants))

    def mkdir(self, path: str | list[str]) -> Inode:
        parts = split_path(path) if isinstance(path, str) else list(path)
        parent, name = self._resolve_parent(parts, create_dirs=True)
        existing = parent.entries.get(name)
        if existing is not None:
            if existing.is_dir:
                return existing
            raise FileExistsSimError("/".join(parts))
        child = make_directory()
        parent.entries[name] = child
        return child

    # -- layout / I/O -------------------------------------------------------

    def _allocator(self) -> Allocator:
        """The allocator used for new files; subclasses share one."""
        raise NotImplementedError

    def grow_file(self, inode: Inode, new_size: int) -> None:
        """Extend a file's layout (used by the kernel append path)."""
        if new_size < inode.size:
            raise InvalidArgumentError(
                f"grow_file cannot shrink: {inode.size} -> {new_size}")
        extra_pages = ((new_size + PAGE_SIZE - 1) // PAGE_SIZE) - inode.npages
        if extra_pages > 0:
            page = inode.extent_map.npages
            for device_addr, npages in self._allocator().allocate(extra_pages):
                from repro.fs.inode import Extent
                inode.extent_map.append(Extent(page, npages, device_addr))
                page += npages
        if new_size != inode.size:
            # even a sub-page growth changes the final SLED's length
            self.bump_epoch()
        inode.size = new_size

    def page_estimate(self, inode: Inode, page_index: int) -> PageEstimate:
        """Storage level of one non-resident page.  Default: the device."""
        return PageEstimate(device_key=self.device_key())

    def span_estimates(self, inode: Inode, start_page: int,
                       npages: int) -> list[tuple[int, PageEstimate]]:
        """Batched ``page_estimate``: ``[(run_pages, estimate), ...]``
        covering ``[start_page, start_page + npages)`` in order.

        Contract: runs are non-empty, their lengths sum to ``npages``, and
        every page inside a run has exactly the estimate the per-page
        :meth:`page_estimate` would report — the SLED builder relies on
        this to stay bit-identical with a full page walk.  Runs need not
        be maximal (the builder coalesces), so implementations are free to
        split at extent, zone, or server-block boundaries.

        The default walks page by page (correct for any third-party
        filesystem that only overrides ``page_estimate``) but costs
        O(npages); filesystems that know their layout override this to
        answer in O(runs) — see Ext2Like, NfsLike, and HsmFs.
        """
        runs: list[tuple[int, PageEstimate]] = []
        for idx in range(start_page, start_page + npages):
            estimate = self.page_estimate(inode, idx)
            if runs and runs[-1][1] == estimate:
                runs[-1] = (runs[-1][0] + 1, estimate)
            else:
                runs.append((1, estimate))
        return runs

    def device_key(self) -> str:
        """Sleds-table key for this filesystem's backing level."""
        return self.name

    def device_table(self) -> dict[str, Device]:
        """Every characterisable level, keyed as ``page_estimate`` reports."""
        return {self.device_key(): self.device}

    def observable_devices(self) -> list[Device]:
        """Every device telemetry should observe (no dedup; callers do).

        The default is the backing device; filesystems that route I/O
        through additional hardware (HSM tape drives) extend this.
        """
        return [self.device]

    def characterization_jobs(self) -> dict[str, tuple[Device, int, int]]:
        """How the boot-time lmbench run should probe each level:
        ``{key: (device, probe_start, probe_end)}``.  The default probes
        the whole device; zone-aware filesystems narrow the range."""
        return {key: (device, 0, device.capacity)
                for key, device in self.device_table().items()}

    def static_levels(self) -> dict[str, tuple[float, float]]:
        """Levels whose (latency, bandwidth) are declared rather than
        probed — e.g. a remote server's cache, which the boot-time
        lmbench run cannot exercise deliberately."""
        return {}

    def read_pages(self, inode: Inode, start_page: int, npages: int) -> float:
        """Fetch pages from the device; returns virtual seconds.

        Device-contiguous runs become single accesses, so sequential scans
        stream at bandwidth while scattered fetches pay per-run latency.
        """
        if npages <= 0:
            return 0.0
        seconds = 0.0
        page = start_page
        remaining = npages
        while remaining > 0:
            run = inode.extent_map.contiguous_run(page, remaining)
            addr = inode.extent_map.addr_of(page)
            seconds += self.device.read(addr, run * PAGE_SIZE)
            page += run
            remaining -= run
        return seconds

    def read_pages_merged(self, inode: Inode, start_page: int,
                          npages: int) -> float:
        """Fetch pages as *one* block-layer-merged device request.

        Same page walk as :meth:`read_pages`, but the extent runs are
        collected into a scatter list and submitted through
        :meth:`~repro.devices.base.Device.submit_spans`, so per-request
        device overheads are paid once for the whole union.  A single-run
        union is bit-identical to :meth:`read_pages`.  Only meaningful for
        filesystems whose read path is this class's plain ``read_pages``
        — the block layer never multi-merges stateful read paths (HSM
        staging).
        """
        if npages <= 0:
            return 0.0
        spans: list[tuple[int, int]] = []
        page = start_page
        remaining = npages
        while remaining > 0:
            run = inode.extent_map.contiguous_run(page, remaining)
            addr = inode.extent_map.addr_of(page)
            spans.append((addr, run * PAGE_SIZE))
            page += run
            remaining -= run
        return self.device.read_spans(spans)

    def write_pages(self, inode: Inode, start_page: int, npages: int) -> float:
        """Write pages back to the device; returns virtual seconds."""
        if npages <= 0:
            return 0.0
        seconds = 0.0
        page = start_page
        remaining = npages
        while remaining > 0:
            run = inode.extent_map.contiguous_run(page, remaining)
            addr = inode.extent_map.addr_of(page)
            seconds += self.device.write(addr, run * PAGE_SIZE)
            page += run
            remaining -= run
        return seconds

    def stat_cost(self) -> float:
        """Virtual seconds charged per metadata operation (stat/lookup)."""
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r} on {self.device.name!r}>"


class Ext2Like(FileSystem):
    """A local writable filesystem on a hard disk (the paper's ext2).

    ``zone_aware=True`` implements the paper's §4.1 future version:
    "entries which account for the different bandwidths of different disk
    zones will be added" [Van97] — each zone becomes its own sleds-table
    level (``ext2:z0``, ``ext2:z1``, ...), characterised separately at
    boot, so delivery estimates reflect where on the platter a file sits.
    """

    def __init__(self, device: DiskDevice | None = None, name: str = "ext2",
                 max_extent_pages: int = 1 << 20,
                 gap_pages: int = 0, zone_aware: bool = False) -> None:
        device = device or DiskDevice(name=f"{name}-disk")
        super().__init__(name=name, device=device, read_only=False)
        self.zone_aware = zone_aware
        self._alloc = Allocator(capacity=device.capacity,
                                max_extent_pages=max_extent_pages,
                                gap_pages=gap_pages)

    def _allocator(self) -> Allocator:
        return self._alloc

    def _disk(self) -> DiskDevice:
        assert isinstance(self.device, DiskDevice)
        return self.device

    def page_estimate(self, inode: Inode, page_index: int) -> PageEstimate:
        if not self.zone_aware:
            return super().page_estimate(inode, page_index)
        addr = inode.extent_map.addr_of(page_index)
        zone = self._disk().zone_index(addr)
        return PageEstimate(device_key=f"{self.name}:z{zone}")

    def span_estimates(self, inode: Inode, start_page: int,
                       npages: int) -> list[tuple[int, PageEstimate]]:
        """O(extents + zone crossings): one run per whole span (flat), or
        one run per zone stretch of each extent (zone-aware)."""
        if npages <= 0:
            return []
        if not self.zone_aware:
            return [(npages, PageEstimate(device_key=self.device_key()))]
        disk = self._disk()
        runs: list[tuple[int, PageEstimate]] = []
        for _, piece_pages, addr in inode.extent_map.extents_in(
                start_page, npages):
            done = 0
            while done < piece_pages:
                cur = addr + done * PAGE_SIZE
                zone = disk.zone_index(cur)
                _, zone_end = disk.zone_range(zone)
                # pages whose *start* address is still inside this zone
                take = min(piece_pages - done,
                           (zone_end - cur + PAGE_SIZE - 1) // PAGE_SIZE)
                estimate = PageEstimate(device_key=f"{self.name}:z{zone}")
                if runs and runs[-1][1] == estimate:
                    runs[-1] = (runs[-1][0] + take, estimate)
                else:
                    runs.append((take, estimate))
                done += take
        return runs

    def device_table(self) -> dict[str, Device]:
        if not self.zone_aware:
            return super().device_table()
        return {f"{self.name}:z{i}": self.device
                for i in range(len(self._disk().zones))}

    def characterization_jobs(self) -> dict[str, tuple[Device, int, int]]:
        if not self.zone_aware:
            return super().characterization_jobs()
        disk = self._disk()
        return {f"{self.name}:z{i}": (disk, *disk.zone_range(i))
                for i in range(len(disk.zones))}


class Iso9660Like(FileSystem):
    """A CD-ROM filesystem: contiguous layout, kernel-read-only."""

    def __init__(self, device: CdromDevice | None = None,
                 name: str = "iso9660") -> None:
        device = device or CdromDevice(name=f"{name}-drive")
        super().__init__(name=name, device=device, read_only=True)
        self._alloc = Allocator(capacity=device.capacity)

    def _allocator(self) -> Allocator:
        return self._alloc
