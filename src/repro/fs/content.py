"""File content stores.

The simulated kernel separates *residency* (page cache) and *timing*
(devices) from *bytes*.  Bytes are supplied by a per-inode content object.
Three kinds cover every workload in the paper:

* :class:`SyntheticText` — deterministic pseudo-text generated lazily from a
  seed, so a "128 MB" benchmark file costs no storage until read.  Supports
  *planted* byte strings at chosen offsets (the random single match of the
  paper's Figure 11 grep experiment).
* :class:`ByteStoreContent` — a sparse page store for writable files (the
  FITS images the LHEASOFT tools copy and append to).
* :class:`ZeroContent` — all-zero bytes for metadata-only workloads
  (``find`` trees) where nothing ever reads the data.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.sim.errors import InvalidArgumentError, ReadOnlyFilesystemError
from repro.sim.units import PAGE_SIZE

_VOCABULARY = (
    "the of and a to in is was he for it with as his on be at by had not "
    "are but from or have an they which one you were her all she there "
    "would their we him been has when who will more no if out so said what "
    "up its about into than them can only other new some could time these "
    "two may then do first any my now such like our over man me even most "
    "storage latency descriptor cache device kernel page fault tape disk "
    "seek estimate bandwidth system file read block offset mount stream"
).split()


def _build_corpus(seed: int, size: int) -> bytes:
    """A deterministic text corpus: words joined by spaces, newline every
    ~64 characters, built once and sliced per page."""
    rng = np.random.default_rng(seed)
    words = rng.choice(len(_VOCABULARY), size=size // 4)
    parts: list[str] = []
    line_len = 0
    for widx in words:
        word = _VOCABULARY[int(widx)]
        parts.append(word)
        line_len += len(word) + 1
        if line_len >= 64:
            parts.append("\n")
            line_len = 0
        else:
            parts.append(" ")
    blob = "".join(parts).encode("ascii")
    return blob[:size] if len(blob) >= size else blob.ljust(size, b" ")


_CORPUS_SEED = 0xC0FFEE
_CORPUS_SIZE = 1 << 20
_corpus_cache: bytes | None = None


def _corpus() -> bytes:
    global _corpus_cache
    if _corpus_cache is None:
        _corpus_cache = _build_corpus(_CORPUS_SEED, _CORPUS_SIZE)
    return _corpus_cache


class FileContent(ABC):
    """Byte supplier for one inode."""

    @abstractmethod
    def read(self, offset: int, nbytes: int) -> bytes:
        """Bytes in ``[offset, offset + nbytes)``; short reads are the
        caller's job to avoid (the kernel clamps to file size)."""

    def write(self, offset: int, data: bytes) -> None:
        """Store bytes.  Default: content is immutable."""
        raise ReadOnlyFilesystemError("content store is read-only")

    @staticmethod
    def _check(offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0:
            raise InvalidArgumentError(
                f"negative offset/length: {offset}, {nbytes}")


class ZeroContent(FileContent):
    """All-zero bytes; cheapest possible supplier."""

    def read(self, offset: int, nbytes: int) -> bytes:
        self._check(offset, nbytes)
        return bytes(nbytes)


class SyntheticText(FileContent):
    """Deterministic pseudo-text with optional planted strings.

    ``plants`` maps byte offset → planted bytes; planted regions override
    the corpus text.  The same (seed, offset) always yields the same bytes,
    so repeated reads are consistent without storing the file.
    """

    def __init__(self, seed: int, size: int,
                 plants: dict[int, bytes] | None = None) -> None:
        if size < 0:
            raise InvalidArgumentError(f"negative file size: {size}")
        self.seed = seed
        self.size = size
        self.plants = dict(plants or {})
        for offset, blob in self.plants.items():
            if offset < 0 or offset + len(blob) > size:
                raise InvalidArgumentError(
                    f"planted string at {offset} (+{len(blob)}) "
                    f"escapes file of size {size}")

    def _page(self, page_index: int) -> bytes:
        corpus = _corpus()
        # a cheap multiplicative hash spreads pages across the corpus
        start = ((self.seed * 2654435761 + page_index * 40503)
                 % (len(corpus) - PAGE_SIZE))
        return corpus[start:start + PAGE_SIZE]

    def read(self, offset: int, nbytes: int) -> bytes:
        self._check(offset, nbytes)
        nbytes = max(0, min(nbytes, self.size - offset))
        if nbytes == 0:
            return b""
        first = offset // PAGE_SIZE
        last = (offset + nbytes - 1) // PAGE_SIZE
        chunks = [self._page(p) for p in range(first, last + 1)]
        blob = b"".join(chunks)
        skip = offset - first * PAGE_SIZE
        out = bytearray(blob[skip:skip + nbytes])
        # splice planted strings overlapping [offset, offset+nbytes)
        for pofs, pdata in self.plants.items():
            lo = max(offset, pofs)
            hi = min(offset + nbytes, pofs + len(pdata))
            if lo < hi:
                out[lo - offset:hi - offset] = pdata[lo - pofs:hi - pofs]
        return bytes(out)


class CowContent(FileContent):
    """Copy-on-write overlay: reads fall through to a base content object
    except where writes have materialised pages.

    The kernel upgrades an immutable content store (synthetic text, zeros)
    to this the first time a file is written through a descriptor, so
    read-modify-write works without materialising the whole file.
    """

    def __init__(self, base: FileContent) -> None:
        self.base = base
        self._overlay: dict[int, bytearray] = {}

    def read(self, offset: int, nbytes: int) -> bytes:
        self._check(offset, nbytes)
        if nbytes == 0:
            return b""
        out = bytearray(self.base.read(offset, nbytes).ljust(nbytes, b"\0"))
        pos = 0
        while pos < nbytes:
            abs_off = offset + pos
            pidx, poff = divmod(abs_off, PAGE_SIZE)
            take = min(PAGE_SIZE - poff, nbytes - pos)
            page = self._overlay.get(pidx)
            if page is not None:
                out[pos:pos + take] = page[poff:poff + take]
            pos += take
        return bytes(out)

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        pos = 0
        while pos < len(data):
            abs_off = offset + pos
            pidx, poff = divmod(abs_off, PAGE_SIZE)
            take = min(PAGE_SIZE - poff, len(data) - pos)
            page = self._overlay.get(pidx)
            if page is None:
                page = bytearray(
                    self.base.read(pidx * PAGE_SIZE,
                                   PAGE_SIZE).ljust(PAGE_SIZE, b"\0"))
                self._overlay[pidx] = page
            page[poff:poff + take] = data[pos:pos + take]
            pos += take


class ByteStoreContent(FileContent):
    """Sparse, writable page store (pages default to zero)."""

    def __init__(self, initial: bytes = b"") -> None:
        self._pages: dict[int, bytearray] = {}
        if initial:
            self.write(0, initial)

    def _page(self, page_index: int) -> bytearray:
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_index] = page
        return page

    def read(self, offset: int, nbytes: int) -> bytes:
        self._check(offset, nbytes)
        if nbytes == 0:
            return b""
        out = bytearray(nbytes)
        pos = 0
        while pos < nbytes:
            abs_off = offset + pos
            pidx, poff = divmod(abs_off, PAGE_SIZE)
            take = min(PAGE_SIZE - poff, nbytes - pos)
            page = self._pages.get(pidx)
            if page is not None:
                out[pos:pos + take] = page[poff:poff + take]
            pos += take
        return bytes(out)

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        pos = 0
        while pos < len(data):
            abs_off = offset + pos
            pidx, poff = divmod(abs_off, PAGE_SIZE)
            take = min(PAGE_SIZE - poff, len(data) - pos)
            self._page(pidx)[poff:poff + take] = data[pos:pos + take]
            pos += take
