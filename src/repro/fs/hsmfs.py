"""Hierarchical storage management filesystem.

Files live on tape cartridges in an :class:`~repro.devices.autochanger.Autochanger`;
recently used pages are *staged* onto a disk cache, analogous to the way a
conventional filesystem caches disk pages in RAM (the paper's Figure 3
explicitly notes the two-pass pathology "is similar whether the two levels
are memory and disk ... or disk and tape").  This is the platform for the
paper's claim that SLEDs gains "may be much greater with HSM systems"
(reproduced as extension experiment Ext. A).

Dynamic state exposed through ``page_estimate``:

* staged page → the ``hsm-disk`` level (static table entry);
* unstaged page on a *mounted* cartridge → a locate-time estimate from the
  drive's current position;
* unstaged page on a shelved cartridge → exchange + load + locate estimate.

The disk stage is a fixed number of pages managed LRU across all HSM files.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.devices.autochanger import Autochanger
from repro.devices.disk import DiskDevice
from repro.fs.filesystem import FileSystem, PageEstimate
from repro.fs.inode import Allocator, Inode
from repro.sim.errors import InvalidArgumentError, NoSpaceError
from repro.sim.units import PAGE_SIZE, bytes_to_pages


@dataclass
class HsmFileState:
    """Tape placement of one HSM file."""

    cartridge_label: str
    tape_addr: int


class HsmFs(FileSystem):
    """Tape-resident files with an LRU disk staging cache."""

    def __init__(self, autochanger: Autochanger,
                 stage_device: DiskDevice | None = None,
                 stage_pages: int = 4096,
                 name: str = "hsm") -> None:
        stage_device = stage_device or DiskDevice(name=f"{name}-stage-disk")
        super().__init__(name=name, device=stage_device, read_only=False)
        if stage_pages <= 0:
            raise InvalidArgumentError(
                f"stage capacity must be positive: {stage_pages}")
        self.autochanger = autochanger
        self.stage_pages = stage_pages
        self._alloc = Allocator(capacity=stage_device.capacity)
        self._tape_cursor: dict[str, int] = {
            label: 0 for label in autochanger.shelf}
        self._state: dict[int, HsmFileState] = {}
        #: LRU of staged (inode_id, page) -> inode  (most recent last)
        self._staged: OrderedDict[tuple[int, int], Inode] = OrderedDict()
        #: per-inode staging index mirroring ``_staged`` membership, so
        #: staged_count / evict_staged / span_estimates run in
        #: O(staged-in-inode) instead of O(total staged)
        self._staged_by_inode: dict[int, set[int]] = {}

    def _extra_epoch(self) -> int:
        # drive motion / robot activity changes tape locate estimates
        return self.autochanger.state_version

    # -- placement ---------------------------------------------------------

    def _allocator(self) -> Allocator:
        # Disk extents double as the staging addresses for each file.
        return self._alloc

    def place_on_tape(self, inode: Inode, cartridge_label: str) -> None:
        """Assign a tape home for ``inode`` (called after create_file)."""
        cart = self.autochanger.cartridge(cartridge_label)
        cursor = self._tape_cursor[cartridge_label]
        nbytes = bytes_to_pages(inode.size) * PAGE_SIZE
        if cursor + nbytes > cart.capacity:
            raise NoSpaceError(
                f"cartridge {cartridge_label!r} full "
                f"({cursor} + {nbytes} > {cart.capacity})")
        self._state[inode.id] = HsmFileState(cartridge_label, cursor)
        self._tape_cursor[cartridge_label] = cursor + nbytes
        self.bump_epoch()  # unstaged pages of this file became estimable

    def create_tape_file(self, path: str, size: int, cartridge_label: str,
                         content=None) -> Inode:
        """Create a file whose authoritative copy is on ``cartridge_label``."""
        inode = self.create_file(path, size, content)
        self.place_on_tape(inode, cartridge_label)
        return inode

    def state_of(self, inode: Inode) -> HsmFileState:
        try:
            return self._state[inode.id]
        except KeyError:
            raise InvalidArgumentError(
                f"inode #{inode.id} has no tape placement; "
                f"call place_on_tape first") from None

    # -- staging ------------------------------------------------------------

    def is_staged(self, inode: Inode, page_index: int) -> bool:
        return (inode.id, page_index) in self._staged

    def staged_count(self, inode: Inode) -> int:
        return len(self._staged_by_inode.get(inode.id, ()))

    def staged_set(self, inode_id: int) -> set[int] | frozenset[int]:
        """Staged page indices of one inode — read-only view, O(1)."""
        return self._staged_by_inode.get(inode_id, frozenset())

    def _touch_staged(self, inode: Inode, page_index: int) -> None:
        key = (inode.id, page_index)
        if key in self._staged:
            self._staged.move_to_end(key)

    def _index_drop(self, key: tuple[int, int]) -> None:
        pages = self._staged_by_inode.get(key[0])
        if pages is not None:
            pages.discard(key[1])
            if not pages:
                del self._staged_by_inode[key[0]]

    def _stage_in(self, inode: Inode, page_index: int) -> None:
        key = (inode.id, page_index)
        if key in self._staged:
            self._staged.move_to_end(key)
            return
        while len(self._staged) >= self.stage_pages:
            victim, _ = self._staged.popitem(last=False)
            self._index_drop(victim)
        self._staged[key] = inode
        self._staged_by_inode.setdefault(inode.id, set()).add(page_index)
        self.bump_epoch()

    def evict_staged(self, inode: Inode) -> int:
        """Drop every staged page of a file (stage-out); returns count.

        O(staged-in-inode) via the per-inode index."""
        pages = self._staged_by_inode.pop(inode.id, None)
        if not pages:
            return 0
        for page in pages:
            del self._staged[(inode.id, page)]
        self.bump_epoch()
        return len(pages)

    # -- SLED estimation ----------------------------------------------------------

    def device_key(self) -> str:
        return "hsm-disk"

    def page_estimate(self, inode: Inode, page_index: int) -> PageEstimate:
        """Storage level of one page.

        The latency override for tape-resident pages is the locate (or
        exchange + load + locate) estimate to the *file's tape home*, not
        to the individual page: a per-page estimate would differ on every
        page, preventing SLED coalescing and steering the pick library
        into page-by-page tape locates.  The paper's implementation
        likewise "keeps only a single entry per device"; per-page
        mechanical estimates are explicitly future work (§4.4).
        """
        if self.is_staged(inode, page_index):
            return PageEstimate(device_key="hsm-disk")
        return self._tape_estimate(inode)

    def _tape_estimate(self, inode: Inode) -> PageEstimate:
        """The (shared) estimate for every unstaged page of a file: the
        locate / exchange+load+locate cost to the file's tape home."""
        state = self.state_of(inode)
        latency = self.autochanger.estimate_latency(
            state.cartridge_label, state.tape_addr)
        drive = (self.autochanger.drive_holding(state.cartridge_label)
                 or self.autochanger.drives[0])
        key = ("hsm-tape-mounted"
               if self.autochanger.drive_holding(state.cartridge_label)
               else "hsm-tape-shelved")
        return PageEstimate(device_key=key, latency=latency,
                            bandwidth=drive.spec.bandwidth)

    def span_estimates(self, inode: Inode, start_page: int,
                       npages: int) -> list[tuple[int, PageEstimate]]:
        """O(staged-in-range): staged pages come from the per-inode index
        and every unstaged page of a file shares one tape estimate, so
        there is no reason to ask page by page."""
        if npages <= 0:
            return []
        end = start_page + npages
        staged = sorted(p for p in self.staged_set(inode.id)
                        if start_page <= p < end)
        if not staged:
            return [(npages, self._tape_estimate(inode))]
        disk_est = PageEstimate(device_key="hsm-disk")
        tape_est: PageEstimate | None = None  # computed only if needed
        runs: list[tuple[int, PageEstimate]] = []
        cursor = start_page
        i = 0
        while cursor < end:
            if i < len(staged) and staged[i] == cursor:
                run = 1
                while i + run < len(staged) and staged[i + run] == cursor + run:
                    run += 1
                runs.append((run, disk_est))
                cursor += run
                i += run
            else:
                gap_end = staged[i] if i < len(staged) else end
                if tape_est is None:
                    tape_est = self._tape_estimate(inode)
                runs.append((gap_end - cursor, tape_est))
                cursor = gap_end
        return runs

    def device_table(self):
        table = {"hsm-disk": self.device}
        if self.autochanger.drives:
            table["hsm-tape-mounted"] = self.autochanger.drives[0]
            table["hsm-tape-shelved"] = self.autochanger.drives[0]
        return table

    def observable_devices(self):
        """The stage disk plus every tape drive in the library."""
        return [self.device, *self.autochanger.drives]

    # -- I/O -----------------------------------------------------------------------

    def read_pages(self, inode: Inode, start_page: int, npages: int) -> float:
        """Read pages, staging tape-resident ones onto the disk cache."""
        if npages <= 0:
            return 0.0
        state = self.state_of(inode)
        seconds = 0.0
        page = start_page
        end = start_page + npages
        while page < end:
            staged = self.is_staged(inode, page)
            run = 1
            while page + run < end and self.is_staged(inode, page + run) == staged:
                run += 1
            if staged:
                seconds += self._read_staged_run(inode, page, run)
            else:
                seconds += self._read_tape_run(inode, state, page, run)
            page += run
        return seconds

    def _read_staged_run(self, inode: Inode, page: int, run: int) -> float:
        seconds = super().read_pages(inode, page, run)
        for idx in range(page, page + run):
            self._touch_staged(inode, idx)
        return seconds

    def _read_tape_run(self, inode: Inode, state: HsmFileState,
                       page: int, run: int) -> float:
        addr = state.tape_addr + page * PAGE_SIZE
        seconds = self.autochanger.access(
            state.cartridge_label, addr, run * PAGE_SIZE)
        # Stage-in: copy to the disk cache (write at disk bandwidth).
        seconds += super().write_pages(inode, page, run)
        for idx in range(page, page + run):
            self._stage_in(inode, idx)
        return seconds

    def write_pages(self, inode: Inode, start_page: int, npages: int) -> float:
        """Writes land in the disk stage; migration to tape is explicit
        (see :mod:`repro.hsm.migration`)."""
        seconds = super().write_pages(inode, start_page, npages)
        for idx in range(start_page, start_page + npages):
            self._stage_in(inode, idx)
        return seconds

    def migrate_to_tape(self, inode: Inode) -> float:
        """Copy the whole file to its tape home and drop the stage."""
        state = self.state_of(inode)
        npages = inode.npages
        seconds = super().read_pages(inode, 0, npages)
        seconds += self.autochanger.access(
            state.cartridge_label, state.tape_addr,
            npages * PAGE_SIZE, is_write=True)
        self.evict_staged(inode)
        return seconds
