"""Filesystem consistency checking (an ``fsck`` for the simulated stack).

Experiments mutate filesystems aggressively — growth, truncation, HSM
staging, fragmented allocators — so the test suite (and cautious users)
can assert the structural invariants hold:

* the directory tree is acyclic and every reachable node is a file or
  directory;
* every file's extent map covers exactly its pages, in order, gap-free;
* no two files' extents overlap on the device;
* every extent lies within the device;
* HSM staging state only references resident files.

:func:`check_filesystem` returns a list of human-readable problem
strings (empty = clean), so callers can assert ``== []`` and get a useful
diff on failure.
"""

from __future__ import annotations

from repro.fs.filesystem import FileSystem
from repro.fs.hsmfs import HsmFs
from repro.fs.inode import Inode, InodeKind
from repro.sim.units import PAGE_SIZE, bytes_to_pages


def _walk(fs: FileSystem) -> tuple[list[tuple[str, Inode]], list[str]]:
    """(reachable [(path, inode)], problems) — cycle-safe."""
    problems: list[str] = []
    out: list[tuple[str, Inode]] = []
    seen_dirs: set[int] = set()

    def descend(node: Inode, prefix: str) -> None:
        if node.id in seen_dirs:
            problems.append(f"directory cycle at {prefix or '/'}")
            return
        seen_dirs.add(node.id)
        for name, child in sorted(node.entries.items()):
            path = f"{prefix}/{name}"
            if "/" in name or not name:
                problems.append(f"bad entry name {name!r} in {prefix or '/'}")
            if child.kind is InodeKind.DIRECTORY:
                descend(child, path)
            elif child.kind is InodeKind.FILE:
                out.append((path, child))
            else:  # pragma: no cover - enum is closed today
                problems.append(f"{path}: unknown inode kind {child.kind}")

    descend(fs.root, "")
    return out, problems


def check_filesystem(fs: FileSystem) -> list[str]:
    """Run every structural check; returns problems (empty = clean)."""
    files, problems = _walk(fs)

    claimed: list[tuple[int, int, str]] = []  # (start, end, path)
    for path, inode in files:
        expected_pages = bytes_to_pages(inode.size)
        extents = inode.extent_map.extents
        if inode.extent_map.npages != expected_pages:
            problems.append(
                f"{path}: extent map covers {inode.extent_map.npages} "
                f"pages for a {expected_pages}-page file")
        cursor = 0
        for extent in extents:
            if extent.file_page != cursor:
                problems.append(
                    f"{path}: extent gap at file page {cursor}")
                break
            cursor = extent.end_page
        for extent in extents:
            start = extent.device_addr
            end = start + extent.npages * PAGE_SIZE
            if end > fs.device.capacity:
                problems.append(
                    f"{path}: extent [{start}, {end}) beyond device "
                    f"capacity {fs.device.capacity}")
            claimed.append((start, end, path))

    claimed.sort()
    for (start_a, end_a, path_a), (start_b, end_b, path_b) in zip(
            claimed, claimed[1:]):
        if start_b < end_a:
            problems.append(
                f"device overlap: {path_a} [{start_a}, {end_a}) and "
                f"{path_b} [{start_b}, {end_b})")

    if isinstance(fs, HsmFs):
        file_ids = {inode.id for _, inode in files}
        for inode_id, page in list(fs._staged):
            if inode_id not in file_ids:
                problems.append(
                    f"HSM stage references unreachable inode #{inode_id} "
                    f"page {page}")
        for path, inode in files:
            try:
                fs.state_of(inode)
            except Exception:
                problems.append(f"{path}: HSM file has no tape placement")
    return problems


def check_machine(machine) -> dict[str, list[str]]:
    """Check every mounted filesystem; returns {mount: problems}."""
    return {mount: check_filesystem(fs)
            for mount, fs in machine.kernel.mounts()}
