"""NFS-like remote filesystem.

The client sees a normal namespace, but every page fetch crosses the
network device and every metadata operation pays a round trip (NFSv2-era
clients revalidated attributes constantly; this is what makes ``find`` over
NFS expensive, one of the paper's motivating examples for pruning I/O).

``server_sleds=True`` enables the paper's distributed-systems proposal:
"We propose that SLEDs be the vocabulary of communication between clients
and servers as well as between applications and operating systems."  The
server then reports, per page, whether its own buffer cache holds the data
— a second, cheaper remote level (``nfs-warm``) between the client cache
and the server's disk.
"""

from __future__ import annotations

from repro.devices.network import SERVER_BLOCK, NfsDevice
from repro.fs.filesystem import FileSystem, PageEstimate
from repro.fs.inode import Allocator, Inode
from repro.sim.units import MSEC, PAGE_SIZE


class NfsLike(FileSystem):
    """A mounted NFS filesystem backed by an :class:`NfsDevice`."""

    def __init__(self, device: NfsDevice | None = None,
                 name: str = "nfs", server_sleds: bool = False) -> None:
        device = device or NfsDevice(name=f"{name}-server")
        super().__init__(name=name, device=device, read_only=False)
        self.server_sleds = server_sleds
        self._alloc = Allocator(capacity=device.capacity)
        #: cumulative metadata round trips (every stat/lookup revalidation
        #: crosses the wire on an NFSv2-era client); telemetry exports this
        #: as the ``remote_metadata_ops`` gauge
        self.metadata_ops = 0

    def _allocator(self) -> Allocator:
        return self._alloc

    def _nfs(self) -> NfsDevice:
        assert isinstance(self.device, NfsDevice)
        return self.device

    def stat_cost(self) -> float:
        device = self._nfs()
        self.metadata_ops += 1
        return device.rtt + device.request_overhead

    def _extra_epoch(self) -> int:
        # server-cache membership changes flip pages between the warm and
        # cold remote levels; without server SLEDs estimates are static
        return self._nfs().cache_version if self.server_sleds else 0

    def page_estimate(self, inode: Inode, page_index: int) -> PageEstimate:
        if self.server_sleds:
            addr = inode.extent_map.addr_of(page_index)
            if self._nfs().server_cached(addr, PAGE_SIZE):
                return PageEstimate(device_key=f"{self.name}-warm")
        return PageEstimate(device_key=self.device_key())

    def span_estimates(self, inode: Inode, start_page: int,
                       npages: int) -> list[tuple[int, PageEstimate]]:
        """O(extents + server blocks): pages are judged warm or cold per
        64 KB server block, not one at a time."""
        if npages <= 0:
            return []
        cold = PageEstimate(device_key=self.device_key())
        if not self.server_sleds:
            return [(npages, cold)]
        device = self._nfs()
        warm = PageEstimate(device_key=f"{self.name}-warm")
        runs: list[tuple[int, PageEstimate]] = []

        def push(take: int, estimate: PageEstimate) -> None:
            if runs and runs[-1][1] == estimate:
                runs[-1] = (runs[-1][0] + take, estimate)
            else:
                runs.append((take, estimate))

        for _, piece_pages, addr in inode.extent_map.extents_in(
                start_page, npages):
            done = 0
            while done < piece_pages:
                cur = addr + done * PAGE_SIZE
                # pages of this piece sharing cur's server block
                block_end = (cur // SERVER_BLOCK + 1) * SERVER_BLOCK
                take = min(piece_pages - done,
                           max(1, (block_end - cur) // PAGE_SIZE))
                cached = device.server_cached(cur, PAGE_SIZE)
                push(take, warm if cached else cold)
                done += take
        return runs

    def static_levels(self) -> dict[str, tuple[float, float]]:
        if not self.server_sleds:
            return {}
        device = self._nfs()
        warm_latency = device.rtt + device.request_overhead + 0.5 * MSEC
        return {f"{self.name}-warm": (warm_latency, device.link_bandwidth)}
