"""HSM migration policies.

A real HSM system (the paper cites HPSS and the Linux migration filesystem
[Sch00]) runs a daemon that stages cold files out to tape and recalls hot
ones.  We model the policy layer explicitly so the HSM extension
experiments can set up "file on tape, partially staged" states
deliberately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fs.hsmfs import HsmFs
from repro.fs.inode import Inode, InodeKind


@dataclass
class MigrationReport:
    """What one migration sweep did."""

    migrated: list[str] = field(default_factory=list)
    seconds: float = 0.0


class MigrationDaemon:
    """Explicit-trigger migration: no background thread, the experiment
    calls :meth:`sweep` when it wants the daemon to have run."""

    def __init__(self, fs: HsmFs, cold_after: float = 3600.0,
                 telemetry=None) -> None:
        if cold_after < 0:
            raise ValueError(f"cold_after must be >= 0: {cold_after}")
        self.fs = fs
        self.cold_after = cold_after
        #: optional repro.obs.telemetry.Telemetry sink for migration stats
        self.telemetry = telemetry

    def _walk(self, node: Inode, prefix: str) -> list[tuple[str, Inode]]:
        out: list[tuple[str, Inode]] = []
        for name, child in sorted(node.entries.items()):
            path = f"{prefix}/{name}"
            if child.kind is InodeKind.DIRECTORY:
                out.extend(self._walk(child, path))
            else:
                out.append((path, child))
        return out

    def sweep(self, now: float) -> MigrationReport:
        """Migrate every file idle since ``now - cold_after`` to tape.

        Returns a report; the caller charges ``report.seconds`` to the
        clock if it wants migration time on the timeline (a background
        daemon's time usually is not charged to any foreground process).
        """
        report = MigrationReport()
        for path, inode in self._walk(self.fs.root, ""):
            if inode.size == 0:
                continue
            if now - inode.atime < self.cold_after:
                continue
            if self.fs.staged_count(inode) == 0:
                continue  # already fully on tape
            report.seconds += self.fs.migrate_to_tape(inode)
            report.migrated.append(path)
        if self.telemetry is not None and report.migrated:
            self.telemetry.on_migration(len(report.migrated), report.seconds)
        return report

    def stage_out(self, inode: Inode) -> float:
        """Force one file out to tape immediately; returns seconds."""
        seconds = self.fs.migrate_to_tape(inode)
        if self.telemetry is not None:
            self.telemetry.on_migration(1, seconds)
        return seconds
