"""Hierarchical storage management: migration policy over the HSM fs."""

from repro.hsm.migration import MigrationDaemon, MigrationReport

__all__ = ["MigrationDaemon", "MigrationReport"]
