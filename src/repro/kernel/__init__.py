"""Simulated kernel: syscalls, page cache wiring, SLEDs ioctls."""

from repro.kernel.ioctl import FSLEDS_FILL, FSLEDS_GET, UnknownIoctlError
from repro.kernel.kernel import (
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    Kernel,
    OpenFile,
    StatResult,
)
from repro.kernel.stats import KernelCounters, ProcessRun

__all__ = [
    "Kernel",
    "OpenFile",
    "StatResult",
    "KernelCounters",
    "ProcessRun",
    "FSLEDS_FILL",
    "FSLEDS_GET",
    "UnknownIoctlError",
    "SEEK_SET",
    "SEEK_CUR",
    "SEEK_END",
]
