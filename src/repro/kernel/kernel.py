"""The simulated kernel: VFS, syscalls, page cache, fault accounting.

This module stands in for the paper's modified Linux 2.2 kernel.  It owns

* a mount table (``/`` plus any number of ext2/ISO9660/NFS/HSM mounts);
* the global page cache and per-open-file readahead state;
* the syscall surface the applications use: ``open``, ``read``, ``write``,
  ``lseek``, ``close``, ``stat``, ``listdir``, ``unlink``, ``fsync``,
  ``ioctl``;
* the two SLEDs ioctls (``FSLEDS_FILL``, ``FSLEDS_GET``);
* accounting: hard page faults, per-category virtual time, and the
  :meth:`process` measurement window used by every experiment.

Timing model
------------
* A page-cache **hit** costs memory copy time (the paper's Table 2 memory
  row: lmbench latency + bcopy bandwidth).
* A **miss** is a hard fault: the kernel reads a readahead *cluster* of
  device-contiguous pages in one device access, so linear scans stream at
  device bandwidth while random access pays per-access latency.
* Syscalls cost a fixed CPU overhead; applications charge their own
  processing CPU through :meth:`charge_cpu`.
* An optional multiplicative noise model (seeded, deterministic) perturbs
  device times to emulate "the somewhat random nature of page replacement
  algorithms and background system activity" the paper averages over.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import wraps
from typing import Iterator

from repro.cache.page_cache import PageCache
from repro.cache.readahead import ReadaheadWindow
from repro.core.builder import build_sled_vector
from repro.core.sled import SledVector
from repro.core.sled_table import SledTable
from repro.devices import batch as device_batch
from repro.devices.memory import MemoryDevice
from repro.fs.content import ByteStoreContent
from repro.fs.filesystem import FileSystem, split_path
from repro.fs.inode import Inode
from repro.kernel.ioctl import FSLEDS_FILL, FSLEDS_GET, UnknownIoctlError
from repro.kernel.stats import KernelCounters, ProcessRun
from repro.sim.clock import VirtualClock
from repro.sim.errors import (
    BadFileDescriptorError,
    FileNotFoundSimError,
    InvalidArgumentError,
    IsADirectorySimError,
    ReadOnlyFilesystemError,
)
from repro.sim.rng import RngStreams
from repro.sim.units import PAGE_SIZE, USEC, page_span

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


def _syscall_span(name: str):
    """Wrap a syscall method in a telemetry span covering its full
    virtual duration (a no-op when no telemetry is attached)."""
    def deco(fn):
        @wraps(fn)
        def wrapper(self, *args, **kwargs):
            tele = self.telemetry
            if tele is None:
                return fn(self, *args, **kwargs)
            span = tele.syscall_begin(name, self.clock.now)
            try:
                return fn(self, *args, **kwargs)
            finally:
                tele.syscall_end(span, self.clock.now)
        return wrapper
    return deco


@dataclass
class OpenFile:
    """Kernel state for one open descriptor."""

    fd: int
    path: str
    fs: FileSystem
    inode: Inode
    pos: int = 0
    writable: bool = False
    append: bool = False
    readahead: ReadaheadWindow = field(default_factory=ReadaheadWindow)


@dataclass(frozen=True)
class StatResult:
    """What ``stat`` returns."""

    path: str
    size: int
    is_dir: bool
    inode_id: int


class Kernel:
    """A single simulated machine: devices + cache + namespace + clock."""

    def __init__(self, cache_pages: int = 16 * 1024,
                 policy: str = "lru",
                 memory: MemoryDevice | None = None,
                 rng: RngStreams | None = None,
                 noise: float = 0.0,
                 syscall_overhead: float = 2.0 * USEC,
                 readahead_min_pages: int = 4,
                 readahead_max_pages: int = 16,
                 writeback_threshold_pages: int = 256,
                 io_scheduler="clook",
                 residency: str = "runs",
                 event_loop: str = "bucket",
                 cache_shards: int = 1,
                 tenant_limits=None) -> None:
        if noise < 0:
            raise InvalidArgumentError(f"noise must be >= 0: {noise}")
        if readahead_min_pages < 1:
            raise InvalidArgumentError(
                f"readahead_min_pages must be >= 1: {readahead_min_pages}")
        self.clock = VirtualClock()
        self.memory = memory or MemoryDevice()
        self.page_cache = PageCache(cache_pages, policy,
                                    residency=residency,
                                    shards=cache_shards,
                                    tenant_limits=tenant_limits)
        #: which event-loop implementation attach_engine builds
        #: ("bucket" calendar queue, or the reference "heap")
        self.event_loop_kind = event_loop
        self.sleds_table = SledTable()
        self.counters = KernelCounters()
        self.rng = rng or RngStreams()
        self.noise = noise
        self.syscall_overhead = syscall_overhead
        self.readahead_min_pages = readahead_min_pages
        self.readahead_max_pages = readahead_max_pages
        self.writeback_threshold_pages = writeback_threshold_pages
        from repro.block.scheduler import IoScheduler, make_scheduler
        self.io_scheduler = (io_scheduler
                             if isinstance(io_scheduler, IoScheduler)
                             else make_scheduler(io_scheduler))
        self._mounts: list[tuple[tuple[str, ...], FileSystem]] = []
        self._fds: dict[int, OpenFile] = {}
        self._next_fd = 3
        #: inode.id -> (fs, inode, set of dirty page indices)
        self._dirty: dict[int, tuple[FileSystem, Inode, set[int]]] = {}
        #: inode.id -> (stamp, vector): FSLEDS_GET results cached until the
        #: stamp — (cache generation, fs state epoch, sleds-table version,
        #: and, with an engine attached, the per-device congestion epochs)
        #: — moves, making refetch O(changed-state) instead of O(file-pages)
        self._sled_cache: dict[int, tuple[tuple, SledVector]] = {}
        #: optional event tracer (see repro.sim.trace); None = no tracing
        self.tracer = None
        #: optional telemetry facade (see repro.obs.telemetry); None = off.
        #: Every telemetry hook below is purely observational: attached or
        #: not, virtual timings are bit-identical.
        self.telemetry = None
        #: optional discrete-event I/O engine (see repro.sim.engine);
        #: None = the synchronous time model, bit-identical to the
        #: pre-engine substrate.  Set via attach_engine()/IoEngine.attach().
        self.engine = None
        #: name of the task currently executing under a scheduler
        #: (repro.sim.tasks sets it around each slice).  Observability
        #: attribution only; never consulted by the timing model.
        self.current_task = None
        #: tenant of the task currently executing (set alongside
        #: current_task).  Drives per-tenant accounting, cache ownership,
        #: and QoS classes; None (untenanted) leaves every tenant path
        #: dormant and the timing model only sees it through explicitly
        #: tenant-aware schedulers.
        self.current_tenant = None
        #: optional SLED-driven prefetcher (see repro.sim.prefetch);
        #: None = off.  When set, cache hits notify it so it can count
        #: speculative fetches that actually got used.
        self.prefetcher = None
        #: optional wall-clock hot-path profiler (repro.obs.profile);
        #: None = off.  Measures host CPU time only — virtual timings
        #: are bit-identical with a profiler attached or not.
        self.profiler = None
        #: lazily-built TelemetryBatch for the engine's batched fault
        #: path (repro.obs.telemetry); rebuilt if telemetry is swapped.
        #: Never allocated while telemetry is detached (zero-cost rule).
        self._telemetry_batch = None

    # ------------------------------------------------------------------
    # mounts and path resolution
    # ------------------------------------------------------------------

    def mount(self, path: str, fs: FileSystem) -> None:
        """Attach ``fs`` at ``path`` (longest-prefix match wins).

        The mount-point directory is created in the covering filesystem,
        as ``mkdir /mnt/ext2`` would precede ``mount`` on a real system.
        """
        prefix = tuple(split_path(path))
        if any(p == prefix for p, _ in self._mounts):
            raise InvalidArgumentError(f"mount point {path!r} already in use")
        covering = None
        for existing_prefix, existing_fs in self._mounts:
            if (len(existing_prefix) < len(prefix)
                    and prefix[: len(existing_prefix)] == existing_prefix
                    and (covering is None
                         or len(existing_prefix) > len(covering[0]))):
                covering = (existing_prefix, existing_fs)
        if covering is not None:
            rel = list(prefix[len(covering[0]):])
            covering[1].mkdir(rel)
        self._mounts.append((prefix, fs))
        self._mounts.sort(key=lambda entry: len(entry[0]), reverse=True)
        # (re)mounting changes what paths resolve to; stale vectors built
        # against a previous attachment of this fs must not survive
        fs.bump_epoch()

    def mounts(self) -> list[tuple[str, FileSystem]]:
        """(mount path, fs) pairs, most specific first."""
        return [("/" + "/".join(prefix), fs) for prefix, fs in self._mounts]

    def resolve(self, path: str) -> tuple[FileSystem, Inode, list[str]]:
        """(fs, inode, fs-relative parts) for an absolute path."""
        parts = split_path(path)
        for prefix, fs in self._mounts:
            if tuple(parts[: len(prefix)]) == prefix:
                rel = parts[len(prefix):]
                return fs, fs.resolve(rel), rel
        raise FileNotFoundSimError(f"{path!r}: no filesystem mounted")

    def fs_of(self, path: str) -> FileSystem:
        """The filesystem an absolute path lives on."""
        parts = split_path(path)
        for prefix, fs in self._mounts:
            if tuple(parts[: len(prefix)]) == prefix:
                return fs
        raise FileNotFoundSimError(f"{path!r}: no filesystem mounted")

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Start recording events into ``tracer`` (repro.sim.trace)."""
        self.tracer = tracer

    def detach_tracer(self) -> None:
        self.tracer = None

    def attach_telemetry(self, telemetry) -> None:
        """Attach a :class:`repro.obs.telemetry.Telemetry` (after mounting,
        so it can observe every filesystem's devices)."""
        telemetry.attach(self)

    def detach_telemetry(self) -> None:
        if self.telemetry is not None:
            self.telemetry.detach()

    def attach_engine(self, engine=None, block=None):
        """Attach (and return) a discrete-event I/O engine.

        With an engine attached, the ``*_async`` syscalls queue requests on
        per-device elevators and block on completions, and ``FSLEDS_GET``
        folds live queue state into its latency estimates.  The plain
        blocking syscalls keep working either way.  ``block`` (a
        :class:`~repro.block.merge.BlockConfig`) enables the merge/plug
        front-end; only consulted when ``engine`` is None.
        """
        from repro.sim.engine import IoEngine
        if engine is None:
            engine = IoEngine(self, block=block)
        engine.attach()
        if self.profiler is not None:
            engine.loop.profiler = self.profiler
        return engine

    def detach_engine(self) -> None:
        if self.engine is not None:
            self.engine.detach()

    def charge_cpu(self, seconds: float) -> None:
        """Applications charge their processing time here."""
        self.clock.advance(seconds, "cpu")

    def _syscall(self, name: str = "syscall") -> None:
        self.counters.syscalls += 1
        self.clock.advance(self.syscall_overhead, "cpu")
        if self.tracer is not None:
            self.tracer.emit(self.clock.now, "syscall", name,
                             self.syscall_overhead)

    def _charge_memory(self, nbytes: int) -> None:
        self.clock.advance(self.memory.read(0, nbytes), "memory")

    def _noisy(self, seconds: float) -> float:
        if self.noise <= 0.0 or seconds <= 0.0:
            return seconds
        factor = 1.0 + self.noise * float(
            self.rng.stream("kernel-noise").exponential(1.0))
        return seconds * factor

    def _traced_service(self, fs, key: tuple, raw_thunk):
        """Wrap a device-service thunk for the event engine so that,
        with telemetry attached at dispatch time, the per-component
        seconds the devices charge are stashed for the lifecycle record
        under ``key``.  With telemetry detached the wrapper adds nothing
        but an attribute read — timings are bit-identical either way.
        """
        from repro.obs.lifecycle import component_delta, snapshot_components

        def service() -> float:
            telemetry = self.telemetry
            if telemetry is None:
                return self._noisy(raw_thunk())
            before = snapshot_components(fs)
            seconds = self._noisy(raw_thunk())
            telemetry.lifecycle.stash(key, component_delta(before))
            return seconds

        return service

    def _fd(self, fd: int) -> OpenFile:
        try:
            return self._fds[fd]
        except KeyError:
            raise BadFileDescriptorError(f"fd {fd} is not open") from None

    def _charge_metadata(self, fs: FileSystem) -> None:
        """Charge one metadata operation (stat/lookup) on ``fs``."""
        cost = fs.stat_cost()
        self.clock.advance(cost, fs.device.time_category)
        if self.telemetry is not None:
            self.telemetry.on_metadata(fs.name, cost)

    # ------------------------------------------------------------------
    # namespace syscalls
    # ------------------------------------------------------------------

    @_syscall_span("open")
    def open(self, path: str, mode: str = "r") -> int:
        """Open ``path``; modes ``r``, ``r+``, ``w``, ``a``."""
        self._syscall("open")
        if mode not in ("r", "r+", "w", "a"):
            raise InvalidArgumentError(f"unsupported open mode {mode!r}")
        writable = mode != "r"
        fs = self.fs_of(path)
        if writable and fs.read_only:
            raise ReadOnlyFilesystemError(
                f"{path!r}: filesystem {fs.name!r} is read-only")
        self._charge_metadata(fs)
        parts = split_path(path)
        rel = parts[len(self._mount_prefix_of(fs)):]
        try:
            inode = fs.resolve(rel)
        except FileNotFoundSimError:
            if mode not in ("w", "a"):
                raise
            inode = fs.create_file(rel, size=0, content=ByteStoreContent())
        if inode.is_dir:
            raise IsADirectorySimError(path)
        if mode == "w" and inode.size > 0:
            self._truncate(fs, inode)
        window = ReadaheadWindow(
            min_pages=min(self.readahead_min_pages,
                          self.readahead_max_pages),
            max_pages=self.readahead_max_pages)
        of = OpenFile(
            fd=self._next_fd, path=path, fs=fs, inode=inode,
            writable=writable, append=(mode == "a"), readahead=window)
        if mode == "a":
            of.pos = inode.size
        self._fds[of.fd] = of
        self._next_fd += 1
        inode.atime = self.clock.now
        return of.fd

    def _mount_prefix_of(self, fs: FileSystem) -> tuple[str, ...]:
        for prefix, mounted in self._mounts:
            if mounted is fs:
                return prefix
        raise InvalidArgumentError(f"filesystem {fs.name!r} is not mounted")

    def _truncate(self, fs: FileSystem, inode: Inode) -> None:
        self.page_cache.invalidate_inode(inode.id)
        self._dirty.pop(inode.id, None)
        self._sled_cache.pop(inode.id, None)
        inode.size = 0
        fs.bump_epoch()  # the file's extent coverage changed
        if not isinstance(inode.content, ByteStoreContent):
            inode.content = ByteStoreContent()

    @_syscall_span("close")
    def close(self, fd: int) -> None:
        self._syscall("close")
        of = self._fd(fd)
        self._flush_inode(of.inode.id)
        del self._fds[fd]

    @_syscall_span("unlink")
    def unlink(self, path: str) -> None:
        """Remove a file, its cached pages, and pending dirty state."""
        self._syscall("unlink")
        fs, inode, rel = self.resolve(path)
        if inode.is_dir:
            raise IsADirectorySimError(path)
        parent = fs.resolve(rel[:-1])
        del parent.entries[rel[-1]]
        self.page_cache.invalidate_inode(inode.id)
        self._dirty.pop(inode.id, None)
        self._sled_cache.pop(inode.id, None)

    @_syscall_span("stat")
    def stat(self, path: str) -> StatResult:
        self._syscall("stat")
        fs, inode, _ = self.resolve(path)
        self._charge_metadata(fs)
        return StatResult(path=path, size=inode.size,
                          is_dir=inode.is_dir, inode_id=inode.id)

    @_syscall_span("listdir")
    def listdir(self, path: str) -> list[str]:
        """Names in a directory, including any mount points grafted there."""
        self._syscall("listdir")
        fs, inode, _ = self.resolve(path)
        self._charge_metadata(fs)
        if not inode.is_dir:
            raise InvalidArgumentError(f"{path!r} is not a directory")
        names = set(inode.entries)
        here = tuple(split_path(path))
        for prefix, _ in self._mounts:
            if len(prefix) == len(here) + 1 and prefix[: len(here)] == here:
                names.add(prefix[-1])
        return sorted(names)

    # ------------------------------------------------------------------
    # data syscalls
    # ------------------------------------------------------------------

    @_syscall_span("lseek")
    def lseek(self, fd: int, offset: int, whence: int = SEEK_SET) -> int:
        self._syscall("lseek")
        of = self._fd(fd)
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = of.pos + offset
        elif whence == SEEK_END:
            new = of.inode.size + offset
        else:
            raise InvalidArgumentError(f"bad whence: {whence}")
        if new < 0:
            raise InvalidArgumentError(f"seek to negative offset: {new}")
        if new != of.pos:
            of.readahead.reset()
        of.pos = new
        return new

    @_syscall_span("read")
    def read(self, fd: int, nbytes: int) -> bytes:
        """Read up to ``nbytes`` at the current position."""
        self._syscall("read")
        if nbytes < 0:
            raise InvalidArgumentError(f"negative read length: {nbytes}")
        of = self._fd(fd)
        inode = of.inode
        nbytes = min(nbytes, max(0, inode.size - of.pos))
        if nbytes == 0:
            return b""
        self._fault_in(of, of.pos, nbytes)
        data = inode.content.read(of.pos, nbytes)
        self._charge_memory(nbytes)
        of.pos += nbytes
        self.counters.bytes_read += nbytes
        return data

    @_syscall_span("pread")
    def pread(self, fd: int, offset: int, nbytes: int) -> bytes:
        """Positional read; does not move the file offset or readahead."""
        self._syscall("pread")
        if offset < 0 or nbytes < 0:
            raise InvalidArgumentError(
                f"negative offset/length: {offset}, {nbytes}")
        of = self._fd(fd)
        inode = of.inode
        nbytes = min(nbytes, max(0, inode.size - offset))
        if nbytes == 0:
            return b""
        self._fault_in(of, offset, nbytes, use_readahead=False)
        data = inode.content.read(offset, nbytes)
        self._charge_memory(nbytes)
        self.counters.bytes_read += nbytes
        return data

    def _fault_in(self, of: OpenFile, offset: int, length: int,
                  use_readahead: bool = True) -> None:
        # Vectorised fast path: a readahead-free span (pread) with no
        # observation hooks, no noise, and the stock extent-run read path
        # can charge whole miss runs with O(runs) numpy work instead of
        # O(pages) Python (see docs/performance.md).  Every condition
        # below names a feature whose per-page side effects the batch
        # does not reproduce; any of them sends the span down the scalar
        # reference loop, which remains bit-identical.
        if (not use_readahead and self.telemetry is None
                and self.tracer is None and self.prefetcher is None
                and self.current_tenant is None and self.noise <= 0.0
                and self.page_cache.observer is None
                and device_batch.enabled()
                and type(of.fs).read_pages is FileSystem.read_pages):
            self._fault_in_batch(of, offset, length)
            return
        from repro.obs.lifecycle import component_delta, snapshot_components

        # hot loop: hoist every per-iteration attribute load — at millions
        # of faults per run these lookups dominate the instrumented profile
        inode = of.inode
        inode_id = inode.id
        fs = of.fs
        cache = self.page_cache
        counters = self.counters
        clock = self.clock
        telemetry = self.telemetry
        tracer = self.tracer
        prefetcher = self.prefetcher
        readahead = of.readahead
        npages = inode.npages
        category = fs.device.time_category
        tenant = self.current_tenant
        for page in page_span(offset, length):
            window = readahead.advise(page) if use_readahead else 1
            key = (inode_id, page)
            if cache.access(key):
                counters.cache_hits += 1
                if tenant is not None:
                    counters.note_tenant_hit(tenant)
                if prefetcher is not None:
                    prefetcher.note_access(key)
                if telemetry is not None:
                    telemetry.on_hit(inode_id, page)
                continue
            counters.cache_misses += 1
            counters.hard_faults += 1
            if tenant is not None:
                counters.note_tenant_miss(tenant)
            cluster = 1
            limit = min(window, npages - page)
            while (cluster < limit
                   and not cache.peek((inode_id, page + cluster))):
                cluster += 1
            if telemetry is not None:
                before = snapshot_components(fs)
            seconds = self._noisy(fs.read_pages(inode, page, cluster))
            clock.advance(seconds, category)
            counters.pages_read += cluster
            counters.readahead_pages += cluster - 1
            if tracer is not None:
                tracer.emit(clock.now, "fault", category, seconds,
                            page=page, cluster=cluster, inode=inode_id)
            if telemetry is not None:
                telemetry.on_fault(
                    fs.device, inode_id, page, cluster, seconds,
                    now=clock.now, window=window, fs=fs,
                    components=component_delta(before))
            for extra in range(page, page + cluster):
                if cache.insert((inode_id, extra), tenant) is not None:
                    counters.evictions += 1
                    if tenant is not None:
                        counters.note_tenant_eviction(
                            cache.last_evicted_owner)
                if telemetry is not None and extra != page:
                    telemetry.on_readahead_insert((inode_id, extra))

    def _fault_in_batch(self, of: OpenFile, offset: int, length: int) -> None:
        """Charge a readahead-free span with run-granular batch work.

        Equivalent to the scalar ``_fault_in`` loop with ``window == 1``
        and no observers attached.  Pages are still processed strictly in
        page order; only the *mechanism* changes:

        * hits go through the real :meth:`PageCache.access` (one per
          page — recency moves must land in scalar order), with residency
          tested at process time so this span's own evictions are seen;
        * maximal miss runs are split into device-contiguous extent
          pieces, each charged via :meth:`DeviceModel.read_run` (whole-run
          numpy math, left-fold accumulation), advanced on the clock with
          :meth:`VirtualClock.advance_run`, and inserted with
          :meth:`PageCache.insert_run`.

        Every batched step falls back to the scalar equivalent *for that
        piece* when a precondition fails (device declines, non-LRU
        policy, run larger than the cache), so the path never needs to
        undo partial work.
        """
        inode = of.inode
        inode_id = inode.id
        fs = of.fs
        device = fs.device
        cache = self.page_cache
        counters = self.counters
        clock = self.clock
        category = device.time_category
        extent_map = inode.extent_map
        resident = cache._resident
        cache_stats = cache.stats
        profiler = self.profiler
        t_batch = profiler.begin() if profiler is not None else 0.0
        page = offset // PAGE_SIZE
        end_page = (offset + length - 1) // PAGE_SIZE + 1
        while page < end_page:
            if (inode_id, page) in resident:
                cache.access((inode_id, page))
                counters.cache_hits += 1
                page += 1
                continue
            run_start = page
            page += 1
            while page < end_page and (inode_id, page) not in resident:
                page += 1
            n = page - run_start
            counters.cache_misses += n
            counters.hard_faults += n
            counters.pages_read += n
            cache_stats.misses += n
            for file_page, piece_pages, piece_addr in extent_map.extents_in(
                    run_start, n):
                t_dev = profiler.begin() if profiler is not None else 0.0
                durations = device.read_run(
                    piece_addr, piece_pages, PAGE_SIZE)
                if durations is None:
                    for i in range(piece_pages):
                        clock.advance(
                            device.read(piece_addr + i * PAGE_SIZE,
                                        PAGE_SIZE),
                            category)
                else:
                    clock.advance_run(durations.tolist(), category)
                if profiler is not None:
                    profiler.add("device.batch_math", t_dev)
                evicted = cache.insert_run(inode_id, file_page, piece_pages)
                if evicted is None:
                    evicted = 0
                    for extra in range(file_page, file_page + piece_pages):
                        if cache.insert((inode_id, extra)) is not None:
                            evicted += 1
                counters.evictions += evicted
        if profiler is not None:
            profiler.add("kernel.fault_batch", t_batch)

    # -- the event-driven read path ------------------------------------

    def read_async(self, fd: int, nbytes: int):
        """``read`` as a generator: hard faults *submit* to the attached
        engine's per-device queue and ``yield`` the completion future —
        the scheduler runs other tasks while the device services the
        request.  Drive with ``data = yield from kernel.read_async(...)``
        inside a task under :class:`~repro.sim.tasks.EventScheduler`.

        Accounting (hits, faults, readahead clusters, bytes) matches the
        blocking ``read`` exactly; only *who waits* differs.
        """
        self._syscall("read")
        if nbytes < 0:
            raise InvalidArgumentError(f"negative read length: {nbytes}")
        of = self._fd(fd)
        inode = of.inode
        nbytes = min(nbytes, max(0, inode.size - of.pos))
        if nbytes == 0:
            return b""
        yield from self._fault_in_async(of, of.pos, nbytes)
        data = inode.content.read(of.pos, nbytes)
        self._charge_memory(nbytes)
        of.pos += nbytes
        self.counters.bytes_read += nbytes
        return data

    def pread_async(self, fd: int, offset: int, nbytes: int):
        """Positional ``read_async``; no offset motion, no readahead."""
        self._syscall("pread")
        if offset < 0 or nbytes < 0:
            raise InvalidArgumentError(
                f"negative offset/length: {offset}, {nbytes}")
        of = self._fd(fd)
        inode = of.inode
        nbytes = min(nbytes, max(0, inode.size - offset))
        if nbytes == 0:
            return b""
        yield from self._fault_in_async(of, offset, nbytes,
                                        use_readahead=False)
        data = inode.content.read(offset, nbytes)
        self._charge_memory(nbytes)
        self.counters.bytes_read += nbytes
        return data

    def _fault_in_async(self, of: OpenFile, offset: int, length: int,
                        use_readahead: bool = True):
        """The submit/wait split of :meth:`_fault_in`.

        Miss handling becomes two halves: *submit* the fault cluster to
        the engine's device queue (counters charged here, in the faulting
        task's slice), then ``yield`` the future — the scheduler parks the
        task until the device completion event fires — and finish with the
        cache inserts.  Cluster discovery runs at submit time, so pages a
        concurrent task faulted meanwhile are re-checked on resume only
        via the cache insert (double-fetch of a racing page costs device
        time, as it does on real hardware).
        """
        engine = self.engine
        if engine is None:
            raise InvalidArgumentError(
                "no I/O engine attached; use the blocking read path or "
                "kernel.attach_engine()")
        if engine.block_active:
            yield from self._fault_in_runs(of, offset, length,
                                           use_readahead)
            return
        inode = of.inode
        inode_id = inode.id
        fs = of.fs
        cache = self.page_cache
        counters = self.counters
        readahead = of.readahead
        npages = inode.npages
        tenant = self.current_tenant
        for page in page_span(offset, length):
            window = readahead.advise(page) if use_readahead else 1
            key = (inode_id, page)
            if cache.access(key):
                counters.cache_hits += 1
                if tenant is not None:
                    counters.note_tenant_hit(tenant)
                if self.prefetcher is not None:
                    self.prefetcher.note_access(key)
                if self.telemetry is not None:
                    self.telemetry.on_hit(inode_id, page)
                continue
            counters.cache_misses += 1
            counters.hard_faults += 1
            if tenant is not None:
                counters.note_tenant_miss(tenant)
            cluster = 1
            limit = min(window, npages - page)
            while (cluster < limit
                   and not cache.peek((inode_id, page + cluster))):
                cluster += 1
            future = engine.submit_cluster(fs, inode, page, cluster,
                                           tenant=tenant)
            completion = yield future
            seconds = completion.duration
            counters.pages_read += cluster
            counters.readahead_pages += cluster - 1
            if self.tracer is not None:
                self.tracer.emit(self.clock.now, "fault",
                                 fs.device.time_category, seconds,
                                 page=page, cluster=cluster,
                                 inode=inode_id)
            if self.telemetry is not None:
                self.telemetry.on_fault(
                    fs.device, inode_id, page, cluster, seconds,
                    now=self.clock.now, window=window, fs=fs,
                    completion=completion)
            for extra in range(page, page + cluster):
                if cache.insert((inode_id, extra), tenant) is not None:
                    counters.evictions += 1
                    if tenant is not None:
                        counters.note_tenant_eviction(
                            cache.last_evicted_owner)
                if self.telemetry is not None and extra != page:
                    self.telemetry.on_readahead_insert((inode_id, extra))

    def _fault_in_runs(self, of: OpenFile, offset: int, length: int,
                       use_readahead: bool = True):
        """Batched fault path for an engine with an active block front.

        Instead of submit-then-park per miss, *all* miss runs of the span
        are discovered and submitted up front — they land in the device's
        plug together, where adjacent runs (a ``pread`` loop's 1-page
        clusters, or a readahead window walking a file) coalesce into one
        device request — and the task parks once on the whole set.

        Accounting is kept identical to the serial path: hit/miss/fault
        counters are charged at discovery, in span order, with the same
        readahead advice; pages covered by an *earlier run of this same
        span* count as cache hits, exactly as the serial path would have
        hit them after that run's insert.
        """
        engine = self.engine
        inode = of.inode
        inode_id = inode.id
        fs = of.fs
        cache = self.page_cache
        counters = self.counters
        readahead = of.readahead
        npages = inode.npages
        tenant = self.current_tenant
        runs: list[tuple[int, int, int]] = []  # (page, cluster, window)
        covered_until = -1  # end of the last planned run, exclusive
        for page in page_span(offset, length):
            window = readahead.advise(page) if use_readahead else 1
            key = (inode_id, page)
            if page < covered_until or cache.access(key):
                counters.cache_hits += 1
                if tenant is not None:
                    counters.note_tenant_hit(tenant)
                if page >= covered_until and self.prefetcher is not None:
                    self.prefetcher.note_access(key)
                if self.telemetry is not None:
                    self.telemetry.on_hit(inode_id, page)
                continue
            counters.cache_misses += 1
            counters.hard_faults += 1
            if tenant is not None:
                counters.note_tenant_miss(tenant)
            cluster = 1
            limit = min(window, npages - page)
            while (cluster < limit
                   and not cache.peek((inode_id, page + cluster))):
                cluster += 1
            runs.append((page, cluster, window))
            covered_until = page + cluster
        if not runs:
            return
        futures = [engine.submit_cluster(fs, inode, page, cluster,
                                         tenant=tenant)
                   for page, cluster, _ in runs]
        yield futures
        # completion walk: hoist per-run attribute loads — nothing in the
        # loop yields, so clock/telemetry/tracer are loop invariants
        tracer = self.tracer
        telemetry = self.telemetry
        device = fs.device
        category = device.time_category
        now = self.clock.now
        tele_batch = None
        if telemetry is not None and device_batch.enabled():
            # defer on_fault fan-in to one flush per batch; a ticking
            # time-series sampler must observe the exact scalar
            # interleaving with cache-counter updates, so it opts out
            if telemetry.timeseries is None:
                tele_batch = self._telemetry_batch
                if tele_batch is None or tele_batch.telemetry is not telemetry:
                    from repro.obs.telemetry import TelemetryBatch
                    tele_batch = self._telemetry_batch = (
                        TelemetryBatch(telemetry))
        for (page, cluster, window), future in zip(runs, futures):
            completion = future.value
            seconds = completion.duration
            counters.pages_read += cluster
            counters.readahead_pages += cluster - 1
            if tracer is not None:
                tracer.emit(now, "fault", category, seconds,
                            page=page, cluster=cluster, inode=inode_id)
            if tele_batch is not None:
                tele_batch.add(device, inode_id, page, cluster, seconds,
                               now, window, fs, completion)
            elif telemetry is not None:
                telemetry.on_fault(
                    device, inode_id, page, cluster, seconds,
                    now=now, window=window, fs=fs,
                    completion=completion)
            for extra in range(page, page + cluster):
                if cache.insert((inode_id, extra), tenant) is not None:
                    counters.evictions += 1
                    if tenant is not None:
                        counters.note_tenant_eviction(
                            cache.last_evicted_owner)
                if telemetry is not None and extra != page:
                    telemetry.on_readahead_insert((inode_id, extra))
        if tele_batch is not None:
            profiler = self.profiler
            t0 = profiler.begin() if profiler is not None else 0.0
            tele_batch.flush()
            if profiler is not None:
                profiler.add("obs.telemetry_flush", t0)

    def mmap(self, fd: int) -> "MappedRegion":
        """Map an open file; reads through the mapping skip the
        copy-to-user cost of ``read()``.

        The paper's §5.2 notes its grep/wc ports "used read(), rather
        than mmap(), which does not copy the data to meet application
        alignment criteria.  An mmap-friendly SLEDs library is feasible,
        which should reduce the CPU penalty."  This is that path: touched
        pages fault in exactly like ``read()`` (same clusters, same
        accounting), but delivering bytes costs only a per-page touch
        rather than a bcopy of every byte.
        """
        self._syscall("mmap")
        of = self._fd(fd)
        return MappedRegion(self, of)

    @_syscall_span("write")
    def write(self, fd: int, data: bytes) -> int:
        self._syscall("write")
        of = self._fd(fd)
        if not of.writable:
            raise BadFileDescriptorError(f"fd {fd} not open for writing")
        if of.fs.read_only:
            raise ReadOnlyFilesystemError(
                f"filesystem {of.fs.name!r} is read-only")
        if not data:
            return 0
        inode = of.inode
        if of.append:
            of.pos = inode.size
        end = of.pos + len(data)
        if end > inode.size:
            of.fs.grow_file(inode, end)
        try:
            inode.content.write(of.pos, data)
        except ReadOnlyFilesystemError:
            # immutable content store (synthetic text, zeros): upgrade to
            # a copy-on-write overlay the first time the file is written
            from repro.fs.content import CowContent
            inode.content = CowContent(inode.content)
            inode.content.write(of.pos, data)
        self._charge_memory(len(data))
        dirty = self._dirty.setdefault(inode.id, (of.fs, inode, set()))[2]
        for page in page_span(of.pos, len(data)):
            if self.page_cache.insert((inode.id, page),
                                      self.current_tenant) is not None:
                self.counters.evictions += 1
            dirty.add(page)
        self.counters.bytes_written += len(data)
        of.pos = end
        inode.mtime = self.clock.now
        if len(dirty) >= self.writeback_threshold_pages:
            self._flush_inode(inode.id)
        return len(data)

    @_syscall_span("pwrite")
    def pwrite(self, fd: int, offset: int, data: bytes) -> int:
        """Positional write; does not move the file offset."""
        self._syscall("pwrite")
        of = self._fd(fd)
        if not of.writable:
            raise BadFileDescriptorError(f"fd {fd} not open for writing")
        if of.fs.read_only:
            raise ReadOnlyFilesystemError(
                f"filesystem {of.fs.name!r} is read-only")
        if offset < 0:
            raise InvalidArgumentError(f"negative offset: {offset}")
        if not data:
            return 0
        inode = of.inode
        end = offset + len(data)
        if end > inode.size:
            of.fs.grow_file(inode, end)
        try:
            inode.content.write(offset, data)
        except ReadOnlyFilesystemError:
            from repro.fs.content import CowContent
            inode.content = CowContent(inode.content)
            inode.content.write(offset, data)
        self._charge_memory(len(data))
        dirty = self._dirty.setdefault(inode.id, (of.fs, inode, set()))[2]
        for page in page_span(offset, len(data)):
            if self.page_cache.insert((inode.id, page),
                                      self.current_tenant) is not None:
                self.counters.evictions += 1
            dirty.add(page)
        self.counters.bytes_written += len(data)
        inode.mtime = self.clock.now
        if len(dirty) >= self.writeback_threshold_pages:
            self._flush_inode(inode.id)
        return len(data)

    @_syscall_span("fsync")
    def fsync(self, fd: int) -> None:
        self._syscall("fsync")
        of = self._fd(fd)
        self._flush_inode(of.inode.id)

    def sync(self) -> None:
        """Flush every dirty page in the system.

        Dirty runs from *all* files on a filesystem flush as one batch
        through the I/O scheduler, so scattered cross-file writeback
        becomes an elevator sweep rather than FCFS seek chains.
        """
        by_fs: dict[int, tuple[FileSystem, list]] = {}
        for inode_id in list(self._dirty):
            fs, inode, pages = self._dirty.pop(inode_id)
            by_fs.setdefault(id(fs), (fs, []))[1].append((inode, pages))
        for fs, dirty_files in by_fs.values():
            try:
                self._writeback(fs, dirty_files)
            except Exception:
                # a failed flush must not lose the dirty state: re-register
                # so a retry (or the next sync) writes the data
                for inode, pages in dirty_files:
                    self._dirty.setdefault(
                        inode.id, (fs, inode, set()))[2].update(pages)
                raise

    def _flush_inode(self, inode_id: int) -> None:
        entry = self._dirty.pop(inode_id, None)
        if entry is None:
            return
        fs, inode, pages = entry
        try:
            self._writeback(fs, [(inode, pages)])
        except Exception:
            self._dirty.setdefault(
                inode_id, (fs, inode, set()))[2].update(pages)
            raise

    def _writeback(self, fs: FileSystem,
                   dirty_files: list[tuple[Inode, set[int]]]) -> None:
        """Flush dirty runs of one filesystem, batched via the scheduler
        when the filesystem has no special write path of its own."""
        from repro.block.scheduler import submit_batch

        plain_write_path = type(fs).write_pages is FileSystem.write_pages
        if not plain_write_path:
            # HSM-style filesystems track staging state in write_pages;
            # flush run by run through their own path.
            for inode, pages in dirty_files:
                for start, run in _contiguous_runs(sorted(pages)):
                    seconds = fs.write_pages(inode, start, run)
                    self.clock.advance(self._noisy(seconds),
                                       fs.device.time_category)
                    self.counters.pages_written += run
            return
        requests, total_pages = self._writeback_requests(dirty_files)
        if not requests:
            return
        if self.telemetry is not None:
            self.telemetry.on_queue_depth(fs.device, len(requests))
        seconds = submit_batch(fs.device, requests, self.io_scheduler)
        self.clock.advance(self._noisy(seconds), fs.device.time_category)
        self.counters.pages_written += total_pages

    @staticmethod
    def _writeback_requests(
            dirty_files: list[tuple[Inode, set[int]]]) -> tuple[list, int]:
        """The submit half of writeback: dirty page runs -> block-layer
        requests (split at extent boundaries).  Shared by the blocking
        batch path and the event-driven :meth:`fsync_async`."""
        from repro.block.scheduler import IoRequest

        requests = []
        total_pages = 0
        for inode, pages in dirty_files:
            for start, run in _contiguous_runs(sorted(pages)):
                page = start
                remaining = run
                while remaining > 0:
                    extent_run = inode.extent_map.contiguous_run(
                        page, remaining)
                    requests.append(IoRequest(
                        addr=inode.extent_map.addr_of(page),
                        nbytes=extent_run * PAGE_SIZE, is_write=True))
                    page += extent_run
                    remaining -= extent_run
                total_pages += run
        return requests, total_pages

    def fsync_async(self, fd: int):
        """``fsync`` as a generator: dirty runs are *submitted* to the
        engine's device queue (where they contend with other tasks' reads
        under the elevator) and the caller blocks on their completions.
        Drive with ``yield from kernel.fsync_async(fd)``.
        """
        self._syscall("fsync")
        of = self._fd(fd)
        yield from self._writeback_async(of.inode.id)

    def _writeback_async(self, inode_id: int):
        """The wait half of event-driven writeback for one inode."""
        engine = self.engine
        if engine is None:
            raise InvalidArgumentError(
                "no I/O engine attached; use the blocking fsync() or "
                "kernel.attach_engine()")
        entry = self._dirty.pop(inode_id, None)
        if entry is None:
            return
        fs, inode, pages = entry
        queue = engine.queue_for(fs.device)
        futures = []
        plain_write_path = type(fs).write_pages is FileSystem.write_pages
        if plain_write_path:
            requests, total_pages = self._writeback_requests(
                [(inode, pages)])
            if self.telemetry is not None:
                self.telemetry.on_queue_depth(fs.device, len(requests))
            for request in requests:
                futures.append(queue.submit(
                    request.addr, request.nbytes, is_write=True,
                    service=self._traced_service(
                        fs, ("writeback", inode.id, request.addr),
                        lambda r=request, device=fs.device:
                        device.write(r.addr, r.nbytes)),
                    label=f"writeback:{fs.name}:{inode.id}",
                    kind="writeback"))
        else:
            # HSM-style write paths mutate staging state: one atomic thunk
            # per dirty run through the filesystem's own write_pages.
            total_pages = 0
            for start, run in _contiguous_runs(sorted(pages)):
                addr = inode.extent_map.addr_of(start)
                futures.append(queue.submit(
                    addr, run * PAGE_SIZE, is_write=True,
                    service=self._traced_service(
                        fs, ("writeback", inode.id, addr),
                        lambda inode=inode, start=start, run=run:
                        fs.write_pages(inode, start, run)),
                    label=f"writeback:{fs.name}:{inode.id}:{start}+{run}",
                    kind="writeback"))
                total_pages += run
        if not futures:
            return
        try:
            yield futures
        except Exception:
            # a failed flush must not lose the dirty state (parity with
            # the blocking path): re-register so a retry writes the data
            self._dirty.setdefault(
                inode_id, (fs, inode, set()))[2].update(pages)
            raise
        self.counters.pages_written += total_pages
        if self.telemetry is not None:
            for future in futures:
                if future.value is not None:
                    self.telemetry.on_writeback(fs, inode, future.value)

    # ------------------------------------------------------------------
    # ioctl (the SLEDs kernel interface)
    # ------------------------------------------------------------------

    def ioctl(self, fd: int, cmd: int, arg=None):
        """Dispatch ``FSLEDS_FILL`` / ``FSLEDS_GET``.

        ``FSLEDS_FILL`` ignores ``fd`` (the boot script uses any handle);
        ``FSLEDS_GET`` returns a :class:`~repro.core.sled.SledVector` and
        charges the kernel page-walk CPU cost.
        """
        from repro.kernel.ioctl import COMMAND_NAMES
        name = COMMAND_NAMES.get(cmd, f"ioctl:0x{cmd:04x}")
        tele = self.telemetry
        span = (tele.syscall_begin(name, self.clock.now)
                if tele is not None else None)
        try:
            self._syscall(name)
            if cmd == FSLEDS_FILL:
                if not isinstance(arg, dict):
                    raise InvalidArgumentError(
                        "FSLEDS_FILL needs {device_key: (latency, bandwidth)}")
                self.sleds_table.fill(arg)
                return None
            if cmd == FSLEDS_GET:
                of = self._fd(fd)
                inode_id = of.inode.id
                stamp = self._sled_stamp(of)
                cached = self._sled_cache.get(inode_id)
                queue_delays = None
                if cached is not None and cached[0] == stamp:
                    self.counters.sleds_cache_hits += 1
                    # stamp comparison only: flat cost, no page walk
                    self.charge_cpu(0.2 * USEC)
                    vector = cached[1]
                else:
                    queue_delays = (
                        self.engine.queue_delays(of.fs, self.clock.now,
                                                 self.current_tenant)
                        if self.engine is not None else None)
                    profiler = self.profiler
                    if profiler is not None:
                        t0 = profiler.begin()
                    vector = build_sled_vector(
                        self.page_cache, of.fs, of.inode, self.sleds_table,
                        queue_delays=queue_delays)
                    if profiler is not None:
                        profiler.add("kernel.sled_build", t0)
                    # kernel walks the file's state: charge ~0.2 us per page
                    self.charge_cpu(of.inode.npages * 0.2 * USEC)
                    self.counters.sleds_builds += 1
                    self._sled_cache[inode_id] = (stamp, vector)
                if tele is not None:
                    if queue_delays is None and self.engine is not None:
                        # cache-hit path: same stamp ⇒ same congestion
                        # epochs; recompute the delays for attribution
                        # only (no clock, no RNG)
                        queue_delays = self.engine.queue_delays(
                            of.fs, self.clock.now, self.current_tenant)
                    tele.on_sleds(inode_id, vector, fs=of.fs,
                                  inode=of.inode, queue_delays=queue_delays)
                return vector
            raise UnknownIoctlError(cmd)
        finally:
            if span is not None:
                tele.syscall_end(span, self.clock.now)

    def _sled_stamp(self, of: OpenFile) -> tuple:
        """The validity stamp of a cached SLED vector: moves whenever any
        input of the builder can have changed for this inode.

        With an I/O engine attached the stamp also folds in each device
        queue's congestion epoch — queue churn changes the queue-delay
        term ``FSLEDS_GET`` adds to non-resident latencies, so cached
        vectors built under different congestion must not be reused.
        """
        base = (self.page_cache.generation(of.inode.id),
                of.fs.state_epoch,
                self.sleds_table.version)
        if self.engine is None:
            return base
        stamp = base + (self.engine.congestion_stamp(of.fs),)
        if self.engine.scheduler.tenant_aware:
            # tenant-aware elevators give different tenants different
            # queue-delay estimates for the same congestion state — a
            # cached vector is only valid for the tenant that built it
            stamp += (self.current_tenant,)
        return stamp

    def sleds_stamp(self, fd: int):
        """Current SLED-vector stamp for an open file — a vDSO-style read.

        Costs no virtual time and no syscall: it is a handful of counter
        loads (three, plus one congestion epoch per device when an engine
        is attached), the moral equivalent of reading a seqlock generation
        from a shared page.  The pick library and progress bars compare
        this against the stamp of their last fetch and skip the FSLEDS_GET
        entirely when unchanged.
        """
        return self._sled_stamp(self._fd(fd))

    def get_sleds(self, fd: int) -> SledVector:
        """Convenience wrapper over ``ioctl(fd, FSLEDS_GET)``."""
        return self.ioctl(fd, FSLEDS_GET)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------

    @contextmanager
    def process(self) -> Iterator[ProcessRun]:
        """Measure one application run (elapsed time, faults, categories)."""
        run = ProcessRun(
            _kernel=self,
            _start_counters=self.counters.copy(),
            _start_clock=self.clock.snapshot(),
        )
        try:
            yield run
        finally:
            run.finalize(self)

    # ------------------------------------------------------------------
    # world-building helpers (not syscalls)
    # ------------------------------------------------------------------

    def warm_file(self, path: str, chunk: int = 64 * PAGE_SIZE) -> None:
        """Read a file once linearly to warm the cache (setup helper)."""
        fd = self.open(path)
        while self.read(fd, chunk):
            pass
        self.close(fd)

    def drop_caches(self) -> None:
        """Cold-cache reset, like ``echo 3 > /proc/sys/vm/drop_caches``."""
        self.sync()
        self.page_cache.clear()


class MappedRegion:
    """A memory mapping of one open file (see :meth:`Kernel.mmap`).

    ``read(offset, nbytes)`` returns bytes like ``pread`` but charges only
    page-touch time (memory latency per newly touched page), not a full
    copy — the mmap path's whole point.  The region stays valid until the
    descriptor is closed; there is no separate ``munmap`` state to manage.
    """

    def __init__(self, kernel: Kernel, of: OpenFile) -> None:
        self._kernel = kernel
        self._of = of
        self._touched: set[int] = set()

    @property
    def size(self) -> int:
        return self._of.inode.size

    def read(self, offset: int, nbytes: int) -> bytes:
        """Access mapped bytes, faulting pages in as needed."""
        if offset < 0 or nbytes < 0:
            raise InvalidArgumentError(
                f"negative offset/length: {offset}, {nbytes}")
        kernel = self._kernel
        inode = self._of.inode
        nbytes = min(nbytes, max(0, inode.size - offset))
        if nbytes == 0:
            return b""
        kernel._fault_in(self._of, offset, nbytes)
        fresh = [p for p in page_span(offset, nbytes)
                 if p not in self._touched]
        if fresh:
            # first touch of a mapped page costs a TLB/minor-fault latency
            kernel.clock.advance(
                len(fresh) * kernel.memory.spec.latency * 10, "memory")
            self._touched.update(fresh)
        kernel.counters.bytes_read += nbytes
        return inode.content.read(offset, nbytes)


def _contiguous_runs(sorted_pages: list[int]) -> Iterator[tuple[int, int]]:
    """Group sorted page indices into (start, run_length) spans."""
    start = None
    prev = None
    for page in sorted_pages:
        if start is None:
            start = prev = page
            continue
        if page == prev + 1:
            prev = page
            continue
        yield start, prev - start + 1
        start = prev = page
    if start is not None:
        yield start, prev - start + 1
