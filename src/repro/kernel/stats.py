"""Per-run accounting, replacing the paper's use of ``time`` and page-fault
counters.

The paper validates its hypotheses by measuring (a) hard page faults and
(b) elapsed time per application run.  :class:`ProcessRun` captures a delta
of the kernel's counters and the virtual clock over a ``with`` block, so a
benchmark run reads::

    with kernel.process() as run:
        wc(kernel, "/data/big.txt", use_sleds=True)
    print(run.elapsed, run.hard_faults)
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class KernelCounters:
    """Cumulative kernel-wide counters."""

    syscalls: int = 0
    hard_faults: int = 0
    pages_read: int = 0
    pages_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    readahead_pages: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0
    #: FSLEDS_GET calls that rebuilt the vector (stamp mismatch / first call)
    sleds_builds: int = 0
    #: FSLEDS_GET calls answered from the generation-stamped vector cache
    sleds_cache_hits: int = 0
    #: library-level refetches skipped because the kernel stamp was unchanged
    sleds_refetch_skips: int = 0
    #: per-tenant cache accounting; empty until a tenanted task runs.
    #: tenant_evictions is keyed by the *owner* of the evicted page.
    tenant_cache_hits: dict = field(default_factory=dict)
    tenant_cache_misses: dict = field(default_factory=dict)
    tenant_evictions: dict = field(default_factory=dict)

    #: dict-valued fields, copied/diffed per key (everything else is int)
    _DICT_FIELDS = ("tenant_cache_hits", "tenant_cache_misses",
                    "tenant_evictions")

    def note_tenant_hit(self, tenant: str) -> None:
        self.tenant_cache_hits[tenant] = (
            self.tenant_cache_hits.get(tenant, 0) + 1)

    def note_tenant_miss(self, tenant: str) -> None:
        self.tenant_cache_misses[tenant] = (
            self.tenant_cache_misses.get(tenant, 0) + 1)

    def note_tenant_eviction(self, owner: str | None) -> None:
        """Attribute one eviction to the evicted page's owner (no-op for
        untenanted victims)."""
        if owner is not None:
            self.tenant_evictions[owner] = (
                self.tenant_evictions.get(owner, 0) + 1)

    def copy(self) -> "KernelCounters":
        values = vars(self).copy()
        for name in self._DICT_FIELDS:
            values[name] = dict(values[name])
        return KernelCounters(**values)

    def delta(self, earlier: "KernelCounters") -> "KernelCounters":
        values = {}
        for name, value in vars(self).items():
            before = getattr(earlier, name)
            if name in self._DICT_FIELDS:
                values[name] = {
                    tenant: count - before.get(tenant, 0)
                    for tenant, count in value.items()
                    if count - before.get(tenant, 0)
                }
            else:
                values[name] = value - before
        return KernelCounters(**values)


@dataclass
class ProcessRun:
    """Measurement window over one application run."""

    _kernel: object = field(repr=False, default=None)
    _start_counters: KernelCounters | None = field(repr=False, default=None)
    _start_clock: object = field(repr=False, default=None)
    counters: KernelCounters | None = None
    elapsed: float = 0.0
    by_category: dict[str, float] = field(default_factory=dict)

    def finalize(self, kernel) -> None:
        self.counters = kernel.counters.delta(self._start_counters)
        self.elapsed = kernel.clock.elapsed_since(self._start_clock)
        self.by_category = kernel.clock.elapsed_by_category(self._start_clock)

    # -- convenience views ------------------------------------------------

    @property
    def hard_faults(self) -> int:
        assert self.counters is not None, "run not finalized"
        return self.counters.hard_faults

    @property
    def hit_ratio(self) -> float:
        """Page-cache hit ratio over the window (0.0 with no accesses)."""
        assert self.counters is not None, "run not finalized"
        accesses = self.counters.cache_hits + self.counters.cache_misses
        return self.counters.cache_hits / accesses if accesses else 0.0

    @property
    def cpu_time(self) -> float:
        return self.by_category.get("cpu", 0.0)

    @property
    def io_time(self) -> float:
        # category accounting can overlap elapsed time (e.g. writeback
        # triggered inside the window for pages dirtied before it), so
        # clamp instead of reporting a nonsensical negative duration
        return max(
            0.0,
            self.elapsed - self.cpu_time - self.by_category.get("memory", 0.0))
