"""ioctl command numbers for the SLEDs kernel extension.

The paper added two commands to the generic file-system ioctl:

* ``FSLEDS_FILL`` — boot-time: install the measured per-level latency and
  bandwidth table (argument: ``{device_key: (latency, bandwidth)}``).
* ``FSLEDS_GET`` — per-file: return the vector of SLEDs for the open file.

The numeric values imitate Linux ``_IOW``/``_IOR`` encodings on the ``f``
magic; applications only ever use the symbolic names.
"""

from __future__ import annotations

FSLEDS_FILL = 0x4602  # _IOW('f', 2, struct sleds_fill)
FSLEDS_GET = 0x8603   # _IOR('f', 3, struct sled[])

COMMAND_NAMES = {
    FSLEDS_FILL: "FSLEDS_FILL",
    FSLEDS_GET: "FSLEDS_GET",
}


class UnknownIoctlError(ValueError):
    """Raised for an ioctl command the simulated kernel does not implement."""

    def __init__(self, cmd: int) -> None:
        super().__init__(f"unknown ioctl command 0x{cmd:04x}")
        self.cmd = cmd
