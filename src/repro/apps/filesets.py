"""File sets: inter-file access ordering by delivery estimate.

The paper's related work credits Steere's file sets [Ste97] with
"ordering access to a group of files to present the cached files first.
However, there is no notion of intra-file access ordering."  SLEDs
subsume that idea: the per-file total-delivery estimate orders the *set*,
and the pick library orders accesses *within* each file.

:func:`iterate_by_latency` yields the members of a file set
cheapest-first, re-estimating the remainder after each file is consumed —
so state changes caused by processing one member (a tape now mounted, a
server cache now warm) immediately benefit the ordering of the rest.
On an HSM this reproduces tape-schedule batching for free: all files on
the mounted cartridge drain before the autochanger swaps.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.delivery import SLEDS_BEST, sleds_total_delivery_time_path
from repro.sim.errors import InvalidArgumentError


def estimate_set(kernel, paths: list[str],
                 attack_plan: str = SLEDS_BEST) -> list[tuple[str, float]]:
    """(path, delivery estimate) for every member, current state."""
    return [(path, sleds_total_delivery_time_path(kernel, path, attack_plan))
            for path in paths]


def iterate_by_latency(kernel, paths: list[str],
                       attack_plan: str = SLEDS_BEST,
                       reestimate: bool = True) -> Iterator[str]:
    """Yield set members cheapest-first.

    With ``reestimate`` (default), the remaining members are re-estimated
    after each yield, so the ordering tracks the storage system's evolving
    state; without it, the order is fixed by the initial estimates
    (Steere-style static ordering).
    """
    if len(set(paths)) != len(paths):
        raise InvalidArgumentError("file set contains duplicate paths")
    remaining = list(paths)
    if not reestimate:
        for path, _ in sorted(estimate_set(kernel, remaining, attack_plan),
                              key=lambda item: item[1]):
            yield path
        return
    while remaining:
        estimates = estimate_set(kernel, remaining, attack_plan)
        path, _ = min(estimates, key=lambda item: item[1])
        remaining.remove(path)
        yield path


def fileset_wc(kernel, paths: list[str], use_sleds: bool = True):
    """wc over a whole file set in latency order; returns
    ``{path: WcResult}`` (insertion order = processing order)."""
    from repro.apps.wc import wc

    out = {}
    ordered = (iterate_by_latency(kernel, paths) if use_sleds
               else iter(paths))
    for path in ordered:
        out[path] = wc(kernel, path, use_sleds=use_sleds)
    return out
