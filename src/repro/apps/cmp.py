"""``cmp`` — file comparison, with and without SLEDs.

A natural member of the paper's application family that it never got to:
byte-equality of two files is *order-independent*, so the comparison can
follow the pick library's order over whichever file has the more
interesting cache state, ``pread``-ing the same range of the other.  If
either file's cached portions contain a difference, ``cmp --sleds``
reports a mismatch without touching the device at all — the same
early-termination win as ``grep -q`` (paper §3.2), for a tool whose
linear version must read both files front to back until the first
differing byte.

Semantics match ``cmp -s`` plus the location of the *lowest* differing
offset (computing the lowest found requires finishing the pass only in
the unusual case where callers ask for it with ``first_difference=True``
while differences are plentiful; like the paper's grep we buffer and
take the minimum).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.common import (
    DEFAULT_BUFSIZE,
    SCAN_CPU_PER_BYTE,
    SLEDS_EXTRA_CPU_PER_BYTE,
    read_linear,
    read_sleds_order,
)


@dataclass(frozen=True)
class CmpResult:
    """Outcome of comparing two files."""

    path_a: str
    path_b: str
    equal: bool
    first_difference: int | None = None  # offset, when known
    size_mismatch: bool = False


def cmp(kernel, path_a: str, path_b: str, use_sleds: bool = False,
        stop_at_first: bool = True,
        bufsize: int = DEFAULT_BUFSIZE) -> CmpResult:
    """Compare two files byte for byte.

    ``stop_at_first`` returns as soon as *a* difference is known (its
    offset is the lowest within the chunk that revealed it, which in
    SLEDs mode may not be the globally lowest — exactly the ``cmp -s``
    contract of "are they different?").  With ``stop_at_first=False`` the
    whole file is compared and ``first_difference`` is global.
    """
    size_a = kernel.stat(path_a).size
    size_b = kernel.stat(path_b).size
    if size_a != size_b:
        return CmpResult(path_a, path_b, equal=False, size_mismatch=True,
                         first_difference=min(size_a, size_b))
    fd_a = kernel.open(path_a)
    fd_b = kernel.open(path_b)
    try:
        reader = (read_sleds_order(kernel, fd_a, bufsize) if use_sleds
                  else read_linear(kernel, fd_a, bufsize))
        tax = SLEDS_EXTRA_CPU_PER_BYTE if use_sleds else 0.0
        differences: list[int] = []
        for offset, chunk_a in reader:
            chunk_b = kernel.pread(fd_b, offset, len(chunk_a))
            kernel.charge_cpu(2 * len(chunk_a) * (SCAN_CPU_PER_BYTE + tax))
            if chunk_a != chunk_b:
                where = offset + _first_mismatch(chunk_a, chunk_b)
                differences.append(where)
                if stop_at_first:
                    return CmpResult(path_a, path_b, equal=False,
                                     first_difference=where)
        if differences:
            return CmpResult(path_a, path_b, equal=False,
                             first_difference=min(differences))
        return CmpResult(path_a, path_b, equal=True)
    finally:
        kernel.close(fd_b)
        kernel.close(fd_a)


def _first_mismatch(a: bytes, b: bytes) -> int:
    for index, (byte_a, byte_b) in enumerate(zip(a, b)):
        if byte_a != byte_b:
            return index
    return min(len(a), len(b))
