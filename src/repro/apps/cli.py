"""``sleds-run`` — drive the SLEDs applications from the command line.

Builds a simulated machine from a scenario file (or the built-in demo
scenario) and runs one of the ported utilities against it, printing the
result plus the run's virtual-time/fault accounting — the closest thing
to sitting at the paper's test machine.

Examples::

    sleds-run wc /mnt/ext2/demo/big.txt --sleds
    sleds-run grep XNEEDLEX /mnt/ext2/demo/big.txt -q --sleds
    sleds-run find /mnt/ext2 -latency -m50
    sleds-run gmc /mnt/ext2/demo/big.txt
    sleds-run sleds /mnt/ext2/demo/big.txt          # raw FSLEDS_GET dump
    sleds-run timeline /mnt/ext2/demo/big.txt       # traced wc + timeline
    sleds-run stats /mnt/ext2/demo/big.txt --warm   # metrics + accuracy
    sleds-run trace /mnt/ext2/demo/big.txt -o t.json  # Chrome trace JSON
    sleds-run report --json report.json   # lifecycle + critical path
    sleds-run slo --json slo.json         # per-class latency objectives
    sleds-run slo --tenants 3 --by-tenant # per-tenant compliance rollup
    sleds-run profile --json prof.json    # wall-clock hot-path profile
    sleds-run explain --top 5             # slowest requests, blame attached
    sleds-run explain --tenants 3 --by-tenant --json forensics.json
    sleds-run --scenario my_setup.json wc /mnt/nfs/pub/dataset.txt
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.apps.findutil import find
from repro.apps.gmc import file_properties, format_panel, should_wait_prompt
from repro.apps.grep import grep
from repro.apps.wc import wc
from repro.bench.scenario import DEFAULT_SCENARIO, build_scenario, load_scenario
from repro.core.delivery import SLEDS_BEST, SLEDS_LINEAR
from repro.sim.trace import Tracer, render_timeline
from repro.sim.units import MB, human_time


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sleds-run",
        description="Run the SLEDs-adapted utilities on a simulated "
                    "storage stack.")
    parser.add_argument("--scenario", metavar="FILE", default=None,
                        help="scenario JSON (default: built-in demo)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_wc = sub.add_parser("wc", help="count lines/words/bytes")
    p_wc.add_argument("path")
    p_wc.add_argument("--sleds", action="store_true")
    p_wc.add_argument("--mmap", action="store_true",
                      help="mmap-friendly library (implies --sleds)")

    p_grep = sub.add_parser("grep", help="search for a literal pattern")
    p_grep.add_argument("pattern")
    p_grep.add_argument("path")
    p_grep.add_argument("--sleds", action="store_true")
    p_grep.add_argument("-q", action="store_true", dest="quiet",
                        help="stop at the first match")
    p_grep.add_argument("-n", action="store_true", dest="line_numbers",
                        help="print line numbers")
    p_grep.add_argument("--mmap", action="store_true")
    p_grep.add_argument("-E", action="store_true", dest="regex",
                        help="interpret PATTERN as a regular expression")

    p_find = sub.add_parser("find", help="walk a tree with predicates")
    p_find.add_argument("root")
    p_find.add_argument("-name", default=None)
    p_find.add_argument("-latency", default=None,
                        help="[+|-][m|u]N total delivery time predicate "
                             "(use -latency=-m50 for 'less than' values "
                             "so the shell parser keeps the minus)")
    p_find.add_argument("--best", action="store_true",
                        help="use the SLEDS_BEST attack plan")
    p_find.add_argument("-xdev", action="store_true",
                        help="do not cross mount points")

    p_gmc = sub.add_parser("gmc", help="file-manager properties panel")
    p_gmc.add_argument("path")

    p_sleds = sub.add_parser("sleds", help="dump the raw SLED vector")
    p_sleds.add_argument("path")

    p_tl = sub.add_parser("timeline",
                          help="trace a wc run and render a timeline")
    p_tl.add_argument("path")
    p_tl.add_argument("--sleds", action="store_true")

    p_prog = sub.add_parser("progress",
                            help="retrieve a file, comparing progress "
                                 "estimators (paper §3.3)")
    p_prog.add_argument("path")
    p_prog.add_argument("--samples", type=int, default=10)

    p_stats = sub.add_parser(
        "stats", help="run an app under telemetry and report metrics "
                      "plus SLED prediction accuracy")
    p_stats.add_argument("path")
    p_stats.add_argument("--app", choices=("wc", "grep"), default="wc")
    p_stats.add_argument("--pattern", default="XNEEDLEX",
                         help="pattern for --app grep")
    p_stats.add_argument("--no-sleds", action="store_true",
                         help="run without SLED-directed delivery")
    p_stats.add_argument("--warm", action="store_true",
                         help="run twice and report the warm-cache pass")
    p_stats.add_argument("--format", choices=("text", "prom", "json"),
                         default="text", dest="fmt",
                         help="text report, Prometheus exposition, or "
                              "JSON dump")
    p_stats.add_argument("-o", "--out", default=None, metavar="FILE",
                         help="also write the metrics to FILE")

    p_report = sub.add_parser(
        "report", help="concurrent readers under lifecycle tracing: "
                       "latency breakdown, critical path, prediction "
                       "accuracy")
    p_report.add_argument("paths", nargs="*",
                          help="files to read concurrently (default: "
                               "the demo three-reader mix)")
    p_report.add_argument("--json", default=None, metavar="FILE",
                          dest="json_out",
                          help="also write the full report as JSON")

    p_slo = sub.add_parser(
        "slo", help="concurrent readers graded against per-class latency "
                    "objectives: rolling p50/p99, compliance, error-budget "
                    "burn rate, plus a sampled metric time series")
    p_slo.add_argument("paths", nargs="*",
                       help="files to read concurrently (default: the "
                            "demo three-reader mix)")
    p_slo.add_argument("--objective", action="append", default=None,
                       metavar="CLS=SECONDS",
                       help="latency objective for one device class "
                            "(repeatable; default: built-in per-class "
                            "objectives)")
    p_slo.add_argument("--compliance", type=float, default=0.99,
                       help="fraction of requests that must meet the "
                            "objective (default 0.99)")
    p_slo.add_argument("--window", type=int, default=512,
                       help="rolling window (requests) for quantiles and "
                            "burn rate")
    p_slo.add_argument("--interval", type=float, default=0.005,
                       help="time-series sampling cadence in virtual "
                            "seconds (default 5 ms)")
    p_slo.add_argument("--tenants", type=int, default=0, metavar="N",
                       help="assign readers round-robin to N tenants "
                            "(0 = untenanted; implies --by-tenant)")
    p_slo.add_argument("--by-tenant", action="store_true",
                       dest="by_tenant",
                       help="roll compliance / burn rate up per tenant "
                            "as well as per device class")
    p_slo.add_argument("--json", default=None, metavar="FILE",
                       dest="json_out",
                       help="also write the SLO report as JSON")
    p_slo.add_argument("--series-out", default=None, metavar="FILE",
                       help="write the sampled time series as JSON")
    p_slo.add_argument("--openmetrics-out", default=None, metavar="FILE",
                       help="write the sampled series as OpenMetrics text")

    p_prof = sub.add_parser(
        "profile", help="run the concurrent-reader workload with the "
                        "wall-clock hot-path profiler attached")
    p_prof.add_argument("paths", nargs="*",
                        help="files to read concurrently (default: the "
                             "demo three-reader mix)")
    p_prof.add_argument("--repeat", type=int, default=1,
                        help="run the workload N times (default 1)")
    p_prof.add_argument("--json", default=None, metavar="FILE",
                        dest="json_out",
                        help="also write the profile as JSON")
    p_prof.add_argument("--budget", type=float, default=None,
                        metavar="FAULTS_PER_S",
                        help="minimum simulated hard-faults per wall "
                             "second; exit non-zero when the measured "
                             "throughput falls below it (the "
                             "docs/performance.md core-throughput gate)")
    p_prof.add_argument("--storm", action="store_true",
                        help="profile the blocking fault storm instead "
                             "of the concurrent readers: sequential "
                             "re-reads of a file 4x the cache on a "
                             "dedicated machine — the vectorised fault "
                             "path BENCH_core_throughput gates, so "
                             "--budget measures what the benchmark "
                             "measures; --repeat reps are scored on the "
                             "best wall time")

    p_explain = sub.add_parser(
        "explain", help="latency forensics over concurrent readers: "
                        "top-K slowest requests with waterfall + blame "
                        "attribution, the cross-tenant interference "
                        "matrix, folded stacks for flamegraphs")
    p_explain.add_argument("paths", nargs="*",
                           help="files to read concurrently (default: "
                                "the demo three-reader mix)")
    p_explain.add_argument("--top", type=int, default=5,
                           help="waterfall the K slowest requests "
                                "(default 5)")
    p_explain.add_argument("--tenants", type=int, default=0, metavar="N",
                           help="assign readers round-robin to N tenants "
                                "(0 = untenanted; implies --by-tenant)")
    p_explain.add_argument("--by-tenant", action="store_true",
                           dest="by_tenant",
                           help="print the per-device interference "
                                "matrix and per-tenant queue-delay "
                                "totals")
    p_explain.add_argument("--json", default=None, metavar="FILE",
                           dest="json_out",
                           help="write the full forensic report "
                                "(waterfalls, blame vectors, matrix, "
                                "exemplars) as JSON")
    p_explain.add_argument("--folded-out", default=None, metavar="FILE",
                           help="write blame folded stacks "
                                "(flamegraph.pl input) to FILE")

    p_trace = sub.add_parser(
        "trace", help="run an app under span tracing and export "
                      "Chrome trace-event JSON")
    p_trace.add_argument("path")
    p_trace.add_argument("--app", choices=("wc", "grep"), default="wc")
    p_trace.add_argument("--pattern", default="XNEEDLEX")
    p_trace.add_argument("--no-sleds", action="store_true")
    p_trace.add_argument("-o", "--out", default=None, metavar="FILE",
                         help="write the trace JSON to FILE "
                              "(default: stdout)")
    return parser


#: files the report/slo/profile commands read when none are given
DEMO_READ_MIX = ["/mnt/ext2/demo/big.txt",
                 "/mnt/ext2/demo/small.txt",
                 "/mnt/nfs/pub/dataset.txt"]

#: default per-device-class latency objectives for ``sleds-run slo``
DEFAULT_SLO_OBJECTIVES = {
    "memory": 0.001,
    "disk": 0.02,
    "nfs": 0.06,
    "cdrom": 1.0,
    "tape": 300.0,
}


def _parse_objectives(specs: list[str] | None) -> dict[str, float]:
    if not specs:
        return dict(DEFAULT_SLO_OBJECTIVES)
    out: dict[str, float] = {}
    for spec in specs:
        cls, sep, value = spec.partition("=")
        if not sep or not cls:
            raise SystemExit(
                f"--objective needs CLS=SECONDS, got {spec!r}")
        try:
            out[cls] = float(value)
        except ValueError:
            raise SystemExit(
                f"--objective {spec!r}: {value!r} is not a number") from None
    return out


def _prefetch_sleds(kernel, paths: list[str]) -> None:
    """Fetch each file's SLED vector so the accuracy join has
    predictions to grade the delivered latencies against."""
    for path in paths:
        fd = kernel.open(path)
        kernel.get_sleds(fd)
        kernel.close(fd)


def _run_readers(kernel, paths: list[str], prefix: str = "reader",
                 tenants: int = 0):
    """Run one concurrent reader per path; returns (tasks, stats).

    ``tenants`` > 0 assigns readers round-robin to that many tenants
    (``tenant0`` .. ``tenantN-1``), so faults carry tenant attribution.
    """
    from repro.sim.tasks import EventScheduler, Task, reader_task_async
    tasks = [Task(f"{prefix}{i}", reader_task_async(kernel, path),
                  tenant=f"tenant{i % tenants}" if tenants else None)
             for i, path in enumerate(paths)]
    return tasks, EventScheduler(kernel, tasks).run()


#: the blocking fault-storm profiled by ``sleds-run profile --storm`` —
#: mirrors benchmarks/test_perf_core_throughput.py so a --budget gate
#: here measures the same path BENCH_core_throughput records
STORM_SEED = 7077
STORM_FILE_PAGES = 8192
STORM_CACHE_PAGES = 2048
STORM_PASSES = 6
STORM_CHUNK_PAGES = 64


def _profile_storm(args) -> int:
    """``sleds-run profile --storm``: the vectorised-fault-path gate."""
    from repro.machine import Machine
    from repro.obs import HotPathProfiler
    from repro.sim.units import PAGE_SIZE

    profiler = HotPathProfiler()
    best_wall = None
    faults = 0
    virtual = 0.0
    for _ in range(args.repeat):
        machine = Machine.unix_utilities(cache_pages=STORM_CACHE_PAGES,
                                         seed=STORM_SEED)
        machine.boot()
        machine.ext2.create_text_file(
            "storm.dat", STORM_FILE_PAGES * PAGE_SIZE, seed=1)
        kernel = machine.kernel
        profiler.attach(kernel)
        fd = kernel.open("/mnt/ext2/storm.dat")
        size = STORM_FILE_PAGES * PAGE_SIZE
        chunk = STORM_CHUNK_PAGES * PAGE_SIZE
        start = kernel.clock.now
        faults_before = kernel.counters.hard_faults
        wall_start = time.perf_counter()
        for _ in range(STORM_PASSES):
            offset = 0
            while offset < size:
                kernel.pread(fd, offset, chunk)
                offset += chunk
        wall = time.perf_counter() - wall_start
        kernel.close(fd)
        profiler.detach(kernel)
        faults = kernel.counters.hard_faults - faults_before
        virtual = kernel.clock.now - start
        if best_wall is None or wall < best_wall:
            best_wall = wall

    print(f"fault storm: {STORM_PASSES} passes over "
          f"{STORM_FILE_PAGES} pages through a "
          f"{STORM_CACHE_PAGES}-page cache, best of {args.repeat}, "
          f"{human_time(virtual)} virtual")
    print()
    print(profiler.render(virtual_seconds=virtual))
    if args.json_out:
        payload = profiler.to_dict(virtual_seconds=virtual)
        payload["storm"] = {
            "file_pages": STORM_FILE_PAGES,
            "cache_pages": STORM_CACHE_PAGES,
            "passes": STORM_PASSES,
            "chunk_pages": STORM_CHUNK_PAGES,
            "repeat": args.repeat,
            "hard_faults": faults,
            "best_wall_s": best_wall,
            "faults_per_s": faults / best_wall if best_wall else None,
        }
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote profile JSON to {args.json_out}")
    if args.budget is not None:
        faults_per_s = faults / best_wall if best_wall > 0 else float("inf")
        verdict = "PASS" if faults_per_s >= args.budget else "FAIL"
        print(f"\nthroughput: {faults:,} hard faults in {best_wall:.3f}s "
              f"wall = {faults_per_s:,.0f} faults/s "
              f"(budget {args.budget:,.0f}): {verdict}")
        if faults_per_s < args.budget:
            return 1
    return 0


def _run_instrumented(kernel, args):
    """Run the app named by ``args.app`` once; returns the finished run."""
    use_sleds = not args.no_sleds
    with kernel.process() as run:
        if args.app == "wc":
            wc(kernel, args.path, use_sleds=use_sleds)
        else:
            grep(kernel, args.path, args.pattern.encode(),
                 use_sleds=use_sleds)
    return run


def _report_run(run) -> None:
    print(f"---\nvirtual time {human_time(run.elapsed)}  "
          f"faults {run.hard_faults}  "
          f"device pages {run.counters.pages_read}")
    parts = ", ".join(f"{cat} {human_time(seconds)}"
                      for cat, seconds in sorted(run.by_category.items()))
    if parts:
        print(f"breakdown: {parts}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    machine = (load_scenario(args.scenario) if args.scenario
               else build_scenario(DEFAULT_SCENARIO))
    kernel = machine.kernel

    if args.command == "wc":
        use_sleds = args.sleds or args.mmap
        with kernel.process() as run:
            result = wc(kernel, args.path, use_sleds=use_sleds,
                        via_mmap=args.mmap)
        print(f"{result.lines:8d} {result.words:8d} {result.chars:8d} "
              f"{args.path}")
        _report_run(run)
        return 0

    if args.command == "grep":
        use_sleds = args.sleds or args.mmap
        with kernel.process() as run:
            result = grep(kernel, args.path, args.pattern.encode(),
                          use_sleds=use_sleds,
                          first_match_only=args.quiet,
                          via_mmap=args.mmap, regex=args.regex)
        for match in result.matches:
            prefix = (f"{match.line_number}:" if args.line_numbers else "")
            print(f"{prefix}{match.line.decode(errors='replace')}")
        _report_run(run)
        return 0 if result.count else 1

    if args.command == "find":
        plan = SLEDS_BEST if args.best else SLEDS_LINEAR
        with kernel.process() as run:
            hits = find(kernel, args.root, name=args.name,
                        latency=args.latency, attack_plan=plan,
                        cross_mounts=not args.xdev)
        for hit in hits:
            extra = ("" if hit.delivery_time is None
                     else f"  ({human_time(hit.delivery_time)})")
            print(f"{hit.path}{extra}")
        _report_run(run)
        return 0

    if args.command == "gmc":
        if kernel.stat(args.path).is_dir:
            from repro.apps.gmc import format_directory
            print(format_directory(kernel, args.path))
            return 0
        panel = file_properties(kernel, args.path)
        print(format_panel(panel))
        print(f"\n{should_wait_prompt(panel)}")
        return 0

    if args.command == "sleds":
        fd = kernel.open(args.path)
        vector = kernel.get_sleds(fd)
        kernel.close(fd)
        print(f"{len(vector)} SLED(s) over {vector.file_size} bytes:")
        for sled in vector:
            print(f"  offset={sled.offset:<10} length={sled.length:<10} "
                  f"latency={human_time(sled.latency):>10} "
                  f"bandwidth={sled.bandwidth / MB:6.1f} MB/s")
        return 0

    if args.command == "timeline":
        tracer = Tracer()
        kernel.attach_tracer(tracer)
        with kernel.process() as run:
            wc(kernel, args.path, use_sleds=args.sleds)
        kernel.detach_tracer()
        print(render_timeline(tracer.events()))
        _report_run(run)
        return 0

    if args.command == "stats":
        from repro.obs import Telemetry
        telemetry = Telemetry()
        kernel.attach_telemetry(telemetry)
        run = _run_instrumented(kernel, args)
        if args.warm:
            run = _run_instrumented(kernel, args)
        kernel.detach_telemetry()
        if args.fmt == "prom":
            body = telemetry.render_prometheus()
        elif args.fmt == "json":
            body = json.dumps(telemetry.to_dict(), indent=2, sort_keys=True)
        else:
            label = "warm" if args.warm else "cold"
            body = (f"{label} {args.app} run: "
                    f"virtual time {human_time(run.elapsed)}, "
                    f"faults {run.hard_faults}, "
                    f"hit ratio {run.hit_ratio:.1%}\n\n"
                    + telemetry.accuracy.report().render())
        print(body)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(body + "\n")
        return 0

    if args.command == "report":
        from repro.obs import Telemetry, critical_path
        paths = args.paths or list(DEMO_READ_MIX)
        telemetry = Telemetry()
        kernel.attach_telemetry(telemetry)
        engine = kernel.attach_engine()
        _prefetch_sleds(kernel, paths)
        start = kernel.clock.now
        tasks, stats = _run_readers(kernel, paths)
        end = kernel.clock.now
        queue_report = engine.queue_report()
        kernel.detach_engine()
        kernel.detach_telemetry()

        records = list(telemetry.lifecycle.records)
        chain = critical_path(records, start, end)
        print(f"{len(paths)} concurrent reader(s), makespan "
              f"{human_time(end - start)}")
        for task in tasks:
            s = stats[task.name]
            print(f"  {task.name}: virtual {human_time(s.virtual_time)}  "
                  f"waited {human_time(s.wait_time)}  "
                  f"faults {s.hard_faults}")
        print()
        print(telemetry.lifecycle.render_breakdown())
        print()
        print(chain.render())
        print()
        print(telemetry.accuracy.report().render())
        if args.json_out:
            payload = {
                "paths": paths,
                "makespan_s": end - start,
                "per_task": {
                    name: {
                        "virtual_time_s": s.virtual_time,
                        "wait_time_s": s.wait_time,
                        "hard_faults": s.hard_faults,
                        "io_waits": s.io_waits,
                    } for name, s in stats.items()
                },
                "lifecycle": telemetry.lifecycle.to_dict(),
                "critical_path": chain.to_dict(),
                # the report snapshot, by_component included — the
                # machine-readable twin of the rendered accuracy table
                "accuracy": telemetry.accuracy.report().to_dict(),
                "queues": queue_report,
            }
            with open(args.json_out, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"\nwrote report JSON to {args.json_out}")
        return 0

    if args.command == "slo":
        from repro.obs import SloTracker, Telemetry
        paths = args.paths or list(DEMO_READ_MIX)
        if args.tenants < 0:
            raise SystemExit(f"--tenants must be >= 0: {args.tenants}")
        by_tenant = args.by_tenant or args.tenants > 0
        objectives = _parse_objectives(args.objective)
        telemetry = Telemetry()
        kernel.attach_telemetry(telemetry)
        series = telemetry.enable_timeseries(interval=args.interval)
        slo = SloTracker.for_classes(
            objectives, compliance_target=args.compliance,
            window=args.window, registry=telemetry.registry,
            track_tenants=by_tenant
        ).attach(telemetry)
        kernel.attach_engine()
        _prefetch_sleds(kernel, paths)
        start = kernel.clock.now
        tasks, stats = _run_readers(kernel, paths, tenants=args.tenants)
        end = kernel.clock.now
        series.sample(end)  # final state always lands on the series
        kernel.detach_engine()
        kernel.detach_telemetry()
        slo.detach()

        print(f"{len(paths)} concurrent reader(s), makespan "
              f"{human_time(end - start)}, "
              f"{sum(s.hard_faults for s in stats.values())} fault(s)")
        print()
        print(slo.render())
        if by_tenant:
            print()
            print(slo.render_tenants())
        print(f"\ntime series: {len(series)} sample(s) across "
              f"{len(series.family_names_sampled())} metric families "
              f"(cadence {args.interval} virtual s)")
        if args.json_out:
            payload = {
                "paths": paths,
                "makespan_s": end - start,
                "objectives": objectives,
                "tenants": args.tenants,
                "compliance_target": args.compliance,
                "window": args.window,
                "slo": slo.to_dict(),
            }
            with open(args.json_out, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote SLO report JSON to {args.json_out}")
        if args.series_out:
            with open(args.series_out, "w") as handle:
                json.dump(series.to_dict(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
            print(f"wrote time-series JSON to {args.series_out}")
        if args.openmetrics_out:
            with open(args.openmetrics_out, "w") as handle:
                handle.write(series.render_openmetrics())
            print(f"wrote OpenMetrics series to {args.openmetrics_out}")
        return 0

    if args.command == "profile":
        from repro.block.merge import BlockConfig
        from repro.obs import HotPathProfiler
        if args.repeat < 1:
            raise SystemExit(f"--repeat must be >= 1: {args.repeat}")
        if args.budget is not None and args.budget <= 0:
            raise SystemExit(f"--budget must be > 0: {args.budget}")
        if args.storm:
            return _profile_storm(args)
        paths = args.paths or list(DEMO_READ_MIX)
        profiler = HotPathProfiler().attach(kernel)
        # merge+plug on so the block-layer flush site is exercised too
        kernel.attach_engine(block=BlockConfig(merge=True, plug=True))
        start = kernel.clock.now
        faults_before = kernel.counters.hard_faults
        wall_start = time.perf_counter()
        for rep in range(args.repeat):
            _prefetch_sleds(kernel, paths)
            _run_readers(kernel, paths, prefix=f"r{rep}.")
        wall = time.perf_counter() - wall_start
        faults = kernel.counters.hard_faults - faults_before
        end = kernel.clock.now
        kernel.detach_engine()
        virtual = end - start

        print(f"{args.repeat} x {len(paths)} concurrent reader(s), "
              f"{human_time(virtual)} virtual")
        print()
        print(profiler.render(virtual_seconds=virtual))
        if args.json_out:
            with open(args.json_out, "w") as handle:
                json.dump(profiler.to_dict(virtual_seconds=virtual),
                          handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"\nwrote profile JSON to {args.json_out}")
        profiler.detach(kernel)
        if args.budget is not None:
            faults_per_s = faults / wall if wall > 0 else float("inf")
            verdict = "PASS" if faults_per_s >= args.budget else "FAIL"
            print(f"\nthroughput: {faults:,} hard faults in {wall:.3f}s "
                  f"wall = {faults_per_s:,.0f} faults/s "
                  f"(budget {args.budget:,.0f}): {verdict}")
            if faults_per_s < args.budget:
                return 1
        return 0

    if args.command == "explain":
        import math

        from repro.block.merge import BlockConfig
        from repro.obs import LatencyForensics, SloTracker, Telemetry
        if args.top < 1:
            raise SystemExit(f"--top must be >= 1: {args.top}")
        if args.tenants < 0:
            raise SystemExit(f"--tenants must be >= 0: {args.tenants}")
        by_tenant = args.by_tenant or args.tenants > 0
        paths = args.paths or list(DEMO_READ_MIX)
        telemetry = Telemetry()
        kernel.attach_telemetry(telemetry)
        slo = SloTracker.for_classes(
            DEFAULT_SLO_OBJECTIVES, registry=telemetry.registry,
            track_tenants=by_tenant).attach(telemetry)
        # merge+plug on so plug-hold blame has something to attribute
        engine = kernel.attach_engine(
            block=BlockConfig(merge=True, plug=True))
        forensics = LatencyForensics(kernel, engine,
                                     top_k=max(32, args.top))
        forensics.attach(telemetry, slo=slo)
        _prefetch_sleds(kernel, paths)
        start = kernel.clock.now
        tasks, stats = _run_readers(kernel, paths, tenants=args.tenants)
        end = kernel.clock.now
        report = forensics.analyze(top=args.top)
        folded_cp = forensics.critical_path_folded(start, end)
        kernel.detach_engine()
        kernel.detach_telemetry()
        slo.detach()
        forensics.detach()

        print(f"{len(paths)} concurrent reader(s), makespan "
              f"{human_time(end - start)}, "
              f"{report.analyzed} traced request(s), "
              f"{forensics.reservoir.violations} SLO violation(s)")
        print()
        print(report.render())
        if by_tenant:
            rows = report.matrix.row_totals()
            pools = slo.tenant_queue_waits()
            print()
            print("per-tenant queue delay (matrix row vs SLO pool):")
            for victim in sorted(rows):
                pool = pools.get(victim, math.nan)
                print(f"  {victim:>12}: attributed "
                      f"{human_time(rows[victim]):>10}   SLO pool "
                      f"{'-' if victim == '-' else human_time(pool):>10}")
        if args.json_out:
            payload = {
                "paths": paths,
                "makespan_s": end - start,
                "tenants": args.tenants,
                "forensics": report.to_dict(),
                "slo_tenant_queue_waits": slo.tenant_queue_waits(),
            }
            with open(args.json_out, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"\nwrote forensic report JSON to {args.json_out}")
        if args.folded_out:
            with open(args.folded_out, "w") as handle:
                for line in report.folded:
                    handle.write(line + "\n")
                for line in folded_cp:
                    handle.write(line + "\n")
            print(f"wrote {len(report.folded) + len(folded_cp)} folded "
                  f"stack(s) to {args.folded_out}")
        return 0

    if args.command == "trace":
        from repro.obs import Telemetry
        telemetry = Telemetry()
        kernel.attach_telemetry(telemetry)
        _run_instrumented(kernel, args)
        kernel.detach_telemetry()
        body = json.dumps(telemetry.chrome_trace(), indent=2)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(body + "\n")
            print(f"wrote {len(telemetry.spans)} spans to {args.out}")
        else:
            print(body)
        return 0

    if args.command == "progress":
        from repro.apps.progress import retrieve_with_progress
        report = retrieve_with_progress(kernel, args.path,
                                        samples=args.samples)
        print(f"initial SLEDs estimate {human_time(report.initial_estimate)}"
              f"; actual {human_time(report.total_time)}")
        print(f"{'done':>6} {'elapsed':>10} {'dynamic ETA':>12} "
              f"{'sleds ETA':>12}")
        for sample in report.samples:
            dynamic = ("-" if sample.eta_dynamic is None
                       else human_time(sample.eta_dynamic))
            print(f"{sample.fraction_done:6.0%} "
                  f"{human_time(sample.elapsed):>10} {dynamic:>12} "
                  f"{human_time(sample.eta_sleds):>12}")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
