"""``sleds-run`` — drive the SLEDs applications from the command line.

Builds a simulated machine from a scenario file (or the built-in demo
scenario) and runs one of the ported utilities against it, printing the
result plus the run's virtual-time/fault accounting — the closest thing
to sitting at the paper's test machine.

Examples::

    sleds-run wc /mnt/ext2/demo/big.txt --sleds
    sleds-run grep XNEEDLEX /mnt/ext2/demo/big.txt -q --sleds
    sleds-run find /mnt/ext2 -latency -m50
    sleds-run gmc /mnt/ext2/demo/big.txt
    sleds-run sleds /mnt/ext2/demo/big.txt          # raw FSLEDS_GET dump
    sleds-run timeline /mnt/ext2/demo/big.txt       # traced wc + timeline
    sleds-run stats /mnt/ext2/demo/big.txt --warm   # metrics + accuracy
    sleds-run trace /mnt/ext2/demo/big.txt -o t.json  # Chrome trace JSON
    sleds-run report --json report.json   # lifecycle + critical path
    sleds-run --scenario my_setup.json wc /mnt/nfs/pub/dataset.txt
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.apps.findutil import find
from repro.apps.gmc import file_properties, format_panel, should_wait_prompt
from repro.apps.grep import grep
from repro.apps.wc import wc
from repro.bench.scenario import DEFAULT_SCENARIO, build_scenario, load_scenario
from repro.core.delivery import SLEDS_BEST, SLEDS_LINEAR
from repro.sim.trace import Tracer, render_timeline
from repro.sim.units import MB, human_time


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sleds-run",
        description="Run the SLEDs-adapted utilities on a simulated "
                    "storage stack.")
    parser.add_argument("--scenario", metavar="FILE", default=None,
                        help="scenario JSON (default: built-in demo)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_wc = sub.add_parser("wc", help="count lines/words/bytes")
    p_wc.add_argument("path")
    p_wc.add_argument("--sleds", action="store_true")
    p_wc.add_argument("--mmap", action="store_true",
                      help="mmap-friendly library (implies --sleds)")

    p_grep = sub.add_parser("grep", help="search for a literal pattern")
    p_grep.add_argument("pattern")
    p_grep.add_argument("path")
    p_grep.add_argument("--sleds", action="store_true")
    p_grep.add_argument("-q", action="store_true", dest="quiet",
                        help="stop at the first match")
    p_grep.add_argument("-n", action="store_true", dest="line_numbers",
                        help="print line numbers")
    p_grep.add_argument("--mmap", action="store_true")
    p_grep.add_argument("-E", action="store_true", dest="regex",
                        help="interpret PATTERN as a regular expression")

    p_find = sub.add_parser("find", help="walk a tree with predicates")
    p_find.add_argument("root")
    p_find.add_argument("-name", default=None)
    p_find.add_argument("-latency", default=None,
                        help="[+|-][m|u]N total delivery time predicate "
                             "(use -latency=-m50 for 'less than' values "
                             "so the shell parser keeps the minus)")
    p_find.add_argument("--best", action="store_true",
                        help="use the SLEDS_BEST attack plan")
    p_find.add_argument("-xdev", action="store_true",
                        help="do not cross mount points")

    p_gmc = sub.add_parser("gmc", help="file-manager properties panel")
    p_gmc.add_argument("path")

    p_sleds = sub.add_parser("sleds", help="dump the raw SLED vector")
    p_sleds.add_argument("path")

    p_tl = sub.add_parser("timeline",
                          help="trace a wc run and render a timeline")
    p_tl.add_argument("path")
    p_tl.add_argument("--sleds", action="store_true")

    p_prog = sub.add_parser("progress",
                            help="retrieve a file, comparing progress "
                                 "estimators (paper §3.3)")
    p_prog.add_argument("path")
    p_prog.add_argument("--samples", type=int, default=10)

    p_stats = sub.add_parser(
        "stats", help="run an app under telemetry and report metrics "
                      "plus SLED prediction accuracy")
    p_stats.add_argument("path")
    p_stats.add_argument("--app", choices=("wc", "grep"), default="wc")
    p_stats.add_argument("--pattern", default="XNEEDLEX",
                         help="pattern for --app grep")
    p_stats.add_argument("--no-sleds", action="store_true",
                         help="run without SLED-directed delivery")
    p_stats.add_argument("--warm", action="store_true",
                         help="run twice and report the warm-cache pass")
    p_stats.add_argument("--format", choices=("text", "prom", "json"),
                         default="text", dest="fmt",
                         help="text report, Prometheus exposition, or "
                              "JSON dump")
    p_stats.add_argument("-o", "--out", default=None, metavar="FILE",
                         help="also write the metrics to FILE")

    p_report = sub.add_parser(
        "report", help="concurrent readers under lifecycle tracing: "
                       "latency breakdown, critical path, prediction "
                       "accuracy")
    p_report.add_argument("paths", nargs="*",
                          help="files to read concurrently (default: "
                               "the demo three-reader mix)")
    p_report.add_argument("--json", default=None, metavar="FILE",
                          dest="json_out",
                          help="also write the full report as JSON")

    p_trace = sub.add_parser(
        "trace", help="run an app under span tracing and export "
                      "Chrome trace-event JSON")
    p_trace.add_argument("path")
    p_trace.add_argument("--app", choices=("wc", "grep"), default="wc")
    p_trace.add_argument("--pattern", default="XNEEDLEX")
    p_trace.add_argument("--no-sleds", action="store_true")
    p_trace.add_argument("-o", "--out", default=None, metavar="FILE",
                         help="write the trace JSON to FILE "
                              "(default: stdout)")
    return parser


def _run_instrumented(kernel, args):
    """Run the app named by ``args.app`` once; returns the finished run."""
    use_sleds = not args.no_sleds
    with kernel.process() as run:
        if args.app == "wc":
            wc(kernel, args.path, use_sleds=use_sleds)
        else:
            grep(kernel, args.path, args.pattern.encode(),
                 use_sleds=use_sleds)
    return run


def _report_run(run) -> None:
    print(f"---\nvirtual time {human_time(run.elapsed)}  "
          f"faults {run.hard_faults}  "
          f"device pages {run.counters.pages_read}")
    parts = ", ".join(f"{cat} {human_time(seconds)}"
                      for cat, seconds in sorted(run.by_category.items()))
    if parts:
        print(f"breakdown: {parts}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    machine = (load_scenario(args.scenario) if args.scenario
               else build_scenario(DEFAULT_SCENARIO))
    kernel = machine.kernel

    if args.command == "wc":
        use_sleds = args.sleds or args.mmap
        with kernel.process() as run:
            result = wc(kernel, args.path, use_sleds=use_sleds,
                        via_mmap=args.mmap)
        print(f"{result.lines:8d} {result.words:8d} {result.chars:8d} "
              f"{args.path}")
        _report_run(run)
        return 0

    if args.command == "grep":
        use_sleds = args.sleds or args.mmap
        with kernel.process() as run:
            result = grep(kernel, args.path, args.pattern.encode(),
                          use_sleds=use_sleds,
                          first_match_only=args.quiet,
                          via_mmap=args.mmap, regex=args.regex)
        for match in result.matches:
            prefix = (f"{match.line_number}:" if args.line_numbers else "")
            print(f"{prefix}{match.line.decode(errors='replace')}")
        _report_run(run)
        return 0 if result.count else 1

    if args.command == "find":
        plan = SLEDS_BEST if args.best else SLEDS_LINEAR
        with kernel.process() as run:
            hits = find(kernel, args.root, name=args.name,
                        latency=args.latency, attack_plan=plan,
                        cross_mounts=not args.xdev)
        for hit in hits:
            extra = ("" if hit.delivery_time is None
                     else f"  ({human_time(hit.delivery_time)})")
            print(f"{hit.path}{extra}")
        _report_run(run)
        return 0

    if args.command == "gmc":
        if kernel.stat(args.path).is_dir:
            from repro.apps.gmc import format_directory
            print(format_directory(kernel, args.path))
            return 0
        panel = file_properties(kernel, args.path)
        print(format_panel(panel))
        print(f"\n{should_wait_prompt(panel)}")
        return 0

    if args.command == "sleds":
        fd = kernel.open(args.path)
        vector = kernel.get_sleds(fd)
        kernel.close(fd)
        print(f"{len(vector)} SLED(s) over {vector.file_size} bytes:")
        for sled in vector:
            print(f"  offset={sled.offset:<10} length={sled.length:<10} "
                  f"latency={human_time(sled.latency):>10} "
                  f"bandwidth={sled.bandwidth / MB:6.1f} MB/s")
        return 0

    if args.command == "timeline":
        tracer = Tracer()
        kernel.attach_tracer(tracer)
        with kernel.process() as run:
            wc(kernel, args.path, use_sleds=args.sleds)
        kernel.detach_tracer()
        print(render_timeline(tracer.events()))
        _report_run(run)
        return 0

    if args.command == "stats":
        from repro.obs import Telemetry
        telemetry = Telemetry()
        kernel.attach_telemetry(telemetry)
        run = _run_instrumented(kernel, args)
        if args.warm:
            run = _run_instrumented(kernel, args)
        kernel.detach_telemetry()
        if args.fmt == "prom":
            body = telemetry.render_prometheus()
        elif args.fmt == "json":
            body = json.dumps(telemetry.to_dict(), indent=2, sort_keys=True)
        else:
            label = "warm" if args.warm else "cold"
            body = (f"{label} {args.app} run: "
                    f"virtual time {human_time(run.elapsed)}, "
                    f"faults {run.hard_faults}, "
                    f"hit ratio {run.hit_ratio:.1%}\n\n"
                    + telemetry.accuracy.report().render())
        print(body)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(body + "\n")
        return 0

    if args.command == "report":
        from repro.obs import Telemetry, critical_path
        from repro.sim.tasks import EventScheduler, Task, reader_task_async
        paths = args.paths or ["/mnt/ext2/demo/big.txt",
                               "/mnt/ext2/demo/small.txt",
                               "/mnt/nfs/pub/dataset.txt"]
        telemetry = Telemetry()
        kernel.attach_telemetry(telemetry)
        engine = kernel.attach_engine()
        # fetch each file's SLED vector up front so the accuracy join
        # has predictions to grade the delivered latencies against
        for path in paths:
            fd = kernel.open(path)
            kernel.get_sleds(fd)
            kernel.close(fd)
        start = kernel.clock.now
        tasks = [Task(f"reader{i}", reader_task_async(kernel, path))
                 for i, path in enumerate(paths)]
        stats = EventScheduler(kernel, tasks).run()
        end = kernel.clock.now
        queue_report = engine.queue_report()
        kernel.detach_engine()
        kernel.detach_telemetry()

        records = list(telemetry.lifecycle.records)
        chain = critical_path(records, start, end)
        print(f"{len(paths)} concurrent reader(s), makespan "
              f"{human_time(end - start)}")
        for task in tasks:
            s = stats[task.name]
            print(f"  {task.name}: virtual {human_time(s.virtual_time)}  "
                  f"waited {human_time(s.wait_time)}  "
                  f"faults {s.hard_faults}")
        print()
        print(telemetry.lifecycle.render_breakdown())
        print()
        print(chain.render())
        print()
        print(telemetry.accuracy.report().render())
        if args.json_out:
            payload = {
                "paths": paths,
                "makespan_s": end - start,
                "per_task": {
                    name: {
                        "virtual_time_s": s.virtual_time,
                        "wait_time_s": s.wait_time,
                        "hard_faults": s.hard_faults,
                        "io_waits": s.io_waits,
                    } for name, s in stats.items()
                },
                "lifecycle": telemetry.lifecycle.to_dict(),
                "critical_path": chain.to_dict(),
                "accuracy": telemetry.accuracy.to_dict(),
                "queues": queue_report,
            }
            with open(args.json_out, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"\nwrote report JSON to {args.json_out}")
        return 0

    if args.command == "trace":
        from repro.obs import Telemetry
        telemetry = Telemetry()
        kernel.attach_telemetry(telemetry)
        _run_instrumented(kernel, args)
        kernel.detach_telemetry()
        body = json.dumps(telemetry.chrome_trace(), indent=2)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(body + "\n")
            print(f"wrote {len(telemetry.spans)} spans to {args.out}")
        else:
            print(body)
        return 0

    if args.command == "progress":
        from repro.apps.progress import retrieve_with_progress
        report = retrieve_with_progress(kernel, args.path,
                                        samples=args.samples)
        print(f"initial SLEDs estimate {human_time(report.initial_estimate)}"
              f"; actual {human_time(report.total_time)}")
        print(f"{'done':>6} {'elapsed':>10} {'dynamic ETA':>12} "
              f"{'sleds ETA':>12}")
        for sample in report.samples:
            dynamic = ("-" if sample.eta_dynamic is None
                       else human_time(sample.eta_dynamic))
            print(f"{sample.fraction_done:6.0%} "
                  f"{human_time(sample.elapsed):>10} {dynamic:>12} "
                  f"{human_time(sample.eta_sleds):>12}")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
