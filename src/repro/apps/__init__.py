"""The paper's modified applications (wc, grep, find, gmc) and the
extensions that join the family (cmp, progress, file sets, regex)."""

from repro.apps.findutil import (
    FindHit,
    LatencyPredicate,
    find,
    find_exec_grep_cached_first,
    parse_latency,
)
from repro.apps.gmc import (
    SledsPanel,
    file_properties,
    format_panel,
    should_wait_prompt,
)
from repro.apps.cmp import CmpResult, cmp
from repro.apps.filesets import (
    estimate_set,
    fileset_wc,
    iterate_by_latency,
)
from repro.apps.gmc import directory_listing, format_directory
from repro.apps.grep import GrepMatch, GrepResult, grep
from repro.apps.progress import RetrievalReport, retrieve_with_progress
from repro.apps.regex import CompiledRegex, RegexError, compile_regex
from repro.apps.wc import WcResult, wc

__all__ = [
    "wc",
    "WcResult",
    "grep",
    "GrepResult",
    "GrepMatch",
    "find",
    "FindHit",
    "parse_latency",
    "LatencyPredicate",
    "find_exec_grep_cached_first",
    "file_properties",
    "format_panel",
    "should_wait_prompt",
    "SledsPanel",
    "directory_listing",
    "format_directory",
    "retrieve_with_progress",
    "RetrievalReport",
    "compile_regex",
    "CompiledRegex",
    "RegexError",
    "cmp",
    "CmpResult",
    "iterate_by_latency",
    "estimate_set",
    "fileset_wc",
]
