"""A small regular-expression engine for the grep port.

The paper modified GNU grep, which matches full regular expressions; our
byte-oriented engine supports the classic grep core so the port is more
than a substring search:

* literals and escaped literals (``\\.``),
* ``.`` (any byte except newline),
* character classes ``[abc]``, ranges ``[a-z]``, negation ``[^...]``,
* postfix ``*``, ``+``, ``?``,
* alternation ``|`` and grouping ``(...)``,
* anchors ``^`` and ``$`` (whole-line semantics).

Implementation: recursive-descent parse to an AST, Thompson construction
to an NFA, and a lock-step subset simulation — linear in ``len(line) *
len(pattern)``, no backtracking blowups.  The engine answers "does this
line contain a match" (grep semantics) plus the leftmost match offset.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class RegexError(ValueError):
    """Malformed pattern."""


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Lit:
    byte: int


@dataclass(frozen=True)
class Any:
    pass


@dataclass(frozen=True)
class Klass:
    bytes_: frozenset
    negated: bool


@dataclass(frozen=True)
class Seq:
    parts: tuple


@dataclass(frozen=True)
class Alt:
    options: tuple


@dataclass(frozen=True)
class Repeat:
    node: object
    min_count: int      # 0 for * and ?, 1 for +
    unbounded: bool     # False only for ?


class _Parser:
    """Recursive descent over the pattern bytes."""

    def __init__(self, pattern: bytes) -> None:
        self.pattern = pattern
        self.pos = 0
        self.anchored_start = False
        self.anchored_end = False

    def parse(self):
        if self.pattern.startswith(b"^"):
            self.anchored_start = True
            self.pos = 1
        node = self._alt()
        if self.pos != len(self.pattern):
            raise RegexError(
                f"unexpected {chr(self.pattern[self.pos])!r} at "
                f"position {self.pos}")
        return node

    def _peek(self) -> int | None:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def _take(self) -> int:
        byte = self.pattern[self.pos]
        self.pos += 1
        return byte

    def _alt(self):
        options = [self._seq()]
        while self._peek() == ord("|"):
            self._take()
            options.append(self._seq())
        if len(options) == 1:
            return options[0]
        return Alt(tuple(options))

    def _seq(self):
        parts = []
        while True:
            byte = self._peek()
            if byte is None or byte in (ord("|"), ord(")")):
                break
            if byte == ord("$") and self.pos == len(self.pattern) - 1:
                self._take()
                self.anchored_end = True
                break
            parts.append(self._postfix())
        return Seq(tuple(parts))

    def _postfix(self):
        node = self._atom()
        byte = self._peek()
        if byte == ord("*"):
            self._take()
            return Repeat(node, 0, True)
        if byte == ord("+"):
            self._take()
            return Repeat(node, 1, True)
        if byte == ord("?"):
            self._take()
            return Repeat(node, 0, False)
        return node

    def _atom(self):
        byte = self._take()
        if byte == ord("("):
            node = self._alt()
            if self._peek() != ord(")"):
                raise RegexError("unbalanced parenthesis")
            self._take()
            return node
        if byte == ord("["):
            return self._klass()
        if byte == ord("."):
            return Any()
        if byte == ord("\\"):
            if self._peek() is None:
                raise RegexError("trailing backslash")
            return Lit(self._take())
        if byte in (ord("*"), ord("+"), ord("?")):
            raise RegexError(f"nothing to repeat at {self.pos - 1}")
        return Lit(byte)

    def _klass(self):
        negated = False
        members: set[int] = set()
        if self._peek() == ord("^"):
            self._take()
            negated = True
        first = True
        while True:
            byte = self._peek()
            if byte is None:
                raise RegexError("unterminated character class")
            if byte == ord("]") and not first:
                self._take()
                break
            first = False
            lo = self._take()
            if lo == ord("\\"):
                if self._peek() is None:
                    raise RegexError("trailing backslash in class")
                lo = self._take()
            if (self._peek() == ord("-")
                    and self.pos + 1 < len(self.pattern)
                    and self.pattern[self.pos + 1] != ord("]")):
                self._take()
                hi = self._take()
                if hi < lo:
                    raise RegexError(f"bad range {chr(lo)}-{chr(hi)}")
                members.update(range(lo, hi + 1))
            else:
                members.add(lo)
        return Klass(frozenset(members), negated)


# ---------------------------------------------------------------------------
# NFA (Thompson construction)
# ---------------------------------------------------------------------------

@dataclass
class _State:
    #: byte predicate -> next state; None predicate = epsilon
    edges: list = field(default_factory=list)


def _matches(condition, byte: int) -> bool:
    if isinstance(condition, Lit):
        return byte == condition.byte
    if isinstance(condition, Any):
        return byte != ord("\n")
    if isinstance(condition, Klass):
        return (byte not in condition.bytes_ if condition.negated
                else byte in condition.bytes_)
    raise AssertionError(condition)


class CompiledRegex:
    """A compiled pattern; see :func:`compile_regex`."""

    def __init__(self, pattern: bytes) -> None:
        parser = _Parser(pattern)
        ast = parser.parse()
        self.pattern = pattern
        self.anchored_start = parser.anchored_start
        self.anchored_end = parser.anchored_end
        self._states: list[_State] = []
        self._start = self._new()
        self._accept = self._new()
        self._build(ast, self._start, self._accept)

    def _new(self) -> int:
        self._states.append(_State())
        return len(self._states) - 1

    def _build(self, node, entry: int, exit_: int) -> None:
        if isinstance(node, (Lit, Any, Klass)):
            self._states[entry].edges.append((node, exit_))
        elif isinstance(node, Seq):
            if not node.parts:
                self._states[entry].edges.append((None, exit_))
                return
            current = entry
            for part in node.parts[:-1]:
                nxt = self._new()
                self._build(part, current, nxt)
                current = nxt
            self._build(node.parts[-1], current, exit_)
        elif isinstance(node, Alt):
            for option in node.options:
                self._build(option, entry, exit_)
        elif isinstance(node, Repeat):
            loop = self._new()
            if node.min_count == 0:
                self._states[entry].edges.append((None, exit_))
            self._build(node.node, entry, loop)
            self._states[loop].edges.append((None, exit_))
            if node.unbounded:
                self._states[loop].edges.append((None, entry))
        else:
            raise AssertionError(node)

    def _closure(self, states: set[int]) -> set[int]:
        stack = list(states)
        seen = set(states)
        while stack:
            state = stack.pop()
            for condition, target in self._states[state].edges:
                if condition is None and target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen

    def _run_from(self, line: bytes, start: int) -> int | None:
        """Leftmost-shortest match end from ``start``, or None."""
        current = self._closure({self._start})
        if self._accept in current and not self.anchored_end:
            return start
        for index in range(start, len(line)):
            byte = line[index]
            following: set[int] = set()
            for state in current:
                for condition, target in self._states[state].edges:
                    if condition is not None and _matches(condition, byte):
                        following.add(target)
            if not following:
                return None
            current = self._closure(following)
            if self._accept in current:
                if not self.anchored_end or index == len(line) - 1:
                    return index + 1
        if self._accept in current:
            return len(line)
        return None

    def search(self, line: bytes) -> int | None:
        """Offset of the leftmost match in ``line``, or None.

        ``line`` must not contain a newline (grep operates per record).
        """
        starts = [0] if self.anchored_start else range(len(line) + 1)
        for start in starts:
            end = self._run_from(line, start)
            if end is not None:
                if self.anchored_end and end != len(line):
                    continue
                return start
        return None

    def matches(self, line: bytes) -> bool:
        return self.search(line) is not None


def compile_regex(pattern: bytes) -> CompiledRegex:
    """Compile a grep-style pattern; raises :class:`RegexError`."""
    if not pattern:
        raise RegexError("empty pattern")
    return CompiledRegex(pattern)
