"""``wc`` — word count, with and without SLEDs.

"For wc, since the order of data access is not significant, little
overhead is generated in modifying the code."  Lines and characters are
trivially order-independent; words need one subtlety: a word split across
two *adjacent* chunks must not be counted twice.  The SLEDs variant
therefore records, per chunk, its internal word count plus whether its
first/last bytes are word characters, and merges adjacent chunks at the
end — so ``wc --sleds`` is byte-for-byte equal to plain ``wc`` (tested).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.common import (
    DEFAULT_BUFSIZE,
    SCAN_CPU_PER_BYTE,
    SLEDS_EXTRA_CPU_PER_BYTE,
    read_linear,
    read_sleds_order,
)

_WHITESPACE = b" \t\n\r\v\f"


@dataclass(frozen=True)
class WcResult:
    """The three counters wc prints."""

    path: str
    lines: int
    words: int
    chars: int


def _scan_chunk(data: bytes) -> tuple[int, int, bool, bool]:
    """(newlines, words, starts_in_word, ends_in_word) for one chunk."""
    newlines = data.count(b"\n")
    words = len(data.split())
    starts_in_word = bool(data) and data[0:1] not in (
        b" ", b"\t", b"\n", b"\r", b"\v", b"\f")
    ends_in_word = bool(data) and data[-1:] not in (
        b" ", b"\t", b"\n", b"\r", b"\v", b"\f")
    return newlines, words, starts_in_word, ends_in_word


def wc(kernel, path: str, use_sleds: bool = False,
       bufsize: int = DEFAULT_BUFSIZE, via_mmap: bool = False) -> WcResult:
    """Count lines, words and bytes of ``path`` through the simulated
    kernel, charging realistic scan CPU.

    ``via_mmap`` (SLEDs mode only) uses the mmap-friendly library path,
    dropping the per-byte copy tax.
    """
    fd = kernel.open(path)
    try:
        if use_sleds:
            return _wc_sleds(kernel, path, fd, bufsize, via_mmap)
        return _wc_linear(kernel, path, fd, bufsize)
    finally:
        kernel.close(fd)


def _wc_linear(kernel, path: str, fd: int, bufsize: int) -> WcResult:
    lines = words = chars = 0
    prev_ends_in_word = False
    for _, data in read_linear(kernel, fd, bufsize):
        kernel.charge_cpu(len(data) * SCAN_CPU_PER_BYTE)
        newlines, nwords, starts_in_word, ends_in_word = _scan_chunk(data)
        lines += newlines
        words += nwords
        if prev_ends_in_word and starts_in_word:
            words -= 1  # same word continues across the buffer boundary
        chars += len(data)
        prev_ends_in_word = ends_in_word
    return WcResult(path=path, lines=lines, words=words, chars=chars)


def _wc_sleds(kernel, path: str, fd: int, bufsize: int,
              via_mmap: bool = False) -> WcResult:
    lines = words = chars = 0
    copy_tax = 0.0 if via_mmap else SLEDS_EXTRA_CPU_PER_BYTE
    #: chunk edges: offset -> (starts_in_word at offset, end offset,
    #: ends_in_word at end)
    edges: list[tuple[int, int, bool, bool]] = []
    for offset, data in read_sleds_order(kernel, fd, bufsize,
                                         via_mmap=via_mmap):
        kernel.charge_cpu(len(data) * (SCAN_CPU_PER_BYTE + copy_tax))
        newlines, nwords, starts_in_word, ends_in_word = _scan_chunk(data)
        lines += newlines
        words += nwords
        chars += len(data)
        if data:
            edges.append((offset, offset + len(data),
                          starts_in_word, ends_in_word))
    # merge: a word straddling two adjacent chunks was counted twice
    edges.sort()
    for (_, prev_end, _, prev_ends), (start, _, starts, _) in zip(
            edges, edges[1:]):
        if prev_end == start and prev_ends and starts:
            words -= 1
    return WcResult(path=path, lines=lines, words=words, chars=chars)
