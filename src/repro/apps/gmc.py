"""``gmc`` — the file-manager properties panel reporting SLEDs.

"In gmc, a new simple panel is added to the file properties dialog box
... The SLEDs panel reports the length, offset, latency, and bandwidth of
each SLED, as well as the estimated total delivery time for the file.
Users can interactively use this panel to decide whether or not to access
the file."  We render the same information as text (Figure 6 equivalent).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.delivery import (
    SLEDS_BEST,
    SLEDS_LINEAR,
    estimate_delivery_time,
)
from repro.core.sled import Sled, SledVector
from repro.sim.units import MB, human_bytes, human_time


@dataclass(frozen=True)
class SledsPanel:
    """The data behind the gmc properties panel."""

    path: str
    size: int
    sleds: SledVector
    total_time_linear: float
    total_time_best: float

    @property
    def cached_bytes(self) -> int:
        """Bytes at the lowest-latency level (usually the buffer cache)."""
        if len(self.sleds) == 0:
            return 0
        lowest = self.sleds.min_latency()
        return sum(s.length for s in self.sleds if s.latency == lowest)


def file_properties(kernel, path: str) -> SledsPanel:
    """Build the SLEDs panel for a file (opens, ioctls, closes)."""
    fd = kernel.open(path)
    try:
        vector = kernel.get_sleds(fd)
    finally:
        kernel.close(fd)
    st = kernel.stat(path)
    return SledsPanel(
        path=path,
        size=st.size,
        sleds=vector,
        total_time_linear=estimate_delivery_time(vector, SLEDS_LINEAR),
        total_time_best=estimate_delivery_time(vector, SLEDS_BEST),
    )


def format_panel(panel: SledsPanel) -> str:
    """Render the panel the way the gmc dialog lays it out."""
    lines = [
        f"File: {panel.path}",
        f"Size: {human_bytes(panel.size)} ({panel.size} bytes)",
        "",
        f"{'offset':>12}  {'length':>12}  {'latency':>12}  {'bandwidth':>12}",
    ]
    for sled in panel.sleds:
        lines.append(
            f"{sled.offset:>12}  {sled.length:>12}  "
            f"{human_time(sled.latency):>12}  "
            f"{sled.bandwidth / MB:>9.1f} MB/s"
        )
    lines += [
        "",
        f"Estimated total delivery time (linear): "
        f"{human_time(panel.total_time_linear)}",
        f"Estimated total delivery time (best):   "
        f"{human_time(panel.total_time_best)}",
    ]
    return "\n".join(lines)


def should_wait_prompt(panel: SledsPanel,
                       patience_seconds: float = 5.0) -> str:
    """The user-facing judgement gmc can derive from the panel: is this
    retrieval instant, a short wait, or worth multitasking through?"""
    t = panel.total_time_best
    if t <= 0.1:
        return "available immediately"
    if t <= patience_seconds:
        return f"short wait (~{human_time(t)})"
    return (f"long retrieval (~{human_time(t)}): consider working on "
            f"something else while it loads")


def directory_listing(kernel, path: str) -> list[SledsPanel]:
    """Panels for every regular file directly inside ``path`` — the data
    behind a file-manager window with a 'retrieval time' column."""
    panels = []
    base = path.rstrip("/")
    for name in kernel.listdir(path):
        child = f"{base}/{name}"
        if kernel.stat(child).is_dir:
            continue
        panels.append(file_properties(kernel, child))
    return panels


def format_directory(kernel, path: str,
                     patience_seconds: float = 5.0) -> str:
    """Render the file-manager window: one row per file with its size,
    cached fraction, and estimated retrieval time."""
    panels = directory_listing(kernel, path)
    memory_latency = kernel.sleds_table.memory.latency
    lines = [f"{path}  ({len(panels)} file(s))",
             f"{'name':28s} {'size':>10} {'cached':>7} "
             f"{'retrieval':>12}  verdict"]
    for panel in panels:
        name = panel.path.rsplit("/", 1)[-1]
        in_memory = sum(s.length for s in panel.sleds
                        if s.latency <= memory_latency)
        cached_pct = 100 * in_memory // panel.size if panel.size else 100
        lines.append(
            f"{name:28s} {human_bytes(panel.size):>10} "
            f"{cached_pct:>6}% {human_time(panel.total_time_best):>12}  "
            f"{should_wait_prompt(panel, patience_seconds)}")
    return "\n".join(lines)


# keep the Sled name importable from here for panel consumers
__all__ = ["SledsPanel", "file_properties", "format_panel",
           "should_wait_prompt", "directory_listing", "format_directory",
           "Sled"]
