"""``find`` — directory-tree walk with predicates, including ``-latency``.

The paper adds a predicate over the file's estimated total delivery time:
"``find -latency +n`` looks for files with more than n seconds total
retrieval time, ``n`` means exactly n seconds and ``-n`` means less than
n seconds.  ``mn`` or ``Mn`` instead of ``n`` can be used for units of
milliseconds, and ``un`` or ``Un`` used for microseconds."  It was
"implemented similarly to other predicates such as ``-atime``", using
``sleds_total_delivery_time``.

This lets a user prune I/O: skip tape-resident files, skip anything that
would hammer an NFS server, or — the paper's running example — grep the
cached parts of a source tree first (see
:func:`find_exec_grep_cached_first`).
"""

from __future__ import annotations

import fnmatch
import math
from dataclasses import dataclass
from typing import Callable

from repro.core.delivery import (
    SLEDS_BEST,
    SLEDS_LINEAR,
    sleds_total_delivery_time_path,
)
from repro.sim.errors import InvalidArgumentError

#: relative tolerance for the "exactly n seconds" comparison
_EXACT_RTOL = 1e-6


@dataclass(frozen=True)
class LatencyPredicate:
    """Parsed ``-latency`` argument."""

    comparison: str  # "+" (more than), "-" (less than), "=" (exactly)
    seconds: float

    def matches(self, delivery_time: float) -> bool:
        if self.comparison == "+":
            return delivery_time > self.seconds
        if self.comparison == "-":
            return delivery_time < self.seconds
        return math.isclose(delivery_time, self.seconds,
                            rel_tol=_EXACT_RTOL, abs_tol=1e-12)


def parse_latency(spec: str) -> LatencyPredicate:
    """Parse the paper's ``-latency`` syntax: ``[+|-][m|M|u|U]<number>``."""
    text = spec.strip()
    if not text:
        raise InvalidArgumentError("empty -latency argument")
    comparison = "="
    if text[0] in "+-":
        comparison = text[0]
        text = text[1:]
    scale = 1.0
    if text[:1] in ("m", "M"):
        scale = 1e-3
        text = text[1:]
    elif text[:1] in ("u", "U"):
        scale = 1e-6
        text = text[1:]
    if text[:1] in "+-":
        raise InvalidArgumentError(
            f"bad -latency argument {spec!r}: sign must come first")
    try:
        value = float(text)
    except ValueError:
        raise InvalidArgumentError(
            f"bad -latency argument {spec!r}: expected [+|-][m|u]<number>"
        ) from None
    if value < 0:
        raise InvalidArgumentError(
            f"-latency value must be non-negative: {spec!r}")
    return LatencyPredicate(comparison=comparison, seconds=value * scale)


@dataclass(frozen=True)
class FindHit:
    """One file that passed every predicate."""

    path: str
    size: int
    delivery_time: float | None  # None when -latency was not requested


def find(kernel, root: str, name: str | None = None,
         latency: str | LatencyPredicate | None = None,
         attack_plan: str = SLEDS_LINEAR,
         min_size: int | None = None,
         max_size: int | None = None,
         accessed_within: float | None = None,
         cross_mounts: bool = True,
         exec_fn: Callable[[str], object] | None = None) -> list[FindHit]:
    """Walk ``root`` and return files passing all given predicates.

    ``name`` is an fnmatch glob on the basename; ``latency`` the paper's
    predicate (string or pre-parsed); ``min_size``/``max_size`` bound the
    file size in bytes; ``accessed_within`` is ``-atime``-style — only
    files whose last access is within that many virtual seconds of now;
    ``exec_fn`` is invoked on each hit (``find -exec``), its return value
    discarded.  ``cross_mounts=False`` is standard find's ``-xdev``: do
    not descend into other mounted filesystems — the paper's example of
    pruning NFS traffic.
    """
    predicate = (parse_latency(latency) if isinstance(latency, str)
                 else latency)
    if attack_plan not in (SLEDS_LINEAR, SLEDS_BEST):
        raise InvalidArgumentError(f"bad attack plan {attack_plan!r}")
    root = "/" + "/".join(p for p in root.split("/") if p)
    root_fs = kernel.fs_of(root)
    hits: list[FindHit] = []
    stack = [root]
    while stack:
        path = stack.pop()
        st = kernel.stat(path)
        if st.is_dir:
            if not cross_mounts and kernel.fs_of(path) is not root_fs:
                continue
            base = "" if path == "/" else path
            for entry in reversed(kernel.listdir(path)):
                stack.append(f"{base}/{entry}")
            continue
        if name is not None and not fnmatch.fnmatch(
                path.rsplit("/", 1)[-1], name):
            continue
        if min_size is not None and st.size < min_size:
            continue
        if max_size is not None and st.size > max_size:
            continue
        if accessed_within is not None:
            inode = kernel.resolve(path)[1]
            if kernel.clock.now - inode.atime > accessed_within:
                continue
        delivery: float | None = None
        if predicate is not None:
            delivery = sleds_total_delivery_time_path(
                kernel, path, attack_plan)
            if not predicate.matches(delivery):
                continue
        hits.append(FindHit(path=path, size=st.size, delivery_time=delivery))
        if exec_fn is not None:
            exec_fn(path)
    return hits


def find_exec_grep_cached_first(kernel, root: str, pattern: bytes,
                                threshold_seconds: float,
                                name: str | None = None,
                                use_sleds_grep: bool = True,
                                stop_on_match: bool = False):
    """The paper's motivating composition: grep the cheap (cached) files
    first, then the expensive rest only if still needed.

    ``stop_on_match=True`` models the interactive user who stops as soon
    as the routine is found ("if the user types control-C after seeing
    what he wants to see"): each file is searched with early termination
    and the walk ends at the first file containing the pattern — so when
    the match is cached, no expensive file is touched at all.

    Returns (cheap_results, expensive_results) lists of
    :class:`~repro.apps.grep.GrepResult`.
    """
    from repro.apps.grep import grep

    cheap = find(kernel, root, name=name,
                 latency=f"-{threshold_seconds}", attack_plan=SLEDS_BEST)
    expensive = find(kernel, root, name=name,
                     latency=f"+{threshold_seconds}", attack_plan=SLEDS_BEST)
    cheap_results: list = []
    expensive_results: list = []
    for hits, results in ((cheap, cheap_results),
                          (expensive, expensive_results)):
        for hit in hits:
            result = grep(kernel, hit.path, pattern,
                          use_sleds=use_sleds_grep,
                          first_match_only=stop_on_match)
            results.append(result)
            if stop_on_match and result.count:
                return cheap_results, expensive_results
    return cheap_results, expensive_results
