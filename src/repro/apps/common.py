"""Shared application plumbing: CPU cost model and chunked read loops.

Applications run against the simulated kernel, so their *processing* cost
must be charged explicitly.  The constants below model a late-90s CPU
(the paper's premise is that "CPU performance is improving faster than
storage device performance", so CPU costs are small but not zero — they
are what makes SLEDs-grep *slower* on small cached files, visible in the
paper's Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import MB

#: plain byte-scanning rate (wc-style counting)
SCAN_CPU_PER_BYTE = 1.0 / (25 * MB)
#: pattern-matching rate (grep-style search)
MATCH_CPU_PER_BYTE = 1.0 / (30 * MB)
#: extra per-byte copying cost in SLEDs mode ("We used read(), rather than
#: mmap(), which does not copy the data" — a small tax every SLEDs app pays)
SLEDS_EXTRA_CPU_PER_BYTE = 1.0 / (160 * MB)
#: record-management cost, charged only by record-oriented apps like grep
#: ("the increase in execution time for small files is all CPU time ...
#: due to the additional complexity of record management with SLEDs")
RECORD_CPU_PER_BYTE = 1.0 / (55 * MB)
#: arithmetic-heavy per-element cost for the LHEASOFT tools
BINNING_CPU_PER_ELEMENT = 30.0e-9

DEFAULT_BUFSIZE = 64 * 1024


@dataclass
class IoLoopStats:
    """What a read loop saw; applications embed this in their results."""

    bytes_read: int = 0
    read_calls: int = 0


def read_linear(kernel, fd: int, bufsize: int = DEFAULT_BUFSIZE):
    """Yield (offset, data) chunks of a file front to back."""
    offset = 0
    while True:
        data = kernel.read(fd, bufsize)
        if not data:
            return
        yield offset, data
        offset += len(data)


def read_sleds_order(kernel, fd: int, bufsize: int = DEFAULT_BUFSIZE,
                     record_mode: bool = False, separator: bytes = b"\n",
                     order: str = "sleds", refresh_every: int = 0,
                     via_mmap: bool = False):
    """Yield (offset, data) chunks in SLEDs pick order.

    This is the paper's Figure 5 application loop: init, repeatedly ask
    the library where to read, lseek + read there, finish.
    ``via_mmap=True`` delivers chunks through a memory mapping instead of
    lseek+read — the paper's proposed "mmap-friendly SLEDs library",
    which skips the per-byte copy (callers should also drop their
    :data:`SLEDS_EXTRA_CPU_PER_BYTE` charge in this mode).
    """
    from repro.core.pick import (
        sleds_pick_finish,
        sleds_pick_init,
        sleds_pick_next_read,
    )

    region = kernel.mmap(fd) if via_mmap else None
    sleds_pick_init(kernel, fd, bufsize, record_mode=record_mode,
                    separator=separator, order=order,
                    refresh_every=refresh_every)
    try:
        while True:
            advice = sleds_pick_next_read(kernel, fd)
            if advice is None:
                return
            offset, nbytes = advice
            if region is not None:
                data = region.read(offset, nbytes)
            else:
                kernel.lseek(fd, offset)
                data = kernel.read(fd, nbytes)
            yield offset, data
    finally:
        sleds_pick_finish(kernel, fd)
