"""Progress indication with SLEDs (paper §3.3, "Reporting Latency").

"Better systems (including web browsers) provide visible progress
indicators.  Those indicators are generally estimated based on partial
retrieval of the data ... and cannot be calculated until the data transfer
has begun.  Dynamically calculated estimates can be heavily skewed by high
initial latency, such as in an HSM system.  Using SLEDs instead provides a
clearer picture of the relationship of the latency and bandwidth ... and
can be provided before the retrieval operation is initiated."

:func:`retrieve_with_progress` reads a file linearly (a download) and logs,
at every sampling point, what each estimator would show the user:

* **dynamic** — classic rate extrapolation: remaining bytes divided by the
  average throughput observed so far (undefined before the first byte);
* **sleds** — the SLED vector's delivery estimate for the remaining bytes,
  available *before* the transfer starts and insensitive to how long the
  first byte took.

Experiment ``extG`` quantifies the paper's skew claim on HSM and NFS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sled import SledVector
from repro.sim.units import PAGE_SIZE


@dataclass(frozen=True)
class ProgressSample:
    """One snapshot of the two estimators."""

    bytes_done: int
    fraction_done: float
    elapsed: float               # virtual seconds since retrieval start
    eta_dynamic: float | None    # None before any throughput is observed
    eta_sleds: float


@dataclass
class RetrievalReport:
    """The whole retrieval: samples plus the ground truth."""

    path: str
    size: int
    total_time: float
    initial_estimate: float      # SLEDs estimate before the first read
    samples: list[ProgressSample] = field(default_factory=list)

    def sample_nearest(self, fraction: float) -> ProgressSample:
        """The recorded sample closest to a progress fraction."""
        if not self.samples:
            raise ValueError("no samples recorded")
        return min(self.samples,
                   key=lambda s: abs(s.fraction_done - fraction))

    def estimator_errors(self, fraction: float) -> tuple[float | None, float]:
        """(dynamic, sleds) relative errors of total-time prediction at
        the sample nearest ``fraction``.

        Each estimator's implied total = elapsed + its ETA; the error is
        ``|implied - actual| / actual``.
        """
        sample = self.sample_nearest(fraction)
        sleds_total = sample.elapsed + sample.eta_sleds
        sleds_error = abs(sleds_total - self.total_time) / self.total_time
        if sample.eta_dynamic is None:
            return None, sleds_error
        dynamic_total = sample.elapsed + sample.eta_dynamic
        return (abs(dynamic_total - self.total_time) / self.total_time,
                sleds_error)


def _remaining_estimate(vector: SledVector, offset: int) -> float:
    """SLEDs delivery estimate for ``[offset, end)`` under a linear plan."""
    from repro.core.delivery import estimate_range_delivery

    return estimate_range_delivery(vector, offset,
                                   vector.file_size - offset)


def retrieve_with_progress(kernel, path: str,
                           bufsize: int = 16 * PAGE_SIZE,
                           samples: int = 20,
                           refresh_vector: bool = True) -> RetrievalReport:
    """Linear retrieval with both progress estimators sampled along the
    way.  The SLED vector is fetched once *before the first data byte* —
    the paper's point that the SLEDs estimate exists up front — and, with
    ``refresh_vector`` (default), re-fetched at each sample so one-time
    costs already paid (a tape mount, a cold server) drop out of the
    remaining-time estimate.  ``refresh_vector=False`` keeps the init-time
    vector, measuring the §3.4 staleness effect instead."""
    fd = kernel.open(path)
    try:
        size = kernel.stat(path).size
        vector = kernel.get_sleds(fd)
        stamp = kernel.sleds_stamp(fd)
        report = RetrievalReport(
            path=path, size=size, total_time=0.0,
            initial_estimate=_remaining_estimate(vector, 0))
        sample_every = max(1, size // max(1, samples) // max(1, bufsize))
        start = kernel.clock.snapshot()
        done = 0
        reads = 0
        while True:
            data = kernel.read(fd, bufsize)
            if not data:
                break
            done += len(data)
            reads += 1
            if reads % sample_every == 0 and done < size:
                elapsed = kernel.clock.elapsed_since(start)
                rate = done / elapsed if elapsed > 0 else 0.0
                eta_dynamic = ((size - done) / rate if rate > 0 else None)
                if refresh_vector:
                    now_stamp = kernel.sleds_stamp(fd)
                    if now_stamp != stamp:
                        vector = kernel.get_sleds(fd)
                        stamp = kernel.sleds_stamp(fd)
                    else:
                        # stamp unchanged: the ioctl would return the same
                        # vector, so the progress bar keeps the one it has
                        kernel.counters.sleds_refetch_skips += 1
                report.samples.append(ProgressSample(
                    bytes_done=done,
                    fraction_done=done / size,
                    elapsed=elapsed,
                    eta_dynamic=eta_dynamic,
                    eta_sleds=_remaining_estimate(vector, done)))
        report.total_time = kernel.clock.elapsed_since(start)
        return report
    finally:
        kernel.close(fd)
