"""``grep`` — literal-pattern line search, with and without SLEDs.

The paper's most-modified application (560 lines changed): in SLEDs mode
the file is visited in pick order, matches are buffered in a list, and at
the end "we sort the matches ... by their offset in the file and then dump
them" — reimplementing ``-n`` (line numbers) and ``-b`` (byte offsets)
on top of the reordered traversal.  The ``-q`` mode (first match) stops
at the *first match found*, which with SLEDs means the first match in any
cached data — the paper's "ideal benchmark" (Figure 11).

Record handling in SLEDs mode uses the library's record-oriented SLEDs
(paper Figure 4): SLED edges are pulled to line boundaries, so no line
ever spans two storage levels; within one level chunks arrive in offset
order and a carry buffer joins split lines exactly as the linear scan
does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.common import (
    DEFAULT_BUFSIZE,
    MATCH_CPU_PER_BYTE,
    RECORD_CPU_PER_BYTE,
    SLEDS_EXTRA_CPU_PER_BYTE,
    read_linear,
    read_sleds_order,
)
from repro.apps.regex import compile_regex
from repro.sim.errors import InvalidArgumentError


@dataclass(frozen=True)
class GrepMatch:
    """One matching line."""

    offset: int          # byte offset of the line start
    line_number: int     # 1-based, as grep -n prints
    line: bytes          # without the trailing newline


@dataclass
class GrepResult:
    """All matches, in file order (post-sort in SLEDs mode)."""

    path: str
    pattern: bytes
    matches: list[GrepMatch] = field(default_factory=list)
    truncated: bool = False  # True when -q stopped the scan early

    @property
    def count(self) -> int:
        return len(self.matches)


def grep(kernel, path: str, pattern: bytes, use_sleds: bool = False,
         first_match_only: bool = False,
         bufsize: int = DEFAULT_BUFSIZE, via_mmap: bool = False,
         regex: bool = False) -> GrepResult:
    """Search ``path`` for lines containing ``pattern``.

    ``regex=True`` interprets the pattern with the grep-style engine in
    :mod:`repro.apps.regex` (anchors, classes, ``* + ?``, alternation);
    the default is a literal substring search.  ``via_mmap`` (SLEDs mode
    only) uses the mmap-friendly library path, dropping the per-byte copy
    tax the paper identifies as part of the small-file CPU overhead.
    """
    if not pattern:
        raise InvalidArgumentError("empty grep pattern")
    if b"\n" in pattern:
        raise InvalidArgumentError("pattern may not contain a newline")
    matcher = _Matcher(pattern, regex)
    fd = kernel.open(path)
    try:
        if use_sleds:
            return _grep_sleds(kernel, path, fd, matcher,
                               first_match_only, bufsize, via_mmap)
        return _grep_linear(kernel, path, fd, matcher,
                            first_match_only, bufsize)
    finally:
        kernel.close(fd)


class _Matcher:
    """Literal or regex line predicate with a blob-level fast path."""

    def __init__(self, pattern: bytes, regex: bool) -> None:
        self.pattern = pattern
        self.is_regex = regex
        self._compiled = compile_regex(pattern) if regex else None
        #: regex matching costs more CPU per byte than memmem
        self.cpu_factor = 4.0 if regex else 1.0

    def quick_reject(self, blob: bytes) -> bool:
        """True when the blob certainly contains no matching line."""
        if self._compiled is None:
            return self.pattern not in blob
        return False

    def line_matches(self, line: bytes) -> bool:
        if self._compiled is None:
            return self.pattern in line
        return self._compiled.matches(line)


def _match_lines(base_offset: int, blob: bytes, matcher: "_Matcher",
                 newlines_before: int) -> list[tuple[int, int, bytes]]:
    """(line_start_offset, newlines_before_line, line) for matching lines
    of a record-complete blob."""
    out = []
    if matcher.quick_reject(blob):  # fast path: one memmem over the blob
        return out
    start = 0
    line_index = 0
    while start < len(blob):
        end = blob.find(b"\n", start)
        if end < 0:
            end = len(blob)
            line = blob[start:end]
            step = end - start
        else:
            line = blob[start:end]
            step = end - start + 1
        if matcher.line_matches(line):
            out.append((base_offset + start,
                        newlines_before + line_index, line))
        start += step
        line_index += 1
    return out


def _grep_linear(kernel, path: str, fd: int, matcher: "_Matcher",
                 first_match_only: bool, bufsize: int) -> GrepResult:
    result = GrepResult(path=path, pattern=matcher.pattern)
    carry = b""
    carry_offset = 0
    newlines_seen = 0
    for offset, data in read_linear(kernel, fd, bufsize):
        kernel.charge_cpu(len(data) * MATCH_CPU_PER_BYTE
                          * matcher.cpu_factor)
        blob = carry + data
        base = offset - len(carry)
        cut = blob.rfind(b"\n")
        if cut < 0:
            carry, carry_offset = blob, base
            continue
        head, carry = blob[: cut + 1], blob[cut + 1:]
        carry_offset = base + cut + 1
        for line_off, nl_before, line in _match_lines(
                base, head, matcher, newlines_seen):
            result.matches.append(GrepMatch(line_off, nl_before + 1, line))
            if first_match_only:
                result.truncated = True
                return result
        newlines_seen += head.count(b"\n")
    if carry and matcher.line_matches(carry):
        result.matches.append(
            GrepMatch(carry_offset, newlines_seen + 1, carry))
        result.truncated = first_match_only
    return result


def _grep_sleds(kernel, path: str, fd: int, matcher: "_Matcher",
                first_match_only: bool, bufsize: int,
                via_mmap: bool = False) -> GrepResult:
    result = GrepResult(path=path, pattern=matcher.pattern)
    #: matches as (line_offset, segment_base, newline_index_in_segment, line)
    raw: list[tuple[int, int, int, bytes]] = []
    #: per-processed-segment newline accounting: segment_base -> newlines
    segments: dict[int, int] = {}
    carry = b""
    carry_offset = 0

    def _process(base: int, blob: bytes) -> bool:
        """Scan a record-complete blob; True means stop (first match)."""
        segments[base] = blob.count(b"\n")
        for line_off, nl_index, line in _match_lines(base, blob, matcher, 0):
            raw.append((line_off, base, nl_index, line))
            if first_match_only:
                return True
        return False

    stop = False
    copy_tax = 0.0 if via_mmap else SLEDS_EXTRA_CPU_PER_BYTE
    for offset, data in read_sleds_order(
            kernel, fd, bufsize, record_mode=True, via_mmap=via_mmap):
        kernel.charge_cpu(len(data) * (
            MATCH_CPU_PER_BYTE * matcher.cpu_factor + copy_tax
            + RECORD_CPU_PER_BYTE))
        if carry and carry_offset + len(carry) == offset:
            blob = carry + data
            base = carry_offset
        else:
            # discontinuity: the old carry is record-complete (SLED edges
            # are line-aligned) — flush it as its own segment
            if carry and _process(carry_offset, carry):
                stop = True
                break
            blob, base = data, offset
        cut = blob.rfind(b"\n")
        if cut < 0:
            carry, carry_offset = blob, base
            continue
        head, carry = blob[: cut + 1], blob[cut + 1:]
        carry_offset = base + cut + 1
        if _process(base, head):
            stop = True
            break
    if not stop and carry:
        _process(carry_offset, carry)
    result.truncated = stop
    # "We sort the matches in the end by their offset in the file and then
    # dump them" — and -n line numbers come from per-segment newline
    # counts accumulated during the (reordered) scan.
    raw.sort()
    prefix: dict[int, int] = {}  # segment base -> newlines before segment
    total = 0
    for base in sorted(segments):
        prefix[base] = total
        total += segments[base]
    for line_off, seg_base, nl_index, line in raw:
        line_number = prefix.get(seg_base, 0) + nl_index + 1
        result.matches.append(GrepMatch(line_off, line_number, line))
    return result
