"""A deterministic metrics registry: counters, gauges, histograms.

The telemetry subsystem (:mod:`repro.obs`) measures the *simulated* system,
so every number here is derived from virtual time and event counts — no
wall clock, no sampling, no background threads.  Two identical runs produce
byte-identical expositions, which lets tests assert on rendered output.

The model follows Prometheus conventions closely enough that the text
exposition (:meth:`MetricsRegistry.render_prometheus`) is scrapeable:

* a *family* has a name, a help string and a fixed label schema;
* each distinct label-value combination is a separate child metric;
* histograms use fixed logarithmic buckets (time is the common unit and
  spans nine orders of magnitude between a memory hit and a tape mount),
  rendered as cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.

Families with an empty label schema proxy mutations directly
(``fam.inc()``), so single-series metrics read naturally at call sites.
"""

from __future__ import annotations

import warnings
from bisect import bisect_left
from dataclasses import dataclass


def log_buckets(lo: float = 1e-7, hi: float = 600.0,
                factor: float = 2.0) -> tuple[float, ...]:
    """Geometric bucket upper bounds covering ``[lo, hi]``.

    The defaults span 100 ns (a memory access) to ~10 minutes (an
    unload + exchange + load + full-wind locate on a cold tape library)
    in doubling steps — 34 finite buckets — so per-component breakdown
    histograms resolve page-cache hits and tape mounts in one ladder.
    """
    if lo <= 0 or hi <= lo or factor <= 1.0:
        raise ValueError(f"bad bucket spec: lo={lo}, hi={hi}, factor={factor}")
    bounds = []
    bound = lo
    while bound < hi:
        bounds.append(bound)
        bound *= factor
    bounds.append(bound)
    return tuple(bounds)


#: default latency buckets shared by every duration histogram
LATENCY_BUCKETS = log_buckets()

#: buckets for small integer distributions (queue depths, cluster sizes)
DEPTH_BUCKETS = tuple(float(1 << i) for i in range(13))  # 1 .. 4096


def _fmt(value: float) -> str:
    """Render a sample value the same way every time (exposition lines)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing sample."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up: {amount}")
        self.value += amount

    def to_dict(self) -> float:
        return self.value


class Gauge:
    """A sample that can go up and down."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def to_dict(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram with sum and count.

    ``bounds`` are the finite bucket upper edges; an implicit ``+Inf``
    bucket catches the overflow.  Buckets are cumulative only at render
    time; internally each slot counts its own interval.
    """

    kind = "histogram"

    def __init__(self, bounds: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted: {bounds}")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper edge of the bucket holding it."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target and n:
                return (self.bounds[i] if i < len(self.bounds)
                        else self.bounds[-1])
        return self.bounds[-1]

    def to_dict(self) -> dict:
        return {"buckets": {_fmt(b): c for b, c in
                            zip(self.bounds, self.counts)},
                "inf": self.counts[-1], "sum": self.sum, "count": self.count}


@dataclass(frozen=True)
class _LabelSchema:
    names: tuple[str, ...]

    def key_of(self, kv: dict[str, str]) -> tuple[str, ...]:
        if set(kv) != set(self.names):
            raise ValueError(
                f"labels {sorted(kv)} do not match schema {self.names}")
        return tuple(str(kv[name]) for name in self.names)


class Family:
    """One metric family: a label schema plus its children.

    ``max_cardinality`` caps the number of distinct label-value children.
    Unbounded label values (a bug pattern: labelling by inode or request
    id) would otherwise grow the registry without limit and silently
    bloat every exposition; past the cap, new label combinations collapse
    into a single ``_overflow`` child, a warning fires once, and
    :attr:`overflows` counts every collapsed lookup.
    """

    def __init__(self, name: str, help_text: str,
                 label_names: tuple[str, ...], factory,
                 spec: tuple | None = None,
                 max_cardinality: int = 1024) -> None:
        self.name = name
        self.help_text = help_text
        self.schema = _LabelSchema(tuple(label_names))
        self._factory = factory
        #: registration identity beyond name/help/labels (histogram
        #: bounds); compared when the same family is re-registered
        self.spec = spec
        self.max_cardinality = max_cardinality
        self.overflows = 0
        self._warned_overflow = False
        self._children: dict[tuple[str, ...], object] = {}

    @property
    def kind(self) -> str:
        return self._factory().kind if not self._children else \
            next(iter(self._children.values())).kind

    def labels(self, **kv):
        key = self.schema.key_of(kv)
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= self.max_cardinality:
                return self._overflow_child()
            child = self._factory()
            self._children[key] = child
        return child

    def _overflow_child(self):
        """The shared sink for label combinations past the cap."""
        self.overflows += 1
        if not self._warned_overflow:
            self._warned_overflow = True
            warnings.warn(
                f"metric family {self.name!r} exceeded its label "
                f"cardinality cap ({self.max_cardinality}); new label "
                f"combinations collapse into one '_overflow' series",
                RuntimeWarning, stacklevel=3)
        key = tuple("_overflow" for _ in self.schema.names)
        child = self._children.get(key)
        if child is None:
            child = self._factory()
            self._children[key] = child
        return child

    # -- unlabeled convenience proxies ---------------------------------

    def _only(self):
        if self.schema.names:
            raise ValueError(
                f"{self.name} has labels {self.schema.names}; use .labels()")
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._only().inc(amount)

    def set(self, value: float) -> None:
        self._only().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._only().dec(amount)

    def observe(self, value: float) -> None:
        self._only().observe(value)

    # -- iteration ------------------------------------------------------

    def children(self) -> list[tuple[dict[str, str], object]]:
        """(labels dict, child) pairs in deterministic (sorted) order."""
        return [(dict(zip(self.schema.names, key)), self._children[key])
                for key in sorted(self._children)]


class MetricsRegistry:
    """Registry of metric families with deterministic export."""

    def __init__(self, namespace: str = "repro",
                 max_label_cardinality: int = 1024) -> None:
        if max_label_cardinality <= 0:
            raise ValueError(f"max_label_cardinality must be positive: "
                             f"{max_label_cardinality}")
        self.namespace = namespace
        self.max_label_cardinality = max_label_cardinality
        self._families: dict[str, Family] = {}

    def _register(self, name: str, help_text: str,
                  labels: tuple[str, ...], factory,
                  spec: tuple) -> Family:
        existing = self._families.get(name)
        if existing is not None:
            # re-registering the identical family is idempotent (two
            # subsystems sharing one registry may both declare it); any
            # mismatch in help/type/labels/buckets is a programming error
            # and must not silently shadow the first registration
            if (existing.help_text == help_text
                    and existing.schema.names == tuple(labels)
                    and existing.spec == spec):
                return existing
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{existing.spec[0]}{existing.schema.names} "
                f"{existing.help_text!r}; conflicting re-registration as "
                f"{spec[0]}{tuple(labels)} {help_text!r}")
        family = Family(name, help_text, labels, factory, spec=spec,
                        max_cardinality=self.max_label_cardinality)
        self._families[name] = family
        return family

    def counter(self, name: str, help_text: str,
                labels: tuple[str, ...] = ()) -> Family:
        return self._register(name, help_text, labels, Counter,
                              spec=("counter",))

    def gauge(self, name: str, help_text: str,
              labels: tuple[str, ...] = ()) -> Family:
        return self._register(name, help_text, labels, Gauge,
                              spec=("gauge",))

    def histogram(self, name: str, help_text: str,
                  labels: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = LATENCY_BUCKETS) -> Family:
        return self._register(name, help_text, labels,
                              lambda: Histogram(buckets),
                              spec=("histogram", tuple(buckets)))

    def get(self, name: str) -> Family:
        return self._families[name]

    def families(self) -> list[Family]:
        return [self._families[name] for name in sorted(self._families)]

    # -- export ----------------------------------------------------------

    def _full(self, name: str) -> str:
        return f"{self.namespace}_{name}" if self.namespace else name

    @staticmethod
    def _labels_text(labels: dict[str, str], extra: str = "") -> str:
        parts = [f'{k}="{v}"' for k, v in labels.items()]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def render_prometheus(self) -> str:
        """The Prometheus text exposition for every family."""
        lines: list[str] = []
        for family in self.families():
            children = family.children()
            if not children:
                continue
            full = self._full(family.name)
            kind = children[0][1].kind
            lines.append(f"# HELP {full} {family.help_text}")
            lines.append(f"# TYPE {full} {kind}")
            for labels, child in children:
                if isinstance(child, Histogram):
                    cum = 0
                    for bound, count in zip(child.bounds, child.counts):
                        cum += count
                        lt = self._labels_text(labels, f'le="{_fmt(bound)}"')
                        lines.append(f"{full}_bucket{lt} {cum}")
                    lt = self._labels_text(labels, 'le="+Inf"')
                    lines.append(f"{full}_bucket{lt} {child.count}")
                    lt = self._labels_text(labels)
                    lines.append(f"{full}_sum{lt} {_fmt(child.sum)}")
                    lines.append(f"{full}_count{lt} {child.count}")
                else:
                    lt = self._labels_text(labels)
                    lines.append(f"{full}{lt} {_fmt(child.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        """JSON-ready dump of every family (deterministic ordering)."""
        out: dict = {}
        for family in self.families():
            children = family.children()
            if not children:
                continue
            out[self._full(family.name)] = {
                "help": family.help_text,
                "type": children[0][1].kind,
                "series": [{"labels": labels, "value": child.to_dict()}
                           for labels, child in children],
            }
        return out
