"""Windowed time-series sampling of the metrics registry.

The telemetry registry (:mod:`repro.obs.metrics`) accumulates *end-of-run*
aggregates: after a run you know the total queue wait, but not whether the
queue built up early and drained, or grew without bound.  This module adds
the time axis: a :class:`TimeSeriesRecorder` samples every registered
counter/gauge/histogram on a configurable *virtual-time* cadence, so queue
depth, cache hit ratio, per-device utilization and latency quantiles can
be plotted over simulated time.

Sampling is strictly observational and piggybacks on the telemetry hooks
that already fire on the hot path: each hook calls
:meth:`TimeSeriesRecorder.tick` with the current virtual time, and the
recorder takes a sample when the clock has crossed the next cadence
boundary.  Virtual time does not flow continuously — it jumps at device
completions — so a sample is taken at the *first observation at or past*
each boundary and stamped with the actual virtual time (one sample per
crossing, however large the jump: a 100 s tape mount produces one row,
not 20 000).  Nothing here advances the clock or draws randomness; runs
are bit-identical with a recorder attached or not (property-tested in
``tests/test_obs_zero_cost.py``).

Samples land in a bounded ring buffer (oldest rows dropped first,
mirroring the span recorder).  Counters and gauges sample their value;
histograms sample ``count``/``sum`` plus approximate ``p50``/``p99``
(bucket upper edges).  Export:

* :meth:`to_dict` — JSON-ready rows plus a pivoted per-series view, the
  shape the scenario-matrix harness archives per run;
* :meth:`render_openmetrics` — OpenMetrics text with explicit timestamps
  (one exposition line per sample), terminated by ``# EOF``.
"""

from __future__ import annotations

from collections import deque

from repro.obs.metrics import Family, Histogram, MetricsRegistry, _fmt

__all__ = ["TimeSeriesRecorder", "series_key"]


def series_key(family_name: str, labels: dict[str, str]) -> str:
    """Canonical flat key for one labelled series, e.g.
    ``device_queue_depth_now{device="ext2-disk"}``."""
    if not labels:
        return family_name
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return f"{family_name}{{{inner}}}"


def _sample_child(child, sample_buckets: bool = False) -> float | dict:
    if isinstance(child, Histogram):
        out = {"count": child.count, "sum": child.sum,
               "p50": child.quantile(0.50), "p99": child.quantile(0.99)}
        if sample_buckets:
            cum = 0
            buckets = []
            for bound, n in zip(child.bounds, child.counts):
                cum += n
                buckets.append((_fmt(bound), cum))
            buckets.append(("+Inf", cum + child.counts[-1]))
            out["buckets"] = tuple(buckets)
        return out
    return child.value


def _parse_labels(labels: str) -> dict[str, str]:
    """Invert :func:`series_key`'s label serialization (values are
    device/class/tenant identifiers — never quoted or escaped)."""
    if not labels:
        return {}
    out = {}
    for part in labels.strip("{}").split(","):
        name, _, value = part.partition("=")
        out[name] = value.strip('"')
    return out


class TimeSeriesRecorder:
    """Rolling samples of a :class:`~repro.obs.metrics.MetricsRegistry`.

    ``interval`` is the virtual-second cadence; ``capacity`` bounds the
    ring buffer of sample rows; ``families`` optionally restricts
    sampling to the named metric families (default: every family that
    has recorded at least one series).  ``snapshot_hook`` (typically
    ``Telemetry.snapshot``) is invoked before each sample so point-in-
    time gauges — virtual time by category, resident pages, kernel
    counters — are fresh when read.
    """

    def __init__(self, registry: MetricsRegistry, interval: float = 0.005,
                 capacity: int = 4096,
                 families: tuple[str, ...] | None = None,
                 snapshot_hook=None, sample_buckets: bool = False,
                 exemplars=None) -> None:
        if interval <= 0.0:
            raise ValueError(f"interval must be positive: {interval}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.registry = registry
        self.interval = float(interval)
        self.capacity = capacity
        self.families = tuple(families) if families is not None else None
        self.snapshot_hook = snapshot_hook
        #: opt-in: sample cumulative bucket counts per histogram so the
        #: OpenMetrics export can emit real ``_bucket{le=...}`` series
        #: (and exemplar annotations); off by default — bucket rows are
        #: ~35x wider than the quantile summary
        self.sample_buckets = sample_buckets
        #: an :class:`~repro.obs.forensics.ExemplarReservoir` (anything
        #: with ``bucket_exemplar(cls, le)``); when set and buckets are
        #: sampled, histogram bucket lines carry OpenMetrics exemplars
        self.exemplars = exemplars
        #: histogram families whose buckets observe full request latency
        #: — the only ones the reservoir's exemplars are valid for (a
        #: per-component bucket would get an exemplar whose value lies
        #: outside the bucket, which the OpenMetrics spec forbids)
        self.exemplar_families: tuple[str, ...] = (
            "lifecycle_request_seconds",)
        #: rows of (virtual time, {series key: sampled value})
        self.samples: deque[tuple[float, dict]] = deque(maxlen=capacity)
        self.dropped = 0
        self._next_due = 0.0
        self._started = False

    # -- sampling ---------------------------------------------------------

    def tick(self, now: float) -> bool:
        """Called from telemetry hooks; samples when a cadence boundary
        has been crossed.  Returns True when a sample was taken."""
        if not self._started:
            # first tick anchors the cadence at the current virtual time
            self._started = True
            self._next_due = now
        if now < self._next_due:
            return False
        self.sample(now)
        # one sample per crossing: re-arm past ``now``, keeping the grid
        # aligned to the original anchor
        periods = int((now - self._next_due) / self.interval) + 1
        self._next_due += periods * self.interval
        return True

    def sample(self, now: float) -> dict:
        """Take one sample row unconditionally (also used at run end so
        the final state is always on the series)."""
        if self.snapshot_hook is not None:
            self.snapshot_hook()
        row: dict[str, float | dict] = {}
        for family in self._selected_families():
            for labels, child in family.children():
                row[series_key(family.name, labels)] = _sample_child(
                    child, self.sample_buckets)
        if len(self.samples) == self.capacity:
            self.dropped += 1
        self.samples.append((now, row))
        return row

    def _selected_families(self) -> list[Family]:
        families = self.registry.families()
        if self.families is None:
            return families
        chosen = set(self.families)
        return [f for f in families if f.name in chosen]

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.samples)

    def series(self) -> dict[str, dict[str, list]]:
        """Pivot rows into per-series ``{"t": [...], "values": [...]}``.

        A series absent from a row (it had not been created yet) is
        simply missing that timestamp — time axes are per series.
        """
        out: dict[str, dict[str, list]] = {}
        for t, row in self.samples:
            for key, value in row.items():
                entry = out.setdefault(key, {"t": [], "values": []})
                entry["t"].append(t)
                entry["values"].append(value)
        return out

    def family_names_sampled(self) -> list[str]:
        """Distinct family names with at least one sampled series."""
        names = set()
        for _, row in self.samples:
            for key in row:
                names.add(key.split("{", 1)[0])
        return sorted(names)

    def to_dict(self) -> dict:
        return {
            "interval_s": self.interval,
            "samples": len(self.samples),
            "dropped": self.dropped,
            "families": self.family_names_sampled(),
            "rows": [{"t": t, "values": row} for t, row in self.samples],
            "series": self.series(),
        }

    # -- OpenMetrics export ----------------------------------------------

    def _bucket_exemplar_suffix(self, name: str, cls: str | None,
                                le: str) -> str:
        """The `` # {labelset} value ts`` exemplar annotation for one
        histogram bucket line, or empty.  Exemplars are only legal on
        bucket (and counter) samples per the OpenMetrics spec — gauge
        and summary lines never get one — and only request-latency
        families get them here (see :attr:`exemplar_families`)."""
        if (self.exemplars is None or cls is None
                or name not in self.exemplar_families):
            return ""
        rec = self.exemplars.bucket_exemplar(cls, float(le))
        if rec is None:
            return ""
        return (f' # {{trace_id="{rec.id}"}} {_fmt(rec.latency)} '
                f"{_fmt(rec.finish_time)}")

    def render_openmetrics(self) -> str:
        """OpenMetrics text: one timestamped line per series per sample.

        By default histogram samples flatten into ``_count``/``_sum``/
        ``_p50``/``_p99`` gauges so the series stay scalar.  With
        ``sample_buckets`` the histogram families render as real
        OpenMetrics histograms — cumulative ``_bucket{le=...}`` lines
        (carrying exemplar annotations when an exemplar reservoir is
        attached) plus ``_count``/``_sum`` — and only the quantile
        summaries stay flattened gauges.  Families are contiguous and
        sorted by name; a single ``# EOF`` terminates the exposition.
        Timestamps are the virtual-second sample times.
        """
        ns = self.registry.namespace
        prefix = f"{ns}_" if ns else ""
        per_series: dict[str, list[str]] = {}
        kinds: dict[str, str] = {}
        histogram_families: set[str] = set()
        for t, row in self.samples:
            ts = _fmt(t)
            for key, value in row.items():
                name, _, labels = key.partition("{")
                labels = "{" + labels if labels else ""
                if isinstance(value, dict):
                    buckets = value.get("buckets")
                    if buckets is not None:
                        histogram_families.add(name)
                        kinds[name] = "histogram"
                        fam = per_series.setdefault(name, [])
                        cls = _parse_labels(labels).get("cls")
                        inner = labels[1:-1] if labels else ""
                        for le, cum in buckets:
                            with_le = ("{" + (inner + "," if inner else "")
                                       + f'le="{le}"' + "}")
                            fam.append(
                                f"{prefix}{name}_bucket{with_le} {cum} "
                                f"{ts}"
                                + self._bucket_exemplar_suffix(
                                    name, cls, le))
                        fam.append(f"{prefix}{name}_count{labels} "
                                   f"{_fmt(value['count'])} {ts}")
                        fam.append(f"{prefix}{name}_sum{labels} "
                                   f"{_fmt(value['sum'])} {ts}")
                        suffixes = ("p50", "p99")
                    else:
                        suffixes = tuple(value)
                    for suffix in suffixes:
                        flat = f"{name}_{suffix}"
                        kinds.setdefault(flat, "gauge")
                        per_series.setdefault(flat, []).append(
                            f"{prefix}{flat}{labels} "
                            f"{_fmt(value[suffix])} {ts}")
                else:
                    kinds.setdefault(name, "unknown")
                    per_series.setdefault(name, []).append(
                        f"{prefix}{name}{labels} {_fmt(value)} {ts}")
        # resolve scalar kinds from the live registry where possible
        for family in self.registry.families():
            if family.name in kinds and family.name not in \
                    histogram_families:
                kinds[family.name] = family.kind
        lines: list[str] = []
        for name in sorted(per_series):
            kind = kinds.get(name, "gauge")
            if kind == "histogram" and name not in histogram_families:
                kind = "gauge"  # flattened above; defensive only
            lines.append(f"# TYPE {prefix}{name} {kind}")
            lines.extend(per_series[name])
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def clear(self) -> None:
        self.samples.clear()
        self.dropped = 0
        self._started = False
        self._next_due = 0.0
