"""SLED prediction-accuracy tracking.

The paper's whole interface is an *estimate*: ``FSLEDS_GET`` hands the
application a latency/bandwidth guess for every file section.  This module
answers the question the paper never quantifies for our simulator: how
close are those guesses to what the kernel subsequently measures?

Mechanism: when the kernel serves ``FSLEDS_GET`` with telemetry attached,
the tracker snapshots the predicted (latency, bandwidth) of every page in
the returned vector.  Later, when a page is actually delivered —

* a **hard fault** reads a cluster from a device: the actual time is the
  device access; the prediction is the lead page's SLED applied to the
  cluster size (``latency + bytes / bandwidth``);
* a **cache hit** delivers from memory: the actual time is the memory
  level's per-page cost; the prediction is the page's SLED applied to one
  page —

the tracker consumes the snapshot and records the signed and absolute error
into per-device-class calibration stats (and, when a registry is supplied,
into ``sled_abs_error_seconds`` histograms labelled by class).

Predictions are consumed on first use: a SLED describes the state at
``FSLEDS_GET`` time, and once a page has moved (device → cache) the old
estimate no longer applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.sim.units import PAGE_SIZE, human_time


@dataclass
class ClassAccuracy:
    """Accumulated prediction error for one device class."""

    samples: int = 0
    abs_error_sum: float = 0.0
    error_sum: float = 0.0
    predicted_sum: float = 0.0
    actual_sum: float = 0.0

    def add(self, predicted: float, actual: float) -> None:
        self.samples += 1
        self.abs_error_sum += abs(actual - predicted)
        self.error_sum += actual - predicted
        self.predicted_sum += predicted
        self.actual_sum += actual

    @property
    def mean_abs_error(self) -> float:
        return self.abs_error_sum / self.samples if self.samples else 0.0

    @property
    def mean_error(self) -> float:
        return self.error_sum / self.samples if self.samples else 0.0

    @property
    def mean_relative_error(self) -> float:
        """Mean absolute error over mean actual time (scale-free)."""
        if self.actual_sum <= 0.0:
            return 0.0
        return self.abs_error_sum / self.actual_sum


@dataclass
class AccuracyReport:
    """Snapshot of per-class calibration, ready for printing.

    ``by_component`` splits each class's fault error between the queue
    and service terms of the prediction — (class, component) keys — so
    a well-calibrated service model with a stale queue estimate is
    distinguishable from the reverse.
    """

    by_class: dict[str, ClassAccuracy] = field(default_factory=dict)
    by_component: dict[tuple[str, str], ClassAccuracy] = field(
        default_factory=dict)
    predictions_outstanding: int = 0
    unmatched_faults: int = 0

    def render(self) -> str:
        lines = ["SLED prediction accuracy (per device class):"]
        if not self.by_class:
            lines.append("  (no predictions were exercised)")
        for name in sorted(self.by_class):
            acc = self.by_class[name]
            lines.append(
                f"  {name:>8}: n={acc.samples:<6d} "
                f"mean_abs_err={human_time(acc.mean_abs_error):>10} "
                f"mean_err={'+' if acc.mean_error >= 0 else '-'}"
                f"{human_time(abs(acc.mean_error)):<10} "
                f"rel_err={acc.mean_relative_error:6.1%}")
        for cls, component in sorted(self.by_component):
            acc = self.by_component[(cls, component)]
            lines.append(
                f"  {cls:>8}/{component:<7}: "
                f"mean_abs_err={human_time(acc.mean_abs_error):>10} "
                f"mean_err={'+' if acc.mean_error >= 0 else '-'}"
                f"{human_time(abs(acc.mean_error)):<10}")
        lines.append(
            f"  outstanding predictions: {self.predictions_outstanding}, "
            f"deliveries without a prediction: {self.unmatched_faults}")
        return "\n".join(lines)

    @staticmethod
    def _acc_dict(acc: ClassAccuracy) -> dict:
        return {
            "samples": acc.samples,
            "mean_abs_error": acc.mean_abs_error,
            "mean_error": acc.mean_error,
            "mean_relative_error": acc.mean_relative_error,
            "mean_predicted": (acc.predicted_sum / acc.samples
                               if acc.samples else 0.0),
            "mean_actual": (acc.actual_sum / acc.samples
                            if acc.samples else 0.0),
        }

    def to_dict(self) -> dict:
        """JSON-ready snapshot, ``by_component`` included — the machine-
        readable twin of :meth:`render`."""
        return {
            "by_class": {name: self._acc_dict(acc)
                         for name, acc in sorted(self.by_class.items())},
            "by_component": {
                f"{cls}/{component}": self._acc_dict(acc)
                for (cls, component), acc in
                sorted(self.by_component.items())},
            "predictions_outstanding": self.predictions_outstanding,
            "unmatched_faults": self.unmatched_faults,
        }


class SledAccuracyTracker:
    """Pairs ``FSLEDS_GET`` predictions with observed delivery times."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        #: (inode_id, page) -> (predicted latency, predicted bandwidth,
        #: predicted queue delay).  The latency already folds the queue
        #: term in (that is the promise FSLEDS_GET makes); the separate
        #: queue figure lets errors be attributed to queue vs. service.
        self._predictions: dict[tuple[int, int],
                                tuple[float, float, float]] = {}
        self._by_class: dict[str, ClassAccuracy] = {}
        self._by_component: dict[tuple[str, str], ClassAccuracy] = {}
        self.unmatched_faults = 0
        self._abs_error = None
        if registry is not None:
            self._abs_error = registry.histogram(
                "sled_abs_error_seconds",
                "Absolute SLED prediction error per delivery",
                labels=("cls",))

    # -- snapshotting -----------------------------------------------------

    def record_prediction(self, inode_id: int, vector,
                          queue_by_page: dict[int, float] | None = None
                          ) -> int:
        """Snapshot per-page predictions from one SLED vector.

        Returns the number of pages snapshotted.  Re-asking for SLEDs on
        the same file refreshes the outstanding predictions.
        ``queue_by_page`` names how much of each page's predicted latency
        is queue delay (pages absent predict zero queueing).
        """
        npages = (vector.file_size + PAGE_SIZE - 1) // PAGE_SIZE
        for page in range(npages):
            sled = vector.sled_at(page * PAGE_SIZE)
            queue = queue_by_page.get(page, 0.0) if queue_by_page else 0.0
            self._predictions[(inode_id, page)] = (sled.latency,
                                                   sled.bandwidth, queue)
        return npages

    def _consume(self, inode_id: int,
                 page: int) -> tuple[float, float, float] | None:
        return self._predictions.pop((inode_id, page), None)

    # -- observations ----------------------------------------------------

    def record_fault(self, inode_id: int, page: int, cluster: int,
                     actual_seconds: float, device_class: str,
                     queue_wait: float = 0.0
                     ) -> tuple[float, float] | None:
        """One hard fault delivered ``cluster`` pages after waiting
        ``queue_wait`` seconds in queue and ``actual_seconds`` of
        service.  Returns the consumed ``(predicted total, predicted
        queue)`` pair, or None when no prediction was outstanding.
        """
        prediction = self._consume(inode_id, page)
        for extra in range(page + 1, page + cluster):
            self._consume(inode_id, extra)
        if prediction is None:
            self.unmatched_faults += 1
            return None
        latency, bandwidth, queue = prediction
        predicted = latency + (cluster * PAGE_SIZE) / bandwidth
        self._record(device_class, predicted, actual_seconds + queue_wait)
        self._record_component(device_class, "queue", queue, queue_wait)
        self._record_component(device_class, "service",
                               predicted - queue, actual_seconds)
        return predicted, queue

    def record_hit(self, inode_id: int, page: int,
                   actual_seconds: float,
                   device_class: str = "memory") -> None:
        """One page delivered from the cache in ``actual_seconds``."""
        prediction = self._consume(inode_id, page)
        if prediction is None:
            return
        latency, bandwidth, _queue = prediction
        predicted = latency + PAGE_SIZE / bandwidth
        self._record(device_class, predicted, actual_seconds)

    def _record(self, device_class: str, predicted: float,
                actual: float) -> None:
        acc = self._by_class.setdefault(device_class, ClassAccuracy())
        acc.add(predicted, actual)
        if self._abs_error is not None:
            self._abs_error.labels(cls=device_class).observe(
                abs(actual - predicted))

    def _record_component(self, device_class: str, component: str,
                          predicted: float, actual: float) -> None:
        acc = self._by_component.setdefault((device_class, component),
                                            ClassAccuracy())
        acc.add(predicted, actual)

    # -- reporting --------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return len(self._predictions)

    def report(self) -> AccuracyReport:
        return AccuracyReport(
            by_class={name: acc for name, acc in self._by_class.items()},
            by_component=dict(self._by_component),
            predictions_outstanding=len(self._predictions),
            unmatched_faults=self.unmatched_faults)

    def to_dict(self) -> dict:
        """JSON-ready per-class summary."""
        return {
            "classes": {
                name: {
                    "samples": acc.samples,
                    "mean_abs_error": acc.mean_abs_error,
                    "mean_error": acc.mean_error,
                    "mean_relative_error": acc.mean_relative_error,
                    "mean_predicted": (acc.predicted_sum / acc.samples
                                       if acc.samples else 0.0),
                    "mean_actual": (acc.actual_sum / acc.samples
                                    if acc.samples else 0.0),
                }
                for name, acc in sorted(self._by_class.items())
            },
            "components": {
                f"{cls}/{component}": {
                    "samples": acc.samples,
                    "mean_abs_error": acc.mean_abs_error,
                    "mean_error": acc.mean_error,
                    "mean_predicted": (acc.predicted_sum / acc.samples
                                       if acc.samples else 0.0),
                    "mean_actual": (acc.actual_sum / acc.samples
                                    if acc.samples else 0.0),
                }
                for (cls, component), acc in
                sorted(self._by_component.items())
            },
            "outstanding": len(self._predictions),
            "unmatched_faults": self.unmatched_faults,
        }

    def clear(self) -> None:
        self._predictions.clear()
        self._by_class.clear()
        self._by_component.clear()
        self.unmatched_faults = 0
