"""Observability for the simulated storage stack (see docs/observability.md).

Three pillars, one facade:

* :mod:`repro.obs.metrics` — a deterministic metrics registry (counters,
  gauges, log-bucket histograms) with Prometheus text and JSON export;
* :mod:`repro.obs.accuracy` — SLED prediction-accuracy tracking: predicted
  vs. actual delivery time per device class;
* :mod:`repro.obs.spans` — span-based tracing (syscall → fault → device)
  with Chrome trace-event JSON export;
* :mod:`repro.obs.lifecycle` — per-request lifecycle records with an
  exact latency-component breakdown, plus the critical-path analyzer
  for event-scheduler runs;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade that attaches
  all of them to a kernel.

Telemetry is strictly observational: it never advances the virtual clock
and never draws randomness, so simulated timings are bit-identical whether
it is attached or not.
"""

from repro.obs.accuracy import AccuracyReport, ClassAccuracy, SledAccuracyTracker
from repro.obs.lifecycle import (
    CriticalPathReport,
    LifecycleRecord,
    LifecycleTracker,
    critical_path,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)
from repro.obs.spans import Span, SpanRecorder, chrome_trace
from repro.obs.telemetry import Telemetry

__all__ = [
    "AccuracyReport",
    "ClassAccuracy",
    "Counter",
    "CriticalPathReport",
    "Gauge",
    "Histogram",
    "LifecycleRecord",
    "LifecycleTracker",
    "MetricsRegistry",
    "SledAccuracyTracker",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "chrome_trace",
    "critical_path",
    "log_buckets",
]
