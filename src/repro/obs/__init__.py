"""Observability for the simulated storage stack (see docs/observability.md).

Three pillars, one facade:

* :mod:`repro.obs.metrics` — a deterministic metrics registry (counters,
  gauges, log-bucket histograms) with Prometheus text and JSON export;
* :mod:`repro.obs.accuracy` — SLED prediction-accuracy tracking: predicted
  vs. actual delivery time per device class;
* :mod:`repro.obs.spans` — span-based tracing (syscall → fault → device)
  with Chrome trace-event JSON export;
* :mod:`repro.obs.lifecycle` — per-request lifecycle records with an
  exact latency-component breakdown, plus the critical-path analyzer
  for event-scheduler runs;
* :mod:`repro.obs.timeseries` — windowed sampling of the registry on a
  virtual-time cadence, with OpenMetrics/JSON export;
* :mod:`repro.obs.slo` — per-request-class (and per-tenant) latency
  objectives: rolling p50/p99, compliance, error-budget burn rate;
* :mod:`repro.obs.forensics` — latency forensics: exemplar capture,
  exactly-closed blame attribution over the block layer's dispatch
  provenance, the cross-tenant interference matrix, folded-stack export;
* :mod:`repro.obs.profile` — wall-clock profiling of the simulator's hot
  paths (event dispatch, SLED builds, cache residency, block merge);
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade that attaches
  all of them to a kernel.

Telemetry is strictly observational: it never advances the virtual clock
and never draws randomness, so simulated timings are bit-identical whether
it is attached or not.
"""

from repro.obs.accuracy import AccuracyReport, ClassAccuracy, SledAccuracyTracker
from repro.obs.forensics import (
    BlameEngine,
    ExemplarReservoir,
    ForensicsReport,
    InterferenceMatrix,
    LatencyForensics,
    folded_blame,
    folded_critical_path,
)
from repro.obs.lifecycle import (
    CriticalPathReport,
    LifecycleRecord,
    LifecycleTracker,
    critical_path,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)
from repro.obs.profile import HotPathProfiler
from repro.obs.slo import SloTarget, SloTracker
from repro.obs.spans import Span, SpanRecorder, chrome_trace
from repro.obs.telemetry import Telemetry
from repro.obs.timeseries import TimeSeriesRecorder

__all__ = [
    "AccuracyReport",
    "BlameEngine",
    "ClassAccuracy",
    "Counter",
    "CriticalPathReport",
    "ExemplarReservoir",
    "ForensicsReport",
    "Gauge",
    "Histogram",
    "HotPathProfiler",
    "InterferenceMatrix",
    "LatencyForensics",
    "LifecycleRecord",
    "LifecycleTracker",
    "MetricsRegistry",
    "SledAccuracyTracker",
    "SloTarget",
    "SloTracker",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "TimeSeriesRecorder",
    "chrome_trace",
    "critical_path",
    "folded_blame",
    "folded_critical_path",
    "log_buckets",
]
