"""Wall-clock profiling of the simulator's hot paths.

The ROADMAP's "hardware-fast core" item budgets ≥ 1M faults per *wall*
second; to spend that budget well we need to know where host CPU time
goes.  This module adds scoped wall-clock timers to the sites that
dominate a run — :class:`~repro.sim.events.EventLoop` dispatch, SLED
vector builds in the kernel ioctl path, page-cache residency updates,
and block-layer merge/flush — and reports per-site call counts,
cumulative wall seconds, and wall-per-virtual-second ratios.

The profiler measures *wall* time only.  It never reads or advances the
virtual clock, draws no randomness, and mutates no simulated state, so
virtual-time results are bit-identical with it attached or detached
(property-tested in ``tests/test_obs_zero_cost.py``).  Instrumented
sites guard with ``if profiler is not None`` so the detached hot path
pays a single attribute load and branch.

Typical use::

    prof = HotPathProfiler().attach(machine.kernel)
    ...  # run a workload
    print(prof.render(virtual_seconds=machine.clock.now))

or via the CLI: ``sleds-run profile``.
"""

from __future__ import annotations

from time import perf_counter

__all__ = ["HotPathProfiler", "SITES"]

#: the hot-path sites wired into the core (site name -> where it lives)
SITES = {
    "event_loop.dispatch": "EventLoop.step: pop + fire one event",
    "kernel.sled_build": "Kernel ioctl FSLEDS_GET: build_sled_vector",
    "cache.residency": "PageCache.insert: residency update + eviction",
    "cache.resident_runs": "PageCache.resident_runs: interval-run query",
    "block.merge_flush": "PlugQueue.flush: coalesce + dispatch",
    "kernel.fault_batch": "Kernel._fault_in_batch: vectorised fault span",
    "device.batch_math": "Device.read_run: whole-run latency kernels",
    "obs.telemetry_flush": "TelemetryBatch.flush: deferred on_fault fan-in",
}


class _Site:
    """Accumulated wall time at one instrumented site."""

    __slots__ = ("calls", "seconds", "max_seconds")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds = 0.0
        self.max_seconds = 0.0

    def add(self, seconds: float) -> None:
        self.calls += 1
        self.seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds


class HotPathProfiler:
    """Scoped wall-clock timers for the simulator core.

    Instrumented code calls :meth:`begin` / :meth:`add` directly (cheaper
    than a context manager in a hot loop); ad-hoc measurements can use
    the :meth:`scope` context manager.  :meth:`attach` pushes the
    profiler onto a kernel and everything reachable from it — the page
    cache and, when an engine is attached now or later, its event loop.
    """

    def __init__(self) -> None:
        self._sites: dict[str, _Site] = {}
        self.started_at = perf_counter()

    # -- measurement ------------------------------------------------------

    @staticmethod
    def begin() -> float:
        return perf_counter()

    def add(self, site: str, t0: float) -> None:
        """Account ``perf_counter() - t0`` wall seconds to ``site``."""
        elapsed = perf_counter() - t0
        slot = self._sites.get(site)
        if slot is None:
            slot = self._sites[site] = _Site()
        slot.add(elapsed)

    class _Scope:
        __slots__ = ("profiler", "site", "t0")

        def __init__(self, profiler: "HotPathProfiler", site: str) -> None:
            self.profiler = profiler
            self.site = site

        def __enter__(self) -> "HotPathProfiler._Scope":
            self.t0 = perf_counter()
            return self

        def __exit__(self, *exc) -> None:
            self.profiler.add(self.site, self.t0)

    def scope(self, site: str) -> "HotPathProfiler._Scope":
        return self._Scope(self, site)

    # -- wiring -----------------------------------------------------------

    def attach(self, kernel) -> "HotPathProfiler":
        """Instrument ``kernel``, its page cache, and (if present) the
        attached engine's event loop.  ``Kernel.attach_engine`` keeps the
        loop instrumented when the engine arrives later."""
        kernel.profiler = self
        kernel.page_cache.profiler = self
        engine = getattr(kernel, "engine", None)
        if engine is not None:
            engine.loop.profiler = self
        return self

    def detach(self, kernel) -> None:
        kernel.profiler = None
        kernel.page_cache.profiler = None
        engine = getattr(kernel, "engine", None)
        if engine is not None:
            engine.loop.profiler = None

    # -- reporting --------------------------------------------------------

    def rows(self, virtual_seconds: float | None = None) -> list[dict]:
        """Per-site stats, largest cumulative wall time first."""
        out = []
        for site, slot in sorted(self._sites.items(),
                                 key=lambda kv: (-kv[1].seconds, kv[0])):
            row = {
                "site": site,
                "where": SITES.get(site, ""),
                "calls": slot.calls,
                "wall_seconds": slot.seconds,
                "wall_mean_us": (slot.seconds / slot.calls * 1e6
                                 if slot.calls else 0.0),
                "wall_max_us": slot.max_seconds * 1e6,
            }
            if virtual_seconds is not None and virtual_seconds > 0.0:
                row["wall_per_virtual_second"] = (
                    slot.seconds / virtual_seconds)
            out.append(row)
        return out

    @property
    def total_wall_seconds(self) -> float:
        return sum(slot.seconds for slot in self._sites.values())

    def calls(self, site: str) -> int:
        slot = self._sites.get(site)
        return slot.calls if slot is not None else 0

    def render(self, virtual_seconds: float | None = None) -> str:
        rows = self.rows(virtual_seconds)
        lines = ["hot-path profile (wall clock):"]
        if not rows:
            lines.append("  (no instrumented site was hit)")
            return "\n".join(lines)
        for row in rows:
            extra = ""
            if "wall_per_virtual_second" in row:
                extra = (f"  wall/vsec={row['wall_per_virtual_second']:.3e}")
            lines.append(
                f"  {row['site']:<22} calls={row['calls']:<8d} "
                f"wall={row['wall_seconds']:.6f}s "
                f"mean={row['wall_mean_us']:8.2f}us "
                f"max={row['wall_max_us']:8.2f}us{extra}")
        if virtual_seconds is not None and virtual_seconds > 0.0:
            lines.append(
                f"  total instrumented wall "
                f"{self.total_wall_seconds:.6f}s over "
                f"{virtual_seconds:.6f} virtual seconds")
        return "\n".join(lines)

    def to_dict(self, virtual_seconds: float | None = None) -> dict:
        return {
            "sites": self.rows(virtual_seconds),
            "total_wall_seconds": self.total_wall_seconds,
            "virtual_seconds": virtual_seconds,
        }

    def clear(self) -> None:
        self._sites.clear()
        self.started_at = perf_counter()
