"""Per-request-class SLO tracking: rolling quantiles and error budgets.

The paper's thesis is that latency must be *managed*, not just measured
after the fact.  Managing means having a target: this module lets a run
declare latency objectives per request class — and, forward-compatibly,
per tenant/task group — and grades every traced request against them as
it closes.

* :class:`SloTarget` declares one objective: "requests of class ``cls``
  (optionally from tenant ``tenant``) finish within
  ``latency_objective`` seconds, ``compliance_target`` of the time".
* :class:`SloTracker` subscribes to the
  :class:`~repro.obs.lifecycle.LifecycleTracker` record stream and
  maintains, per target: rolling p50/p99 over a bounded request window,
  cumulative and windowed compliance ratios, and the **error-budget burn
  rate** — the windowed violation rate over the allowed violation rate
  (burn rate 1.0 spends the budget exactly as fast as the objective
  allows; above 1.0 the budget is burning down; a sustained burn rate of
  ``r`` exhausts the budget in ``1/r`` of the objective period).

Matching: a record matches a target when the target's ``cls`` equals the
record's device class (or is ``"*"``), and — if the target names a
``tenant`` — the record's task matches it exactly or by ``prefix*``
glob.  A record may match several targets (a per-class and a per-tenant
objective both see it).

Everything here is observational: grading reads values the timing model
already produced; no clock advances, no RNG draws — runs are
bit-identical with a tracker attached or not.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.obs.lifecycle import LifecycleRecord
from repro.sim.units import human_time

__all__ = ["SloTarget", "SloTracker", "window_quantile"]


def window_quantile(values: list[float], q: float) -> float:
    """Exact quantile (nearest-rank) over a small sample window."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1]: {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass(frozen=True)
class SloTarget:
    """One latency objective.

    ``cls`` is a device class (``"disk"``, ``"nfs"``, ...) or ``"*"``;
    ``tenant`` is None (class-wide), an exact name, or a ``prefix*``
    glob.  A record carrying a real tenant label (its issuing task was
    tenanted) matches on that label; untenanted records fall back to
    the task name, preserving the pre-multi-tenant task-glob behaviour.
    ``compliance_target`` is the fraction of requests that must meet
    ``latency_objective``; its complement is the error budget.
    """

    name: str
    cls: str
    latency_objective: float
    compliance_target: float = 0.99
    tenant: str | None = None

    def __post_init__(self) -> None:
        if self.latency_objective <= 0.0:
            raise ValueError(
                f"latency objective must be positive: "
                f"{self.latency_objective}")
        if not 0.0 < self.compliance_target < 1.0:
            raise ValueError(
                f"compliance target must be in (0, 1): "
                f"{self.compliance_target}")

    def matches(self, record: LifecycleRecord) -> bool:
        if self.cls != "*" and record.device_class != self.cls:
            return False
        if self.tenant is None:
            return True
        subject = record.tenant if record.tenant is not None \
            else (record.task or "")
        if self.tenant.endswith("*"):
            return subject.startswith(self.tenant[:-1])
        return subject == self.tenant

    @property
    def error_budget(self) -> float:
        """Allowed violation fraction (the budget being burned)."""
        return 1.0 - self.compliance_target


class _TargetState:
    """Accumulated grading for one target."""

    __slots__ = ("target", "window", "violations_window", "total",
                 "violations", "latency_sum", "queue_wait_sum", "worst")

    def __init__(self, target: SloTarget, window: int) -> None:
        self.target = target
        #: (latency, violated) pairs of the most recent requests
        self.window: deque[tuple[float, bool]] = deque(maxlen=window)
        self.violations_window = 0
        self.total = 0
        self.violations = 0
        self.latency_sum = 0.0
        #: cumulative queue-wait seconds of graded requests — the pool
        #: the forensic interference matrix reconciles its rows against
        self.queue_wait_sum = 0.0
        self.worst = 0.0

    def observe(self, latency: float, queue_wait: float = 0.0) -> bool:
        violated = latency > self.target.latency_objective
        if (len(self.window) == self.window.maxlen
                and self.window[0][1]):
            self.violations_window -= 1
        self.window.append((latency, violated))
        if violated:
            self.violations_window += 1
            self.violations += 1
        self.total += 1
        self.latency_sum += latency
        self.queue_wait_sum += queue_wait
        if latency > self.worst:
            self.worst = latency
        return violated

    # -- derived ----------------------------------------------------------

    @property
    def compliance(self) -> float:
        """Cumulative fraction of requests meeting the objective."""
        if self.total == 0:
            return 1.0
        return 1.0 - self.violations / self.total

    @property
    def window_compliance(self) -> float:
        if not self.window:
            return 1.0
        return 1.0 - self.violations_window / len(self.window)

    @property
    def burn_rate(self) -> float:
        """Windowed violation rate over the allowed violation rate."""
        if not self.window:
            return 0.0
        rate = self.violations_window / len(self.window)
        return rate / self.target.error_budget

    def quantile(self, q: float) -> float:
        return window_quantile([lat for lat, _ in self.window], q)

    def to_dict(self) -> dict:
        t = self.target
        return {
            "name": t.name,
            "cls": t.cls,
            "tenant": t.tenant,
            "latency_objective_s": t.latency_objective,
            "compliance_target": t.compliance_target,
            "requests": self.total,
            "violations": self.violations,
            "compliance": self.compliance,
            "window_requests": len(self.window),
            "window_violations": self.violations_window,
            "window_compliance": self.window_compliance,
            "burn_rate": self.burn_rate,
            "p50_s": self.quantile(0.50),
            "p99_s": self.quantile(0.99),
            "mean_latency_s": (self.latency_sum / self.total
                               if self.total else 0.0),
            "queue_wait_sum_s": self.queue_wait_sum,
            "worst_latency_s": self.worst,
        }


class _TenantState:
    """Accumulated grading for one tenant, rolled up across every target
    that graded its records.

    A record counts as violated when it missed *any* matched target;
    the burn rate divides the windowed violation rate by the strictest
    (smallest) error budget among the targets that graded this tenant,
    so a burn above 1.0 means at least one objective is overspending.
    """

    __slots__ = ("tenant", "window", "violations_window", "total",
                 "violations", "latency_sum", "queue_wait_sum", "worst",
                 "min_budget")

    def __init__(self, tenant: str, window: int) -> None:
        self.tenant = tenant
        self.window: deque[tuple[float, bool]] = deque(maxlen=window)
        self.violations_window = 0
        self.total = 0
        self.violations = 0
        self.latency_sum = 0.0
        #: cumulative queue-wait seconds of this tenant's graded
        #: requests; the interference matrix's per-victim row total
        #: must reconcile with this pool
        self.queue_wait_sum = 0.0
        self.worst = 0.0
        self.min_budget = 1.0

    def observe(self, latency: float, violated: bool,
                budget: float, queue_wait: float = 0.0) -> None:
        if (len(self.window) == self.window.maxlen
                and self.window[0][1]):
            self.violations_window -= 1
        self.window.append((latency, violated))
        if violated:
            self.violations_window += 1
            self.violations += 1
        self.total += 1
        self.latency_sum += latency
        self.queue_wait_sum += queue_wait
        if latency > self.worst:
            self.worst = latency
        if budget < self.min_budget:
            self.min_budget = budget

    @property
    def compliance(self) -> float:
        if self.total == 0:
            return 1.0
        return 1.0 - self.violations / self.total

    @property
    def window_compliance(self) -> float:
        if not self.window:
            return 1.0
        return 1.0 - self.violations_window / len(self.window)

    @property
    def burn_rate(self) -> float:
        if not self.window:
            return 0.0
        rate = self.violations_window / len(self.window)
        return rate / self.min_budget

    def quantile(self, q: float) -> float:
        return window_quantile([lat for lat, _ in self.window], q)

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "requests": self.total,
            "violations": self.violations,
            "compliance": self.compliance,
            "window_requests": len(self.window),
            "window_violations": self.violations_window,
            "window_compliance": self.window_compliance,
            "burn_rate": self.burn_rate,
            "min_error_budget": self.min_budget,
            "p50_s": self.quantile(0.50),
            "p99_s": self.quantile(0.99),
            "mean_latency_s": (self.latency_sum / self.total
                               if self.total else 0.0),
            "queue_wait_sum_s": self.queue_wait_sum,
            "worst_latency_s": self.worst,
        }


class SloTracker:
    """Grades lifecycle records against declared SLO targets.

    Attach to a :class:`~repro.obs.telemetry.Telemetry` (it subscribes to
    the lifecycle record stream) or feed records directly via
    :meth:`observe`.  ``window`` bounds the rolling-quantile/burn-rate
    sample per target.  When a ``registry`` is supplied, per-target
    graded/violated counters and a burn-rate gauge are exported alongside
    the rest of the metrics (and therefore sampled by any attached
    :class:`~repro.obs.timeseries.TimeSeriesRecorder`).
    """

    def __init__(self, targets: list[SloTarget] | tuple[SloTarget, ...],
                 window: int = 512, registry=None,
                 track_tenants: bool = False) -> None:
        if not targets:
            raise ValueError("need at least one SLO target")
        names = [t.name for t in targets]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO target names: {names}")
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        self.states = {t.name: _TargetState(t, window)
                       for t in targets}
        self.unmatched = 0
        #: callables invoked as ``hook(record, violated_target_names)``
        #: whenever a graded record misses at least one objective; the
        #: forensic exemplar reservoir subscribes here to pin violation
        #: exemplars.  Hooks are observational — they must not touch the
        #: clock or RNG, and must :meth:`~repro.obs.lifecycle.
        #: LifecycleRecord.snapshot` the record if they keep it.
        self.on_violation: list = []
        self.track_tenants = track_tenants
        self._window = window
        #: tenant -> _TenantState rollup (populated only when
        #: ``track_tenants`` and tenanted records flow)
        self._tenants: dict[str, _TenantState] = {}
        self._telemetry = None
        self._graded = self._violated = self._burn = None
        self._tenant_graded = self._tenant_violated = None
        if registry is not None:
            self._graded = registry.counter(
                "slo_requests_total", "Requests graded per SLO target",
                labels=("slo",))
            self._violated = registry.counter(
                "slo_violations_total",
                "Requests that missed their SLO latency objective",
                labels=("slo",))
            self._burn = registry.gauge(
                "slo_burn_rate",
                "Windowed error-budget burn rate per SLO target "
                "(1.0 = spending the budget exactly at the allowed rate)",
                labels=("slo",))
            self._tenant_graded = registry.counter(
                "slo_tenant_requests_total",
                "Requests graded per tenant (any target)",
                labels=("tenant",))
            self._tenant_violated = registry.counter(
                "slo_tenant_violations_total",
                "Requests per tenant that missed at least one matched "
                "SLO latency objective", labels=("tenant",))

    @classmethod
    def for_classes(cls, objectives: dict[str, float],
                    compliance_target: float = 0.99,
                    window: int = 512, registry=None,
                    track_tenants: bool = False) -> "SloTracker":
        """Convenience: one per-class target per ``{cls: objective}``."""
        targets = [SloTarget(name=f"{c}-latency", cls=c,
                             latency_objective=objective,
                             compliance_target=compliance_target)
                   for c, objective in sorted(objectives.items())]
        return cls(targets, window=window, registry=registry,
                   track_tenants=track_tenants)

    # -- lifecycle-stream subscription ------------------------------------

    def attach(self, telemetry) -> "SloTracker":
        """Subscribe to ``telemetry``'s lifecycle record stream."""
        if self._telemetry is not None:
            raise ValueError("SLO tracker is already attached")
        telemetry.lifecycle.observers.append(self.observe)
        self._telemetry = telemetry
        return self

    def detach(self) -> None:
        if self._telemetry is None:
            return
        try:
            self._telemetry.lifecycle.observers.remove(self.observe)
        except ValueError:
            pass
        self._telemetry = None

    # -- grading ----------------------------------------------------------

    def observe(self, record: LifecycleRecord) -> None:
        latency = record.latency
        queue_wait = record.queue_wait
        matched = False
        violated_names: list[str] = []
        min_budget = 1.0
        for state in self.states.values():
            if not state.target.matches(record):
                continue
            matched = True
            violated = state.observe(latency, queue_wait)
            budget = state.target.error_budget
            if budget < min_budget:
                min_budget = budget
            name = state.target.name
            if violated:
                violated_names.append(name)
            if self._graded is not None:
                self._graded.labels(slo=name).inc()
                if violated:
                    self._violated.labels(slo=name).inc()
                self._burn.labels(slo=name).set(state.burn_rate)
        if not matched:
            self.unmatched += 1
        elif self.track_tenants and record.tenant is not None:
            tenant = record.tenant
            state = self._tenants.get(tenant)
            if state is None:
                state = self._tenants[tenant] = _TenantState(
                    tenant, self._window)
            state.observe(latency, bool(violated_names), min_budget,
                          queue_wait)
            if self._tenant_graded is not None:
                self._tenant_graded.labels(tenant=tenant).inc()
                if violated_names:
                    self._tenant_violated.labels(tenant=tenant).inc()
        if violated_names:
            for hook in self.on_violation:
                hook(record, violated_names)

    # -- reporting ---------------------------------------------------------

    def report_rows(self) -> list[dict]:
        return [self.states[name].to_dict()
                for name in sorted(self.states)]

    def tenant_rows(self) -> list[dict]:
        """Per-tenant rollup rows (empty unless ``track_tenants``)."""
        return [self._tenants[tenant].to_dict()
                for tenant in sorted(self._tenants)]

    def tenant_queue_waits(self) -> dict[str, float]:
        """Cumulative queue-wait seconds per tenant across graded
        requests — the reconciliation anchor for the forensic
        interference matrix's per-victim row totals."""
        return {tenant: state.queue_wait_sum
                for tenant, state in sorted(self._tenants.items())}

    def render_tenants(self) -> str:
        lines = ["Per-tenant SLO rollup (rolling window):"]
        rows = self.tenant_rows()
        if not rows:
            lines.append("  (no tenanted requests were graded)")
        for row in rows:
            lines.append(
                f"  {row['tenant']:>16}: "
                f"n={row['requests']:<6d} "
                f"p50={human_time(row['p50_s']):>9} "
                f"p99={human_time(row['p99_s']):>9} "
                f"compliance={row['compliance']:7.2%} "
                f"burn={row['burn_rate']:5.2f}x")
        return "\n".join(lines)

    def render(self) -> str:
        lines = ["SLO compliance (rolling window):"]
        rows = self.report_rows()
        if not any(row["requests"] for row in rows):
            lines.append("  (no requests matched any target)")
        for row in rows:
            if row["requests"] == 0:
                lines.append(f"  {row['name']:>16}: no traffic")
                continue
            scope = row["cls"] + (f"/{row['tenant']}" if row["tenant"]
                                  else "")
            lines.append(
                f"  {row['name']:>16} [{scope}] "
                f"obj<{human_time(row['latency_objective_s'])} "
                f"n={row['requests']:<6d} "
                f"p50={human_time(row['p50_s']):>9} "
                f"p99={human_time(row['p99_s']):>9} "
                f"compliance={row['compliance']:7.2%} "
                f"(target {row['compliance_target']:.1%}) "
                f"burn={row['burn_rate']:5.2f}x")
        if self.unmatched:
            lines.append(f"  requests matching no target: {self.unmatched}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        out = {
            "targets": self.report_rows(),
            "unmatched": self.unmatched,
        }
        if self.track_tenants:
            out["tenants"] = self.tenant_rows()
        return out
