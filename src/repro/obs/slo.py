"""Per-request-class SLO tracking: rolling quantiles and error budgets.

The paper's thesis is that latency must be *managed*, not just measured
after the fact.  Managing means having a target: this module lets a run
declare latency objectives per request class — and, forward-compatibly,
per tenant/task group — and grades every traced request against them as
it closes.

* :class:`SloTarget` declares one objective: "requests of class ``cls``
  (optionally from tenant ``tenant``) finish within
  ``latency_objective`` seconds, ``compliance_target`` of the time".
* :class:`SloTracker` subscribes to the
  :class:`~repro.obs.lifecycle.LifecycleTracker` record stream and
  maintains, per target: rolling p50/p99 over a bounded request window,
  cumulative and windowed compliance ratios, and the **error-budget burn
  rate** — the windowed violation rate over the allowed violation rate
  (burn rate 1.0 spends the budget exactly as fast as the objective
  allows; above 1.0 the budget is burning down; a sustained burn rate of
  ``r`` exhausts the budget in ``1/r`` of the objective period).

Matching: a record matches a target when the target's ``cls`` equals the
record's device class (or is ``"*"``), and — if the target names a
``tenant`` — the record's task matches it exactly or by ``prefix*``
glob.  A record may match several targets (a per-class and a per-tenant
objective both see it).

Everything here is observational: grading reads values the timing model
already produced; no clock advances, no RNG draws — runs are
bit-identical with a tracker attached or not.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.obs.lifecycle import LifecycleRecord
from repro.sim.units import human_time

__all__ = ["SloTarget", "SloTracker", "window_quantile"]


def window_quantile(values: list[float], q: float) -> float:
    """Exact quantile (nearest-rank) over a small sample window."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1]: {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass(frozen=True)
class SloTarget:
    """One latency objective.

    ``cls`` is a device class (``"disk"``, ``"nfs"``, ...) or ``"*"``;
    ``tenant`` is None (class-wide), an exact task name, or a
    ``prefix*`` glob over task names — the forward-compatible hook for
    per-tenant/task-group SLOs on the multi-tenant roadmap item.
    ``compliance_target`` is the fraction of requests that must meet
    ``latency_objective``; its complement is the error budget.
    """

    name: str
    cls: str
    latency_objective: float
    compliance_target: float = 0.99
    tenant: str | None = None

    def __post_init__(self) -> None:
        if self.latency_objective <= 0.0:
            raise ValueError(
                f"latency objective must be positive: "
                f"{self.latency_objective}")
        if not 0.0 < self.compliance_target < 1.0:
            raise ValueError(
                f"compliance target must be in (0, 1): "
                f"{self.compliance_target}")

    def matches(self, record: LifecycleRecord) -> bool:
        if self.cls != "*" and record.device_class != self.cls:
            return False
        if self.tenant is None:
            return True
        task = record.task or ""
        if self.tenant.endswith("*"):
            return task.startswith(self.tenant[:-1])
        return task == self.tenant

    @property
    def error_budget(self) -> float:
        """Allowed violation fraction (the budget being burned)."""
        return 1.0 - self.compliance_target


class _TargetState:
    """Accumulated grading for one target."""

    __slots__ = ("target", "window", "violations_window", "total",
                 "violations", "latency_sum", "worst")

    def __init__(self, target: SloTarget, window: int) -> None:
        self.target = target
        #: (latency, violated) pairs of the most recent requests
        self.window: deque[tuple[float, bool]] = deque(maxlen=window)
        self.violations_window = 0
        self.total = 0
        self.violations = 0
        self.latency_sum = 0.0
        self.worst = 0.0

    def observe(self, latency: float) -> bool:
        violated = latency > self.target.latency_objective
        if (len(self.window) == self.window.maxlen
                and self.window[0][1]):
            self.violations_window -= 1
        self.window.append((latency, violated))
        if violated:
            self.violations_window += 1
            self.violations += 1
        self.total += 1
        self.latency_sum += latency
        if latency > self.worst:
            self.worst = latency
        return violated

    # -- derived ----------------------------------------------------------

    @property
    def compliance(self) -> float:
        """Cumulative fraction of requests meeting the objective."""
        if self.total == 0:
            return 1.0
        return 1.0 - self.violations / self.total

    @property
    def window_compliance(self) -> float:
        if not self.window:
            return 1.0
        return 1.0 - self.violations_window / len(self.window)

    @property
    def burn_rate(self) -> float:
        """Windowed violation rate over the allowed violation rate."""
        if not self.window:
            return 0.0
        rate = self.violations_window / len(self.window)
        return rate / self.target.error_budget

    def quantile(self, q: float) -> float:
        return window_quantile([lat for lat, _ in self.window], q)

    def to_dict(self) -> dict:
        t = self.target
        return {
            "name": t.name,
            "cls": t.cls,
            "tenant": t.tenant,
            "latency_objective_s": t.latency_objective,
            "compliance_target": t.compliance_target,
            "requests": self.total,
            "violations": self.violations,
            "compliance": self.compliance,
            "window_requests": len(self.window),
            "window_violations": self.violations_window,
            "window_compliance": self.window_compliance,
            "burn_rate": self.burn_rate,
            "p50_s": self.quantile(0.50),
            "p99_s": self.quantile(0.99),
            "mean_latency_s": (self.latency_sum / self.total
                               if self.total else 0.0),
            "worst_latency_s": self.worst,
        }


class SloTracker:
    """Grades lifecycle records against declared SLO targets.

    Attach to a :class:`~repro.obs.telemetry.Telemetry` (it subscribes to
    the lifecycle record stream) or feed records directly via
    :meth:`observe`.  ``window`` bounds the rolling-quantile/burn-rate
    sample per target.  When a ``registry`` is supplied, per-target
    graded/violated counters and a burn-rate gauge are exported alongside
    the rest of the metrics (and therefore sampled by any attached
    :class:`~repro.obs.timeseries.TimeSeriesRecorder`).
    """

    def __init__(self, targets: list[SloTarget] | tuple[SloTarget, ...],
                 window: int = 512, registry=None) -> None:
        if not targets:
            raise ValueError("need at least one SLO target")
        names = [t.name for t in targets]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO target names: {names}")
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        self.states = {t.name: _TargetState(t, window)
                       for t in targets}
        self.unmatched = 0
        self._telemetry = None
        self._graded = self._violated = self._burn = None
        if registry is not None:
            self._graded = registry.counter(
                "slo_requests_total", "Requests graded per SLO target",
                labels=("slo",))
            self._violated = registry.counter(
                "slo_violations_total",
                "Requests that missed their SLO latency objective",
                labels=("slo",))
            self._burn = registry.gauge(
                "slo_burn_rate",
                "Windowed error-budget burn rate per SLO target "
                "(1.0 = spending the budget exactly at the allowed rate)",
                labels=("slo",))

    @classmethod
    def for_classes(cls, objectives: dict[str, float],
                    compliance_target: float = 0.99,
                    window: int = 512, registry=None) -> "SloTracker":
        """Convenience: one per-class target per ``{cls: objective}``."""
        targets = [SloTarget(name=f"{c}-latency", cls=c,
                             latency_objective=objective,
                             compliance_target=compliance_target)
                   for c, objective in sorted(objectives.items())]
        return cls(targets, window=window, registry=registry)

    # -- lifecycle-stream subscription ------------------------------------

    def attach(self, telemetry) -> "SloTracker":
        """Subscribe to ``telemetry``'s lifecycle record stream."""
        if self._telemetry is not None:
            raise ValueError("SLO tracker is already attached")
        telemetry.lifecycle.observers.append(self.observe)
        self._telemetry = telemetry
        return self

    def detach(self) -> None:
        if self._telemetry is None:
            return
        try:
            self._telemetry.lifecycle.observers.remove(self.observe)
        except ValueError:
            pass
        self._telemetry = None

    # -- grading ----------------------------------------------------------

    def observe(self, record: LifecycleRecord) -> None:
        latency = record.latency
        matched = False
        for state in self.states.values():
            if not state.target.matches(record):
                continue
            matched = True
            violated = state.observe(latency)
            name = state.target.name
            if self._graded is not None:
                self._graded.labels(slo=name).inc()
                if violated:
                    self._violated.labels(slo=name).inc()
                self._burn.labels(slo=name).set(state.burn_rate)
        if not matched:
            self.unmatched += 1

    # -- reporting ---------------------------------------------------------

    def report_rows(self) -> list[dict]:
        return [self.states[name].to_dict()
                for name in sorted(self.states)]

    def render(self) -> str:
        lines = ["SLO compliance (rolling window):"]
        rows = self.report_rows()
        if not any(row["requests"] for row in rows):
            lines.append("  (no requests matched any target)")
        for row in rows:
            if row["requests"] == 0:
                lines.append(f"  {row['name']:>16}: no traffic")
                continue
            scope = row["cls"] + (f"/{row['tenant']}" if row["tenant"]
                                  else "")
            lines.append(
                f"  {row['name']:>16} [{scope}] "
                f"obj<{human_time(row['latency_objective_s'])} "
                f"n={row['requests']:<6d} "
                f"p50={human_time(row['p50_s']):>9} "
                f"p99={human_time(row['p99_s']):>9} "
                f"compliance={row['compliance']:7.2%} "
                f"(target {row['compliance_target']:.1%}) "
                f"burn={row['burn_rate']:5.2f}x")
        if self.unmatched:
            lines.append(f"  requests matching no target: {self.unmatched}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "targets": self.report_rows(),
            "unmatched": self.unmatched,
        }
