"""Per-request I/O lifecycle tracing and latency attribution.

The simulation *computes* every component of a request's latency — queue
wait in the :class:`~repro.block.scheduler.DeviceQueue`, positioning and
transfer inside each device model, robot time in the autochanger, staging
writes in the HSM path — and then throws the breakdown away, reporting
only the total.  This module keeps it:

* every :class:`~repro.devices.base.Device` accumulates monotonic
  per-component virtual seconds in ``component_totals``; diffing two
  snapshots of a filesystem's devices attributes exactly one service
  call (:func:`snapshot_components` / :func:`component_delta`);
* the kernel turns each fault/writeback into a :class:`LifecycleRecord`
  carrying causal context (task, filesystem, inode, page run) plus the
  closed component breakdown — closed meaning ``queue wait + components``
  sums *exactly* (``math.fsum``-exactly) to the measured latency, with
  any daylight (the kernel noise multiplier, float rounding) named
  ``"noise"``;
* :func:`critical_path` reconstructs the blocking chain that determined
  the makespan of an :class:`~repro.sim.tasks.EventScheduler` run and
  prices out "what-if" deltas per component.

Everything here is strictly observational: records are built from values
the timing model already produced, no clock advances, no RNG draws — runs
are bit-identical with tracing attached or not (property-tested).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.sim.units import human_time

__all__ = [
    "ChainLink",
    "CriticalPathReport",
    "LifecycleRecord",
    "LifecycleTracker",
    "component_delta",
    "critical_path",
    "snapshot_components",
]


# ---------------------------------------------------------------------------
# component capture: snapshot/diff of device component_totals
# ---------------------------------------------------------------------------

def _sources_of(fs) -> list:
    """Everything that accrues component time for requests on ``fs``:
    its observable devices plus (for HSM) the autochanger's robot."""
    sources = list(fs.observable_devices())
    changer = getattr(fs, "autochanger", None)
    if changer is not None:
        sources.append(changer)
    return sources


def snapshot_components(fs) -> list[tuple[object, dict[str, float]]]:
    """Snapshot the component totals of every device behind ``fs``."""
    return [(src, dict(src.component_totals)) for src in _sources_of(fs)]


def component_delta(
        before: list[tuple[object, dict[str, float]]]) -> dict[str, float]:
    """Seconds accrued per component since ``before`` was snapshotted.

    Components with the same name on different devices (disk transfer +
    tape transfer in one HSM read) merge, which is the right granularity
    for a per-request breakdown.
    """
    delta: dict[str, float] = {}
    for src, old in before:
        for key, value in src.component_totals.items():
            moved = value - old.get(key, 0.0)
            if moved != 0.0:
                delta[key] = delta.get(key, 0.0) + moved
    return delta


def _normalize(delta: dict[str, float], kind: str) -> dict[str, float]:
    """Fold raw component keys into request-level component names.

    Device writes observed during a *read* request (demand fault or
    prefetch) are HSM stage-in traffic → ``"stage"``; for a writeback
    request the ``write_`` prefix is redundant and is stripped.
    """
    out: dict[str, float] = {}
    for key, seconds in delta.items():
        if key.startswith("write_"):
            name = key[len("write_"):] if kind == "writeback" else "stage"
        else:
            name = key
        out[name] = out.get(name, 0.0) + seconds
    return out


def _close(parts: dict[str, float], queue_wait: float,
           latency: float) -> tuple[tuple[str, float], ...]:
    """Close the breakdown so ``fsum([queue_wait, *components])`` equals
    ``latency`` exactly; the correction lands in a ``"noise"`` component
    (kernel noise multiplier + any float daylight)."""
    parts = {name: seconds for name, seconds in parts.items()
             if seconds != 0.0}
    values = list(parts.values())
    residual = latency - math.fsum([queue_wait, *values])
    for _ in range(4):
        err = latency - math.fsum([queue_wait, *values, residual])
        if err == 0.0:
            break
        residual += err
    if residual != 0.0:
        parts["noise"] = residual
    return tuple(sorted(parts.items()))


# ---------------------------------------------------------------------------
# the record
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class LifecycleRecord:
    """One traced I/O request, from submission to completion.

    ``components`` is the closed service-time breakdown (sorted name →
    seconds pairs); by construction
    ``math.fsum([queue_wait, *dict(components).values()]) == latency``
    holds *exactly*.  ``page`` is the faulting file page (``-1`` for
    writebacks, which are addressed by device block, not file page).
    ``predicted_latency``/``predicted_queue`` are the SLED promise in
    force when the request was issued (None when no FSLEDS_GET preceded
    it).  For a block-layer-coalesced request, the record covers the
    *union* page run and ``merged_from`` lists the ``(inode, page,
    cluster)`` of every member request that was folded into it.

    Slotted, and slab-reused by :class:`LifecycleTracker` once its
    bounded deque starts evicting: a record that ages out of the window
    is renewed in place for the incoming request instead of allocating a
    fresh 16-field object per fault.  **Aliasing contract**: a reference
    held past the tracker's capacity window is therefore not stable — it
    will silently start describing a different request the moment the
    deque evicts it.  Any consumer that pins records beyond the current
    observer callback (exemplar reservoirs, SLO violation captures) must
    pin :meth:`snapshot`, never the live record.
    """

    id: int
    kind: str  # "fault" | "writeback" | "prefetch"
    task: str | None
    fs: str
    device_class: str
    inode: int
    page: int
    cluster: int
    nbytes: int
    submit_time: float
    start_time: float
    finish_time: float
    components: tuple[tuple[str, float], ...]
    predicted_latency: float | None = None
    predicted_queue: float | None = None
    merged_from: tuple[tuple[int, int, int], ...] = ()
    #: owning tenant of the task that issued the request (None when the
    #: issuing task carries no tenant — the single-tenant default)
    tenant: str | None = None

    @property
    def queue_wait(self) -> float:
        """Seconds spent waiting behind earlier requests."""
        return self.start_time - self.submit_time

    @property
    def service_time(self) -> float:
        """Seconds of actual device service."""
        return self.finish_time - self.start_time

    @property
    def latency(self) -> float:
        """End-to-end seconds: queue wait + service."""
        return self.finish_time - self.submit_time

    def snapshot(self) -> "LifecycleRecord":
        """A detached copy that outlives the tracker's slab window.

        The tracker renews evicted records in place (see the class
        docstring), so a held reference mutates under the holder once
        the bounded deque wraps.  The snapshot is a fresh record the
        tracker has never seen — it can never be renewed.  All fields
        are immutable scalars or tuples, so a shallow field copy is a
        deep copy.
        """
        return LifecycleRecord(
            id=self.id, kind=self.kind, task=self.task, fs=self.fs,
            device_class=self.device_class, inode=self.inode,
            page=self.page, cluster=self.cluster, nbytes=self.nbytes,
            submit_time=self.submit_time, start_time=self.start_time,
            finish_time=self.finish_time, components=self.components,
            predicted_latency=self.predicted_latency,
            predicted_queue=self.predicted_queue,
            merged_from=self.merged_from, tenant=self.tenant)

    def attribution(self) -> dict[str, float]:
        """The full accounting, queue wait included; its ``fsum`` equals
        :attr:`latency` exactly."""
        out = dict(self.components)
        if self.queue_wait != 0.0:
            out["queue"] = self.queue_wait
        return out

    def to_dict(self) -> dict:
        return {
            "id": self.id, "kind": self.kind, "task": self.task,
            "tenant": self.tenant,
            "fs": self.fs, "device_class": self.device_class,
            "inode": self.inode, "page": self.page,
            "cluster": self.cluster, "nbytes": self.nbytes,
            "submit_time": self.submit_time,
            "start_time": self.start_time,
            "finish_time": self.finish_time,
            "queue_wait": self.queue_wait,
            "latency": self.latency,
            "components": dict(self.components),
            "predicted_latency": self.predicted_latency,
            "predicted_queue": self.predicted_queue,
            "merged_from": [list(member) for member in self.merged_from],
        }


# ---------------------------------------------------------------------------
# the tracker
# ---------------------------------------------------------------------------

class LifecycleTracker:
    """Bounded store of lifecycle records plus breakdown histograms.

    Owned by :class:`~repro.obs.telemetry.Telemetry`; the kernel feeds
    it through ``on_fault``/``on_writeback``.  The stash carries
    component deltas captured inside event-engine service thunks (at
    dispatch time) over to the completion-side record builder — keyed by
    request identity, valid because inode ids are globally unique and a
    device queue dispatches serially.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.records: deque[LifecycleRecord] = deque(maxlen=capacity)
        self.dropped = 0
        #: callables invoked with each record as it closes (SLO trackers
        #: subscribe here); observers read the record and must not touch
        #: the clock or RNG — attachment keeps runs bit-identical
        self.observers: list = []
        self._next_id = 0
        self._stash: dict[tuple, dict[str, float]] = {}
        self._records_total = None
        if registry is not None:
            self._records_total = registry.counter(
                "lifecycle_records_total", "Traced I/O requests",
                labels=("cls", "kind"))
            self._request_seconds = registry.histogram(
                "lifecycle_request_seconds",
                "End-to-end virtual latency (queue wait + service) per "
                "traced request", labels=("cls",))
            self._component_seconds = registry.histogram(
                "lifecycle_component_seconds",
                "Virtual seconds attributed to one latency component of "
                "a traced request", labels=("cls", "component"))

    # -- dispatch-side capture handoff -----------------------------------

    def stash(self, key: tuple, components: dict[str, float]) -> None:
        self._stash[key] = components

    def pop_stash(self, key: tuple) -> dict[str, float] | None:
        return self._stash.pop(key, None)

    # -- recording --------------------------------------------------------

    def record(self, *, kind: str, task: str | None, fs: str,
               device_class: str, inode: int, page: int, cluster: int,
               nbytes: int, submit_time: float, start_time: float,
               finish_time: float, components: dict[str, float],
               predicted_latency: float | None = None,
               predicted_queue: float | None = None,
               merged_from: tuple = (),
               tenant: str | None = None) -> LifecycleRecord:
        queue_wait = start_time - submit_time
        latency = finish_time - submit_time
        closed = _close(_normalize(components, kind), queue_wait, latency)
        rec = None
        if len(self.records) == self.records.maxlen:
            self.dropped += 1
            # slab reuse: the evicted record leaves the contract window,
            # so renew its shell in place for the incoming request
            rec = self.records.popleft()
            renew = object.__setattr__
            renew(rec, "id", self._next_id)
            renew(rec, "kind", kind)
            renew(rec, "task", task)
            renew(rec, "fs", fs)
            renew(rec, "device_class", device_class)
            renew(rec, "inode", inode)
            renew(rec, "page", page)
            renew(rec, "cluster", cluster)
            renew(rec, "nbytes", nbytes)
            renew(rec, "submit_time", submit_time)
            renew(rec, "start_time", start_time)
            renew(rec, "finish_time", finish_time)
            renew(rec, "components", closed)
            renew(rec, "predicted_latency", predicted_latency)
            renew(rec, "predicted_queue", predicted_queue)
            renew(rec, "merged_from", merged_from)
            renew(rec, "tenant", tenant)
        else:
            rec = LifecycleRecord(
                id=self._next_id, kind=kind, task=task, fs=fs,
                device_class=device_class, inode=inode, page=page,
                cluster=cluster, nbytes=nbytes, submit_time=submit_time,
                start_time=start_time, finish_time=finish_time,
                components=closed, predicted_latency=predicted_latency,
                predicted_queue=predicted_queue, merged_from=merged_from,
                tenant=tenant)
        self._next_id += 1
        self.records.append(rec)
        if self._records_total is not None:
            cls = device_class
            self._records_total.labels(cls=cls, kind=kind).inc()
            self._request_seconds.labels(cls=cls).observe(latency)
            if queue_wait != 0.0:
                self._component_seconds.labels(
                    cls=cls, component="queue").observe(queue_wait)
            for name, seconds in closed:
                self._component_seconds.labels(
                    cls=cls, component=name).observe(seconds)
        for observer in self.observers:
            observer(rec)
        return rec

    # -- aggregation ------------------------------------------------------

    def breakdown(self) -> dict[str, dict[str, float]]:
        """Per device class: total seconds per component, queue included."""
        out: dict[str, dict[str, float]] = {}
        for rec in self.records:
            per_cls = out.setdefault(rec.device_class, {})
            for name, seconds in rec.attribution().items():
                per_cls[name] = per_cls.get(name, 0.0) + seconds
        return out

    def render_breakdown(self) -> str:
        lines = ["I/O latency attribution (per device class):"]
        table = self.breakdown()
        if not table:
            lines.append("  (no requests were traced)")
        for cls in sorted(table):
            parts = table[cls]
            total = math.fsum(parts.values())
            detail = ", ".join(
                f"{name} {human_time(seconds)}"
                for name, seconds in sorted(
                    parts.items(), key=lambda kv: -kv[1]))
            lines.append(f"  {cls:>8}: total {human_time(total):>10}  "
                         f"[{detail}]")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "recorded": len(self.records),
            "dropped": self.dropped,
            "breakdown": {cls: dict(sorted(parts.items()))
                          for cls, parts in
                          sorted(self.breakdown().items())},
            "records": [rec.to_dict() for rec in self.records],
        }

    def clear(self) -> None:
        self.records.clear()
        self._stash.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)


# ---------------------------------------------------------------------------
# critical-path analysis
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChainLink:
    """One request on the critical path.

    ``gap_after`` is the virtual time between this request's completion
    and the next chain event (CPU, cache hits, scheduler think time) —
    time no traced I/O was the reason the run hadn't finished.
    """

    record: LifecycleRecord
    gap_after: float


@dataclass
class CriticalPathReport:
    """The blocking chain determining a run's makespan.

    Built by a greedy backward walk from the end of the run: the latest
    finishing request not after the cursor joins the chain, the cursor
    jumps to its submit time, repeat.  ``cpu_head`` is whatever remains
    before the first chain request was submitted.  When every record
    lies inside ``[start, end]`` the telescoping identity

        makespan == cpu_head + Σ (link latency + link gap_after)

    holds by construction.
    """

    start: float
    end: float
    cpu_head: float
    links: list[ChainLink]

    @property
    def makespan(self) -> float:
        return self.end - self.start

    @property
    def io_time(self) -> float:
        return math.fsum(link.record.latency for link in self.links)

    @property
    def gap_time(self) -> float:
        return math.fsum(link.gap_after for link in self.links)

    def component_totals(self) -> dict[str, dict[str, float]]:
        """Chain seconds per (device class, component), queue included."""
        out: dict[str, dict[str, float]] = {}
        for link in self.links:
            per_cls = out.setdefault(link.record.device_class, {})
            for name, seconds in link.record.attribution().items():
                per_cls[name] = per_cls.get(name, 0.0) + seconds
        return out

    def what_if(self) -> list[tuple[str, str, float, float]]:
        """(class, component, chain seconds, fraction of makespan),
        largest first — an *upper bound* on the makespan saved were that
        component free, since removing time can re-route the chain."""
        rows = [(cls, name, seconds,
                 seconds / self.makespan if self.makespan > 0.0 else 0.0)
                for cls, parts in self.component_totals().items()
                for name, seconds in parts.items()]
        rows.sort(key=lambda row: (-row[2], row[0], row[1]))
        return rows

    def render(self, top: int = 8) -> str:
        lines = [
            f"critical path: {len(self.links)} request(s) over "
            f"{human_time(self.makespan)} makespan "
            f"(I/O {human_time(self.io_time)}, gaps/CPU "
            f"{human_time(self.gap_time)}, head "
            f"{human_time(self.cpu_head)})",
        ]
        for link in self.links:
            rec = link.record
            who = rec.task or "-"
            lines.append(
                f"  t={rec.submit_time:>12.6f}  {rec.kind:<9} "
                f"{rec.device_class:<6} {rec.fs}:{rec.inode}"
                f"{'' if rec.page < 0 else f':{rec.page}+{rec.cluster}'}"
                f"  task={who:<10} wait={human_time(rec.queue_wait):>9} "
                f"svc={human_time(rec.service_time):>9} "
                f"gap={human_time(link.gap_after):>9}")
        rows = self.what_if()
        if rows:
            lines.append("what-if (upper-bound makespan savings):")
            for cls, name, seconds, frac in rows[:top]:
                lines.append(f"  {cls:>8}/{name:<12} "
                             f"{human_time(seconds):>10}  ({frac:6.1%})")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "start": self.start, "end": self.end,
            "makespan": self.makespan, "cpu_head": self.cpu_head,
            "io_time": self.io_time, "gap_time": self.gap_time,
            "links": [{"record": link.record.to_dict(),
                       "gap_after": link.gap_after}
                      for link in self.links],
            "what_if": [{"class": cls, "component": name,
                         "seconds": seconds, "fraction": frac}
                        for cls, name, seconds, frac in self.what_if()],
        }


def critical_path(records: Iterable[LifecycleRecord], start: float,
                  end: float) -> CriticalPathReport:
    """Reconstruct the blocking chain of a run over ``[start, end]``.

    Greedy backward walk: from the cursor (initially ``end``), the
    traced request with the latest completion not after the cursor is
    the one the run was last waiting on; it joins the chain and the
    cursor jumps to its submit time (everything between submit and the
    previous cursor is accounted by that request plus the gap after it).
    Deterministic: ties break on latency, then record id.
    """
    if end < start:
        raise ValueError(f"need start <= end: {start}, {end}")
    pool = [rec for rec in records
            if rec.finish_time <= end and rec.finish_time > start]
    cursor = end
    chain: list[ChainLink] = []
    while True:
        best = None
        for rec in pool:
            if rec.finish_time > cursor:
                continue
            if best is None or (
                    (rec.finish_time, rec.latency, rec.id)
                    > (best.finish_time, best.latency, best.id)):
                best = rec
        if best is None:
            break
        chain.append(ChainLink(record=best, gap_after=cursor - best.finish_time))
        pool.remove(best)
        cursor = best.submit_time
        if cursor <= start:
            break
    chain.reverse()
    return CriticalPathReport(start=start, end=end,
                              cpu_head=max(0.0, cursor - start),
                              links=chain)
