"""Span-based tracing layered on the flat event tracer.

:mod:`repro.sim.trace` records *point* events; this module adds the
hierarchy: a ``read()`` syscall span contains the page-fault spans it
triggered, and each fault span contains the device accesses that serviced
it.  Spans carry virtual start/end times, so the whole tree is
deterministic and replays identically run to run.

Exports:

* :func:`chrome_trace` — the Chrome trace-event JSON format (a dict ready
  for ``json.dump``), loadable in Perfetto / ``chrome://tracing``.  Virtual
  seconds become microsecond ``ts``/``dur`` fields of complete (``"X"``)
  events; the parent/child structure is preserved both by timestamp
  containment and an explicit ``args.span``/``args.parent`` pair.
* a completed span can be forwarded into a legacy
  :class:`~repro.sim.trace.Tracer`, so existing timeline rendering and
  event-sequence assertions keep working on top of span data.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """One completed span of virtual time."""

    id: int
    parent_id: int | None
    kind: str            # "syscall" | "fault" | "device" | ...
    name: str            # e.g. "read", "disk", "ext2-disk"
    start: float         # virtual seconds
    end: float
    attrs: tuple = ()    # sorted (key, value) pairs

    @property
    def duration(self) -> float:
        return self.end - self.start

    def attr(self, key: str, default=None):
        for k, v in self.attrs:
            if k == key:
                return v
        return default


@dataclass
class OpenSpan:
    """A span that has begun but not ended (internal bookkeeping)."""

    id: int
    parent_id: int | None
    kind: str
    name: str
    start: float
    attrs: dict


class SpanRecorder:
    """Builds a span tree from begin/end calls and retroactive inserts.

    The recorder keeps a stack of open spans (the syscall currently
    executing); completed spans land in a bounded ring buffer, oldest
    dropped first, mirroring :class:`~repro.sim.trace.Tracer` semantics.
    """

    def __init__(self, capacity: int = 100_000, tracer=None) -> None:
        if capacity <= 0:
            raise ValueError(f"span capacity must be positive: {capacity}")
        self.capacity = capacity
        self.tracer = tracer
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._stack: list[OpenSpan] = []
        self._next_id = 1
        self.dropped = 0

    # -- recording -------------------------------------------------------

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def current(self) -> OpenSpan | None:
        return self._stack[-1] if self._stack else None

    def begin(self, kind: str, name: str, t: float, **attrs) -> OpenSpan:
        parent = self._stack[-1].id if self._stack else None
        span = OpenSpan(id=self._next_id, parent_id=parent, kind=kind,
                        name=name, start=t, attrs=attrs)
        self._next_id += 1
        self._stack.append(span)
        return span

    def end(self, open_span: OpenSpan, t: float) -> Span:
        """Close ``open_span`` (and, defensively, anything opened inside
        it that was never closed)."""
        while self._stack:
            top = self._stack.pop()
            if top is open_span:
                break
        return self._record(open_span, t)

    def add(self, kind: str, name: str, start: float, end: float,
            parent_id: int | None = None, **attrs) -> Span:
        """Record a complete span; parent defaults to the open span."""
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].id
        open_span = OpenSpan(id=self._next_id, parent_id=parent_id,
                             kind=kind, name=name, start=start, attrs=attrs)
        self._next_id += 1
        return self._record(open_span, end)

    def _record(self, open_span: OpenSpan, end: float) -> Span:
        if end < open_span.start:
            raise ValueError(
                f"span ends before it starts: {end} < {open_span.start}")
        span = Span(id=open_span.id, parent_id=open_span.parent_id,
                    kind=open_span.kind, name=open_span.name,
                    start=open_span.start, end=end,
                    attrs=tuple(sorted(open_span.attrs.items())))
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)
        if self.tracer is not None:
            self.tracer.emit(span.start, span.kind, span.name,
                             span.duration, **open_span.attrs)
        return span

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self, kind: str | None = None,
              name: str | None = None) -> list[Span]:
        return [s for s in self._spans
                if (kind is None or s.kind == kind)
                and (name is None or s.name == name)]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self._spans if s.parent_id == span.id]

    def clear(self) -> None:
        self._spans.clear()
        self._stack.clear()
        self.dropped = 0


def chrome_trace(spans: list[Span] | SpanRecorder) -> dict:
    """Chrome trace-event JSON for a span list (or a whole recorder).

    Events are sorted by (start, -duration) so Perfetto's containment-based
    nesting matches the recorded parent links even when parent and child
    share a start timestamp.
    """
    items = spans.spans() if isinstance(spans, SpanRecorder) else list(spans)
    items.sort(key=lambda s: (s.start, -s.duration, s.id))
    events = [{
        "name": span.name,
        "cat": span.kind,
        "ph": "X",
        "ts": span.start * 1e6,
        "dur": span.duration * 1e6,
        "pid": 0,
        "tid": 0,
        "args": dict(span.attrs) | {
            "span": span.id,
            **({"parent": span.parent_id}
               if span.parent_id is not None else {}),
        },
    } for span in items]
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual", "source": "repro.obs.spans"},
    }
