"""Latency forensics: exemplars, blame attribution, interference.

The lifecycle layer (:mod:`repro.obs.lifecycle`) answers *what* a
request's latency was made of — queue wait plus a closed component
breakdown.  This module answers *who caused it*:

* an :class:`ExemplarReservoir` pins full
  :class:`~repro.obs.lifecycle.LifecycleRecord` snapshots — the worst
  request per (class, tenant), the freshest request per latency-histogram
  bucket (OpenMetrics exemplar annotations read from here), the worst
  violator per SLO target, and the top-K slowest overall.  Snapshots,
  never live records: the tracker slab-recycles evicted records in
  place, so a pinned live reference would silently mutate
  (:meth:`~repro.obs.lifecycle.LifecycleRecord.snapshot`);
* a :class:`BlameEngine` decomposes each request's queue wait into an
  exactly-closed **blame vector** — ``math.fsum(blame.values())`` equals
  the record's latency bit-for-bit — by replaying the device's dispatch
  history over the request's wait window: plug/merge hold first, then
  who occupied the device while the request sat in the elevator
  (another tenant, the victim's own earlier requests, speculative
  prefetch, untenanted traffic), with any uncovered remainder named
  ``queue:untracked`` (device idle gaps, history-ring eviction);
* an :class:`InterferenceMatrix` folds blame vectors into per-device
  "tenant A imposed N seconds of queue delay on tenant B" cells whose
  per-victim row totals reconcile with the SLO tracker's per-tenant
  queue-wait pools;
* :func:`folded_blame` / :func:`folded_critical_path` export the same
  data as folded stacks (``frame;frame;frame <nanoseconds>``) for
  flamegraph tooling.

Everything here is observational.  Attached, it subscribes to streams
the timing model already feeds and reads provenance rings
(:meth:`~repro.block.scheduler.DeviceQueue.recent_dispatches`,
:meth:`~repro.block.merge.PlugQueue.recent_dispatched_holds`) that are
recorded whether or not anyone reads them — no clock advances, no RNG
draws, runs are bit-identical with forensics attached or detached
(property-tested).
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left
from dataclasses import dataclass, field

from repro.obs.lifecycle import LifecycleRecord, critical_path
from repro.obs.metrics import LATENCY_BUCKETS
from repro.sim.units import human_time

__all__ = [
    "BlameEngine",
    "ExemplarReservoir",
    "ForensicsReport",
    "InterferenceMatrix",
    "LatencyForensics",
    "folded_blame",
    "folded_critical_path",
]

#: blame keys that partition the queue-wait window (everything else in a
#: blame vector is an own-service component carried over from the record)
_PLUG = "plug_hold"
_UNTRACKED = "queue:untracked"


def _aggressor_of(key: str) -> str | None:
    """Interference-matrix column for one blame key (None: own service)."""
    if key.startswith("queue:tenant:"):
        return key[len("queue:tenant:"):]
    if key == "queue:self":
        return "self"
    if key == "queue:prefetch":
        return "prefetch"
    if key == "queue:other":
        return "other"
    if key == _UNTRACKED:
        return "untracked"
    if key == _PLUG:
        return "plug"
    return None


# ---------------------------------------------------------------------------
# exemplar capture
# ---------------------------------------------------------------------------

class ExemplarReservoir:
    """Bounded store of lifecycle snapshots worth keeping whole.

    Aggregates tell you the p99 moved; an exemplar is the actual request
    behind it, with enough causal context (task, tenant, inode, page
    run, closed breakdown) to run blame attribution after the fact.
    Three keyed families plus a top-K:

    * ``(device class, tenant)`` → the worst-latency request seen;
    * ``(device class, histogram bucket le)`` → the *freshest* request
      that landed in that latency bucket (OpenMetrics exemplars favour
      recency); buckets follow the registry's latency histogram bounds;
    * SLO target name → the worst request that violated it (fed by
      :attr:`~repro.obs.slo.SloTracker.on_violation`);
    * the ``top_k`` slowest requests overall.

    Every entry is a :meth:`~LifecycleRecord.snapshot`, never the live
    record — see the slab-aliasing contract on the record class.
    """

    def __init__(self, buckets=LATENCY_BUCKETS, top_k: int = 32) -> None:
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1: {top_k}")
        self.buckets = tuple(buckets)
        self.top_k = top_k
        #: (cls, tenant) -> worst-latency snapshot
        self.by_key: dict[tuple[str, str | None], LifecycleRecord] = {}
        #: (cls, bucket upper bound) -> freshest snapshot in that bucket
        self.by_bucket: dict[tuple[str, float], LifecycleRecord] = {}
        #: SLO target name -> worst violating snapshot
        self.pinned: dict[str, LifecycleRecord] = {}
        self.seen = 0
        self.violations = 0
        #: min-heap of (latency, id, snapshot) holding the top_k slowest
        self._top: list[tuple[float, int, LifecycleRecord]] = []

    def bucket_of(self, latency: float) -> float:
        """Histogram bucket upper bound ``latency`` falls in (+inf top)."""
        idx = bisect_left(self.buckets, latency)
        return self.buckets[idx] if idx < len(self.buckets) else math.inf

    # -- capture ----------------------------------------------------------

    def observe(self, record: LifecycleRecord) -> None:
        """Lifecycle-stream observer: keep what is worth keeping."""
        self.seen += 1
        snap = None
        key = (record.device_class, record.tenant)
        worst = self.by_key.get(key)
        if worst is None or record.latency > worst.latency:
            snap = record.snapshot()
            self.by_key[key] = snap
        bucket = (record.device_class, self.bucket_of(record.latency))
        snap = snap if snap is not None else record.snapshot()
        self.by_bucket[bucket] = snap
        entry = (record.latency, record.id, snap)
        if len(self._top) < self.top_k:
            heapq.heappush(self._top, entry)
        elif entry > self._top[0]:
            heapq.heapreplace(self._top, entry)

    def pin(self, record: LifecycleRecord,
            violated: list[str]) -> None:
        """SLO violation hook: pin the worst exemplar per target."""
        self.violations += 1
        snap = None
        for name in violated:
            cur = self.pinned.get(name)
            if cur is None or record.latency > cur.latency:
                snap = snap if snap is not None else record.snapshot()
                self.pinned[name] = snap

    # -- retrieval --------------------------------------------------------

    def top(self, k: int | None = None) -> list[LifecycleRecord]:
        """The slowest requests captured, worst first."""
        ordered = sorted(self._top, key=lambda e: (-e[0], e[1]))
        if k is not None:
            ordered = ordered[:k]
        return [snap for _, _, snap in ordered]

    def bucket_exemplar(self, cls: str,
                        le: float) -> LifecycleRecord | None:
        """Freshest exemplar for one histogram bucket of one class
        (what the OpenMetrics exporter annotates bucket samples with)."""
        return self.by_bucket.get((cls, le))

    def __len__(self) -> int:
        return len(self._top)

    def to_dict(self) -> dict:
        return {
            "seen": self.seen,
            "violations": self.violations,
            "kept": len(self._top),
            "by_class_tenant": {
                f"{cls}/{tenant if tenant is not None else '-'}":
                    rec.to_dict()
                for (cls, tenant), rec in sorted(
                    self.by_key.items(),
                    key=lambda kv: (kv[0][0], kv[0][1] or ""))},
            "violation_exemplars": {
                name: rec.to_dict()
                for name, rec in sorted(self.pinned.items())},
            "top": [rec.to_dict() for rec in self.top()],
        }


# ---------------------------------------------------------------------------
# blame attribution
# ---------------------------------------------------------------------------

class BlameEngine:
    """Decomposes queue wait into who-held-the-device blame.

    Construction snapshots the engine's forensic provenance — every
    device queue's dispatch-history ring and every plug's hold ring —
    so blame stays stable while reports iterate.  A record's wait
    window ``[submit_time, start_time)`` is partitioned:

    1. the plug/merge hold ``[submit_time, unplug_time)``, looked up by
       the record's identity key (for a coalesced union the hold record
       carries the union run under the primary's arrival, which is
       exactly the lifecycle record's identity) → ``plug_hold``;
    2. dispatch-history service intervals overlapping the elevator
       window ``[unplug_time, start_time)`` — a device queue dispatches
       serially, so intervals never overlap and the record's own
       dispatch (starting exactly at ``start_time``) is excluded by
       construction → ``queue:tenant:<name>`` / ``queue:self`` /
       ``queue:prefetch`` / ``queue:other``;
    3. whatever remains (device idle while the elevator chose someone
       else's direction, or history-ring eviction) → ``queue:untracked``.

    Own-service components carry over from the record's closed
    breakdown, and the whole vector is re-closed the same way the
    lifecycle layer closes records: ``math.fsum(blame.values())``
    equals ``record.latency`` **exactly** (property-tested).
    """

    def __init__(self, kernel, engine=None) -> None:
        if engine is None:
            engine = kernel.engine
        self.kernel = kernel
        self.engine = engine
        self._fs_device: dict[str, str] = {}
        self._histories: dict[str, tuple] = {}
        self._holds: dict[tuple, object] = {}
        self.refresh()

    def refresh(self) -> "BlameEngine":
        """Re-snapshot provenance rings and the mount table."""
        self._fs_device = {fs.name: fs.device.name
                           for _, fs in self.kernel.mounts()}
        if self.engine is not None:
            self._histories = self.engine.dispatch_histories()
            self._holds = self.engine.hold_histories()
        return self

    def device_of(self, fs_name: str) -> str | None:
        """Queue device name behind mount ``fs_name`` (None: unmounted)."""
        return self._fs_device.get(fs_name)

    # -- the decomposition -------------------------------------------------

    def blame(self, record: LifecycleRecord) -> dict[str, float]:
        """The exactly-closed blame vector for one record."""
        parts: dict[str, float] = {}
        for name, seconds in record.components:
            parts[name] = parts.get(name, 0.0) + seconds
        submit, start = record.submit_time, record.start_time
        window = submit
        hold = self._holds.get((record.fs, record.inode, record.page,
                                record.cluster, record.submit_time))
        if hold is not None:
            held = max(0.0, min(hold.unplug_time, start) - submit)
            if held > 0.0:
                parts[_PLUG] = held
            window = min(max(submit, hold.unplug_time), start)
        if start > window:
            device = self._fs_device.get(record.fs)
            for disp in self._histories.get(device, ()):
                lo = max(disp.start, window)
                hi = min(disp.finish, start)
                if hi <= lo:
                    continue
                key = self._queue_key(disp, record)
                parts[key] = parts.get(key, 0.0) + (hi - lo)
        return self._close(parts, record.latency)

    @staticmethod
    def _queue_key(disp, record: LifecycleRecord) -> str:
        if disp.kind == "prefetch":
            return "queue:prefetch"
        if disp.tenant is None:
            return "queue:other"
        if disp.tenant == record.tenant:
            return "queue:self"
        return f"queue:tenant:{disp.tenant}"

    @staticmethod
    def _close(parts: dict[str, float],
               latency: float) -> dict[str, float]:
        """Close the vector so its ``fsum`` equals ``latency`` exactly;
        the correction lands in ``queue:untracked`` (same iterative
        residual scheme as the lifecycle record closure — ``fsum`` is
        correctly rounded, so insertion order is irrelevant)."""
        parts = {name: seconds for name, seconds in parts.items()
                 if seconds != 0.0}
        values = list(parts.values())
        residual = latency - math.fsum(values)
        err = latency - math.fsum([*values, residual])
        for _ in range(4):
            if err == 0.0:
                break
            residual += err
            err = latency - math.fsum([*values, residual])
        # ``residual += err`` oscillates when the exact sum sits exactly
        # halfway between two doubles (round-half-even flips the side
        # each pass); a one-ulp nudge of the tiny residual breaks the
        # tie without visibly moving the vector
        for _ in range(8):
            if err == 0.0:
                break
            residual = math.nextafter(
                residual, math.inf if err > 0.0 else -math.inf)
            err = latency - math.fsum([*values, residual])
        if residual != 0.0:
            parts[_UNTRACKED] = residual
        return parts

    # -- the waterfall -----------------------------------------------------

    def waterfall(self, record: LifecycleRecord) -> dict:
        """One request's timeline, blame attached: ordered spans from
        submission to completion — plug hold, each occupancy interval
        (who held the device, under which label), then service."""
        spans: list[dict] = []
        submit, start = record.submit_time, record.start_time
        window = submit
        hold = self._holds.get((record.fs, record.inode, record.page,
                                record.cluster, record.submit_time))
        if hold is not None:
            end = min(max(submit, hold.unplug_time), start)
            if end > submit:
                spans.append({"phase": "plug", "who": _PLUG,
                              "t0": submit, "t1": end,
                              "detail": f"coalesced x{hold.members}"})
            window = end
        if start > window:
            device = self._fs_device.get(record.fs)
            for disp in self._histories.get(device, ()):
                lo = max(disp.start, window)
                hi = min(disp.finish, start)
                if hi <= lo:
                    continue
                spans.append({"phase": "queue",
                              "who": self._queue_key(disp, record),
                              "t0": lo, "t1": hi,
                              "detail": disp.label})
        spans.sort(key=lambda s: (s["t0"], s["t1"]))
        spans.append({"phase": "service", "who": "service",
                      "t0": start, "t1": record.finish_time,
                      "detail": ", ".join(
                          f"{name} {human_time(seconds)}"
                          for name, seconds in record.components)})
        return {"record": record.to_dict(),
                "blame": self.blame(record),
                "spans": spans}


# ---------------------------------------------------------------------------
# the interference matrix
# ---------------------------------------------------------------------------

class InterferenceMatrix:
    """Per-device queue-delay imposition: aggressor → victim seconds.

    Cell ``(device, victim, aggressor)`` accumulates the queue-wait
    seconds requests of ``victim`` spent behind ``aggressor`` on
    ``device``.  Aggressor columns are tenant names plus the pseudo
    columns ``self`` (the victim's own earlier requests), ``prefetch``
    (speculation), ``other`` (untenanted traffic: writebacks, plain
    tasks), ``plug`` (merge/plug hold) and ``untracked`` (idle gaps /
    evicted history).  Keeping the pseudo columns makes the row
    identity hold: a victim's row total across devices is exactly the
    ``fsum`` of its records' queue waits, which reconciles with the SLO
    tracker's per-tenant queue-wait pools.

    Cells store the raw addends and ``fsum`` on read, so totals close
    as tightly as the blame vectors they came from.
    """

    def __init__(self) -> None:
        self._cells: dict[tuple[str, str, str], list[float]] = {}
        self.records = 0

    def add(self, record: LifecycleRecord, blame: dict[str, float],
            device: str | None) -> None:
        """Fold one blame vector in (service components are skipped)."""
        self.records += 1
        victim = record.tenant if record.tenant is not None else "-"
        dev = device if device is not None else record.device_class
        for key, seconds in blame.items():
            aggressor = _aggressor_of(key)
            if aggressor is None:
                continue
            self._cells.setdefault((dev, victim, aggressor),
                                   []).append(seconds)

    # -- reads ------------------------------------------------------------

    def devices(self) -> list[str]:
        return sorted({dev for dev, _, _ in self._cells})

    def cell(self, device: str, victim: str, aggressor: str) -> float:
        return math.fsum(self._cells.get((device, victim, aggressor), ()))

    def matrix(self, device: str) -> dict[str, dict[str, float]]:
        """``{victim: {aggressor: seconds}}`` for one device."""
        out: dict[str, dict[str, float]] = {}
        for (dev, victim, aggressor), addends in self._cells.items():
            if dev != device:
                continue
            out.setdefault(victim, {})[aggressor] = math.fsum(addends)
        return {victim: dict(sorted(cols.items()))
                for victim, cols in sorted(out.items())}

    def row_totals(self) -> dict[str, float]:
        """Per-victim queue-delay seconds across devices and aggressors
        — the number to reconcile against the SLO tracker's
        :meth:`~repro.obs.slo.SloTracker.tenant_queue_waits`."""
        rows: dict[str, list[float]] = {}
        for (_, victim, _), addends in self._cells.items():
            rows.setdefault(victim, []).extend(addends)
        return {victim: math.fsum(addends)
                for victim, addends in sorted(rows.items())}

    def imposed_totals(self) -> dict[str, float]:
        """Per-aggressor seconds imposed on others (``self`` excluded)."""
        cols: dict[str, list[float]] = {}
        for (_, victim, aggressor), addends in self._cells.items():
            if aggressor in (victim, "self"):
                continue
            cols.setdefault(aggressor, []).extend(addends)
        return {aggressor: math.fsum(addends)
                for aggressor, addends in sorted(cols.items())}

    def render(self) -> str:
        lines = ["Cross-tenant interference (queue delay imposed, "
                 "victim row x aggressor column):"]
        if not self._cells:
            lines.append("  (no queue delay was attributed)")
        for device in self.devices():
            table = self.matrix(device)
            aggressors = sorted({a for cols in table.values()
                                 for a in cols})
            header = "  ".join(f"{a:>12}" for a in aggressors)
            lines.append(f"  [{device}]")
            lines.append(f"    {'victim':>12}  {header}  {'total':>12}")
            for victim, cols in table.items():
                cells = "  ".join(
                    f"{human_time(cols.get(a, 0.0)):>12}"
                    for a in aggressors)
                total = math.fsum(cols.values())
                lines.append(f"    {victim:>12}  {cells}  "
                             f"{human_time(total):>12}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "records": self.records,
            "devices": {device: self.matrix(device)
                        for device in self.devices()},
            "row_totals": self.row_totals(),
            "imposed_totals": self.imposed_totals(),
        }


# ---------------------------------------------------------------------------
# folded-stack export
# ---------------------------------------------------------------------------

def _fold_lines(weights: dict[str, float]) -> list[str]:
    """``frame;frame value`` lines, nanosecond-weighted, zeros dropped."""
    out = []
    for stack in sorted(weights):
        nanos = int(round(weights[stack] * 1e9))
        if nanos > 0:
            out.append(f"{stack} {nanos}")
    return out


def folded_blame(entries) -> list[str]:
    """Blame vectors as folded stacks for flamegraph tooling.

    ``entries`` iterates ``(record, blame, device)`` triples; each
    blame key becomes a leaf frame under
    ``tenant;device;kind``.  Values are integer nanoseconds (the folded
    format wants integers; virtual-nanosecond resolution keeps sub-ms
    components visible).
    """
    weights: dict[str, float] = {}
    for record, blame, device in entries:
        victim = record.tenant if record.tenant is not None else "-"
        dev = device if device is not None else record.device_class
        base = f"{victim};{dev};{record.kind}"
        for key, seconds in blame.items():
            stack = f"{base};{key}"
            weights[stack] = weights.get(stack, 0.0) + seconds
    return _fold_lines(weights)


def folded_critical_path(report) -> list[str]:
    """A :class:`~repro.obs.lifecycle.CriticalPathReport` as folded
    stacks: each chain link's closed attribution under
    ``critical;task;class``, plus the head/gap frames, so the flame
    width is the makespan."""
    weights: dict[str, float] = {}
    if report.cpu_head > 0.0:
        weights["critical;cpu;head"] = report.cpu_head
    for link in report.links:
        rec = link.record
        base = f"critical;{rec.task or '-'};{rec.device_class}"
        for name, seconds in rec.attribution().items():
            stack = f"{base};{name}"
            weights[stack] = weights.get(stack, 0.0) + seconds
        if link.gap_after > 0.0:
            stack = f"critical;{rec.task or '-'};gap"
            weights[stack] = weights.get(stack, 0.0) + link.gap_after
    return _fold_lines(weights)


# ---------------------------------------------------------------------------
# the facade
# ---------------------------------------------------------------------------

@dataclass
class ForensicsReport:
    """One full forensic analysis over a set of records."""

    analyzed: int
    waterfalls: list[dict]
    matrix: InterferenceMatrix
    folded: list[str] = field(default_factory=list)
    exemplars: ExemplarReservoir | None = None

    def render(self, width: int = 64) -> str:
        lines = [f"latency forensics over {self.analyzed} request(s):"]
        for wf in self.waterfalls:
            rec = wf["record"]
            where = f"{rec['fs']}:{rec['inode']}"
            if rec["page"] >= 0:
                where += f":{rec['page']}+{rec['cluster']}"
            lines.append(
                f"  #{rec['id']} {rec['kind']} {where}"
                f" tenant={rec['tenant'] or '-'}"
                f" latency={human_time(rec['latency'])}"
                f" (wait {human_time(rec['queue_wait'])})")
            t0 = rec["submit_time"]
            span_total = max(rec["latency"], 1e-12)
            for span in wf["spans"]:
                frac0 = (span["t0"] - t0) / span_total
                frac1 = (span["t1"] - t0) / span_total
                lo = int(frac0 * width)
                hi = max(lo + 1, int(frac1 * width))
                bar = " " * lo + "█" * (hi - lo)
                lines.append(
                    f"    |{bar:<{width}}| {span['who']:<20} "
                    f"{human_time(span['t1'] - span['t0']):>9}  "
                    f"{span['detail']}")
            top = sorted(wf["blame"].items(), key=lambda kv: -kv[1])[:6]
            detail = ", ".join(f"{k} {human_time(v)}" for k, v in top)
            lines.append(f"    blame: {detail}")
        lines.append(self.matrix.render())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        out = {
            "analyzed": self.analyzed,
            "waterfalls": self.waterfalls,
            "interference": self.matrix.to_dict(),
            "folded": list(self.folded),
        }
        if self.exemplars is not None:
            out["exemplars"] = self.exemplars.to_dict()
        return out


class LatencyForensics:
    """The attachable forensic layer over one kernel + engine.

    Attach to a :class:`~repro.obs.telemetry.Telemetry` (subscribes the
    exemplar reservoir to the lifecycle record stream) and optionally an
    :class:`~repro.obs.slo.SloTracker` (subscribes violation pinning);
    after — or during — a run, :meth:`analyze` snapshots the engine's
    provenance rings and produces blame vectors, waterfalls, the
    interference matrix and folded stacks.  Attachment changes no
    virtual time: runs are bit-identical with or without it.
    """

    def __init__(self, kernel, engine=None, top_k: int = 32,
                 buckets=LATENCY_BUCKETS) -> None:
        if engine is None:
            engine = kernel.engine
        self.kernel = kernel
        self.engine = engine
        self.reservoir = ExemplarReservoir(buckets=buckets, top_k=top_k)
        self._telemetry = None
        self._slo = None

    # -- lifecycle ---------------------------------------------------------

    def attach(self, telemetry, slo=None) -> "LatencyForensics":
        if self._telemetry is not None:
            raise ValueError("forensics layer is already attached")
        telemetry.lifecycle.observers.append(self.reservoir.observe)
        self._telemetry = telemetry
        if slo is not None:
            slo.on_violation.append(self.reservoir.pin)
            self._slo = slo
        return self

    def detach(self) -> None:
        if self._telemetry is not None:
            try:
                self._telemetry.lifecycle.observers.remove(
                    self.reservoir.observe)
            except ValueError:
                pass
            self._telemetry = None
        if self._slo is not None:
            try:
                self._slo.on_violation.remove(self.reservoir.pin)
            except ValueError:
                pass
            self._slo = None

    # -- analysis ----------------------------------------------------------

    def blame_engine(self) -> BlameEngine:
        """A fresh :class:`BlameEngine` over current provenance."""
        return BlameEngine(self.kernel, self.engine)

    def analyze(self, records=None, top: int = 10) -> ForensicsReport:
        """Blame every record, fold the matrix, waterfall the top-K.

        ``records`` defaults to the attached telemetry's full lifecycle
        window.  The matrix covers *every* analyzed record (that is
        what makes its row totals reconcile with the SLO queue-wait
        pools); waterfalls cover the ``top`` slowest.
        """
        if records is None:
            if self._telemetry is None:
                raise ValueError(
                    "no records given and no telemetry attached")
            records = list(self._telemetry.lifecycle.records)
        else:
            records = list(records)
        engine = self.blame_engine()
        matrix = InterferenceMatrix()
        entries = []
        for rec in records:
            blame = engine.blame(rec)
            device = engine.device_of(rec.fs)
            matrix.add(rec, blame, device)
            entries.append((rec, blame, device))
        slowest = sorted(records,
                         key=lambda r: (-r.latency, r.id))[:top]
        waterfalls = [engine.waterfall(rec) for rec in slowest]
        return ForensicsReport(
            analyzed=len(records), waterfalls=waterfalls, matrix=matrix,
            folded=folded_blame(entries), exemplars=self.reservoir)

    def critical_path_folded(self, start: float,
                             end: float) -> list[str]:
        """Folded stacks of the run's critical path over ``[start, end]``
        (records from the attached telemetry)."""
        if self._telemetry is None:
            raise ValueError("no telemetry attached")
        report = critical_path(self._telemetry.lifecycle.records,
                               start, end)
        return folded_critical_path(report)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "attached" if self._telemetry is not None else "detached"
        return (f"<LatencyForensics {state} seen={self.reservoir.seen} "
                f"pinned={len(self.reservoir.pinned)}>")
