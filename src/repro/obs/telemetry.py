"""The telemetry facade: one object wiring metrics + spans + accuracy.

A :class:`Telemetry` instance bundles the three observability pillars —
the :class:`~repro.obs.metrics.MetricsRegistry`, the
:class:`~repro.obs.spans.SpanRecorder` and the
:class:`~repro.obs.accuracy.SledAccuracyTracker` — and knows how to attach
itself to a simulated kernel::

    telemetry = Telemetry()
    telemetry.attach(machine.kernel)
    with machine.kernel.process() as run:
        wc(machine.kernel, "/mnt/ext2/big.txt", use_sleds=True)
    telemetry.detach()
    print(telemetry.accuracy.report().render())
    print(telemetry.render_prometheus())

Attachment installs observers on the page cache and on every reachable
device, and sets ``kernel.telemetry`` so the kernel's inline hooks fire.
Everything recorded is *derived from virtual time*: telemetry never
advances the clock, never draws from the RNG streams, and therefore never
changes a single simulated timing — runs are bit-identical with telemetry
attached, detached, or never constructed (asserted by tests).
"""

from __future__ import annotations

from repro.obs.accuracy import SledAccuracyTracker
from repro.obs.lifecycle import LifecycleTracker
from repro.obs.metrics import DEPTH_BUCKETS, MetricsRegistry
from repro.obs.spans import SpanRecorder, chrome_trace
from repro.sim.units import PAGE_SIZE


class Telemetry:
    """Metrics registry + span recorder + SLED accuracy tracker +
    per-request lifecycle tracker."""

    def __init__(self, span_capacity: int = 100_000, tracer=None,
                 namespace: str = "repro") -> None:
        self.registry = MetricsRegistry(namespace=namespace)
        self.spans = SpanRecorder(capacity=span_capacity, tracer=tracer)
        self.accuracy = SledAccuracyTracker(registry=self.registry)
        self.lifecycle = LifecycleTracker(registry=self.registry)
        #: optional time-series recorder (repro.obs.timeseries); None =
        #: off.  Ticked from the hooks below with the virtual time each
        #: hook already carries — sampling never reads the clock itself.
        self.timeseries = None
        self._kernel = None
        self._policy_name = "none"
        #: readahead-inserted pages that have not been read yet
        self._pending_ra: set = set()
        #: device accesses awaiting a parent span: (t, name, dur, bytes, op)
        self._pending_dev: list[tuple[float, str, float, int, str]] = []
        self._observed_devices: list = []

        r = self.registry
        self.syscalls = r.counter(
            "syscalls_total", "Syscalls served", labels=("name",))
        self.syscall_latency = r.histogram(
            "syscall_latency_seconds", "Virtual latency per syscall",
            labels=("name",))
        self.faults = r.counter(
            "faults_total", "Hard page faults", labels=("device",))
        self.fault_latency = r.histogram(
            "fault_latency_seconds", "Virtual latency per hard fault",
            labels=("device",))
        self.fault_cluster = r.histogram(
            "fault_cluster_pages", "Pages fetched per hard fault",
            labels=("device",), buckets=DEPTH_BUCKETS)
        self.device_access = r.counter(
            "device_access_total", "Accesses per device",
            labels=("device", "op"))
        self.device_bytes = r.counter(
            "device_bytes_total", "Bytes moved per device",
            labels=("device", "op"))
        self.device_latency = r.histogram(
            "device_access_seconds", "Virtual latency per device access",
            labels=("device",))
        self.device_busy = r.gauge(
            "device_busy_seconds", "Cumulative busy time per device",
            labels=("device",))
        self.queue_depth = r.histogram(
            "device_queue_depth", "Requests per writeback batch",
            labels=("device",), buckets=DEPTH_BUCKETS)
        self.queue_depth_now = r.gauge(
            "device_queue_depth_now",
            "Outstanding requests on the device's event queue",
            labels=("device",))
        self.queue_wait = r.histogram(
            "device_queue_wait_seconds",
            "Virtual seconds a request waited in queue before service",
            labels=("device",))
        self.cache_hits = r.counter(
            "cache_hits_total", "Page-cache hits", labels=("policy",))
        self.cache_misses = r.counter(
            "cache_misses_total", "Page-cache misses", labels=("policy",))
        self.cache_evictions = r.counter(
            "cache_evictions_total", "Page-cache evictions",
            labels=("policy", "forced"))
        self.cache_insertions = r.counter(
            "cache_insertions_total", "Page-cache insertions",
            labels=("policy",))
        self.cache_resident = r.gauge(
            "cache_resident_pages", "Pages currently resident")
        self.readahead_issued = r.counter(
            "readahead_issued_pages_total",
            "Pages speculatively fetched beyond the demand page")
        self.readahead_used = r.counter(
            "readahead_used_pages_total",
            "Speculatively fetched pages later hit by a read")
        self.readahead_window = r.gauge(
            "readahead_window_pages", "Readahead window at the last fault")
        self.metadata_latency = r.histogram(
            "metadata_latency_seconds",
            "Virtual latency of metadata operations (stat/lookup)",
            labels=("fs",))
        self.remote_metadata_ops = r.gauge(
            "remote_metadata_ops", "Metadata round trips per remote mount",
            labels=("fs",))
        self.sleds_requests = r.counter(
            "sleds_get_total", "FSLEDS_GET requests served")
        self.sleds_vector_sleds = r.histogram(
            "sleds_vector_sleds", "SLEDs per returned vector",
            buckets=DEPTH_BUCKETS)
        self.migration_seconds = r.histogram(
            "hsm_migration_seconds", "Virtual seconds per HSM migration")
        self.migrated_files = r.counter(
            "hsm_migrated_files_total", "Files migrated to tape")
        self.merged_requests = r.counter(
            "block_merged_requests_total",
            "Requests eliminated by block-layer coalescing",
            labels=("device",))
        self.merge_members = r.histogram(
            "block_merge_members", "Member requests per merged dispatch",
            labels=("device",), buckets=DEPTH_BUCKETS)
        self.merged_bytes = r.counter(
            "block_merged_bytes_total",
            "Union bytes submitted by merged requests", labels=("device",))
        self.plug_latency = r.histogram(
            "block_plug_latency_seconds",
            "Virtual seconds a request spent held in the plug",
            labels=("device",))
        self.plug_batch = r.histogram(
            "block_plug_batch_requests", "Requests per plug flush",
            labels=("device",), buckets=DEPTH_BUCKETS)
        self.prefetch_issued = r.counter(
            "prefetch_issued_pages_total",
            "Pages speculatively fetched by the SLED prefetcher")
        self.prefetch_used = r.counter(
            "prefetch_used_pages_total",
            "Prefetched pages later hit by a read")
        self.prefetch_cancelled = r.counter(
            "prefetch_cancelled_requests_total",
            "Prefetch requests withdrawn before dispatch")
        self.virtual_time = r.gauge(
            "virtual_time_seconds", "Virtual clock per charge category",
            labels=("category",))
        self.kernel_counter = r.gauge(
            "kernel_counter", "Cumulative kernel counters",
            labels=("name",))
        self.kernel_counter_tenant = r.gauge(
            "kernel_counter_tenant",
            "Cumulative per-tenant kernel counters",
            labels=("name", "tenant"))

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------

    def attach(self, kernel) -> None:
        """Install this telemetry on ``kernel`` (attach after mounting)."""
        if self._kernel is not None:
            raise ValueError("telemetry is already attached to a kernel")
        self._kernel = kernel
        kernel.telemetry = self
        self._policy_name = getattr(
            kernel.page_cache.policy, "name",
            type(kernel.page_cache.policy).__name__.lower())
        kernel.page_cache.observer = self
        seen: set[int] = set()
        for device in self._reachable_devices(kernel):
            if id(device) in seen:
                continue
            seen.add(id(device))
            device.observer = self
            self._observed_devices.append(device)

    def detach(self) -> None:
        """Stop observing; recorded data stays readable."""
        kernel = self._kernel
        if kernel is None:
            return
        kernel.telemetry = None
        kernel.page_cache.observer = None
        for device in self._observed_devices:
            device.observer = None
        self._observed_devices.clear()
        self._pending_dev.clear()
        self._kernel = None

    @staticmethod
    def _reachable_devices(kernel):
        yield kernel.memory
        for _, fs in kernel.mounts():
            yield from fs.observable_devices()

    # ------------------------------------------------------------------
    # time-series sampling
    # ------------------------------------------------------------------

    def enable_timeseries(self, interval: float = 0.005,
                          capacity: int = 4096,
                          families: tuple[str, ...] | None = None,
                          sample_buckets: bool = False,
                          exemplars=None):
        """Start sampling the registry every ``interval`` virtual seconds
        (see :mod:`repro.obs.timeseries`); returns the recorder.
        ``sample_buckets`` adds per-histogram bucket rows so the
        OpenMetrics export emits real histogram families; ``exemplars``
        (an :class:`~repro.obs.forensics.ExemplarReservoir`) annotates
        those bucket lines with captured exemplars."""
        from repro.obs.timeseries import TimeSeriesRecorder
        if self.timeseries is not None:
            raise ValueError("a time-series recorder is already enabled")
        self.timeseries = TimeSeriesRecorder(
            self.registry, interval=interval, capacity=capacity,
            families=families, snapshot_hook=self.snapshot,
            sample_buckets=sample_buckets, exemplars=exemplars)
        return self.timeseries

    def disable_timeseries(self) -> None:
        """Stop sampling; recorded samples stay readable."""
        self.timeseries = None

    def _tick(self, now: float) -> None:
        timeseries = self.timeseries
        if timeseries is not None:
            timeseries.tick(now)

    # ------------------------------------------------------------------
    # kernel hooks (called only while attached)
    # ------------------------------------------------------------------

    def syscall_begin(self, name: str, t: float):
        return self.spans.begin("syscall", name, t)

    def syscall_end(self, open_span, t: float) -> None:
        self._drain_pending(parent_id=open_span.id, floor=open_span.start)
        self.spans.end(open_span, t)
        self.syscalls.labels(name=open_span.name).inc()
        self.syscall_latency.labels(name=open_span.name).observe(
            t - open_span.start)
        self._tick(t)

    def on_fault(self, device, inode_id: int, page: int, cluster: int,
                 seconds: float, now: float, window: int,
                 fs=None, completion=None, components=None,
                 _handles=None) -> None:
        cls = device.time_category
        if _handles is None:
            # per-call label resolution; TelemetryBatch.flush memoises
            # these three children per device class and passes them in
            _handles = (self.faults.labels(device=cls),
                        self.fault_latency.labels(device=cls),
                        self.fault_cluster.labels(device=cls))
        fault_counter, latency_hist, cluster_hist = _handles
        fault_counter.inc()
        latency_hist.observe(seconds)
        cluster_hist.observe(cluster)
        self.readahead_window.set(window)
        if cluster > 1:
            self.readahead_issued.inc(cluster - 1)
        self._tick(now)
        # span attrs keep the *request's own* page run; the lifecycle
        # record below may widen to the merged union
        span_attrs: dict = {"page": page, "cluster": cluster,
                            "inode": inode_id}
        queue_wait = completion.queue_wait if completion is not None else 0.0
        prediction = self.accuracy.record_fault(
            inode_id, page, cluster, seconds, cls, queue_wait=queue_wait)
        rec = None
        skip_record = fs is None
        merged_from = ()
        if not skip_record and completion is not None and completion.merged:
            merged_from = completion.merged_from
            if not merged_from:
                # secondary member of a coalesced request: the primary
                # member records the union once, with provenance —
                # recording every member would multiply-count the one
                # device service the union paid for
                skip_record = True
            else:
                # the primary records the union run, not its own cluster
                page = min(p for _, p, _ in merged_from)
                cluster = max(p + c for _, p, c in merged_from) - page
        if not skip_record:
            # lifecycle record: event-engine faults hand the dispatch-time
            # component capture over via the stash; synchronous faults
            # pass the delta inline
            if components is None:
                components = self.lifecycle.pop_stash(
                    ("fault", inode_id, page, cluster)) or {}
            if completion is not None:
                submit, start, finish = (completion.submit_time,
                                         completion.start_time,
                                         completion.finish_time)
            else:
                submit = start = now - seconds
                finish = now
            predicted_latency, predicted_queue = (
                prediction if prediction is not None else (None, None))
            rec = self.lifecycle.record(
                kind="fault",
                task=getattr(self._kernel, "current_task", None),
                fs=fs.name, device_class=cls, inode=inode_id, page=page,
                cluster=cluster, nbytes=cluster * PAGE_SIZE,
                submit_time=submit, start_time=start, finish_time=finish,
                components=components,
                predicted_latency=predicted_latency,
                predicted_queue=predicted_queue,
                merged_from=merged_from,
                tenant=getattr(self._kernel, "current_tenant", None))
        if rec is not None:
            # carry the closed breakdown + provenance into the trace so
            # chrome://tracing shows where this request's latency went
            span_attrs["queue_wait"] = rec.queue_wait
            span_attrs["components"] = dict(rec.components)
            if rec.merged_from:
                span_attrs["merged_from"] = [list(member)
                                             for member in rec.merged_from]
        span = self.spans.add("fault", cls, now - seconds, now,
                              **span_attrs)
        self._drain_pending(parent_id=span.id, floor=span.start)

    def on_writeback(self, fs, inode, completion, components=None) -> None:
        """One event-engine writeback request completed."""
        cls = fs.device.time_category
        self._tick(completion.finish_time)
        if components is None:
            components = self.lifecycle.pop_stash(
                ("writeback", inode.id, completion.addr)) or {}
        self.lifecycle.record(
            kind="writeback",
            task=getattr(self._kernel, "current_task", None),
            fs=fs.name, device_class=cls, inode=inode.id, page=-1,
            cluster=completion.nbytes // PAGE_SIZE,
            nbytes=completion.nbytes,
            submit_time=completion.submit_time,
            start_time=completion.start_time,
            finish_time=completion.finish_time,
            components=components,
            tenant=getattr(self._kernel, "current_tenant", None))

    def on_hit(self, inode_id: int, page: int) -> None:
        """A read found its page resident; settle any SLED prediction."""
        kernel = self._kernel
        if kernel is None:
            return
        spec = kernel.memory.spec
        actual = spec.latency + PAGE_SIZE / spec.bandwidth
        self.accuracy.record_hit(inode_id, page, actual)

    def on_readahead_insert(self, key) -> None:
        self._pending_ra.add(key)

    def on_metadata(self, fs_name: str, seconds: float) -> None:
        self.metadata_latency.labels(fs=fs_name).observe(seconds)

    def on_queue_depth(self, device, depth: int) -> None:
        self.queue_depth.labels(device=device.name).observe(depth)

    def on_io_queued(self, device, depth: int) -> None:
        """A request entered the device's event queue (engine attached)."""
        self.queue_depth_now.labels(device=device.name).set(depth)

    def on_io_dispatched(self, device, wait: float, depth: int) -> None:
        """A queued request started service after ``wait`` virtual
        seconds; ``depth`` counts it plus whatever is still waiting."""
        self.queue_wait.labels(device=device.name).observe(wait)
        self.queue_depth_now.labels(device=device.name).set(depth)

    def on_io_completed(self, device, depth: int) -> None:
        """A request finished service; ``depth`` is what is still
        queued (0 when the device goes idle)."""
        self.queue_depth_now.labels(device=device.name).set(depth)

    def on_merge(self, device, members: int, nbytes: int) -> None:
        """The block layer coalesced ``members`` requests into one
        ``nbytes`` union dispatch."""
        name = device.name
        self.merged_requests.labels(device=name).inc(members - 1)
        self.merge_members.labels(device=name).observe(members)
        self.merged_bytes.labels(device=name).inc(nbytes)

    def on_plug(self, device, wait: float, batch: int) -> None:
        """One plugged request was released after ``wait`` virtual
        seconds, in a flush of ``batch`` requests."""
        name = device.name
        self.plug_latency.labels(device=name).observe(wait)
        self.plug_batch.labels(device=name).observe(batch)

    def on_prefetch_issued(self, pages: int) -> None:
        self.prefetch_issued.inc(pages)

    def on_prefetch_used(self, pages: int = 1) -> None:
        self.prefetch_used.inc(pages)

    def on_prefetch_cancelled(self) -> None:
        self.prefetch_cancelled.inc()

    def on_prefetch_complete(self, fs, inode_id: int, page: int,
                             cluster: int, completion,
                             tenant: str | None = None) -> None:
        """A speculative read finished; record its lifecycle.  Same
        merged-member protocol as :meth:`on_fault`: a secondary member of
        a coalesced request records nothing, a primary records the union
        with provenance.  ``tenant`` is the plan-time owner — completion
        callbacks run outside any task, so the kernel's current tenant
        is gone by the time this fires."""
        self._tick(completion.finish_time)
        merged_from = ()
        if completion.merged:
            merged_from = completion.merged_from
            if not merged_from:
                return
            page = min(p for _, p, _ in merged_from)
            cluster = max(p + c for _, p, c in merged_from) - page
        components = self.lifecycle.pop_stash(
            ("fault", inode_id, page, cluster)) or {}
        self.lifecycle.record(
            kind="prefetch",
            task=getattr(self._kernel, "current_task", None),
            fs=fs.name, device_class=fs.device.time_category,
            inode=inode_id, page=page, cluster=cluster,
            nbytes=cluster * PAGE_SIZE,
            submit_time=completion.submit_time,
            start_time=completion.start_time,
            finish_time=completion.finish_time,
            components=components, merged_from=merged_from,
            tenant=tenant)

    def on_sleds(self, inode_id: int, vector, fs=None, inode=None,
                 queue_delays=None) -> None:
        self.sleds_requests.inc()
        self.sleds_vector_sleds.observe(len(vector))
        queue_by_page = None
        if fs is not None and inode is not None and queue_delays:
            # split each non-resident page's predicted latency into its
            # queue term (what resolve_estimate folded in) and the rest,
            # so fault-time errors attribute to queue vs. service
            cache = self._kernel.page_cache if self._kernel else None
            queue_by_page = {}
            page = 0
            for run, estimate in fs.span_estimates(inode, 0, inode.npages):
                queue = estimate.queue_delay + queue_delays.get(
                    estimate.device_key, 0.0)
                if queue > 0.0:
                    for p in range(page, page + run):
                        if cache is None or not cache.peek((inode.id, p)):
                            queue_by_page[p] = queue
                page += run
        self.accuracy.record_prediction(inode_id, vector,
                                        queue_by_page=queue_by_page)

    def on_migration(self, files: int, seconds: float) -> None:
        self.migrated_files.inc(files)
        self.migration_seconds.observe(seconds)

    # ------------------------------------------------------------------
    # device observer (installed on every reachable Device)
    # ------------------------------------------------------------------

    def on_device_access(self, device, addr: int, nbytes: int,
                         seconds: float, is_write: bool) -> None:
        op = "write" if is_write else "read"
        name = device.name
        self.device_access.labels(device=name, op=op).inc()
        self.device_bytes.labels(device=name, op=op).inc(nbytes)
        self.device_latency.labels(device=name).observe(seconds)
        if self.spans.open_depth > 0 and self._kernel is not None:
            self._pending_dev.append(
                (self._kernel.clock.now, name, seconds, nbytes, op))

    def _drain_pending(self, parent_id: int, floor: float) -> None:
        """Lay buffered device accesses out sequentially under a parent."""
        if not self._pending_dev:
            return
        cursor = floor
        for t, name, seconds, nbytes, op in self._pending_dev:
            start = max(t, cursor)
            self.spans.add("device", name, start, start + seconds,
                           parent_id=parent_id, bytes=nbytes, op=op)
            cursor = start + seconds
        self._pending_dev.clear()

    # ------------------------------------------------------------------
    # page-cache observer
    # ------------------------------------------------------------------

    def on_cache_access(self, key, hit: bool) -> None:
        if hit:
            self.cache_hits.labels(policy=self._policy_name).inc()
            if key in self._pending_ra:
                self._pending_ra.discard(key)
                self.readahead_used.inc()
        else:
            self.cache_misses.labels(policy=self._policy_name).inc()

    def on_cache_insert(self, key) -> None:
        self.cache_insertions.labels(policy=self._policy_name).inc()

    def on_cache_evict(self, key, forced: bool) -> None:
        self.cache_evictions.labels(
            policy=self._policy_name,
            forced="true" if forced else "false").inc()
        self._pending_ra.discard(key)

    def on_cache_remove(self, key) -> None:
        self._pending_ra.discard(key)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def snapshot(self) -> None:
        """Refresh point-in-time gauges from the attached kernel."""
        kernel = self._kernel
        if kernel is None:
            return
        for category, seconds in sorted(kernel.clock.categories().items()):
            self.virtual_time.labels(category=category).set(seconds)
        self.virtual_time.labels(category="total").set(kernel.clock.now)
        self.cache_resident.set(len(kernel.page_cache))
        for name, value in sorted(vars(kernel.counters).items()):
            if isinstance(value, dict):
                # per-tenant dict counters export as their own labeled
                # family; a flat gauge can't hold a dict
                for tenant in sorted(value):
                    self.kernel_counter_tenant.labels(
                        name=name, tenant=tenant).set(value[tenant])
                continue
            self.kernel_counter.labels(name=name).set(value)
        for device in self._observed_devices:
            self.device_busy.labels(device=device.name).set(
                device.stats.busy_time)
        for _, fs in kernel.mounts():
            ops = getattr(fs, "metadata_ops", None)
            if ops is not None:
                self.remote_metadata_ops.labels(fs=fs.name).set(ops)

    def render_prometheus(self) -> str:
        """Prometheus text exposition (refreshes snapshot gauges first)."""
        self.snapshot()
        return self.registry.render_prometheus()

    def to_dict(self) -> dict:
        """JSON-ready dump: metrics + accuracy + span statistics."""
        self.snapshot()
        return {
            "metrics": self.registry.to_dict(),
            "accuracy": self.accuracy.to_dict(),
            "spans": {"recorded": len(self.spans),
                      "dropped": self.spans.dropped},
            "lifecycle": {"recorded": len(self.lifecycle),
                          "dropped": self.lifecycle.dropped},
        }

    def chrome_trace(self) -> dict:
        """Chrome trace-event JSON of every recorded span."""
        return chrome_trace(self.spans)


class TelemetryBatch:
    """Deferred :meth:`Telemetry.on_fault` fan-in for a run batch.

    The engine's batched fault path (``Kernel._fault_in_runs``) completes
    every miss run of a span in one parked wait, then walks the
    completions.  Calling ``on_fault`` per run from inside that walk pays
    three metric-label resolutions and the full fan-out per fault;
    :meth:`add` instead captures the call's arguments, and :meth:`flush`
    replays them *in the original order* with the per-device-class label
    children resolved once per batch.

    Replay order is the only thing that moves: ``on_fault`` neither reads
    nor writes anything the interleaved cache inserts touch, *except* the
    time-series sampler (``_tick``), whose samples would observe insert
    counters from later runs — so the kernel only routes through a batch
    when ``telemetry.timeseries is None``.  Readahead-insert set-adds and
    all cache-observer callbacks stay live and in place.  Metric totals,
    span order, lifecycle records, and accuracy bookkeeping are exactly
    those of the undeferred path.
    """

    __slots__ = ("_telemetry", "_events", "_handles")

    def __init__(self, telemetry: Telemetry) -> None:
        self._telemetry = telemetry
        self._events: list = []
        self._handles: dict = {}

    @property
    def telemetry(self) -> Telemetry:
        return self._telemetry

    def add(self, device, inode_id: int, page: int, cluster: int,
            seconds: float, now: float, window: int, fs,
            completion) -> None:
        """Capture one deferred ``on_fault`` (arguments, not effects)."""
        self._events.append((device, inode_id, page, cluster, seconds,
                             now, window, fs, completion))

    def flush(self) -> None:
        """Replay the captured calls in order, then clear the batch."""
        events = self._events
        if not events:
            return
        telemetry = self._telemetry
        on_fault = telemetry.on_fault
        handles = self._handles
        for (device, inode_id, page, cluster, seconds,
             now, window, fs, completion) in events:
            cls = device.time_category
            h = handles.get(cls)
            if h is None:
                h = handles[cls] = (
                    telemetry.faults.labels(device=cls),
                    telemetry.fault_latency.labels(device=cls),
                    telemetry.fault_cluster.labels(device=cls))
            on_fault(device, inode_id, page, cluster, seconds,
                     now=now, window=window, fs=fs, completion=completion,
                     _handles=h)
        events.clear()
