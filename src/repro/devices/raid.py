"""Composite (RAID) device models.

The paper's future work singles out "complex components such as HP's
AutoRAID" as the hard case for QoS-capable storage — a *composite* whose
performance characteristics are not any single device's.  These models
let the reproduction ask the question concretely: point the unchanged
boot-time characterisation at a stripe set or a mirror and see what the
sleds table learns.

* :class:`Raid0` — striping: an access is split across member disks at
  ``stripe_size`` granularity; the batch completes when the slowest
  member finishes (members work in parallel), so bandwidth scales with
  width while latency stays a single member's.  The model is synchronous
  per access — parallelism only happens *within* one request — so the
  default stripe unit (16 KB) is deliberately smaller than the kernel's
  64 KB readahead cluster; a stripe unit at or above the request size
  degenerates to single-disk throughput, which is also true of real
  arrays fed one outstanding request at a time.
* :class:`Raid1` — mirroring: reads go to the member whose head is
  nearest (the classic mirror read optimisation); writes pay both
  members, completing with the slower.
"""

from __future__ import annotations

import numpy as np

from repro.devices.base import Device, DeviceSpec
from repro.devices.disk import DiskDevice
from repro.sim.units import KB


class Raid0(Device):
    """A stripe set over equally sized member devices."""

    time_category = "disk"

    def __init__(self, members: list[Device], stripe_size: int = 16 * KB,
                 name: str = "raid0",
                 rng: np.random.Generator | None = None) -> None:
        if len(members) < 2:
            raise ValueError("RAID-0 needs at least two members")
        if stripe_size <= 0:
            raise ValueError(f"stripe size must be positive: {stripe_size}")
        self.members = list(members)
        self.stripe_size = stripe_size
        capacity = min(m.capacity for m in members) * len(members)
        spec = DeviceSpec(
            name=name, kind="raid0",
            latency=max(m.spec.latency for m in members),
            bandwidth=sum(m.spec.bandwidth for m in members))
        super().__init__(spec, capacity=capacity, rng=rng)

    def _split(self, addr: int, nbytes: int) -> dict[int, list[tuple[int, int]]]:
        """Device address range -> {member: [(member_addr, nbytes)]}."""
        width = len(self.members)
        out: dict[int, list[tuple[int, int]]] = {}
        pos = addr
        remaining = nbytes
        while remaining > 0:
            stripe = pos // self.stripe_size
            member = stripe % width
            member_stripe = stripe // width
            within = pos % self.stripe_size
            take = min(self.stripe_size - within, remaining)
            member_addr = member_stripe * self.stripe_size + within
            out.setdefault(member, []).append((member_addr, take))
            pos += take
            remaining -= take
        return out

    def _access_time(self, addr: int, nbytes: int, is_write: bool) -> float:
        per_member = []
        for member, pieces in self._split(addr, nbytes).items():
            device = self.members[member]
            total = 0.0
            for member_addr, take in pieces:
                if is_write:
                    total += device.write(member_addr, take)
                else:
                    total += device.read(member_addr, take)
            per_member.append(total)
        return max(per_member)

    def reset_state(self) -> None:
        super().reset_state()
        for member in self.members:
            member.reset_state()


class Raid1(Device):
    """A two-way (or wider) mirror."""

    time_category = "disk"

    def __init__(self, members: list[Device], name: str = "raid1",
                 rng: np.random.Generator | None = None) -> None:
        if len(members) < 2:
            raise ValueError("RAID-1 needs at least two members")
        self.members = list(members)
        capacity = min(m.capacity for m in members)
        spec = DeviceSpec(
            name=name, kind="raid1",
            latency=min(m.spec.latency for m in members),
            bandwidth=max(m.spec.bandwidth for m in members))
        super().__init__(spec, capacity=capacity, rng=rng)

    def _nearest_member(self, addr: int) -> Device:
        def distance(member: Device) -> int:
            head = getattr(member, "head_pos", 0)
            return abs(head - addr)
        return min(self.members, key=distance)

    def _access_time(self, addr: int, nbytes: int, is_write: bool) -> float:
        if is_write:
            # both copies must land; members work in parallel
            return max(member.write(addr, nbytes)
                       for member in self.members)
        return self._nearest_member(addr).read(addr, nbytes)

    def reset_state(self) -> None:
        super().reset_state()
        for member in self.members:
            member.reset_state()


def make_stripe(width: int = 2, stripe_size: int = 16 * KB,
                seed: int = 0, name: str = "raid0") -> Raid0:
    """Convenience: a stripe set of identical late-90s disks."""
    members = [DiskDevice(name=f"{name}-m{i}",
                          rng=np.random.default_rng(seed + i))
               for i in range(width)]
    return Raid0(members, stripe_size=stripe_size, name=name)
