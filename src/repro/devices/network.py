"""NFS-server model: network round trips in front of a remote disk.

The paper measured its NFS mount at 270 ms latency and 1.0 MB/s bandwidth
(Table 2) — a late-90s 10 Mb/s-Ethernet-class link to a loaded departmental
server.  The dominant costs are:

* a per-request network round trip plus server request processing;
* the server's own disk when the request misses the server's cache (this is
  what makes the *latency* figure so much larger than a bare LAN RTT);
* the link bandwidth, which caps sequential throughput ~ 1 MB/s.

The model keeps a notion of server-side sequential read-ahead: consecutive
client offsets hit the server's read-ahead buffer and skip the server disk
penalty, paying only the per-request RTT and wire time.  Random accesses pay
RTT + server disk seek.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.devices.base import Device, DeviceSpec
from repro.devices.disk import DiskDevice
from repro.sim.units import GB, KB, MB, MSEC

#: granularity of the server's buffer cache
SERVER_BLOCK = 64 * KB


class NfsDevice(Device):
    """A remote file store reached over a network link.

    Composes a :class:`~repro.devices.disk.DiskDevice` (the server's disk)
    with link parameters.  The device address space is the server disk's.
    """

    time_category = "nfs"

    #: a merged request is one RPC: the wire round-trip and per-request
    #: protocol overhead are charged once, not per scatter segment
    _merge_overhead_components = ("network",)

    def __init__(self, name: str = "nfs", capacity: int = 9 * GB,
                 rtt: float = 2.5 * MSEC,
                 request_overhead: float = 1.5 * MSEC,
                 link_bandwidth: float = 1.05 * MB,
                 server_disk: DiskDevice | None = None,
                 server_cache_penalty: float = 450.0 * MSEC,
                 server_cache_bytes: int = 0,
                 rng: np.random.Generator | None = None) -> None:
        if rtt < 0 or request_overhead < 0 or server_cache_penalty < 0:
            raise ValueError("NFS timing parameters must be non-negative")
        if link_bandwidth <= 0:
            raise ValueError(f"link bandwidth must be positive: {link_bandwidth}")
        if server_cache_bytes < 0:
            raise ValueError(
                f"server cache size must be >= 0: {server_cache_bytes}")
        self.rtt = rtt
        self.request_overhead = request_overhead
        self.link_bandwidth = link_bandwidth
        self.server_cache_penalty = server_cache_penalty
        #: LRU of SERVER_BLOCK-sized block indices held by the server's
        #: buffer cache (0 disables the model, as in the base paper setup)
        self.server_cache_blocks = server_cache_bytes // SERVER_BLOCK
        self._server_cache: OrderedDict[int, None] = OrderedDict()
        #: bumps whenever server-cache *membership* changes (insert or
        #: eviction; recency moves don't alter what a client would be
        #: told).  Folded into NfsLike.state_epoch for SLED-cache stamps.
        self.cache_version = 0
        self.server_disk = server_disk or DiskDevice(
            name=f"{name}-server-disk", capacity=capacity, rng=rng)
        nominal_latency = (rtt + request_overhead + server_cache_penalty / 2
                           + self.server_disk.spec.latency)
        spec = DeviceSpec(name=name, kind="nfs", latency=nominal_latency,
                          bandwidth=link_bandwidth)
        super().__init__(spec, capacity=capacity, rng=rng)
        self._next_sequential = 0

    # -- the server's buffer cache ---------------------------------------

    def _blocks_of(self, addr: int, nbytes: int) -> range:
        first = addr // SERVER_BLOCK
        last = (addr + max(1, nbytes) - 1) // SERVER_BLOCK
        return range(first, last + 1)

    def server_cached(self, addr: int, nbytes: int) -> bool:
        """Whether the server's cache holds all of ``[addr, addr+nbytes)``.

        This is the state a SLEDs-speaking server would report to clients
        — the paper's proposal that SLEDs "be the vocabulary of
        communication between clients and servers".
        """
        if self.server_cache_blocks == 0:
            return False
        return all(b in self._server_cache for b in
                   self._blocks_of(addr, nbytes))

    def _server_cache_insert(self, addr: int, nbytes: int) -> None:
        if self.server_cache_blocks == 0:
            return
        for block in self._blocks_of(addr, nbytes):
            if block in self._server_cache:
                self._server_cache.move_to_end(block)
            else:
                self._server_cache[block] = None
                self.cache_version += 1
                while len(self._server_cache) > self.server_cache_blocks:
                    self._server_cache.popitem(last=False)
                    self.cache_version += 1

    def warm_server_cache(self, addr: int, nbytes: int) -> None:
        """World-building helper: another client's accesses left this
        range in the server's cache."""
        self._server_cache_insert(addr, nbytes)

    def _access_time(self, addr: int, nbytes: int, is_write: bool) -> float:
        duration = self.rtt + self.request_overhead
        sequential = addr == self._next_sequential
        if sequential:
            # Server read-ahead already staged the data; disk time hidden.
            server_time = 0.0
        elif is_write:
            server_time = self.server_disk.write(addr, nbytes)
        elif self.server_cached(addr, nbytes):
            # Server cache hit: no disk, no queueing penalty — just the
            # server's memory-copy time (negligible next to the wire).
            server_time = 0.5 * MSEC
        else:
            # Random read: server cache cold for this range; charge the
            # server disk plus a queueing penalty for a busy server.
            server_time = self.server_disk.read(addr, nbytes)
            server_time += float(
                self.rng.uniform(0.0, self.server_cache_penalty))
            self.stats.seeks += 1
        if not is_write:
            self._server_cache_insert(addr, nbytes)
        wire = nbytes / self.link_bandwidth
        duration += server_time + wire
        self._next_sequential = addr + nbytes
        self._components(network=self.rtt + self.request_overhead,
                         server=server_time, transfer=wire)
        return duration

    # -- batched fast path ----------------------------------------------

    def _batch_eligible(self) -> bool:
        # The server-cache model mutates LRU membership and bumps
        # cache_version on every read — per-access state the batch kernel
        # does not reproduce.  It is off (0 blocks) in the paper setup.
        return self.server_cache_blocks == 0

    def _batch_needs_scalar_head(self, addr: int) -> bool:
        return addr != self._next_sequential

    def _batch_page_math(self, addr: int, count: int, page_bytes: int):
        # Sequential continuations ride the server's read-ahead: no
        # server disk, no rng.  Scalar order: (rtt + request_overhead)
        # + (0.0 + wire), and the zero server component is dropped.
        base = self.rtt + self.request_overhead
        wire = page_bytes / self.link_bandwidth
        durations = np.full(count, base + wire)
        components = {
            "network": np.full(count, base),
            "transfer": np.full(count, wire),
        }
        return durations, components

    def _batch_commit_position(self, end_addr: int) -> None:
        self._next_sequential = end_addr

    def reset_state(self) -> None:
        super().reset_state()
        self._next_sequential = 0
        self.server_disk.reset_state()
