"""Parametric storage-device models with dynamic positional state.

Each model converts an access (address, byte count) into virtual seconds,
tracking head/tape position so that sequential streaming is cheap and random
access pays the device's characteristic latency — the four-to-eleven orders
of magnitude of dynamic range that motivate SLEDs.
"""

from repro.devices.autochanger import Autochanger, UnknownCartridgeError
from repro.devices.base import Device, DeviceSpec, DeviceStats
from repro.devices.cdrom import CdromDevice
from repro.devices.disk import DiskDevice, Zone, DEFAULT_ZONES
from repro.devices.flash import FlashDevice
from repro.devices.memory import MemoryDevice
from repro.devices.network import NfsDevice
from repro.devices.raid import Raid0, Raid1, make_stripe
from repro.devices.tape import TapeCartridge, TapeDevice, TapeNotLoadedError

__all__ = [
    "Device",
    "DeviceSpec",
    "DeviceStats",
    "MemoryDevice",
    "DiskDevice",
    "Zone",
    "DEFAULT_ZONES",
    "CdromDevice",
    "FlashDevice",
    "NfsDevice",
    "Raid0",
    "Raid1",
    "make_stripe",
    "TapeDevice",
    "TapeCartridge",
    "TapeNotLoadedError",
    "Autochanger",
    "UnknownCartridgeError",
]
