"""Serpentine tape-drive model (DLT-class).

Follows the spirit of Hillyer & Silberschatz's DLT model [HS96a] as
simplified by Sandstå & Midstraum [SM99]: the medium is a set of serpentine
*wraps*; a locate operation costs a fixed startup plus a longitudinal wind
proportional to the distance the tape must move, plus a small wrap-switch
(head reposition) cost.  Reading is streaming at the drive's native rate
once positioned.

A tape must be *loaded* in the drive before any access; loading (performed
by the :class:`~repro.devices.autochanger.Autochanger` or manually) costs
tens of seconds, which is what gives HSM systems their eleven orders of
magnitude of latency dynamic range (microseconds for cached pages up to
hundreds of seconds for an unmounted tape).
"""

from __future__ import annotations

import numpy as np

from repro.devices.base import Device, DeviceSpec
from repro.sim.units import GB, MB


class TapeNotLoadedError(RuntimeError):
    """Access attempted with no tape (or the wrong tape) in the drive."""


class TapeCartridge:
    """A passive cartridge: identity, capacity, and remembered position."""

    def __init__(self, label: str, capacity: int = 35 * GB) -> None:
        if capacity <= 0:
            raise ValueError(f"tape capacity must be positive: {capacity}")
        self.label = label
        self.capacity = capacity
        #: longitudinal position remembered across unload/load cycles
        self.position = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TapeCartridge {self.label!r}>"


class TapeDevice(Device):
    """A tape drive.  Addresses are byte offsets along the serpentine path
    of the currently loaded cartridge."""

    time_category = "tape"

    #: a locate is seconds-to-minutes; a merged read streams through gaps
    #: up to several megabytes rather than winding the transport
    _gap_read_through_bytes = 4 * MB

    def __init__(self, name: str = "tape0",
                 bandwidth: float = 5.0 * MB,
                 locate_startup: float = 4.0,
                 full_wind_time: float = 90.0,
                 wrap_switch_time: float = 1.0,
                 wraps: int = 64,
                 load_time: float = 40.0,
                 unload_time: float = 25.0,
                 rng: np.random.Generator | None = None) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth}")
        if min(locate_startup, full_wind_time, wrap_switch_time,
               load_time, unload_time) < 0:
            raise ValueError("tape timing parameters must be non-negative")
        if wraps <= 0:
            raise ValueError(f"wrap count must be positive: {wraps}")
        self.locate_startup = locate_startup
        self.full_wind_time = full_wind_time
        self.wrap_switch_time = wrap_switch_time
        self.wraps = wraps
        self.load_time = load_time
        self.unload_time = unload_time
        # Nominal latency: a random locate averages ~1/3 of a full wind of
        # longitudinal distance (see locate_time) plus startup.
        nominal_latency = locate_startup + full_wind_time / 3 + wrap_switch_time
        spec = DeviceSpec(name=name, kind="tape", latency=nominal_latency,
                          bandwidth=bandwidth)
        # Capacity of the *drive* address space = largest supported cartridge.
        super().__init__(spec, capacity=35 * GB, rng=rng)
        self.loaded: TapeCartridge | None = None
        self._next_sequential: int | None = None

    # -- cartridge handling ------------------------------------------------

    def load(self, cartridge: TapeCartridge) -> float:
        """Load ``cartridge``; returns the load duration in seconds."""
        if self.loaded is not None:
            raise TapeNotLoadedError(
                f"drive {self.name!r} already holds {self.loaded.label!r}")
        self.loaded = cartridge
        self._next_sequential = None
        return self.load_time

    def unload(self) -> float:
        """Rewind and eject; returns the unload duration in seconds."""
        if self.loaded is None:
            raise TapeNotLoadedError(f"drive {self.name!r} is empty")
        self.loaded.position = 0
        self.loaded = None
        self._next_sequential = None
        return self.unload_time

    # -- positioning ---------------------------------------------------------

    def _wrap_of(self, addr: int) -> tuple[int, int]:
        """(wrap index, longitudinal position) of a serpentine address."""
        assert self.loaded is not None
        wrap_len = max(1, self.loaded.capacity // self.wraps)
        wrap = min(addr // wrap_len, self.wraps - 1)
        along = addr - wrap * wrap_len
        # odd wraps run backwards
        longitudinal = along if wrap % 2 == 0 else wrap_len - along
        return wrap, longitudinal

    def locate_time(self, from_addr: int, to_addr: int) -> float:
        """Duration of a locate between two serpentine addresses."""
        if self.loaded is None:
            raise TapeNotLoadedError(f"drive {self.name!r} is empty")
        if from_addr == to_addr:
            return 0.0
        from_wrap, from_long = self._wrap_of(from_addr)
        to_wrap, to_long = self._wrap_of(to_addr)
        wrap_len = max(1, self.loaded.capacity // self.wraps)
        wind_frac = abs(to_long - from_long) / wrap_len
        duration = self.locate_startup + wind_frac * self.full_wind_time
        if to_wrap != from_wrap:
            duration += self.wrap_switch_time
        return duration

    def estimate_latency(self, addr: int) -> float:
        """Expected time-to-first-byte for ``addr`` given current state.

        Used by the SLEDs machinery: accounts for the loaded tape's current
        position but performs no motion.
        """
        if self.loaded is None:
            return self.load_time + self.locate_startup + self.full_wind_time / 3
        return self.locate_time(self.loaded.position, addr)

    # -- access ----------------------------------------------------------------

    def _access_time(self, addr: int, nbytes: int, is_write: bool) -> float:
        if self.loaded is None:
            raise TapeNotLoadedError(f"drive {self.name!r} is empty")
        if addr + nbytes > self.loaded.capacity:
            raise ValueError(
                f"access beyond cartridge {self.loaded.label!r} capacity")
        duration = 0.0
        if addr != self._next_sequential:
            duration += self.locate_time(self.loaded.position, addr)
            self.stats.seeks += 1
        transfer = nbytes / self.spec.bandwidth
        positioning = duration
        duration += transfer
        self.loaded.position = addr + nbytes
        self._next_sequential = addr + nbytes
        self._components(positioning=positioning, transfer=transfer)
        return duration

    def reset_state(self) -> None:
        super().reset_state()
        if self.loaded is not None:
            self.loaded.position = 0
        self._next_sequential = None
