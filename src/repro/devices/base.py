"""Device model base classes.

A :class:`Device` turns an access request (address, byte count) into a
duration in virtual seconds, updating its own dynamic state (head position,
mounted tape, ...) as a side effect.  Devices never touch the clock
themselves — the kernel charges the returned duration — and they never hold
data; file content lives in the filesystem layer.  This mirrors the paper's
observation that in current systems "the storage devices are purely passive,
although their characteristics are measured and presented by proxy".

Every device also carries a :class:`DeviceSpec` with the *nominal*
latency/bandwidth, which is what the paper's boot-time lmbench run would
measure and feed into the kernel sleds table (our
:mod:`repro.bench.lmbench` does the measuring for real, against these
models).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.devices import batch


@dataclass(frozen=True)
class DeviceSpec:
    """Nominal characteristics of a device, for reports and sanity checks.

    ``latency`` is the expected time-to-first-byte of an isolated random
    access in seconds; ``bandwidth`` the sustained sequential transfer rate
    in bytes/second.  These correspond to the rows of the paper's Tables 2
    and 3.
    """

    name: str
    kind: str
    latency: float
    bandwidth: float


@dataclass
class DeviceStats:
    """Cumulative access statistics, used by tests and benchmark reports."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time: float = 0.0
    seeks: int = 0
    errors: int = 0
    #: time requests spent waiting behind the busy horizon (event engine)
    queue_wait_time: float = 0.0
    #: requests that had to wait (submitted while the device was busy)
    queued_requests: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_time = 0.0
        self.seeks = 0
        self.errors = 0
        self.queue_wait_time = 0.0
        self.queued_requests = 0


class Completion:
    """The outcome of one :meth:`Device.submit` call.

    ``submit_time`` is when the request arrived, ``start_time`` when the
    device actually began service (``max(submit_time, busy_until)``), and
    ``duration`` the service time alone — so ``queue_wait`` is pure
    head-of-line blocking, never transfer time.

    A slotted, slab-allocated record: one is created per device request
    (every fault, writeback, and prefetch), which at millions of faults
    per run made completions the dominant allocation.  :meth:`new` draws
    from a free list, and the blocking ``read``/``write``/``read_spans``
    wrappers — where the completion provably never escapes — return it
    via :meth:`recycle`.  Async completions stay ordinary garbage: their
    lifetime is owned by futures and the lifecycle log.
    """

    __slots__ = ("device_name", "addr", "nbytes", "is_write", "submit_time",
                 "start_time", "duration", "merged", "merged_from")

    _pool: list["Completion"] = []
    _POOL_CAP = 4096

    def __init__(self, device_name: str, addr: int, nbytes: int,
                 is_write: bool, submit_time: float, start_time: float,
                 duration: float, merged: bool = False,
                 merged_from: tuple = ()) -> None:
        self.device_name = device_name
        self.addr = addr
        self.nbytes = nbytes
        self.is_write = is_write
        self.submit_time = submit_time
        self.start_time = start_time
        self.duration = duration
        #: True when this completion belongs to a request that was
        #: coalesced with others by the block layer's merge stage
        self.merged = merged
        #: provenance of a coalesced request — ``(inode, page, cluster)``
        #: per member, non-empty only on the *primary* member's completion
        #: (the one that records the union in the lifecycle log)
        self.merged_from = merged_from

    @classmethod
    def new(cls, device_name: str, addr: int, nbytes: int, is_write: bool,
            submit_time: float, start_time: float, duration: float,
            merged: bool = False, merged_from: tuple = ()) -> "Completion":
        """Slab-allocating constructor: reuse a recycled shell if any."""
        pool = cls._pool
        if pool:
            self = pool.pop()
            self.device_name = device_name
            self.addr = addr
            self.nbytes = nbytes
            self.is_write = is_write
            self.submit_time = submit_time
            self.start_time = start_time
            self.duration = duration
            self.merged = merged
            self.merged_from = merged_from
            return self
        return cls(device_name, addr, nbytes, is_write, submit_time,
                   start_time, duration, merged, merged_from)

    def recycle(self) -> None:
        """Return this completion to the slab.

        Only for owners certain no other reference survives — the
        blocking submit-and-drain wrappers.
        """
        pool = Completion._pool
        if len(pool) < Completion._POOL_CAP:
            self.merged_from = ()  # don't pin provenance tuples
            pool.append(self)

    def replace(self, **changes) -> "Completion":
        """A fresh (slab-drawn) copy with ``changes`` applied — the
        ``dataclasses.replace`` equivalent for this slotted class."""
        fields = {
            "device_name": self.device_name, "addr": self.addr,
            "nbytes": self.nbytes, "is_write": self.is_write,
            "submit_time": self.submit_time, "start_time": self.start_time,
            "duration": self.duration, "merged": self.merged,
            "merged_from": self.merged_from,
        }
        fields.update(changes)
        return Completion.new(**fields)

    @property
    def finish_time(self) -> float:
        """Virtual time at which the request's data is available."""
        return self.start_time + self.duration

    @property
    def queue_wait(self) -> float:
        """Seconds the request waited behind earlier requests."""
        return self.start_time - self.submit_time

    def _key(self) -> tuple:
        return (self.device_name, self.addr, self.nbytes, self.is_write,
                self.submit_time, self.start_time, self.duration,
                self.merged, self.merged_from)

    def __eq__(self, other) -> bool:
        if isinstance(other, Completion):
            return self._key() == other._key()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "write" if self.is_write else "read"
        return (f"<Completion {self.device_name!r} {kind} addr={self.addr} "
                f"nbytes={self.nbytes} t=[{self.submit_time:.6f}, "
                f"{self.finish_time:.6f}]>")


class Device(ABC):
    """Abstract storage device with dynamic positional state.

    Subclasses implement :meth:`_access_time`; the public :meth:`read` and
    :meth:`write` wrappers validate arguments and keep statistics.
    """

    #: category name used when charging this device's time to the clock
    time_category = "device"

    #: component names charged once per *request* rather than once per
    #: scatter segment — continuation spans of a merged request waive them
    #: (a real controller pays its per-command overhead once, an NFS server
    #: answers one RPC).  Positioning is never waived; a fragmented span
    #: that forces a seek still pays for it.
    _merge_overhead_components: tuple[str, ...] = ()

    #: largest forward address gap (bytes) a merged read services by
    #: reading *through* the gap instead of repositioning.  The gap bytes
    #: cost transfer time but are discarded: they are not counted in
    #: ``bytes_read`` or the completion's ``nbytes``.  0 disables
    #: read-through (seek-capable devices reposition instead).
    _gap_read_through_bytes: int = 0

    def __init__(self, spec: DeviceSpec, capacity: int,
                 rng: np.random.Generator | None = None) -> None:
        if capacity <= 0:
            raise ValueError(f"device capacity must be positive: {capacity}")
        self.spec = spec
        self.capacity = capacity
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = DeviceStats()
        #: optional telemetry observer (see repro.obs.telemetry); the hook
        #: must be purely observational — it gets the computed duration and
        #: may not influence device state or timing
        self.observer = None
        #: component breakdown of the access currently being computed;
        #: ``_access_time`` implementations fill it via :meth:`_components`
        #: so the lifecycle layer can attribute where a duration went
        self._last_components: dict[str, float] | None = None
        #: cumulative virtual seconds per component ("positioning",
        #: "transfer", ...; writes prefixed ``write_``).  Monotonic, so
        #: observers can diff two snapshots to attribute one service call.
        self.component_totals: dict[str, float] = {}
        self._pending_failures = 0
        self._bad_ranges: list[tuple[int, int]] = []
        #: virtual time until which the device is servicing earlier
        #: requests; a request submitted before this horizon queues
        self.busy_until = 0.0

    # -- public API ----------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    def submit(self, addr: int, nbytes: int, is_write: bool,
               now: float | None = None) -> Completion:
        """Submit one request; returns its :class:`Completion`.

        ``now`` is the submitter's virtual time.  A request arriving while
        the device is busy (``now < busy_until``) starts service at the
        busy horizon and records the difference as queue wait.  When
        ``now`` is omitted the request is treated as arriving exactly when
        the device frees up — the synchronous, never-queueing regime the
        blocking :meth:`read`/:meth:`write` wrappers rely on.
        """
        self._check(addr, nbytes)
        self._maybe_fail(addr, nbytes, is_write)
        submit_time = self.busy_until if now is None else now
        start = max(submit_time, self.busy_until)
        self._last_components = None
        duration = self._access_time(addr, nbytes, is_write)
        components = self._last_components
        if components is None:
            components = {"transfer": duration}
        self._last_components = None
        prefix = "write_" if is_write else ""
        totals = self.component_totals
        for part, seconds in components.items():
            key = prefix + part
            totals[key] = totals.get(key, 0.0) + seconds
        if is_write:
            self.stats.writes += 1
            self.stats.bytes_written += nbytes
        else:
            self.stats.reads += 1
            self.stats.bytes_read += nbytes
        self.stats.busy_time += duration
        wait = start - submit_time
        if wait > 0.0:
            self.stats.queue_wait_time += wait
            self.stats.queued_requests += 1
        self.busy_until = start + duration
        if self.observer is not None:
            self.observer.on_device_access(self, addr, nbytes, duration,
                                           is_write=is_write)
        return Completion.new(device_name=self.name, addr=addr,
                              nbytes=nbytes, is_write=is_write,
                              submit_time=submit_time, start_time=start,
                              duration=duration)

    def _components(self, **parts: float) -> None:
        """Record the component breakdown of the access being computed.

        Purely observational: ``_access_time`` implementations keep their
        original duration arithmetic (order of float additions included —
        the timings are regression anchors) and call this alongside it so
        every charged second is attributable to a named component.  Any
        rounding daylight between the sum of parts and the returned
        duration is attributed to the residual by the lifecycle layer.
        """
        self._last_components = {name: seconds for name, seconds
                                 in parts.items() if seconds != 0.0}

    def submit_spans(self, spans, is_write: bool = False,
                     now: float | None = None) -> Completion:
        """Submit one *merged* request covering several extent spans.

        ``spans`` is a sequence of ``(addr, nbytes)`` pairs in address
        order, the scatter list of a request the block layer coalesced.
        The device services them as one command: per-request overhead
        components (:attr:`_merge_overhead_components`) are charged on the
        first span only, and small forward gaps between spans (up to
        :attr:`_gap_read_through_bytes`) are read through sequentially
        instead of repositioning.  A single span is bit-identical to
        :meth:`submit`.

        One request for statistics purposes: ``stats.reads`` (or writes)
        increments once, the observer fires once, and the returned
        :class:`Completion` carries the first span's address and the *sum*
        of the span byte counts (gap bytes excluded — they are transferred
        and discarded, never delivered).
        """
        spans = list(spans)
        if not spans:
            raise ValueError("submit_spans needs at least one span")
        if len(spans) == 1:
            addr, nbytes = spans[0]
            return self.submit(addr, nbytes, is_write, now=now)
        for addr, nbytes in spans:
            self._check(addr, nbytes)
        self._maybe_fail(*spans[0], is_write)
        for addr, nbytes in spans[1:]:
            self._check_bad_ranges(addr, nbytes, is_write)
        submit_time = self.busy_until if now is None else now
        start = max(submit_time, self.busy_until)
        duration = 0.0
        payload = 0
        components: dict[str, float] = {}

        def charge(addr: int, nbytes: int, is_write: bool,
                   waive: tuple[str, ...]) -> float:
            self._last_components = None
            seconds = self._access_time(addr, nbytes, is_write)
            parts = self._last_components
            if parts is None:
                parts = {"transfer": seconds}
            self._last_components = None
            for part in waive:
                seconds -= parts.pop(part, 0.0)
            for part, value in parts.items():
                components[part] = components.get(part, 0.0) + value
            return seconds

        expected = None
        for index, (addr, nbytes) in enumerate(spans):
            if index > 0:
                gap = addr - expected
                if not is_write and 0 < gap <= self._gap_read_through_bytes:
                    duration += charge(expected, gap, False,
                                       self._merge_overhead_components)
            waive = self._merge_overhead_components if index > 0 else ()
            duration += charge(addr, nbytes, is_write, waive)
            payload += nbytes
            expected = addr + nbytes

        prefix = "write_" if is_write else ""
        totals = self.component_totals
        for part, seconds in components.items():
            key = prefix + part
            totals[key] = totals.get(key, 0.0) + seconds
        if is_write:
            self.stats.writes += 1
            self.stats.bytes_written += payload
        else:
            self.stats.reads += 1
            self.stats.bytes_read += payload
        self.stats.busy_time += duration
        wait = start - submit_time
        if wait > 0.0:
            self.stats.queue_wait_time += wait
            self.stats.queued_requests += 1
        self.busy_until = start + duration
        if self.observer is not None:
            self.observer.on_device_access(self, spans[0][0], payload,
                                           duration, is_write=is_write)
        return Completion.new(device_name=self.name, addr=spans[0][0],
                              nbytes=payload, is_write=is_write,
                              submit_time=submit_time, start_time=start,
                              duration=duration)

    def read_spans(self, spans) -> float:
        """Blocking multi-span read: duration of one merged request (the
        never-queueing regime, like :meth:`read`)."""
        completion = self.submit_spans(spans, is_write=False)
        duration = completion.duration
        completion.recycle()
        return duration

    def read(self, addr: int, nbytes: int) -> float:
        """Time in seconds to read ``nbytes`` starting at ``addr``.

        A thin submit-and-drain wrapper: the request is charged as if it
        arrived the instant the device freed up, so it never queues and
        the returned duration is bit-identical to the pre-event-engine
        blocking model.
        """
        completion = self.submit(addr, nbytes, is_write=False)
        duration = completion.duration
        completion.recycle()
        return duration

    def read_run(self, addr: int, npages: int, page_bytes: int):
        """Batched equivalent of ``npages`` successive blocking reads.

        Bit-identical to the scalar loop::

            [self.read(addr + i * page_bytes, page_bytes)
             for i in range(npages)]

        but with the per-access arithmetic done in one numpy pass (see
        :mod:`repro.devices.batch`).  Only the *first* access of the run
        can be non-sequential (and therefore draw from the rng / move the
        head); it is served by a real scalar :meth:`read`, after which
        every following access is a sequential continuation by
        construction — pure arithmetic handled by the per-device
        :meth:`_batch_page_math` kernel.

        Returns the per-access durations as a numpy array, or ``None``
        when the batch path is unavailable (vectorisation disabled, no
        batch kernel for this device, an observer attached, or failure
        injection armed) — the caller must then fall back to scalar
        reads.  ``None`` is returned *before* any state moves, so the
        fallback always starts from a clean slate.
        """
        if npages <= 0 or not batch.enabled() or not self._batch_eligible():
            return None
        if (self.observer is not None or self._pending_failures > 0
                or self._bad_ranges):
            return None
        self._check(addr, npages * page_bytes)
        durations = np.empty(npages)
        offset = 0
        if self._batch_needs_scalar_head(addr):
            durations[0] = self.read(addr, page_bytes)
            offset = 1
        count = npages - offset
        if count:
            tail, components = self._batch_page_math(
                addr + offset * page_bytes, count, page_bytes)
            durations[offset:] = tail
            self._commit_batch_read(tail, components, count, page_bytes)
            self._batch_commit_position(addr + npages * page_bytes)
        return durations

    def _batch_eligible(self) -> bool:
        """Whether this device has a batch kernel *right now*.

        Checked before any state moves so an ineligible device never
        sees a half-executed batch.  The base class has no kernel.
        """
        return False

    def _batch_needs_scalar_head(self, addr: int) -> bool:
        """Whether the first access of a run at ``addr`` must go through
        the scalar path (non-sequential: seeks, rng draws, nested
        devices).  Positionless devices return False."""
        return False

    def _batch_page_math(self, addr: int, count: int, page_bytes: int):
        """Per-access durations and component arrays for ``count``
        *sequential* page reads starting at ``addr``.

        Pure arithmetic — no state updates, no rng.  Returns
        ``(durations, components)`` where ``durations`` is a float array
        of length ``count`` and ``components`` maps component names to
        per-access value arrays.  Every element must equal what the
        scalar ``_access_time`` would have produced for the same
        sequential access, bit for bit.
        """
        raise NotImplementedError

    def _batch_commit_position(self, end_addr: int) -> None:
        """Apply the positional state a run ending at ``end_addr`` leaves
        behind (head position, sequential cursor).  Positionless devices
        do nothing."""

    def _commit_batch_read(self, durations, components, count: int,
                           page_bytes: int) -> None:
        """Fold a batch's stats into the same running sums the scalar
        path maintains, in the scalar accumulation order."""
        self.stats.reads += count
        self.stats.bytes_read += count * page_bytes
        self.stats.busy_time = batch.fold(self.stats.busy_time, durations)
        # blocking reads never queue: each access starts at the busy
        # horizon, so the horizon advances by the same fold
        self.busy_until = batch.fold(self.busy_until, durations)
        totals = self.component_totals
        for part, values in components.items():
            if part in totals:
                totals[part] = batch.fold(totals[part], values)
            elif np.any(values):
                # scalar _components drops zero-valued parts, so never
                # create a key from an all-zero column
                totals[part] = batch.fold(0.0, values)

    def write(self, addr: int, nbytes: int) -> float:
        """Time in seconds to write ``nbytes`` starting at ``addr``."""
        completion = self.submit(addr, nbytes, is_write=True)
        duration = completion.duration
        completion.recycle()
        return duration

    def queue_delay(self, now: float) -> float:
        """Seconds a request submitted at ``now`` would wait before
        service begins (0.0 when the device is idle)."""
        return max(0.0, self.busy_until - now)

    def clamp_horizon(self, now: float) -> None:
        """Pull the busy horizon back to ``now`` at the latest.

        Off-clock accesses (boot-time lmbench probes run the device
        without charging the kernel clock) push ``busy_until`` past the
        clock; the event engine clamps every device when it attaches so
        stale horizons never masquerade as congestion.
        """
        if self.busy_until > now:
            self.busy_until = now

    def head_position(self) -> int:
        """Current positioning state for I/O-scheduler decisions.

        This is the explicit protocol the block layer consults between
        requests: devices with mechanical position (disk heads, CD pickup)
        override it; positionless devices (memory, network) report address
        0, where every elevator sweep starts.
        """
        return 0

    def reset_state(self) -> None:
        """Forget positional state (as if freshly powered on)."""
        self.busy_until = 0.0

    # -- failure injection ------------------------------------------------

    def inject_failures(self, count: int = 1) -> None:
        """Make the next ``count`` accesses fail with EIO (testing aid)."""
        if count < 0:
            raise ValueError(f"failure count must be >= 0: {count}")
        self._pending_failures += count

    def mark_bad_range(self, addr: int, nbytes: int) -> None:
        """Permanently fail any access overlapping ``[addr, addr+nbytes)``
        — a grown media defect."""
        if addr < 0 or nbytes <= 0:
            raise ValueError(f"bad defect range: {addr}, {nbytes}")
        self._bad_ranges.append((addr, addr + nbytes))

    def clear_failures(self) -> None:
        """Drop injected failures and media defects."""
        self._pending_failures = 0
        self._bad_ranges.clear()

    def _maybe_fail(self, addr: int, nbytes: int, is_write: bool) -> None:
        from repro.sim.errors import IoSimError

        if self._pending_failures > 0:
            self._pending_failures -= 1
            self.stats.errors += 1
            raise IoSimError(self.name, addr, is_write)
        self._check_bad_ranges(addr, nbytes, is_write)

    def _check_bad_ranges(self, addr: int, nbytes: int,
                          is_write: bool) -> None:
        from repro.sim.errors import IoSimError

        for lo, hi in self._bad_ranges:
            if addr < hi and addr + nbytes > lo:
                self.stats.errors += 1
                raise IoSimError(self.name, addr, is_write)

    # -- hooks -----------------------------------------------------------

    @abstractmethod
    def _access_time(self, addr: int, nbytes: int, is_write: bool) -> float:
        """Duration of one access; may update positional state."""

    # -- helpers ---------------------------------------------------------

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or nbytes < 0:
            raise ValueError(f"negative address/length: {addr}, {nbytes}")
        if addr + nbytes > self.capacity:
            raise ValueError(
                f"access [{addr}, {addr + nbytes}) beyond capacity "
                f"{self.capacity} of device {self.name!r}"
            )

    def describe(self) -> str:
        """One-line human description used by reports."""
        return (
            f"{self.name} ({self.spec.kind}): "
            f"latency {self.spec.latency * 1e3:.3f} ms, "
            f"bandwidth {self.spec.bandwidth / (1 << 20):.1f} MB/s"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
