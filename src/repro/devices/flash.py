"""Flash (SSD-class) device model.

The paper's closing claim is that SLEDs are deliberately
device-independent: "Scripts and other utilities built around this concept
will remain useful even as storage systems continue to evolve."  This
model is the test of that claim — a storage class that did not exist in
the paper's evaluation, dropped under the unchanged SLEDs machinery
(see experiment ``extF``).

Characteristics modelled:

* near-uniform random-read latency (no head, no rotation);
* high sequential bandwidth;
* asymmetric writes: programming is slower than reading, and a small
  write that does not cover a full erase block pays a read-modify-write
  penalty (the flash translation layer's write amplification).
"""

from __future__ import annotations

import numpy as np

from repro.devices.base import Device, DeviceSpec
from repro.sim.units import GB, KB, MB, USEC


class FlashDevice(Device):
    """An SSD: uniform read latency, asymmetric writes, no seek state."""

    time_category = "flash"

    def __init__(self, name: str = "flash", capacity: int = 32 * GB,
                 read_latency: float = 90 * USEC,
                 program_latency: float = 900 * USEC,
                 read_bandwidth: float = 180 * MB,
                 write_bandwidth: float = 60 * MB,
                 erase_block: int = 128 * KB,
                 erase_penalty: float = 2000 * USEC,
                 rng: np.random.Generator | None = None) -> None:
        if min(read_latency, program_latency, erase_penalty) < 0:
            raise ValueError("flash latencies must be non-negative")
        if read_bandwidth <= 0 or write_bandwidth <= 0:
            raise ValueError("flash bandwidths must be positive")
        if erase_block <= 0:
            raise ValueError(f"erase block must be positive: {erase_block}")
        self.read_latency = read_latency
        self.program_latency = program_latency
        self.read_bandwidth = read_bandwidth
        self.write_bandwidth = write_bandwidth
        self.erase_block = erase_block
        self.erase_penalty = erase_penalty
        spec = DeviceSpec(name=name, kind="flash",
                          latency=read_latency, bandwidth=read_bandwidth)
        super().__init__(spec, capacity=capacity, rng=rng)

    def _batch_eligible(self) -> bool:
        return True

    def _batch_page_math(self, addr: int, count: int, page_bytes: int):
        # No positional state: every read is read_latency + transfer.
        transfer = np.full(count, page_bytes / self.read_bandwidth)
        durations = np.full(count, self.read_latency + page_bytes
                            / self.read_bandwidth)
        components = {
            "overhead": np.full(count, self.read_latency),
            "transfer": transfer,
        }
        return durations, components

    def _access_time(self, addr: int, nbytes: int, is_write: bool) -> float:
        if not is_write:
            transfer = nbytes / self.read_bandwidth
            self._components(overhead=self.read_latency, transfer=transfer)
            return self.read_latency + transfer
        transfer = nbytes / self.write_bandwidth
        duration = self.program_latency + transfer
        # partial erase blocks force a read-modify-write in the FTL
        misaligned_head = addr % self.erase_block != 0
        misaligned_tail = (addr + nbytes) % self.erase_block != 0
        covers_whole_block = (not misaligned_head and not misaligned_tail
                              and nbytes >= self.erase_block)
        if not covers_whole_block and nbytes < self.erase_block:
            duration += self.erase_penalty
        elif misaligned_head or misaligned_tail:
            duration += self.erase_penalty / 2
        self._components(overhead=duration - transfer, transfer=transfer)
        return duration
