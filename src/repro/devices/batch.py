"""Vectorised kernels for the batched device-math fast path.

The kernel's fault fast path (:meth:`Kernel._fault_in`) wants to charge a
*run* of sequential page faults without running O(pages) Python: the
per-device batch kernels (``Device._batch_page_math``) compute whole-run
duration and component arrays in one numpy pass, and the helpers here fold
them into the same running sums the scalar path maintains.

Exact equality is the contract, not approximation: every accumulator the
scalar path advances with a chain of ``total += x_i`` is advanced here with
:func:`fold`, a *sequential* left fold (``numpy.add.accumulate``), which
reproduces the scalar IEEE-754 addition order bit for bit.  ``numpy.sum``
would not — it sums pairwise.

The module is also the kill switch.  The fast path is off when

* numpy is unavailable (the import is guarded so the library still works
  scalar-only),
* the ``SLEDS_NO_VECTOR`` environment variable is set to anything other
  than ``0`` or the empty string (read once at import), or
* a test called :func:`set_enabled` with ``False``.

Every caller falls back to the scalar reference path when
:func:`enabled` is false, so flipping the switch must never change a
virtual-time result — only host speed.
"""

from __future__ import annotations

import os

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep today
    _np = None

#: environment kill switch, read once at import
NO_VECTOR_ENV = "SLEDS_NO_VECTOR"

_env_enabled = os.environ.get(NO_VECTOR_ENV, "") in ("", "0")

#: test override: None defers to the environment
_forced: bool | None = None


def enabled() -> bool:
    """Whether the vectorised fast path may be used."""
    if _np is None:
        return False
    if _forced is not None:
        return _forced
    return _env_enabled


def set_enabled(value: bool | None) -> None:
    """Test hook: force the fast path on/off, or ``None`` to defer to the
    ``SLEDS_NO_VECTOR`` environment variable again."""
    global _forced
    _forced = value


def fold(start: float, values) -> float:
    """``start + v[0] + v[1] + ...`` in strict left-to-right order.

    Bit-identical to the scalar accumulation loop: ``add.accumulate`` is
    a sequential scan (each partial is the previous partial plus one
    element), unlike ``numpy.sum``'s pairwise reduction.
    """
    n = len(values)
    if n == 0:
        return start
    arr = _np.empty(n + 1)
    arr[0] = start
    arr[1:] = values
    return float(_np.add.accumulate(arr)[-1])
